//! # matrox-cachesim
//!
//! Software locality proxy for the MatRox reproduction.
//!
//! The paper's Figure 6 correlates MatRox's speedup with the *average memory
//! access latency* computed from PAPI hardware counters.  This crate provides
//! the offline substitute (DESIGN.md substitution S5): a two-level
//! set-associative LRU [`CacheHierarchy`] sized after the Haswell testbed and
//! a [`Trace`] abstraction that the Figure 6 harness fills by walking the
//! submatrices of each evaluation strategy in the order that strategy visits
//! them.  Replaying a trace yields miss ratios and the same latency formula
//! used in the paper.

//!
//! Beyond the replay model, [`CacheParams`] answers the *forward* question
//! the kernel layer in `matrox-linalg` asks at startup: how should a packed
//! GEMM block its operands for this hierarchy ([`CacheParams::gemm_blocking`])?

#![forbid(unsafe_code)]

pub mod cache;
pub mod params;
pub mod trace;

pub use cache::{CacheHierarchy, CacheLevel, LatencyModel};
pub use params::{CacheParams, GemmBlocking};
pub use trace::{Access, Trace};
