//! # matrox-cachesim
//!
//! Software locality proxy for the MatRox reproduction.
//!
//! The paper's Figure 6 correlates MatRox's speedup with the *average memory
//! access latency* computed from PAPI hardware counters.  This crate provides
//! the offline substitute (DESIGN.md substitution S5): a two-level
//! set-associative LRU [`CacheHierarchy`] sized after the Haswell testbed and
//! a [`Trace`] abstraction that the Figure 6 harness fills by walking the
//! submatrices of each evaluation strategy in the order that strategy visits
//! them.  Replaying a trace yields miss ratios and the same latency formula
//! used in the paper.

pub mod cache;
pub mod trace;

pub use cache::{CacheHierarchy, CacheLevel, LatencyModel};
pub use trace::{Access, Trace};
