//! Set-associative LRU cache model.
//!
//! The paper measures locality with PAPI hardware counters (L1/LLC/TLB misses
//! and memory accesses) and condenses them into an *average memory access
//! latency* (Hennessy–Patterson style).  Hardware counters are not available
//! in this environment, so Figure 6 is reproduced with a software model: the
//! submatrix access trace of each evaluation strategy is replayed through a
//! two-level set-associative LRU cache (sized after the paper's Haswell
//! testbed) and the same latency formula is applied.  The model preserves the
//! *ordering* of locality between storage formats and loop structures, which
//! is what the figure demonstrates (speedup correlates with memory access
//! latency).

/// One level of set-associative LRU cache.
#[derive(Debug, Clone)]
pub struct CacheLevel {
    /// Line size in bytes.
    pub line_size: usize,
    sets: Vec<Vec<u64>>,
    ways: usize,
    hits: u64,
    misses: u64,
}

impl CacheLevel {
    /// Create a cache level with `capacity_bytes` total capacity,
    /// `ways`-way associativity and `line_size`-byte lines.
    pub fn new(capacity_bytes: usize, ways: usize, line_size: usize) -> Self {
        assert!(ways >= 1 && line_size.is_power_of_two());
        let num_lines = (capacity_bytes / line_size).max(ways);
        let num_sets = (num_lines / ways).max(1);
        CacheLevel {
            line_size,
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            hits: 0,
            misses: 0,
        }
    }

    /// Access one cache line (identified by its line address).  Returns true
    /// on a hit.
    pub fn access_line(&mut self, line_addr: u64) -> bool {
        let set_idx = (line_addr as usize) % self.sets.len();
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&l| l == line_addr) {
            // Move to MRU position.
            let line = set.remove(pos);
            set.push(line);
            self.hits += 1;
            true
        } else {
            if set.len() == self.ways {
                set.remove(0); // evict LRU
            }
            set.push(line_addr);
            self.misses += 1;
            false
        }
    }

    /// Number of hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio (0 when no accesses were made).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Reset counters and contents.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

/// Latency parameters (cycles) for the average-memory-access-latency formula.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// L1 hit latency.
    pub l1_hit: f64,
    /// Penalty of an L1 miss that hits in the last-level cache.
    pub llc_hit: f64,
    /// Penalty of a last-level-cache miss (memory access).
    pub memory: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // Roughly Haswell-class numbers; only the relative magnitudes matter.
        LatencyModel {
            l1_hit: 4.0,
            llc_hit: 34.0,
            memory: 200.0,
        }
    }
}

/// Two-level cache hierarchy fed with byte-range accesses.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    /// First-level cache.
    pub l1: CacheLevel,
    /// Last-level cache.
    pub llc: CacheLevel,
    /// Latency parameters.
    pub latency: LatencyModel,
    accesses: u64,
}

impl CacheHierarchy {
    /// Haswell-like configuration: 32 KiB 8-way L1, 30 MiB 20-way LLC,
    /// 64-byte lines (matching the testbed of Section 4.1).
    pub fn haswell() -> Self {
        CacheHierarchy {
            l1: CacheLevel::new(32 * 1024, 8, 64),
            llc: CacheLevel::new(30 * 1024 * 1024, 20, 64),
            latency: LatencyModel::default(),
            accesses: 0,
        }
    }

    /// A deliberately tiny hierarchy for unit tests.
    pub fn tiny(l1_bytes: usize, llc_bytes: usize) -> Self {
        CacheHierarchy {
            l1: CacheLevel::new(l1_bytes, 2, 64),
            llc: CacheLevel::new(llc_bytes, 4, 64),
            latency: LatencyModel::default(),
            accesses: 0,
        }
    }

    /// Access `len` bytes starting at byte address `addr`.
    pub fn access(&mut self, addr: u64, len: usize) {
        let line = self.l1.line_size as u64;
        let first = addr / line;
        let last = (addr + len.max(1) as u64 - 1) / line;
        for l in first..=last {
            self.accesses += 1;
            if !self.l1.access_line(l) {
                self.llc.access_line(l);
            }
        }
    }

    /// Total line accesses observed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Average memory access latency:
    /// `l1_hit + miss1 * (llc_hit + missLLC * memory)` where the miss ratios
    /// come from the replayed trace.
    pub fn average_memory_access_latency(&self) -> f64 {
        let m1 = self.l1.miss_ratio();
        let m2 = self.llc.miss_ratio();
        self.latency.l1_hit + m1 * (self.latency.llc_hit + m2 * self.latency.memory)
    }

    /// Reset both levels and the access counter.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.llc.reset();
        self.accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits_after_first_miss() {
        let mut c = CacheLevel::new(1024, 2, 64);
        assert!(!c.access_line(5));
        assert!(c.access_line(5));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 2-way cache with a single set (128 bytes / 64-byte lines).
        let mut c = CacheLevel::new(128, 2, 64);
        // Lines mapping to set 0: choose multiples of the set count (1 set).
        c.access_line(0);
        c.access_line(1);
        c.access_line(0); // 0 becomes MRU
        c.access_line(2); // evicts 1
        assert!(c.access_line(0), "0 must still be cached");
        assert!(!c.access_line(1), "1 must have been evicted");
    }

    #[test]
    fn sequential_scan_of_small_buffer_is_cache_friendly() {
        let mut h = CacheHierarchy::tiny(4 * 1024, 64 * 1024);
        // Scan a 2 KiB buffer four times: first pass misses, later passes hit.
        for _ in 0..4 {
            for off in (0..2048).step_by(8) {
                h.access(off as u64, 8);
            }
        }
        assert!(h.l1.miss_ratio() < 0.3, "miss ratio {}", h.l1.miss_ratio());
    }

    #[test]
    fn random_scatter_over_large_range_is_cache_hostile() {
        let mut h = CacheHierarchy::tiny(4 * 1024, 16 * 1024);
        let mut x: u64 = 12345;
        for _ in 0..20_000 {
            // Simple LCG over a 16 MiB range.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.access(x % (16 * 1024 * 1024), 8);
        }
        assert!(h.l1.miss_ratio() > 0.5);
        assert!(
            h.average_memory_access_latency()
                > CacheHierarchy::tiny(4096, 16384).average_memory_access_latency()
        );
    }

    #[test]
    fn latency_grows_with_miss_ratio() {
        let mut good = CacheHierarchy::haswell();
        for _ in 0..10 {
            for off in (0..4096).step_by(8) {
                good.access(off, 8);
            }
        }
        let mut bad = CacheHierarchy::haswell();
        let mut x: u64 = 7;
        for _ in 0..5120 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            bad.access(x % (1 << 30), 8);
        }
        assert!(bad.average_memory_access_latency() > good.average_memory_access_latency());
    }

    #[test]
    fn access_spanning_lines_touches_all_of_them() {
        let mut h = CacheHierarchy::tiny(4096, 16384);
        h.access(0, 256); // 4 lines
        assert_eq!(h.accesses(), 4);
    }
}
