//! Memory-access traces.
//!
//! A [`Trace`] is an ordered list of `(base address, length)` byte-range
//! accesses.  The Figure 6 harness builds one trace per evaluation strategy
//! by walking the submatrices in the order that strategy visits them (CDS
//! order for MatRox, tree/interaction order for the tree-based baselines) and
//! replays the traces through the same [`CacheHierarchy`]
//! (crate::CacheHierarchy) to obtain comparable average-memory-access-latency
//! numbers.

use crate::cache::CacheHierarchy;

/// One recorded byte-range access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Starting byte address (synthetic address space).
    pub addr: u64,
    /// Length in bytes.
    pub len: usize,
}

/// An ordered memory access trace in a synthetic address space.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    accesses: Vec<Access>,
}

impl Trace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Trace {
            accesses: Vec::new(),
        }
    }

    /// Record an access of `len` bytes at `addr`.
    pub fn record(&mut self, addr: u64, len: usize) {
        self.accesses.push(Access { addr, len });
    }

    /// Record a strided walk over `count` elements of `elem_bytes` bytes
    /// starting at `addr` (a contiguous buffer read).
    pub fn record_buffer(&mut self, addr: u64, elems: usize, elem_bytes: usize) {
        self.record(addr, elems * elem_bytes);
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Total bytes touched (with multiplicity).
    pub fn total_bytes(&self) -> u64 {
        self.accesses.iter().map(|a| a.len as u64).sum()
    }

    /// Replay the trace through a cache hierarchy and return it for
    /// inspection (miss ratios, average latency).
    pub fn replay(&self, mut hierarchy: CacheHierarchy) -> CacheHierarchy {
        for a in &self.accesses {
            hierarchy.access(a.addr, a.len);
        }
        hierarchy
    }

    /// Iterate over the recorded accesses.
    pub fn iter(&self) -> impl Iterator<Item = &Access> {
        self.accesses.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_replay_counts_accesses() {
        let mut t = Trace::new();
        t.record(0, 64);
        t.record(64, 64);
        t.record(0, 64);
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_bytes(), 192);
        let h = t.replay(CacheHierarchy::tiny(4096, 16384));
        assert_eq!(h.accesses(), 3);
        assert_eq!(h.l1.misses(), 2);
        assert_eq!(h.l1.hits(), 1);
    }

    #[test]
    fn contiguous_trace_beats_scattered_trace() {
        // Same bytes touched, different order/locality.
        let mut contiguous = Trace::new();
        for rep in 0..4 {
            let _ = rep;
            for block in 0..64u64 {
                contiguous.record(block * 512, 512);
            }
        }
        let mut scattered = Trace::new();
        let mut x: u64 = 99;
        for _ in 0..4 * 64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            scattered.record((x % 4096) * 8192, 512);
        }
        let hc = contiguous.replay(CacheHierarchy::tiny(16 * 1024, 64 * 1024));
        let hs = scattered.replay(CacheHierarchy::tiny(16 * 1024, 64 * 1024));
        assert!(
            hc.average_memory_access_latency() <= hs.average_memory_access_latency(),
            "contiguous {} vs scattered {}",
            hc.average_memory_access_latency(),
            hs.average_memory_access_latency()
        );
    }

    #[test]
    fn empty_trace_replays_cleanly() {
        let t = Trace::new();
        assert!(t.is_empty());
        let h = t.replay(CacheHierarchy::haswell());
        assert_eq!(h.accesses(), 0);
        assert_eq!(h.l1.miss_ratio(), 0.0);
    }
}
