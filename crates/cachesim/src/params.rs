//! Cache-parameter queries for blocking decisions.
//!
//! The simulator in [`crate::cache`] *replays* traces; this module answers
//! the forward question the kernel layer asks at startup: *given this cache
//! hierarchy, how should a packed GEMM block its operands?*  The same
//! Goto/BLIS sizing rules every tuned BLAS applies are encoded once here so
//! that `matrox-linalg`'s microkernel, the executor's panel-width selection
//! and the Figure-6 locality model all reason from one description of the
//! machine.
//!
//! The derived blocking factors only affect *performance*: the microkernel
//! contract (see `matrox-linalg`'s kernel-layer docs) guarantees that every
//! output element accumulates its `k` products in storage order regardless
//! of `mc`/`kc`/`nc`, so two hosts with different cache sizes still produce
//! bitwise-identical results for the same kernel selection.

/// Description of the per-core cache hierarchy used to size pack buffers.
///
/// Only capacities matter for blocking; associativity and latency live in
/// [`crate::CacheHierarchy`] where the replay model needs them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// L1 data-cache capacity in bytes (per core).
    pub l1_bytes: usize,
    /// Private L2 capacity in bytes (per core).
    pub l2_bytes: usize,
    /// Cache-line size in bytes.
    pub line_bytes: usize,
}

impl CacheParams {
    /// The workspace's default machine model: 32 KiB L1d + 512 KiB L2 per
    /// core with 64-byte lines — the Haswell-class testbed of the paper's
    /// Section 4.1, and a conservative fit for every x86 server since.
    pub fn haswell_like() -> Self {
        CacheParams {
            l1_bytes: 32 * 1024,
            l2_bytes: 512 * 1024,
            line_bytes: 64,
        }
    }
}

impl Default for CacheParams {
    fn default() -> Self {
        Self::haswell_like()
    }
}

/// Blocking factors for a packed, register-blocked GEMM
/// (`C[mc x nc] += A[mc x kc] * B[kc x nc]`, microkernel tile `mr x nr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmBlocking {
    /// Rows of the packed `A` block (multiple of the microkernel's `mr`).
    pub mc: usize,
    /// Depth of the packed `A`/`B` panels.
    pub kc: usize,
    /// Columns of the packed `B` block (multiple of the microkernel's `nr`).
    pub nc: usize,
}

impl CacheParams {
    /// Goto-style blocking for an `mr x nr` microkernel over `elem_bytes`
    /// elements:
    ///
    /// * `kc` — sized so one `kc x nr` packed `B` panel plus one `mr x kc`
    ///   packed `A` panel occupy at most half of L1 (the other half absorbs
    ///   the `C` tile and stack traffic);
    /// * `mc` — sized so the whole packed `mc x kc` `A` block fills at most
    ///   half of L2, leaving room for the streamed `B` panel;
    /// * `nc` — sized like `mc` but in columns, bounding the packed `B`
    ///   block to half of L2 (this workspace has no per-core L3 model, and
    ///   the executor's RHS panels are narrow anyway).
    ///
    /// All three are clamped to sane floors so degenerate cache descriptions
    /// still yield a runnable (if slow) blocking.
    pub fn gemm_blocking(&self, elem_bytes: usize, mr: usize, nr: usize) -> GemmBlocking {
        assert!(elem_bytes > 0 && mr > 0 && nr > 0);
        let kc_raw = self.l1_bytes / 2 / (elem_bytes * (mr + nr));
        let kc = (kc_raw - kc_raw % 4).clamp(16, 512);
        let half_l2_rows = self.l2_bytes / 2 / (elem_bytes * kc);
        let mc = ((half_l2_rows - half_l2_rows % mr).max(mr)).min(4096);
        let nc = ((half_l2_rows - half_l2_rows % nr).max(nr)).min(4096);
        GemmBlocking { mc, kc, nc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_blocking_is_reasonable_for_f64_4x8() {
        let blk = CacheParams::haswell_like().gemm_blocking(8, 4, 8);
        // kc x (mr + nr) doubles fit in half of L1.
        assert!(blk.kc * (4 + 8) * 8 <= 16 * 1024);
        // The packed A block fits in half of L2.
        assert!(blk.mc * blk.kc * 8 <= 256 * 1024);
        assert_eq!(blk.mc % 4, 0);
        assert_eq!(blk.nc % 8, 0);
        // Deep enough to amortize the C tile round-trips.
        assert!(blk.kc >= 64, "kc = {}", blk.kc);
    }

    #[test]
    fn tiny_caches_still_yield_runnable_blocking() {
        let p = CacheParams {
            l1_bytes: 256,
            l2_bytes: 1024,
            line_bytes: 64,
        };
        let blk = p.gemm_blocking(8, 4, 8);
        assert!(blk.kc >= 16 && blk.mc >= 4 && blk.nc >= 8);
        assert_eq!(blk.mc % 4, 0);
        assert_eq!(blk.nc % 8, 0);
    }

    #[test]
    fn bigger_l2_never_shrinks_blocks() {
        let small = CacheParams {
            l2_bytes: 128 * 1024,
            ..CacheParams::haswell_like()
        };
        let big = CacheParams::haswell_like();
        let bs = small.gemm_blocking(8, 4, 8);
        let bb = big.gemm_blocking(8, 4, 8);
        assert!(bb.mc >= bs.mc && bb.nc >= bs.nc);
        assert_eq!(bb.kc, bs.kc, "kc depends only on L1");
    }
}
