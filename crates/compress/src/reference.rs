//! Sequential reference evaluator.
//!
//! A deliberately simple, tree-recursive implementation of the HMatrix-matrix
//! product `Y = K~ * W` operating directly on the unordered [`Compression`]
//! output.  It follows the textbook H² evaluation (upward pass over `V`,
//! coupling through `B`, downward pass over `U`, dense near contributions
//! through `D`) with no blocking, no coarsening and no parallelism.
//!
//! Every optimized evaluator in the workspace — the MatRox executor and the
//! GOFMM-/STRUMPACK-/SMASH-style baselines — is validated against this
//! function, which in turn is validated against the exact dense product
//! `K * W` in the integration tests.

use crate::lowrank::Compression;
use matrox_linalg::{gemm_seq, GemmOp, Matrix};
use matrox_tree::{ClusterTree, HTree};

/// Evaluate `Y = K~ * W` sequentially from the unordered compression output.
pub fn evaluate(
    compression: &Compression,
    tree: &ClusterTree,
    _htree: &HTree,
    w: &Matrix,
) -> Matrix {
    let n = tree.perm.len();
    assert_eq!(w.rows(), n, "reference::evaluate: W must have N rows");
    let q = w.cols();
    let n_nodes = tree.num_nodes();
    let mut y = Matrix::zeros(n, q);

    // ---- upward pass: T_i = V_i^T * W_{I_i} (leaves), V_i^T * [T_lc; T_rc] (internal)
    let mut t: Vec<Matrix> = vec![Matrix::zeros(0, 0); n_nodes];
    for level in (1..=tree.height).rev() {
        for id in tree.nodes_at_level(level) {
            let basis = &compression.bases[id];
            if basis.srank == 0 {
                t[id] = Matrix::zeros(0, q);
                continue;
            }
            let node = &tree.nodes[id];
            let input = if node.is_leaf() {
                w.gather_rows(tree.indices(id))
            } else {
                let (l, r) = node.children.unwrap();
                stack_children(&t[l], &t[r], q)
            };
            let mut ti = Matrix::zeros(basis.srank, q);
            gemm_seq(
                1.0,
                &basis.v,
                GemmOp::Trans,
                &input,
                GemmOp::NoTrans,
                0.0,
                &mut ti,
            );
            t[id] = ti;
        }
    }

    // ---- coupling: S_i += B_{i,j} * T_j for every far pair (i, j)
    let mut s: Vec<Matrix> = compression
        .bases
        .iter()
        .map(|b| Matrix::zeros(b.srank, q))
        .collect();
    for ((i, j), b) in &compression.far_blocks {
        if b.rows() == 0 || b.cols() == 0 {
            continue;
        }
        let mut si = std::mem::replace(&mut s[*i], Matrix::zeros(0, 0));
        gemm_seq(
            1.0,
            b,
            GemmOp::NoTrans,
            &t[*j],
            GemmOp::NoTrans,
            1.0,
            &mut si,
        );
        s[*i] = si;
    }

    // ---- downward pass: push S through the transfer matrices, leaves add U_i * S_i
    for level in 1..=tree.height {
        for id in tree.nodes_at_level(level) {
            let basis = &compression.bases[id];
            if basis.srank == 0 {
                continue;
            }
            let node = &tree.nodes[id];
            if node.is_leaf() {
                let mut contrib = Matrix::zeros(node.num_points(), q);
                gemm_seq(
                    1.0,
                    &basis.u,
                    GemmOp::NoTrans,
                    &s[id],
                    GemmOp::NoTrans,
                    0.0,
                    &mut contrib,
                );
                y.scatter_add_rows(tree.indices(id), &contrib);
            } else {
                let (l, r) = node.children.unwrap();
                let rl = compression.bases[l].srank;
                let rr = compression.bases[r].srank;
                // U_i is (rl + rr) x srank_i; its top rows push into the left
                // child, the bottom rows into the right child.
                let mut expanded = Matrix::zeros(rl + rr, q);
                gemm_seq(
                    1.0,
                    &basis.u,
                    GemmOp::NoTrans,
                    &s[id],
                    GemmOp::NoTrans,
                    0.0,
                    &mut expanded,
                );
                if rl > 0 {
                    let top = expanded.submatrix(0, rl, 0, q);
                    s[l].add_assign(&top);
                }
                if rr > 0 {
                    let bottom = expanded.submatrix(rl, rl + rr, 0, q);
                    s[r].add_assign(&bottom);
                }
            }
        }
    }

    // ---- near contributions: Y_{I_i} += D_{i,j} * W_{I_j}
    for ((i, j), d) in &compression.near_blocks {
        let wj = w.gather_rows(tree.indices(*j));
        let mut contrib = Matrix::zeros(d.rows(), q);
        gemm_seq(
            1.0,
            d,
            GemmOp::NoTrans,
            &wj,
            GemmOp::NoTrans,
            0.0,
            &mut contrib,
        );
        y.scatter_add_rows(tree.indices(*i), &contrib);
    }

    y
}

/// Stack the children's `T` matrices vertically; a child with srank 0
/// contributes no rows.
fn stack_children(tl: &Matrix, tr: &Matrix, q: usize) -> Matrix {
    match (tl.rows(), tr.rows()) {
        (0, 0) => Matrix::zeros(0, q),
        (0, _) => tr.clone(),
        (_, 0) => tl.clone(),
        _ => tl.vstack(tr),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lowrank::{compress, CompressionParams};
    use matrox_linalg::relative_error;
    use matrox_points::{dense_kernel_matmul, generate, DatasetId, Kernel};
    use matrox_sampling::{sample_nodes, sample_nodes_exhaustive, SamplingParams};
    use matrox_tree::{ClusterTree, PartitionMethod, Structure};
    use rand::SeedableRng;

    fn accuracy_for(
        dataset: DatasetId,
        n: usize,
        structure: Structure,
        bacc: f64,
        exhaustive: bool,
    ) -> f64 {
        let pts = generate(dataset, n, 33);
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let tree = ClusterTree::build(&pts, PartitionMethod::Auto, 32, 0);
        let htree = HTree::build(&tree, structure);
        let sampling = if exhaustive {
            sample_nodes_exhaustive(&pts, &tree)
        } else {
            sample_nodes(&pts, &tree, &kernel, &SamplingParams::default())
        };
        let c = compress(
            &pts,
            &tree,
            &htree,
            &kernel,
            &sampling,
            &CompressionParams {
                bacc,
                max_rank: 256,
                grain: 0,
            },
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let w = matrox_linalg::Matrix::random_uniform(n, 8, &mut rng);
        let y = evaluate(&c, &tree, &htree, &w);
        let y_exact = dense_kernel_matmul(&pts, &kernel, &w);
        relative_error(&y, &y_exact)
    }

    #[test]
    fn hss_evaluation_is_accurate_with_exhaustive_sampling() {
        let err = accuracy_for(DatasetId::Random, 512, Structure::Hss, 1e-7, true);
        assert!(err < 1e-4, "HSS error {err}");
    }

    #[test]
    fn geometric_evaluation_is_accurate() {
        let err = accuracy_for(
            DatasetId::Grid,
            512,
            Structure::Geometric { tau: 0.65 },
            1e-7,
            true,
        );
        assert!(err < 1e-4, "geometric error {err}");
    }

    #[test]
    fn budget_evaluation_is_accurate() {
        let err = accuracy_for(DatasetId::Random, 512, Structure::h2b(), 1e-7, true);
        assert!(err < 1e-4, "budget error {err}");
    }

    #[test]
    fn neighbor_sampling_is_close_to_exhaustive() {
        let err = accuracy_for(
            DatasetId::Grid,
            512,
            Structure::Geometric { tau: 0.65 },
            1e-6,
            false,
        );
        assert!(err < 1e-2, "sampled compression error {err}");
    }

    #[test]
    fn looser_bacc_gives_larger_error() {
        let tight = accuracy_for(DatasetId::Random, 256, Structure::Hss, 1e-8, true);
        let loose = accuracy_for(DatasetId::Random, 256, Structure::Hss, 1e-1, true);
        assert!(loose >= tight, "loose {loose} vs tight {tight}");
    }

    #[test]
    fn high_dimensional_dataset_evaluates() {
        let err = accuracy_for(DatasetId::Letter, 384, Structure::h2b(), 1e-6, true);
        assert!(err < 1e-3, "letter error {err}");
    }
}
