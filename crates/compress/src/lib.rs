//! # matrox-compress
//!
//! The low-rank-approximation module of MatRox's modularized compression
//! (Section 3.1 of the paper), plus a sequential reference evaluator used to
//! validate every optimized evaluation strategy in the workspace.
//!
//! Compression in MatRox is split into four modules — tree construction,
//! interaction computation, sampling, and low-rank approximation.  The first
//! two live in `matrox-tree`, sampling lives in `matrox-sampling`, and this
//! crate implements the fourth: interpolative-decomposition-based
//! skeletonization that produces the `U`/`V` generators, the adaptive
//! `sranks`, the dense near blocks `D` and the coupling blocks `B`.

#![forbid(unsafe_code)]

pub mod lowrank;
pub mod reference;

pub use lowrank::{compress, Compression, CompressionParams, NodeBasis};
pub use reference::evaluate as reference_evaluate;
