//! Low-rank approximation: the last module of MatRox's modular compression.
//!
//! For every cluster-tree node an interpolative decomposition (ID) of the
//! sampled far-field block selects a set of *skeleton* points and an
//! interpolation matrix; internal nodes are skeletonized from their
//! children's skeletons, giving the nested (H²) basis.  The rank of every
//! block — the paper's `srank` — is chosen adaptively so the ID meets the
//! requested block-approximation accuracy `bacc`, capped at `max_rank`
//! (256 in the paper's default configuration).
//!
//! The module produces the *structure information* consumed by structure
//! analysis and the executor:
//!
//! * per-node generators `U_i`, `V_i` (leaf interpolation or internal
//!   transfer matrices) and skeletons,
//! * the `sranks` vector (used by the coarsening cost model),
//! * dense near blocks `D_{i,j}` and low-rank coupling blocks
//!   `B_{i,j} = K(skel_i, skel_j)`.

use matrox_linalg::knobs::resolve_grain;
use matrox_linalg::{failpoint, row_id, Matrix};
use matrox_points::{kernel_block, Kernel, PointSet};
use matrox_sampling::SamplingInfo;
use matrox_tree::{ClusterTree, HTree};
use rayon::prelude::*;

/// Parameters of the low-rank approximation module.
#[derive(Debug, Clone, Copy)]
pub struct CompressionParams {
    /// Block approximation accuracy `bacc`; the ID of each block stops once
    /// the relative diagonal of the pivoted QR drops below this value.
    pub bacc: f64,
    /// Hard cap on the submatrix rank (the paper's "maximum rank = 256").
    pub max_rank: usize,
    /// Minimum nodes/blocks per parallel compression task; `0` = auto (the
    /// `MATROX_GRAIN` env knob, then 1).  Chunking only — every node's
    /// basis is a pure function of the inputs, so the output never depends
    /// on this knob or the pool width.
    pub grain: usize,
}

impl Default for CompressionParams {
    fn default() -> Self {
        CompressionParams {
            bacc: 1e-5,
            max_rank: 256,
            grain: 0,
        }
    }
}

/// Per-node generators produced by the low-rank approximation.
#[derive(Debug, Clone)]
pub struct NodeBasis {
    /// Rank of this node's basis (`srank`); 0 when the node has no far field.
    pub srank: usize,
    /// Global point indices of the node's skeleton, in pivot order.
    pub skeleton: Vec<usize>,
    /// Column-basis generator.  For a leaf: `|I_i| x srank` interpolation
    /// matrix.  For an internal node: `(srank_lc + srank_rc) x srank`
    /// transfer matrix acting on the children's skeleton coefficients.
    pub v: Matrix,
    /// Row-basis generator; equal to `v` for the symmetric kernels used in
    /// the paper but stored separately to match the CDS layout (Figure 1g/1h
    /// stores U and V generators independently).
    pub u: Matrix,
}

impl NodeBasis {
    fn empty() -> Self {
        NodeBasis {
            srank: 0,
            skeleton: Vec::new(),
            v: Matrix::zeros(0, 0),
            u: Matrix::zeros(0, 0),
        }
    }
}

/// Output of the compression phase: the HMatrix in unordered ("tree-based")
/// form, before structure analysis reorders it into CDS.
#[derive(Debug, Clone)]
pub struct Compression {
    /// Parameters the blocks were compressed with.
    pub params: CompressionParams,
    /// Per-node generators, indexed by node id.
    pub bases: Vec<NodeBasis>,
    /// Per-node sranks (copy of `bases[i].srank`, kept separate because the
    /// coarsening cost model of Algorithm 2 consumes exactly this vector).
    pub sranks: Vec<usize>,
    /// Dense near blocks: `((i, j), D_{i,j})` with `D_{i,j} = K(I_i, I_j)`.
    pub near_blocks: Vec<((usize, usize), Matrix)>,
    /// Low-rank coupling blocks: `((i, j), B_{i,j})` with
    /// `B_{i,j} = K(skel_i, skel_j)`.
    pub far_blocks: Vec<((usize, usize), Matrix)>,
}

impl Compression {
    /// Total bytes of submatrix payload (used by reports and to size CDS).
    pub fn storage_bytes(&self) -> usize {
        let gen_elems: usize = self
            .bases
            .iter()
            .map(|b| b.u.len() + b.v.len())
            .sum::<usize>();
        let near_elems: usize = self.near_blocks.iter().map(|(_, m)| m.len()).sum::<usize>();
        let far_elems: usize = self.far_blocks.iter().map(|(_, m)| m.len()).sum::<usize>();
        (gen_elems + near_elems + far_elems) * std::mem::size_of::<f64>()
    }

    /// Compression ratio versus the dense `N x N` kernel matrix.
    pub fn compression_ratio(&self, n: usize) -> f64 {
        let dense = (n * n * std::mem::size_of::<f64>()) as f64;
        dense / self.storage_bytes().max(1) as f64
    }
}

/// Run the low-rank approximation module.
///
/// This corresponds to the "low-rank approximation" box of Figure 3: it takes
/// the HTree, the kernel function, the block accuracy and the sampling
/// information, and produces the sranks and submatrices.
pub fn compress(
    points: &PointSet,
    tree: &ClusterTree,
    htree: &HTree,
    kernel: &Kernel,
    sampling: &SamplingInfo,
    params: &CompressionParams,
) -> Compression {
    let n_nodes = tree.num_nodes();
    let grain = resolve_grain(params.grain);
    let mut bases: Vec<NodeBasis> = vec![NodeBasis::empty(); n_nodes];

    // Does any node need a basis at all?  Only nodes that participate in far
    // interactions, or have an ancestor/descendant chain leading to one, do.
    // Computing bases for every non-root node is simpler and matches what
    // GOFMM does; the root never needs one (Figure 1b: "node 0 is not
    // involved in any computation").
    //
    // Bases must be built bottom-up because an internal node's sample rows
    // are its children's skeletons.
    for level in (1..=tree.height).rev() {
        let level_nodes = tree.nodes_at_level(level);
        let level_bases: Vec<(usize, NodeBasis)> = level_nodes
            .par_iter()
            .with_min_len(grain)
            .map(|&id| {
                if failpoint::should_fire(failpoint::names::COMPRESS_PANIC) {
                    panic!("injected failpoint `{}`", failpoint::names::COMPRESS_PANIC);
                }
                let node = &tree.nodes[id];
                let samples = &sampling.samples[id];
                if samples.is_empty() {
                    return (id, NodeBasis::empty());
                }
                // Candidate rows: the node's own points for a leaf, or the
                // union of the children's skeletons for an internal node.
                let candidate_rows: Vec<usize> = if node.is_leaf() {
                    tree.indices(id).to_vec()
                } else {
                    let (l, r) = node.children.unwrap();
                    let mut rows = bases[l].skeleton.clone();
                    rows.extend_from_slice(&bases[r].skeleton);
                    rows
                };
                if candidate_rows.is_empty() {
                    return (id, NodeBasis::empty());
                }
                let sample_block = kernel_block(points, kernel, &candidate_rows, samples);
                let id_res = row_id(&sample_block, params.bacc, params.max_rank);
                let skeleton: Vec<usize> =
                    id_res.skeleton.iter().map(|&r| candidate_rows[r]).collect();
                let v = id_res.interp;
                let u = v.clone();
                (
                    id,
                    NodeBasis {
                        srank: id_res.rank,
                        skeleton,
                        v,
                        u,
                    },
                )
            })
            .collect();
        for (id, basis) in level_bases {
            bases[id] = basis;
        }
    }

    let sranks: Vec<usize> = bases.iter().map(|b| b.srank).collect();

    // Dense near blocks D_{i,j} = K(I_i, I_j).
    let near_pairs = htree.near_pairs();
    let near_blocks: Vec<((usize, usize), Matrix)> = near_pairs
        .par_iter()
        .with_min_len(grain)
        .map(|&(i, j)| {
            let block = kernel_block(points, kernel, tree.indices(i), tree.indices(j));
            ((i, j), block)
        })
        .collect();

    // Coupling blocks B_{i,j} = K(skel_i, skel_j).
    let far_pairs = htree.far_pairs();
    let far_blocks: Vec<((usize, usize), Matrix)> = far_pairs
        .par_iter()
        .with_min_len(grain)
        .map(|&(i, j)| {
            let block = kernel_block(points, kernel, &bases[i].skeleton, &bases[j].skeleton);
            ((i, j), block)
        })
        .collect();

    Compression {
        params: *params,
        bases,
        sranks,
        near_blocks,
        far_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrox_points::{generate, DatasetId};
    use matrox_sampling::sample_nodes_exhaustive;
    use matrox_tree::{PartitionMethod, Structure};

    fn setup(
        n: usize,
        structure: Structure,
    ) -> (PointSet, ClusterTree, HTree, SamplingInfo, Kernel) {
        let pts = generate(DatasetId::Random, n, 21);
        let tree = ClusterTree::build(&pts, PartitionMethod::Auto, 32, 0);
        let htree = HTree::build(&tree, structure);
        let sampling = sample_nodes_exhaustive(&pts, &tree);
        (
            pts,
            tree,
            htree,
            sampling,
            Kernel::Gaussian { bandwidth: 1.0 },
        )
    }

    #[test]
    fn sranks_respect_max_rank_and_node_size() {
        let (pts, tree, htree, sampling, kernel) = setup(512, Structure::Hss);
        let params = CompressionParams {
            bacc: 1e-5,
            max_rank: 16,
            grain: 0,
        };
        let c = compress(&pts, &tree, &htree, &kernel, &sampling, &params);
        for (id, b) in c.bases.iter().enumerate() {
            assert!(b.srank <= 16, "node {id} srank {}", b.srank);
            assert_eq!(b.srank, b.skeleton.len());
            assert_eq!(c.sranks[id], b.srank);
        }
    }

    #[test]
    fn leaf_skeletons_are_subsets_of_leaf_points() {
        let (pts, tree, htree, sampling, kernel) = setup(256, Structure::Hss);
        let c = compress(
            &pts,
            &tree,
            &htree,
            &kernel,
            &sampling,
            &CompressionParams::default(),
        );
        for node in &tree.nodes {
            if node.id == 0 {
                continue;
            }
            let members: std::collections::HashSet<_> = tree.indices(node.id).iter().collect();
            for s in &c.bases[node.id].skeleton {
                assert!(members.contains(s), "skeleton of node {} leaked", node.id);
            }
        }
    }

    #[test]
    fn internal_skeletons_come_from_children_skeletons() {
        let (pts, tree, htree, sampling, kernel) = setup(512, Structure::Hss);
        let c = compress(
            &pts,
            &tree,
            &htree,
            &kernel,
            &sampling,
            &CompressionParams::default(),
        );
        for node in &tree.nodes {
            if node.id == 0 || node.is_leaf() {
                continue;
            }
            let (l, r) = node.children.unwrap();
            let pool: std::collections::HashSet<_> = c.bases[l]
                .skeleton
                .iter()
                .chain(c.bases[r].skeleton.iter())
                .collect();
            for s in &c.bases[node.id].skeleton {
                assert!(pool.contains(s));
            }
        }
    }

    #[test]
    fn near_blocks_match_kernel_entries() {
        let (pts, tree, htree, sampling, kernel) = setup(256, Structure::Geometric { tau: 0.65 });
        let c = compress(
            &pts,
            &tree,
            &htree,
            &kernel,
            &sampling,
            &CompressionParams::default(),
        );
        assert_eq!(c.near_blocks.len(), htree.num_near());
        for ((i, j), block) in &c.near_blocks {
            let ri = tree.indices(*i);
            let cj = tree.indices(*j);
            assert_eq!(block.shape(), (ri.len(), cj.len()));
            // Spot-check a few entries.
            for a in (0..ri.len()).step_by(7) {
                for b in (0..cj.len()).step_by(5) {
                    let expected = kernel.eval(pts.point(ri[a]), pts.point(cj[b]));
                    assert!((block.get(a, b) - expected).abs() < 1e-14);
                }
            }
        }
    }

    #[test]
    fn far_block_shapes_match_sranks() {
        let (pts, tree, htree, sampling, kernel) = setup(512, Structure::Hss);
        let c = compress(
            &pts,
            &tree,
            &htree,
            &kernel,
            &sampling,
            &CompressionParams::default(),
        );
        assert_eq!(c.far_blocks.len(), htree.num_far());
        for ((i, j), block) in &c.far_blocks {
            assert_eq!(block.shape(), (c.sranks[*i], c.sranks[*j]));
        }
    }

    #[test]
    fn tighter_bacc_gives_larger_or_equal_ranks() {
        let (pts, tree, htree, sampling, kernel) = setup(512, Structure::Hss);
        let loose = compress(
            &pts,
            &tree,
            &htree,
            &kernel,
            &sampling,
            &CompressionParams {
                bacc: 1e-2,
                max_rank: 256,
                grain: 0,
            },
        );
        let tight = compress(
            &pts,
            &tree,
            &htree,
            &kernel,
            &sampling,
            &CompressionParams {
                bacc: 1e-8,
                max_rank: 256,
                grain: 0,
            },
        );
        let sl: usize = loose.sranks.iter().sum();
        let st: usize = tight.sranks.iter().sum();
        assert!(st >= sl, "tight {st} < loose {sl}");
    }

    #[test]
    fn compression_is_much_smaller_than_dense_for_smooth_kernel() {
        let (pts, tree, htree, sampling, _) = setup(1024, Structure::Hss);
        let kernel = Kernel::Gaussian { bandwidth: 5.0 };
        let c = compress(
            &pts,
            &tree,
            &htree,
            &kernel,
            &sampling,
            &CompressionParams {
                bacc: 1e-5,
                max_rank: 256,
                grain: 0,
            },
        );
        let ratio = c.compression_ratio(pts.len());
        assert!(ratio > 2.0, "compression ratio {ratio} too small");
    }
}
