//! Fixture gate: reads one threshold and one committed benchmark key.

fn main() {
    let limit = must("max_err");
    let metric = json_lookup_number(&demo, "metric");
    assert!(metric <= limit);
}
