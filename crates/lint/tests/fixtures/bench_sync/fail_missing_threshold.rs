//! Fixture gate: must-fail — reads a threshold key the JSON lacks.

fn main() {
    let _limit = must("max_err");
    let _ghost = must("absent_key");
}
