//! Fixture gate: must-fail — reads a benchmark key the committed
//! BENCH_demo.json artifact lacks.

fn main() {
    let _limit = must("max_err");
    let _ghost = json_lookup_number(&demo, "absent_metric");
}
