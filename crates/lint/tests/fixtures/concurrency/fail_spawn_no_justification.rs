pub fn start() -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("service".to_string())
        .spawn(|| {})
        .expect("spawn")
}
