//! Fixture: must-fail — `thread::spawn` is banned even in allowlisted
//! files; OS threads are the pool's monopoly.

// CONCURRENCY: fixture pretext — the comment does not excuse spawn.
use std::thread;

pub fn fire_and_forget() {
    thread::spawn(|| {});
}
