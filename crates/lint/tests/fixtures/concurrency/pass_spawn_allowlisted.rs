// CONCURRENCY: a long-lived named service thread owning all mutable
// state; clients only touch channel endpoints.  The rayon pool cannot
// host a thread that must outlive any one scoped region.
pub fn start() -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("service".to_string())
        .spawn(|| {})
        .expect("spawn")
}
