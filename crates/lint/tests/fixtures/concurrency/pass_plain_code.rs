//! Fixture: ordinary code with no synchronization — always clean.

pub fn sum(v: &[f64]) -> f64 {
    v.iter().sum()
}
