//! Fixture: allowlisted ad-hoc synchronization with its justification.

// CONCURRENCY: fixture pretext — a monotonic counter, not a data protocol.
use std::sync::atomic::{AtomicU64, Ordering};

pub static HITS: AtomicU64 = AtomicU64::new(0);

pub fn hit() -> u64 {
    HITS.fetch_add(1, Ordering::Relaxed)
}
