//! Fixture: must-fail — allowlisted, uses an atomic, but carries no
//! CONCURRENCY justification comment (note: that exact marker string is
//! deliberately absent from this file).

use std::sync::atomic::{AtomicU64, Ordering};

pub static HITS: AtomicU64 = AtomicU64::new(0);

pub fn hit() -> u64 {
    HITS.fetch_add(1, Ordering::Relaxed)
}
