// CONCURRENCY: stale justification — this file once spawned a service
// thread but no longer does, so its spawn-allowlist entry must go.
pub fn nothing_threaded() -> usize {
    40 + 2
}
