//! Fixture: must-fail — allowlisted for ad-hoc synchronization but uses
//! none, so the stale-entry check fires.

pub fn pure(x: u32) -> u32 {
    x * 2
}
