//! Fixture: must-fail — a Mutex outside the audited allowlist.

use std::sync::Mutex;

pub static LOG: Mutex<Vec<String>> = Mutex::new(Vec::new());
