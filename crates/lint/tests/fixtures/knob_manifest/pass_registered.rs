//! Fixture: reads a knob that the fixture manifest registers.

pub fn demo() -> Option<String> {
    std::env::var("MATROX_DEMO").ok()
}
