//! Fixture: must-fail — reads a knob missing from the fixture manifest.

pub fn bogus() -> Option<String> {
    std::env::var("MATROX_BOGUS").ok()
}
