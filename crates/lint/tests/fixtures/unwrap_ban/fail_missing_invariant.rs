//! Must fail: the file is allowlisted, but only the first site carries an
//! attached INVARIANT: comment — the second sits past a statement boundary,
//! so the comment does not attach to it.

pub fn both(offsets: &[usize], slot: Option<&str>) -> usize {
    // INVARIANT: offsets always has the sentinel 0 entry.
    let n = *offsets.last().unwrap();
    let s = slot.expect("slot populated");
    n + s.len()
}
