//! Must fail when allowlisted: there is no unwrap/expect left in non-test
//! code, so the allowlist entry is stale and must be removed.

pub fn clean(v: Option<usize>) -> usize {
    v.unwrap_or(0)
}
