//! Allowlisted file: every unwrap/expect site carries an attached
//! INVARIANT: comment, so the audit holds.

pub fn total(offsets: &[usize]) -> usize {
    // INVARIANT: offsets always has the sentinel 0 entry, pushed at
    // construction, so last() cannot be None.
    *offsets.last().unwrap()
}

pub fn merge(slot: Option<&str>) -> &str {
    // INVARIANT: the caller populated every slot during the upward sweep.
    slot.expect("slot populated during upward sweep")
}
