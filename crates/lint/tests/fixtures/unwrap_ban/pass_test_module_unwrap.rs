//! Not allowlisted, yet clean: the only unwrap/expect sites sit inside
//! the trailing `#[cfg(test)]` module, which the ban does not cover.

pub fn double(x: u64) -> u64 {
    x * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles() {
        let v: Option<u64> = Some(double(21));
        assert_eq!(v.unwrap(), 42);
        assert_eq!(v.expect("just built"), 42);
    }
}
