//! Must fail: non-test unwrap/expect in a banned-prefix file that is not
//! on the allowlist — both sites should be flagged.

pub fn first(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u64 {
    s.parse().expect("caller passes digits")
}
