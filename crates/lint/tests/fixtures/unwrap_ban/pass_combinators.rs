//! Not allowlisted, yet clean: `unwrap_or_else` / `unwrap_or_default` /
//! `unwrap_or` are non-panicking combinators, not banned sites, and the
//! words in strings or comments are invisible to the token scan.

pub fn fallbacks(v: Option<usize>) -> usize {
    // Mentioning .unwrap() in a comment is fine.
    let a = v.unwrap_or(0);
    let b = v.unwrap_or_default();
    let c = v.unwrap_or_else(|| "never .expect( this".len());
    a + b + c
}
