//! Fixture: an audited FFI module in the epoll-front-end idiom — an
//! `extern "C"` declaration block plus SAFETY-commented call sites must be
//! clean under both the unsafe allowlist and the safety-comment rule when
//! the (test) config allowlists this path.

extern "C" {
    fn close(fd: i32) -> i32;
}

pub fn close_fd(fd: i32) -> i32 {
    // SAFETY: the kernel validates fds — a stale one is EBADF, not UB
    // (fixture pretext mirroring the audited epoll module).
    unsafe { close(fd) }
}
