//! Fixture: must-fail — `unsafe` in a file the config does not allowlist.

pub fn sneak(v: &[u8]) -> u8 {
    // SAFETY: a justification comment does not make the file audited.
    unsafe { *v.as_ptr() }
}
