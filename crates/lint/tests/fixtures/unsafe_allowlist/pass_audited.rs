//! Fixture: audited file — `unsafe` is fine because the (test) config
//! allowlists this path.

pub fn read_first(v: &[u8]) -> u8 {
    // SAFETY: caller guarantees `v` is non-empty (fixture pretext).
    unsafe { *v.as_ptr() }
}
