//! Fixture: the word in strings, raw strings and comments is not code.
//! This file is NOT allowlisted and must still pass.

// A comment mentioning unsafe code is not unsafe code.
pub fn describe() -> &'static str {
    let _raw = r#"unsafe { *ptr }"#;
    "this crate has no unsafe blocks"
}
