//! Fixture: must-fail — this path is on the (test) allowlist but contains
//! no `unsafe` at all, so the stale-entry check fires.

pub fn perfectly_safe(x: u32) -> u32 {
    x + 1
}
