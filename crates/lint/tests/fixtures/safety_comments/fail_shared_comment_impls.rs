//! Fixture: must-fail — two `unsafe impl`s cannot share one comment; the
//! second one's backward scan stops at the first impl's closing brace.

pub struct Token(*const ());

// SAFETY: fixture pretext — this only covers the Send impl.
unsafe impl Send for Token {}
unsafe impl Sync for Token {}
