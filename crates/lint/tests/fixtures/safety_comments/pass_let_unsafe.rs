//! Fixture: `let x = unsafe { .. }` with the comment above the `let` —
//! the backward scan must skip the left-hand side of the binding.

pub fn first(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    // SAFETY: asserted non-empty above.
    let b = unsafe { *v.as_ptr() };
    b
}
