//! Fixture: must-fail — a bare `unsafe` block with no justification.

pub fn first(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    unsafe { *v.as_ptr() }
}
