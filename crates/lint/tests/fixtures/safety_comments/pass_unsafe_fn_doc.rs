//! Fixture: an `unsafe fn` justified by a `# Safety` doc section.

/// Reads the first byte without a bounds check.
///
/// # Safety
/// `v` must be non-empty.
pub unsafe fn first_unchecked(v: &[u8]) -> u8 {
    // SAFETY: forwarding the caller's non-empty guarantee.
    unsafe { *v.as_ptr() }
}
