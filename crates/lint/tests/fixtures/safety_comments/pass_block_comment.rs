//! Fixture: an `unsafe` block justified by an attached SAFETY comment.

pub fn first(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    // SAFETY: the assert above guarantees the pointer read is in bounds.
    unsafe { *v.as_ptr() }
}
