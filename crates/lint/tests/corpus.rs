//! Fixture-corpus tests for `matrox-lint`.
//!
//! Every rule has must-pass and must-fail fixtures under
//! `tests/fixtures/<rule>/` (`pass_*` / `fail_*` by file name); each case
//! below runs one rule against one fixture with a tiny synthetic
//! [`Config`], so a rule regression shows up as a named fixture, not as a
//! workspace-wide mystery.  A sweep test asserts no fixture file is left
//! unreferenced, and a self-check runs the shipped policy against the real
//! workspace (the same check CI's lint job performs via `cargo run`).
//!
//! Note: the fixture directory is in the binary's walker skip-list — the
//! must-fail snippets would otherwise fail the workspace run itself.

use matrox_lint::lexer::tokenize;
use matrox_lint::rules::{self, BenchArtifacts, Config, Diagnostic, SourceFile};
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn read(rel: &str) -> String {
    let p = fixtures_dir().join(rel);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("reading fixture {}: {e}", p.display()))
}

/// Load a fixture as a [`SourceFile`] whose workspace-relative path is
/// `virtual_path` (what the per-case config allowlists or exempts).
fn load_as(rel: &str, virtual_path: &str) -> SourceFile {
    SourceFile {
        path: virtual_path.to_string(),
        tokens: tokenize(&read(rel)),
    }
}

/// Load a fixture under its own file name (the common case).
fn load(rel: &str) -> SourceFile {
    let name = Path::new(rel)
        .file_name()
        .unwrap()
        .to_string_lossy()
        .into_owned();
    load_as(rel, &name)
}

fn assert_clean(diags: &[Diagnostic], what: &str) {
    assert!(
        diags.is_empty(),
        "{what}: expected no diagnostics, got:\n{}",
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn assert_fails(diags: &[Diagnostic], rule: &str, what: &str) {
    assert!(
        diags.iter().any(|d| d.rule == rule),
        "{what}: expected a [{rule}] diagnostic, got: {diags:?}"
    );
}

fn empty_config() -> Config {
    Config {
        unsafe_allowlist: vec![],
        concurrency_allowlist: vec![],
        thread_spawn_allowlist: vec![],
        concurrency_exempt_prefixes: vec!["vendor/".into()],
        unwrap_ban_prefixes: vec![],
        unwrap_allowlist: vec![],
    }
}

// ---------------------------------------------------------------------------
// Rule 1: unsafe allowlist
// ---------------------------------------------------------------------------

#[test]
fn unsafe_allowlist_accepts_audited_file() {
    let mut cfg = empty_config();
    cfg.unsafe_allowlist = vec!["pass_audited.rs".into()];
    let files = [load("unsafe_allowlist/pass_audited.rs")];
    assert_clean(&rules::unsafe_allowlist(&files, &cfg), "audited fixture");
}

#[test]
fn unsafe_allowlist_rejects_unlisted_file() {
    let files = [load("unsafe_allowlist/fail_unlisted.rs")];
    let diags = rules::unsafe_allowlist(&files, &empty_config());
    assert_fails(&diags, "unsafe-allowlist", "unlisted fixture");
    // The message must point contributors at the audit process.
    assert!(
        diags.iter().any(|d| d.message.contains("DESIGN.md")),
        "diagnostic should reference the DESIGN.md audit process: {diags:?}"
    );
}

#[test]
fn unsafe_allowlist_flags_stale_entries() {
    let mut cfg = empty_config();
    cfg.unsafe_allowlist = vec!["fail_stale_allowlist.rs".into()];
    let files = [load("unsafe_allowlist/fail_stale_allowlist.rs")];
    assert_fails(
        &rules::unsafe_allowlist(&files, &cfg),
        "unsafe-allowlist",
        "stale allowlist entry",
    );
}

#[test]
fn unsafe_allowlist_accepts_audited_ffi_module() {
    // The epoll-front-end idiom: an `extern "C"` declaration block plus
    // SAFETY-commented call sites, allowlisted — clean under both the
    // allowlist rule and the safety-comment rule.
    let mut cfg = empty_config();
    cfg.unsafe_allowlist = vec!["pass_ffi_module.rs".into()];
    let files = [load("unsafe_allowlist/pass_ffi_module.rs")];
    assert_clean(&rules::unsafe_allowlist(&files, &cfg), "FFI fixture");
    assert_clean(&rules::safety_comments(&files), "FFI fixture comments");
}

#[test]
fn unsafe_allowlist_ignores_strings_and_comments() {
    // Not allowlisted, yet clean: the keyword only appears inside string
    // literals, raw strings and comments, which the lexer must hide.
    let files = [load("unsafe_allowlist/pass_unsafe_in_string.rs")];
    assert_clean(
        &rules::unsafe_allowlist(&files, &empty_config()),
        "keyword-in-string fixture",
    );
}

// ---------------------------------------------------------------------------
// Rule 2: SAFETY comments
// ---------------------------------------------------------------------------

#[test]
fn safety_comments_accept_justified_fixtures() {
    for rel in [
        "safety_comments/pass_block_comment.rs",
        "safety_comments/pass_unsafe_fn_doc.rs",
        "safety_comments/pass_let_unsafe.rs",
    ] {
        let files = [load(rel)];
        assert_clean(&rules::safety_comments(&files), rel);
    }
}

#[test]
fn safety_comments_reject_bare_block() {
    let files = [load("safety_comments/fail_missing_comment.rs")];
    assert_fails(
        &rules::safety_comments(&files),
        "safety-comment",
        "bare block fixture",
    );
}

#[test]
fn safety_comments_reject_shared_comment_across_impls() {
    // Two back-to-back impls, one comment: only the first is justified.
    let files = [load("safety_comments/fail_shared_comment_impls.rs")];
    let diags = rules::safety_comments(&files);
    assert_eq!(
        diags.len(),
        1,
        "exactly the second impl should be flagged: {diags:?}"
    );
    assert_eq!(diags[0].rule, "safety-comment");
}

// ---------------------------------------------------------------------------
// Rule 3: concurrency confinement
// ---------------------------------------------------------------------------

#[test]
fn concurrency_accepts_allowlisted_justified_file() {
    let mut cfg = empty_config();
    cfg.concurrency_allowlist = vec!["pass_allowlisted_with_comment.rs".into()];
    let files = [load("concurrency/pass_allowlisted_with_comment.rs")];
    assert_clean(
        &rules::concurrency_confinement(&files, &cfg),
        "allowlisted+justified fixture",
    );
}

#[test]
fn concurrency_accepts_plain_code() {
    let files = [load("concurrency/pass_plain_code.rs")];
    assert_clean(
        &rules::concurrency_confinement(&files, &empty_config()),
        "plain-code fixture",
    );
}

#[test]
fn concurrency_rejects_unlisted_sync_primitive() {
    let files = [load("concurrency/fail_mutex_unlisted.rs")];
    assert_fails(
        &rules::concurrency_confinement(&files, &empty_config()),
        "concurrency",
        "unlisted sync-primitive fixture",
    );
}

#[test]
fn concurrency_exempts_vendor_prefix() {
    // The same source is clean when it lives under vendor/ (the pool and
    // the other stand-ins implement the primitives everyone else must use).
    let files = [load_as(
        "concurrency/fail_mutex_unlisted.rs",
        "vendor/somecrate/src/lib.rs",
    )];
    assert_clean(
        &rules::concurrency_confinement(&files, &empty_config()),
        "vendor-exempt fixture",
    );
}

#[test]
fn concurrency_rejects_thread_spawn_even_when_allowlisted() {
    let mut cfg = empty_config();
    cfg.concurrency_allowlist = vec!["fail_spawn.rs".into()];
    let files = [load("concurrency/fail_spawn.rs")];
    assert_fails(
        &rules::concurrency_confinement(&files, &cfg),
        "concurrency",
        "thread-spawn fixture",
    );
}

#[test]
fn concurrency_accepts_spawn_allowlisted_service_thread() {
    let mut cfg = empty_config();
    cfg.thread_spawn_allowlist = vec!["pass_spawn_allowlisted.rs".into()];
    let files = [load("concurrency/pass_spawn_allowlisted.rs")];
    assert_clean(
        &rules::concurrency_confinement(&files, &cfg),
        "spawn-allowlisted fixture",
    );
}

#[test]
fn concurrency_spawn_allowlist_requires_justification_comment() {
    // Same spawn site as the passing fixture, but no CONCURRENCY: comment:
    // the allowlist entry alone is not enough.
    let mut cfg = empty_config();
    cfg.thread_spawn_allowlist = vec!["fail_spawn_no_justification.rs".into()];
    let files = [load("concurrency/fail_spawn_no_justification.rs")];
    assert_fails(
        &rules::concurrency_confinement(&files, &cfg),
        "concurrency",
        "spawn-allowlisted-without-justification fixture",
    );
}

#[test]
fn concurrency_flags_stale_spawn_allowlist_entries() {
    let mut cfg = empty_config();
    cfg.thread_spawn_allowlist = vec!["fail_spawn_stale_allowlist.rs".into()];
    let files = [load("concurrency/fail_spawn_stale_allowlist.rs")];
    assert_fails(
        &rules::concurrency_confinement(&files, &cfg),
        "concurrency",
        "stale spawn-allowlist entry",
    );
}

#[test]
fn concurrency_requires_justification_comment() {
    let mut cfg = empty_config();
    cfg.concurrency_allowlist = vec!["fail_missing_justification.rs".into()];
    let files = [load("concurrency/fail_missing_justification.rs")];
    assert_fails(
        &rules::concurrency_confinement(&files, &cfg),
        "concurrency",
        "missing-justification fixture",
    );
}

#[test]
fn concurrency_flags_stale_allowlist_entries() {
    let mut cfg = empty_config();
    cfg.concurrency_allowlist = vec!["fail_stale_allowlist.rs".into()];
    let files = [load("concurrency/fail_stale_allowlist.rs")];
    assert_fails(
        &rules::concurrency_confinement(&files, &cfg),
        "concurrency",
        "stale concurrency-allowlist entry",
    );
}

// ---------------------------------------------------------------------------
// Rule 4: knob manifest
// ---------------------------------------------------------------------------

#[test]
fn knob_manifest_accepts_registered_documented_knob() {
    let files = [load("knob_manifest/pass_registered.rs")];
    let knobs = read("knob_manifest/KNOBS.md");
    let readme = read("knob_manifest/README.md");
    assert_clean(
        &rules::knob_manifest(&files, &knobs, &readme),
        "registered-knob fixture",
    );
}

#[test]
fn knob_manifest_rejects_unregistered_knob() {
    let files = [
        load("knob_manifest/pass_registered.rs"),
        load("knob_manifest/fail_unregistered.rs"),
    ];
    let knobs = read("knob_manifest/KNOBS.md");
    let readme = read("knob_manifest/README.md");
    let diags = rules::knob_manifest(&files, &knobs, &readme);
    assert_eq!(diags.len(), 1, "exactly the rogue knob: {diags:?}");
    assert_eq!(diags[0].rule, "knob-manifest");
    assert_eq!(diags[0].path, "fail_unregistered.rs");
}

#[test]
fn knob_manifest_flags_orphaned_registration() {
    // A registered knob no source file references any more.
    let knobs = read("knob_manifest/KNOBS.md");
    let readme = read("knob_manifest/README.md");
    assert_fails(
        &rules::knob_manifest(&[], &knobs, &readme),
        "knob-manifest",
        "orphaned manifest row",
    );
}

#[test]
fn knob_manifest_requires_readme_coverage() {
    let files = [load("knob_manifest/pass_registered.rs")];
    let knobs = read("knob_manifest/KNOBS.md");
    let diags = rules::knob_manifest(&files, &knobs, "");
    assert_fails(&diags, "knob-manifest", "knob absent from README");
    assert!(
        diags.iter().any(|d| d.path == "README.md"),
        "the README gap should be attributed to README.md: {diags:?}"
    );
}

// ---------------------------------------------------------------------------
// Rule 5: bench-threshold sync
// ---------------------------------------------------------------------------

fn gate(rel: &str) -> SourceFile {
    load_as(rel, "crates/bench/src/bin/perf_smoke.rs")
}

fn artifacts(thresholds_rel: &str, committed: &[&str]) -> BenchArtifacts {
    BenchArtifacts {
        thresholds: read(thresholds_rel),
        committed: committed
            .iter()
            .map(|rel| {
                let name = Path::new(rel)
                    .file_name()
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                (name, read(rel))
            })
            .collect(),
    }
}

#[test]
fn bench_sync_accepts_consistent_gate() {
    let a = artifacts(
        "bench_sync/thresholds.json",
        &["bench_sync/BENCH_demo.json"],
    );
    assert_clean(
        &rules::bench_thresholds_sync(&gate("bench_sync/pass_gate.rs"), &a),
        "consistent gate fixture",
    );
}

#[test]
fn bench_sync_rejects_missing_threshold_key() {
    let a = artifacts("bench_sync/thresholds.json", &[]);
    assert_fails(
        &rules::bench_thresholds_sync(&gate("bench_sync/fail_missing_threshold.rs"), &a),
        "bench-sync",
        "missing-threshold fixture",
    );
}

#[test]
fn bench_sync_rejects_dead_threshold_key() {
    let a = artifacts(
        "bench_sync/thresholds_with_dead_key.json",
        &["bench_sync/BENCH_demo.json"],
    );
    let diags = rules::bench_thresholds_sync(&gate("bench_sync/pass_gate.rs"), &a);
    assert_fails(&diags, "bench-sync", "dead-threshold fixture");
    assert!(
        diags.iter().any(|d| d.message.contains("dead_key")),
        "the dead key should be named: {diags:?}"
    );
}

#[test]
fn bench_sync_rejects_missing_committed_bench_key() {
    let a = artifacts(
        "bench_sync/thresholds.json",
        &["bench_sync/BENCH_demo.json"],
    );
    assert_fails(
        &rules::bench_thresholds_sync(&gate("bench_sync/fail_missing_bench_key.rs"), &a),
        "bench-sync",
        "missing-bench-key fixture",
    );
}

#[test]
fn bench_sync_tolerates_uncommitted_artifacts() {
    // The same gate is clean when the artifact simply is not committed
    // (e.g. BENCH_solve.json is produced locally but not checked in).
    let a = artifacts("bench_sync/thresholds.json", &[]);
    assert_clean(
        &rules::bench_thresholds_sync(&gate("bench_sync/fail_missing_bench_key.rs"), &a),
        "uncommitted-artifact fixture",
    );
}

// ---------------------------------------------------------------------------
// Rule 6: unwrap/expect ban
// ---------------------------------------------------------------------------

/// Per-case config: the fixture lives at a virtual path inside the banned
/// prefix; `allowlist` decides whether it may carry audited sites.
fn ban_config(allowlist: &[&str]) -> Config {
    let mut cfg = empty_config();
    cfg.unwrap_ban_prefixes = vec!["crates/core/src/".into()];
    cfg.unwrap_allowlist = allowlist.iter().map(|s| s.to_string()).collect();
    cfg
}

#[test]
fn unwrap_ban_accepts_allowlisted_sites_with_invariant_comments() {
    let files = [load_as(
        "unwrap_ban/pass_invariant_comment.rs",
        "crates/core/src/x.rs",
    )];
    assert_clean(
        &rules::unwrap_ban(&files, &ban_config(&["crates/core/src/x.rs"])),
        "invariant-comment fixture",
    );
}

#[test]
fn unwrap_ban_accepts_test_module_unwraps() {
    // Not allowlisted, yet clean: every site sits at or after `#[cfg(test)]`.
    let files = [load_as(
        "unwrap_ban/pass_test_module_unwrap.rs",
        "crates/core/src/x.rs",
    )];
    assert_clean(
        &rules::unwrap_ban(&files, &ban_config(&[])),
        "test-module fixture",
    );
}

#[test]
fn unwrap_ban_accepts_combinators_and_out_of_scope_files() {
    let cfg = ban_config(&[]);
    // `unwrap_or_else` / `unwrap_or_default` are not panicking sites.
    let files = [load_as(
        "unwrap_ban/pass_combinators.rs",
        "crates/core/src/x.rs",
    )];
    assert_clean(&rules::unwrap_ban(&files, &cfg), "combinator fixture");
    // The same source that fails in scope is clean outside the prefixes.
    let files = [load_as(
        "unwrap_ban/fail_unlisted_unwrap.rs",
        "crates/bench/src/lib.rs",
    )];
    assert_clean(&rules::unwrap_ban(&files, &cfg), "out-of-scope fixture");
}

#[test]
fn unwrap_ban_rejects_unlisted_sites() {
    let files = [load_as(
        "unwrap_ban/fail_unlisted_unwrap.rs",
        "crates/core/src/x.rs",
    )];
    let diags = rules::unwrap_ban(&files, &ban_config(&[]));
    assert_fails(&diags, "unwrap-ban", "unlisted fixture");
    // Both the .unwrap() and the .expect() site are flagged, and the
    // message points at the structured-error alternative.
    assert_eq!(diags.len(), 2, "both sites should be flagged: {diags:?}");
    assert!(
        diags.iter().any(|d| d.message.contains("MatroxError")),
        "diagnostic should name the error taxonomy: {diags:?}"
    );
}

#[test]
fn unwrap_ban_requires_per_site_invariant_comments() {
    // Allowlisted, but one of the two sites has no attached INVARIANT:
    // comment (a comment on a *previous* statement does not attach).
    let files = [load_as(
        "unwrap_ban/fail_missing_invariant.rs",
        "crates/core/src/x.rs",
    )];
    let diags = rules::unwrap_ban(&files, &ban_config(&["crates/core/src/x.rs"]));
    assert_eq!(
        diags.len(),
        1,
        "exactly the uncommented site should be flagged: {diags:?}"
    );
    assert_eq!(diags[0].rule, "unwrap-ban");
}

#[test]
fn unwrap_ban_flags_stale_allowlist_entries() {
    let files = [load_as(
        "unwrap_ban/fail_stale_allowlist.rs",
        "crates/core/src/x.rs",
    )];
    assert_fails(
        &rules::unwrap_ban(&files, &ban_config(&["crates/core/src/x.rs"])),
        "unwrap-ban",
        "stale unwrap-allowlist entry",
    );
}

// ---------------------------------------------------------------------------
// Corpus hygiene + workspace self-check
// ---------------------------------------------------------------------------

/// Every fixture on disk is exercised by a case above — a fixture nobody
/// loads is a check that silently stopped existing.
#[test]
fn every_fixture_is_referenced() {
    let referenced = [
        "unsafe_allowlist/pass_audited.rs",
        "unsafe_allowlist/fail_unlisted.rs",
        "unsafe_allowlist/fail_stale_allowlist.rs",
        "unsafe_allowlist/pass_unsafe_in_string.rs",
        "unsafe_allowlist/pass_ffi_module.rs",
        "safety_comments/pass_block_comment.rs",
        "safety_comments/pass_unsafe_fn_doc.rs",
        "safety_comments/pass_let_unsafe.rs",
        "safety_comments/fail_missing_comment.rs",
        "safety_comments/fail_shared_comment_impls.rs",
        "concurrency/pass_allowlisted_with_comment.rs",
        "concurrency/pass_plain_code.rs",
        "concurrency/fail_mutex_unlisted.rs",
        "concurrency/pass_spawn_allowlisted.rs",
        "concurrency/fail_spawn.rs",
        "concurrency/fail_spawn_no_justification.rs",
        "concurrency/fail_spawn_stale_allowlist.rs",
        "concurrency/fail_missing_justification.rs",
        "concurrency/fail_stale_allowlist.rs",
        "knob_manifest/KNOBS.md",
        "knob_manifest/README.md",
        "knob_manifest/pass_registered.rs",
        "knob_manifest/fail_unregistered.rs",
        "bench_sync/thresholds.json",
        "bench_sync/thresholds_with_dead_key.json",
        "bench_sync/BENCH_demo.json",
        "bench_sync/pass_gate.rs",
        "bench_sync/fail_missing_threshold.rs",
        "bench_sync/fail_missing_bench_key.rs",
        "unwrap_ban/pass_invariant_comment.rs",
        "unwrap_ban/pass_test_module_unwrap.rs",
        "unwrap_ban/pass_combinators.rs",
        "unwrap_ban/fail_unlisted_unwrap.rs",
        "unwrap_ban/fail_missing_invariant.rs",
        "unwrap_ban/fail_stale_allowlist.rs",
    ];
    let root = fixtures_dir();
    let mut stack = vec![root.clone()];
    let mut on_disk = Vec::new();
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else {
                on_disk.push(
                    path.strip_prefix(&root)
                        .unwrap()
                        .to_string_lossy()
                        .replace('\\', "/"),
                );
            }
        }
    }
    on_disk.sort();
    for f in &on_disk {
        assert!(
            referenced.contains(&f.as_str()),
            "fixture {f} exists on disk but no corpus test references it"
        );
    }
    assert_eq!(
        on_disk.len(),
        referenced.len(),
        "reference list and fixture directory disagree"
    );
}

/// Naming convention: a fixture is either a `pass_*` or `fail_*` snippet or
/// a supporting data file (manifest, README, JSON).
#[test]
fn fixture_names_declare_their_polarity() {
    let root = fixtures_dir();
    let mut stack = vec![root];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            if path.extension().is_some_and(|e| e == "rs") {
                let name = path.file_name().unwrap().to_string_lossy();
                assert!(
                    name.starts_with("pass_") || name.starts_with("fail_"),
                    "fixture {name} must declare pass_/fail_ polarity in its name"
                );
            }
        }
    }
}

/// The shipped policy holds on the workspace itself — the in-process twin
/// of CI's `cargo run -p matrox-lint` gate.
#[test]
#[cfg_attr(miri, ignore = "walks and tokenizes the whole repo; covered natively")]
fn workspace_is_clean_under_the_shipped_policy() {
    let root = matrox_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root not found");
    let diags = matrox_lint::run_all(&root).expect("workspace walk failed");
    assert_clean(&diags, "workspace self-check");
}
