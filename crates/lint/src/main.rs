//! CLI entry point: `cargo run -p matrox-lint [-- --root <dir>]`.
//!
//! Lints the enclosing workspace (or `--root`) with the shipped policy and
//! exits non-zero on any violation, so CI can gate on it. See the crate
//! docs (`cargo doc -p matrox-lint`) and DESIGN.md's "Unsafe inventory &
//! audit process" for the rules and how to amend the allowlists.

#![forbid(unsafe_code)]

use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: matrox-lint [--root <workspace dir>]");
                return;
            }
            other => {
                eprintln!("matrox-lint: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let root = root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| matrox_lint::find_workspace_root(&d))
    });
    let Some(root) = root else {
        eprintln!("matrox-lint: no workspace root found (run from the repo or pass --root)");
        std::process::exit(2);
    };

    match matrox_lint::run_all(&root) {
        Ok(diags) if diags.is_empty() => {
            println!(
                "matrox-lint: workspace clean (unsafe-allowlist, safety-comment, \
                 concurrency, knob-manifest, bench-sync, unwrap-ban)"
            );
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            eprintln!("matrox-lint: {} violation(s)", diags.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("matrox-lint: io error: {e}");
            std::process::exit(2);
        }
    }
}
