//! The six project-specific rules. Each takes tokenized sources and
//! returns [`Diagnostic`]s; an empty return means the rule passes.
//!
//! The rules encode policy the stock toolchain cannot express:
//!
//! 1. [`unsafe_allowlist`] — `unsafe` may only appear in explicitly audited
//!    files (the compiler can `forbid(unsafe_code)` per crate, but not
//!    per *module*, and the executor/kernel crates are mixed).
//! 2. [`safety_comments`] — every `unsafe` token carries a `SAFETY:` /
//!    `# Safety` justification (clippy's `undocumented_unsafe_blocks`
//!    covers blocks and impls; this also covers `unsafe fn` declarations,
//!    and runs on the vendored crates that sit outside clippy's
//!    workspace-lints reach).
//! 3. [`concurrency_confinement`] — ad-hoc synchronization (`Mutex`,
//!    `Atomic*`, `thread::spawn`, …) is confined to the vendored pool and
//!    an audited allowlist (with a separate, stricter allowlist for
//!    service threads); everything else must route concurrency through
//!    `matrox-rayon`.
//! 4. [`knob_manifest`] — every `MATROX_*` / `RAYON_*` env knob the source
//!    mentions is registered in `KNOBS.md` and documented in `README.md`.
//! 5. [`bench_thresholds_sync`] — the keys `perf_smoke` reads, the keys in
//!    `crates/bench/thresholds.json`, and the committed `BENCH_*.json`
//!    summaries agree, so a renamed metric fails the build instead of
//!    silently skipping the perf gate.
//! 6. [`unwrap_ban`] — non-test library code in the fault-tolerant core
//!    and the layers that sit on it
//!    (`crates/{bench,core,exec,factor,serve}/src/`) may not
//!    `.unwrap()`/`.expect()`: public entry points return
//!    `MatroxError`/`FactorError` instead.  The audited exceptions
//!    (internal invariants the type system cannot see) live on an
//!    allowlist and each site carries an `INVARIANT:` comment.

use crate::lexer::{Token, TokenKind};

/// One rule violation: a repo-relative path, a 1-based line, the rule's
/// short name, and the message.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A tokenized source file, path relative to the workspace root with `/`
/// separators (normalized by the walker).
pub struct SourceFile {
    pub path: String,
    pub tokens: Vec<Token>,
}

/// Policy knobs for the rules, so the fixture tests can run each rule with
/// a tiny synthetic allowlist. [`Config::workspace`] is the shipped policy.
pub struct Config {
    /// Files allowed to contain `unsafe` at all. Additions require the
    /// DESIGN.md audit process (an invariant writeup plus a pinning test).
    pub unsafe_allowlist: Vec<String>,
    /// Non-vendor files allowed to use ad-hoc synchronization primitives;
    /// each must carry a `CONCURRENCY:` justification comment.
    pub concurrency_allowlist: Vec<String>,
    /// Non-vendor files allowed to call `thread::spawn` / `thread::Builder`
    /// (long-lived service threads that cannot come from the rayon pool,
    /// e.g. the serve reactor).  Each must carry a `CONCURRENCY:`
    /// justification comment; worker-style parallelism still belongs to
    /// matrox-rayon.
    pub thread_spawn_allowlist: Vec<String>,
    /// Path prefixes exempt from the concurrency rule (the pool itself and
    /// the other vendored stand-ins).
    pub concurrency_exempt_prefixes: Vec<String>,
    /// Path prefixes where non-test `.unwrap()`/`.expect()` is banned (the
    /// crates whose public APIs promise structured errors).
    pub unwrap_ban_prefixes: Vec<String>,
    /// Files inside the banned prefixes allowed to keep unwrap/expect for
    /// internal invariants; every such site must carry an attached
    /// `INVARIANT:` comment stating why it cannot fail.
    pub unwrap_allowlist: Vec<String>,
}

impl Config {
    /// The shipped policy for this workspace. Keep the lists sorted; every
    /// entry is documented in DESIGN.md ("Unsafe inventory & audit
    /// process").
    pub fn workspace() -> Self {
        Config {
            unsafe_allowlist: vec![
                // Counting global allocator pinning the corruption-fuzz
                // bounded-allocation property.
                "crates/core/tests/corruption_fuzz.rs".into(),
                // Allocation-free executor panel loop: RawSlots disjoint
                // raw slicing (invariants verified at prepare time).
                "crates/exec/src/executor.rs".into(),
                // Counting global allocator used to pin allocation-freedom.
                "crates/exec/tests/alloc_free.rs".into(),
                // AVX2+FMA packed GEMM microkernel (raw-pointer tiles).
                "crates/linalg/src/kernel/avx2.rs".into(),
                // Audited epoll FFI for the serving network front-end: the
                // only unsafe code in matrox-serve (crate is deny(unsafe)).
                "crates/serve/src/net/epoll.rs".into(),
                // Counting global allocator pinning the protocol-fuzz
                // bounded-allocation property.
                "crates/serve/tests/proto_fuzz.rs".into(),
                // Work-stealing pool: stack-job handoff and worker TLS.
                "vendor/rayon/src/job.rs".into(),
                "vendor/rayon/src/lib.rs".into(),
                "vendor/rayon/src/registry.rs".into(),
            ],
            concurrency_allowlist: vec![
                // Pool self-check: thread-id set behind a Mutex.
                "crates/bench/src/lib.rs".into(),
                // GOFMM baseline: per-node Mutex accumulation cells.
                "crates/baselines/src/gofmm.rs".into(),
                // Failpoint registry: process-global Mutex'd map shared with
                // pool workers (lives in linalg so compression sites reach it).
                "crates/linalg/src/failpoint.rs".into(),
                // EvalSession statistics counters (monotonic AtomicU64s).
                "crates/core/src/session.rs".into(),
                // Allocation counter inside the counting test allocator.
                "crates/core/tests/corruption_fuzz.rs".into(),
                "crates/exec/tests/alloc_free.rs".into(),
                // Pool-stress suite: a Mutex serializing two test functions
                // around the process-global failpoint registry.
                "crates/core/tests/pool_stress.rs".into(),
                // Network event loop: one thread owns every connection; the
                // only shared state is a shutdown AtomicBool flag.
                "crates/serve/src/net.rs".into(),
                // Serving reactor: mpsc request/reply channels are its whole
                // concurrency surface (one thread owns all mutable state).
                "crates/serve/src/server.rs".into(),
                // Allocation high-water mark inside the protocol-fuzz
                // counting test allocator.
                "crates/serve/tests/proto_fuzz.rs".into(),
            ],
            thread_spawn_allowlist: vec![
                // The epoll event loop is a long-lived named service thread,
                // not a parallel worker; the pool cannot host it.
                "crates/serve/src/net.rs".into(),
                // The serve reactor is a long-lived named service thread,
                // not a parallel worker; the pool cannot host it.
                "crates/serve/src/server.rs".into(),
            ],
            concurrency_exempt_prefixes: vec!["vendor/".into()],
            unwrap_ban_prefixes: vec![
                "crates/bench/src/".into(),
                "crates/core/src/".into(),
                "crates/exec/src/".into(),
                "crates/factor/src/".into(),
                "crates/serve/src/".into(),
            ],
            unwrap_allowlist: vec![
                // Prepared-executor sweeps: children/rank-offset invariants
                // established when the plan was prepared.
                "crates/exec/src/executor.rs".into(),
                // ULV factorization/solve: tree-topology and inventory
                // invariants checked before the sweeps run.
                "crates/factor/src/factor.rs".into(),
                "crates/factor/src/solve.rs".into(),
            ],
        }
    }
}

const DESIGN_POINTER: &str =
    "see DESIGN.md 'Unsafe inventory & audit process' for how to audit and allowlist a new site";

// ---------------------------------------------------------------------------
// Rule 1: unsafe allowlist
// ---------------------------------------------------------------------------

/// `unsafe` is confined to the audited allowlist. Also flags allowlist
/// entries that no longer contain any `unsafe` (the list must shrink with
/// the code, or it stops being an inventory).
pub fn unsafe_allowlist(files: &[SourceFile], cfg: &Config) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut seen: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for f in files {
        let allowed = cfg.unsafe_allowlist.iter().any(|a| a == &f.path);
        for t in &f.tokens {
            if t.is_ident("unsafe") {
                if allowed {
                    *seen.entry(f.path.as_str()).or_insert(0) += 1;
                } else {
                    diags.push(Diagnostic {
                        path: f.path.clone(),
                        line: t.line,
                        rule: "unsafe-allowlist",
                        message: format!(
                            "`unsafe` outside the audited allowlist; {DESIGN_POINTER}"
                        ),
                    });
                }
            }
        }
    }
    for a in &cfg.unsafe_allowlist {
        let present = files.iter().any(|f| &f.path == a);
        if present && !seen.contains_key(a.as_str()) {
            diags.push(Diagnostic {
                path: a.clone(),
                line: 1,
                rule: "unsafe-allowlist",
                message: "allowlisted file contains no `unsafe`; remove it from the allowlist \
                          (crates/lint/src/rules.rs) and the DESIGN.md inventory"
                    .into(),
            });
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// Rule 2: SAFETY comments
// ---------------------------------------------------------------------------

/// Every `unsafe` token must have a justification in the comments directly
/// attached to its statement or item header: a `SAFETY:` comment, or a
/// `# Safety` doc section for `unsafe fn` declarations.
///
/// Attachment is decided on the token stream: walking backwards from the
/// `unsafe` token, comments are collected until a statement/item boundary
/// (`{`, `}` or `;`) — everything else (visibility, attributes, the left
/// side of a `let`) is skipped. This matches how the justifications are
/// written in practice without needing an AST.
pub fn safety_comments(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in files {
        for (i, t) in f.tokens.iter().enumerate() {
            if !t.is_ident("unsafe") {
                continue;
            }
            if !has_safety_comment(&f.tokens, i) {
                diags.push(Diagnostic {
                    path: f.path.clone(),
                    line: t.line,
                    rule: "safety-comment",
                    message: "`unsafe` without an attached `// SAFETY:` justification \
                              (or `# Safety` doc section for an unsafe fn)"
                        .into(),
                });
            }
        }
    }
    diags
}

fn comment_is_justification(text: &str) -> bool {
    text.contains("SAFETY") || text.contains("# Safety")
}

fn has_safety_comment(tokens: &[Token], unsafe_idx: usize) -> bool {
    for t in tokens[..unsafe_idx].iter().rev() {
        match &t.kind {
            TokenKind::Comment { text, .. } if comment_is_justification(text) => {
                return true;
            }
            TokenKind::Punct('{') | TokenKind::Punct('}') | TokenKind::Punct(';') => return false,
            _ => {}
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 3: concurrency confinement
// ---------------------------------------------------------------------------

/// Synchronization primitives whose *type name* marks ad-hoc concurrency.
/// `OnceLock`/`LazyLock` are deliberately not listed: one-time init caches
/// are not cross-thread data protocols. `UnsafeCell` needs `unsafe` to do
/// anything and is covered by rules 1–2.
fn is_banned_sync_ident(ident: &str) -> bool {
    matches!(ident, "Mutex" | "RwLock" | "Condvar" | "Barrier" | "mpsc")
        || (ident.starts_with("Atomic") && ident.len() > "Atomic".len())
}

/// Ad-hoc synchronization is confined to the vendored pool and the audited
/// allowlist; `thread::spawn` / `thread::Builder` are banned outside vendor
/// except for the audited service-thread allowlist (worker threads must
/// come from `matrox-rayon`). Allowlisted files must carry a
/// `CONCURRENCY:` justification comment.
pub fn concurrency_confinement(files: &[SourceFile], cfg: &Config) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in files {
        if cfg
            .concurrency_exempt_prefixes
            .iter()
            .any(|p| f.path.starts_with(p.as_str()))
        {
            continue;
        }
        let allowed = cfg.concurrency_allowlist.iter().any(|a| a == &f.path);
        let spawn_allowed = cfg.thread_spawn_allowlist.iter().any(|a| a == &f.path);
        let justified = f.tokens.iter().any(
            |t| matches!(&t.kind, TokenKind::Comment { text, .. } if text.contains("CONCURRENCY:")),
        );
        let mut hits = 0usize;
        let mut spawn_hits = 0usize;
        for (i, t) in f.tokens.iter().enumerate() {
            let TokenKind::Ident(ident) = &t.kind else {
                continue;
            };
            // `thread::spawn` / `thread::Builder`: OS threads are the
            // pool's monopoly, except for audited long-lived service
            // threads (`thread_spawn_allowlist`).
            if (ident == "spawn" || ident == "Builder") && path_prefix_is_thread(&f.tokens, i) {
                spawn_hits += 1;
                if !spawn_allowed {
                    diags.push(Diagnostic {
                        path: f.path.clone(),
                        line: t.line,
                        rule: "concurrency",
                        message: format!(
                            "`thread::{ident}` outside the vendored pool; route parallelism \
                             through matrox-rayon (join / par_iter / ThreadPool), or \
                             allowlist an audited service thread with a CONCURRENCY: \
                             justification ({DESIGN_POINTER})"
                        ),
                    });
                }
                continue;
            }
            if is_banned_sync_ident(ident) {
                hits += 1;
                if !allowed {
                    diags.push(Diagnostic {
                        path: f.path.clone(),
                        line: t.line,
                        rule: "concurrency",
                        message: format!(
                            "ad-hoc synchronization (`{ident}`) outside the audited \
                             allowlist; route concurrency through matrox-rayon, or \
                             allowlist the file with a CONCURRENCY: justification \
                             ({DESIGN_POINTER})"
                        ),
                    });
                }
            }
        }
        if (allowed && hits > 0 || spawn_allowed && spawn_hits > 0) && !justified {
            diags.push(Diagnostic {
                path: f.path.clone(),
                line: 1,
                rule: "concurrency",
                message: "allowlisted for ad-hoc synchronization but carries no \
                          `CONCURRENCY:` justification comment"
                    .into(),
            });
        }
        if allowed && hits == 0 {
            diags.push(Diagnostic {
                path: f.path.clone(),
                line: 1,
                rule: "concurrency",
                message: "allowlisted for ad-hoc synchronization but uses none; remove it \
                          from the allowlist (crates/lint/src/rules.rs)"
                    .into(),
            });
        }
        if spawn_allowed && spawn_hits == 0 {
            diags.push(Diagnostic {
                path: f.path.clone(),
                line: 1,
                rule: "concurrency",
                message: "allowlisted for thread::spawn/Builder but spawns no threads; \
                          remove it from the allowlist (crates/lint/src/rules.rs)"
                    .into(),
            });
        }
    }
    diags
}

/// Is ident at `i` preceded by `thread ::` (i.e. `thread::spawn`)?
fn path_prefix_is_thread(tokens: &[Token], i: usize) -> bool {
    if i < 3 {
        return false;
    }
    tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':') && tokens[i - 3].is_ident("thread")
}

// ---------------------------------------------------------------------------
// Rule 4: env-knob manifest
// ---------------------------------------------------------------------------

/// Does a string literal look like one of our env knobs?
fn is_knob_name(s: &str) -> bool {
    let rest = s
        .strip_prefix("MATROX_")
        .or_else(|| s.strip_prefix("RAYON_"));
    match rest {
        Some(r) => {
            !r.is_empty()
                && s.chars()
                    .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        }
        None => false,
    }
}

/// Parse the knob manifest (`KNOBS.md`): every table row whose first cell
/// is a backticked `MATROX_*`/`RAYON_*` name registers that knob.
pub fn parse_knob_manifest(knobs_md: &str) -> Vec<String> {
    let mut knobs = Vec::new();
    for line in knobs_md.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("| `") else {
            continue;
        };
        let Some(name) = rest.split('`').next() else {
            continue;
        };
        if is_knob_name(name) {
            knobs.push(name.to_string());
        }
    }
    knobs
}

/// Every `MATROX_*`/`RAYON_*` string literal in the source is registered in
/// `KNOBS.md`; every registered knob is still referenced by the source and
/// is documented in `README.md`'s tuning guide.
pub fn knob_manifest(files: &[SourceFile], knobs_md: &str, readme: &str) -> Vec<Diagnostic> {
    let manifest = parse_knob_manifest(knobs_md);
    let mut diags = Vec::new();
    let mut used: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for f in files {
        for t in &f.tokens {
            let TokenKind::Str(s) = &t.kind else { continue };
            if !is_knob_name(s) {
                continue;
            }
            used.insert(s.clone());
            if !manifest.iter().any(|k| k == s) {
                diags.push(Diagnostic {
                    path: f.path.clone(),
                    line: t.line,
                    rule: "knob-manifest",
                    message: format!(
                        "env knob \"{s}\" is not registered in KNOBS.md; add a manifest row \
                         and document it in README.md's tuning guide"
                    ),
                });
            }
        }
    }
    for k in &manifest {
        if !used.contains(k) {
            diags.push(Diagnostic {
                path: "KNOBS.md".into(),
                line: 1,
                rule: "knob-manifest",
                message: format!("registered knob `{k}` is no longer referenced by any source"),
            });
        }
        if !readme.contains(k) {
            diags.push(Diagnostic {
                path: "README.md".into(),
                line: 1,
                rule: "knob-manifest",
                message: format!("knob `{k}` is registered in KNOBS.md but missing from README.md"),
            });
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// Rule 5: bench-threshold sync
// ---------------------------------------------------------------------------

/// The JSON artifacts rule 5 cross-checks against `perf_smoke.rs`.
pub struct BenchArtifacts {
    /// `crates/bench/thresholds.json` contents.
    pub thresholds: String,
    /// Committed benchmark files at the repo root: `(file name, contents)`.
    /// Absent files are fine (not every harness's output is committed);
    /// committed ones must carry every key the gate reads.
    pub committed: Vec<(String, String)>,
}

/// All keys of a JSON document (string token immediately followed by `:`),
/// with their brace-nesting depth (top level = 1).
fn json_keys(doc: &str) -> Vec<(String, usize)> {
    let tokens = crate::lexer::tokenize(doc);
    let mut keys = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Punct('{') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct('}') | TokenKind::Punct(']') => depth = depth.saturating_sub(1),
            TokenKind::Str(s) if tokens.get(i + 1).is_some_and(|t| t.is_punct(':')) => {
                keys.push((s.clone(), depth));
            }
            _ => {}
        }
        i += 1;
    }
    keys
}

/// Keys `perf_smoke.rs` reads, extracted from its token stream:
/// `must("K")` and `json_lookup_*(&thresholds, "K")` are threshold keys;
/// `json_lookup_*(&fig4, "K")` etc. are benchmark keys, grouped by the
/// variable name of the JSON document they are looked up in.
pub struct GateReads {
    pub threshold_keys: Vec<(String, usize)>,
    /// `(doc variable name, key, line)`.
    pub bench_keys: Vec<(String, String, usize)>,
}

pub fn parse_gate_reads(perf_smoke: &SourceFile) -> GateReads {
    let t = &perf_smoke.tokens;
    let mut reads = GateReads {
        threshold_keys: Vec::new(),
        bench_keys: Vec::new(),
    };
    for i in 0..t.len() {
        let TokenKind::Ident(name) = &t[i].kind else {
            continue;
        };
        // must ( "key" )
        if name == "must" && t.get(i + 1).is_some_and(|x| x.is_punct('(')) {
            if let Some(TokenKind::Str(k)) = t.get(i + 2).map(|x| &x.kind) {
                reads.threshold_keys.push((k.clone(), t[i + 2].line));
            }
        }
        // json_lookup_number ( & doc , "key" )
        if name.starts_with("json_lookup") {
            let mut j = i + 1;
            if !t.get(j).is_some_and(|x| x.is_punct('(')) {
                continue;
            }
            j += 1;
            if t.get(j).is_some_and(|x| x.is_punct('&')) {
                j += 1;
            }
            let Some(TokenKind::Ident(doc)) = t.get(j).map(|x| &x.kind) else {
                continue;
            };
            let doc = doc.clone();
            j += 1;
            if !t.get(j).is_some_and(|x| x.is_punct(',')) {
                continue;
            }
            j += 1;
            let Some(TokenKind::Str(k)) = t.get(j).map(|x| &x.kind) else {
                continue;
            };
            if doc == "thresholds" {
                reads.threshold_keys.push((k.clone(), t[j].line));
            } else {
                reads.bench_keys.push((doc, k.clone(), t[j].line));
            }
        }
    }
    reads
}

/// Map a `perf_smoke` document variable to the committed artifact name.
fn committed_name_for(doc_var: &str) -> String {
    format!("BENCH_{doc_var}.json")
}

/// Three-way sync between the gate source, the thresholds file, and the
/// committed benchmark summaries.
pub fn bench_thresholds_sync(
    perf_smoke: &SourceFile,
    artifacts: &BenchArtifacts,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let reads = parse_gate_reads(perf_smoke);
    let threshold_keys = json_keys(&artifacts.thresholds);

    if reads.threshold_keys.is_empty() {
        diags.push(Diagnostic {
            path: perf_smoke.path.clone(),
            line: 1,
            rule: "bench-sync",
            message: "found no threshold reads in the perf gate; the bench-sync rule's \
                      source scan is broken or perf_smoke.rs was rewritten — update \
                      crates/lint/src/rules.rs"
                .into(),
        });
        return diags;
    }

    // (a) Every key the gate requires exists in thresholds.json.
    for (k, line) in &reads.threshold_keys {
        if !threshold_keys.iter().any(|(tk, _)| tk == k) {
            diags.push(Diagnostic {
                path: perf_smoke.path.clone(),
                line: *line,
                rule: "bench-sync",
                message: format!(
                    "perf gate reads threshold key \"{k}\" which is missing from \
                     crates/bench/thresholds.json"
                ),
            });
        }
    }

    // (b) Every top-level threshold key (except `_`-prefixed notes) is
    // actually read by the gate — a stale threshold is a check that
    // silently stopped running.
    for (k, depth) in &threshold_keys {
        if *depth != 1 || k.starts_with('_') {
            continue;
        }
        let read = reads.threshold_keys.iter().any(|(rk, _)| rk == k) || k == "headroom"; // read via unwrap_or default, not must()
        if !read {
            diags.push(Diagnostic {
                path: "crates/bench/thresholds.json".into(),
                line: 1,
                rule: "bench-sync",
                message: format!(
                    "threshold key \"{k}\" is not read by perf_smoke.rs — dead gate entry \
                     (rename drift?)"
                ),
            });
        }
    }

    // (c) Every benchmark key the gate reads exists in the committed
    // artifact of that document, when one is committed.
    for (doc, k, line) in &reads.bench_keys {
        let name = committed_name_for(doc);
        let Some((_, contents)) = artifacts.committed.iter().find(|(n, _)| n == &name) else {
            continue; // not committed (e.g. BENCH_solve.json) — nothing to sync
        };
        if !json_keys(contents).iter().any(|(bk, _)| bk == k) {
            diags.push(Diagnostic {
                path: name,
                line: *line,
                rule: "bench-sync",
                message: format!(
                    "perf gate reads \"{k}\" from this artifact but the committed file \
                     has no such key; regenerate the benchmark or fix the key rename"
                ),
            });
        }
    }

    diags
}

// ---------------------------------------------------------------------------
// Rule 6: unwrap/expect ban in the fault-tolerant core
// ---------------------------------------------------------------------------

/// Index of the first `#[cfg(test)]` attribute in the token stream, if any.
/// The workspace convention puts the in-file test module last, so tokens at
/// or after this index are test code and exempt from the unwrap ban.
fn first_cfg_test_index(tokens: &[Token]) -> Option<usize> {
    (0..tokens.len()).find(|&i| {
        tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 4).is_some_and(|t| t.is_ident("test"))
    })
}

/// Does the statement containing token `idx` carry an attached `INVARIANT:`
/// comment? Same walk-back attachment as [`has_safety_comment`]: comments
/// between the site and the previous statement/item boundary count.
fn has_invariant_comment(tokens: &[Token], idx: usize) -> bool {
    for t in tokens[..idx].iter().rev() {
        match &t.kind {
            TokenKind::Comment { text, .. } if text.contains("INVARIANT") => return true,
            TokenKind::Punct('{') | TokenKind::Punct('}') | TokenKind::Punct(';') => return false,
            _ => {}
        }
    }
    false
}

/// Non-test code under the banned prefixes may not call `.unwrap()` /
/// `.expect()`: public entry points return `MatroxError` / `FactorError`
/// instead of panicking on bad input. Audited internal-invariant sites live
/// on the allowlist and must each carry an attached `INVARIANT:` comment;
/// allowlist entries whose file has no remaining sites are flagged as stale.
pub fn unwrap_ban(files: &[SourceFile], cfg: &Config) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut seen: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for f in files {
        if !cfg
            .unwrap_ban_prefixes
            .iter()
            .any(|p| f.path.starts_with(p.as_str()))
        {
            continue;
        }
        let allowed = cfg.unwrap_allowlist.iter().any(|a| a == &f.path);
        let end = first_cfg_test_index(&f.tokens).unwrap_or(f.tokens.len());
        for (i, t) in f.tokens[..end].iter().enumerate() {
            // A call site is `. unwrap (` / `. expect (` on the token
            // stream; the lexer emits whole identifiers, so combinators
            // like `unwrap_or_else` cannot match.
            let is_site = (t.is_ident("unwrap") || t.is_ident("expect"))
                && i > 0
                && f.tokens[i - 1].is_punct('.')
                && f.tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
            if !is_site {
                continue;
            }
            let TokenKind::Ident(name) = &t.kind else {
                continue;
            };
            if !allowed {
                diags.push(Diagnostic {
                    path: f.path.clone(),
                    line: t.line,
                    rule: "unwrap-ban",
                    message: format!(
                        "`.{name}()` in non-test code of the fault-tolerant core; return \
                         `MatroxError`/`FactorError` instead, or allowlist the file with \
                         a per-site INVARIANT: comment ({DESIGN_POINTER})"
                    ),
                });
                continue;
            }
            *seen.entry(f.path.as_str()).or_insert(0) += 1;
            if !has_invariant_comment(&f.tokens, i) {
                diags.push(Diagnostic {
                    path: f.path.clone(),
                    line: t.line,
                    rule: "unwrap-ban",
                    message: format!(
                        "allowlisted `.{name}()` without an attached `// INVARIANT:` \
                         comment stating why it cannot fail"
                    ),
                });
            }
        }
    }
    for a in &cfg.unwrap_allowlist {
        let present = files.iter().any(|f| &f.path == a);
        if present && !seen.contains_key(a.as_str()) {
            diags.push(Diagnostic {
                path: a.clone(),
                line: 1,
                rule: "unwrap-ban",
                message: "allowlisted file has no non-test unwrap/expect left; remove it \
                          from the allowlist (crates/lint/src/rules.rs)"
                    .into(),
            });
        }
    }
    diags
}
