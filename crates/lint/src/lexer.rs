//! A hand-rolled Rust lexer: just enough tokenization to tell *code* apart
//! from *strings* and *comments*, which is the part `grep`-style linting
//! gets wrong (an `unsafe` inside a doc comment or a format string is not an
//! unsafe site; a `// SAFETY:` inside a string literal is not a
//! justification).
//!
//! The lexer understands:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments
//!   (`/* /* */ */`, `/** */`);
//! * cooked strings with escapes (`"a \"b\" c"`), byte/C strings
//!   (`b"…"`, `c"…"`), and raw strings with any hash count
//!   (`r"…"`, `r#"…"#`, `br##"…"##`);
//! * char literals vs. lifetimes (`'a'` vs. `'a`), including escaped chars
//!   (`'\''`, `'\n'`);
//! * identifiers (including raw `r#ident`), numbers, and punctuation.
//!
//! It does **not** build an AST — every rule in [`crate::rules`] works on
//! the flat token stream plus line numbers, which keeps the tool dependency
//! free and fast enough to run on every build.

/// What a token is. `text` is only materialized for the kinds the rules
/// inspect (identifiers, strings, comments); punctuation carries its char.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `Mutex`, `spawn`, …).
    Ident(String),
    /// String literal, with quotes and escapes resolved away best-effort
    /// (escapes are kept verbatim — the rules only substring-match).
    Str(String),
    /// Char literal (`'x'`). The rules never inspect the contents.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Numeric literal. Contents are irrelevant to the rules.
    Number,
    /// Comment, line or block; `doc` distinguishes `///` / `//!` / `/** */`.
    Comment { text: String, doc: bool },
    /// Single punctuation character (`{`, `}`, `;`, `:`, `#`, …).
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(i) if i == s)
    }

    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.kind, TokenKind::Punct(p) if *p == c)
    }
}

/// Tokenize `src`. Unterminated constructs (string/comment running to EOF)
/// are tolerated: the remainder becomes one token, so a half-broken file
/// still produces diagnostics instead of a lexer panic.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.char_indices().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run(src)
}

struct Lexer {
    chars: Vec<(usize, char)>,
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    /// Consume one char, maintaining the line counter.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, line: usize) {
        self.tokens.push(Token { kind, line });
    }

    fn run(mut self, src: &str) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.cooked_string(line),
                'r' | 'b' | 'c' if self.starts_string_prefix() => self.prefixed_string(line),
                '\'' => self.char_or_lifetime(line),
                c if c.is_alphabetic() || c == '_' => self.ident(src, line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(c), line);
                }
            }
        }
        self.tokens
    }

    /// At an `r`/`b`/`c`: does a string literal (not an identifier) start
    /// here? Covers `r"`, `r#"`, `b"`, `br#"`, `c"`, `b'`, and raw idents
    /// (`r#ident` — *not* a string).
    fn starts_string_prefix(&self) -> bool {
        let c0 = self.peek(0).unwrap();
        match (c0, self.peek(1)) {
            (_, Some('"')) => true,
            ('b', Some('\'')) => true,
            ('b', Some('r')) => matches!(self.peek(2), Some('"') | Some('#')),
            ('r', Some('#')) => {
                // r#"..."# is a raw string; r#ident is a raw identifier.
                let mut k = 1;
                while self.peek(k) == Some('#') {
                    k += 1;
                }
                self.peek(k) == Some('"')
            }
            _ => false,
        }
    }

    fn line_comment(&mut self, line: usize) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text: String = self.chars[start..self.pos]
            .iter()
            .map(|&(_, c)| c)
            .collect();
        let doc = text.starts_with("///") || text.starts_with("//!");
        self.push(TokenKind::Comment { text, doc }, line);
    }

    fn block_comment(&mut self, line: usize) {
        let start = self.pos;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated; tolerate
            }
        }
        let text: String = self.chars[start..self.pos]
            .iter()
            .map(|&(_, c)| c)
            .collect();
        let doc = text.starts_with("/**") || text.starts_with("/*!");
        self.push(TokenKind::Comment { text, doc }, line);
    }

    fn cooked_string(&mut self, line: usize) {
        self.bump(); // opening quote
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump();
                    self.bump(); // the escaped char (any, incl. `"` and `\`)
                }
                '"' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let text: String = self.chars[start..self.pos]
            .iter()
            .map(|&(_, c)| c)
            .collect();
        self.bump(); // closing quote (or EOF)
        self.push(TokenKind::Str(text), line);
    }

    /// `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `c"…"`, `b'x'`.
    fn prefixed_string(&mut self, line: usize) {
        // Consume the prefix letters (r, b, c, br, cr …).
        while matches!(self.peek(0), Some('r') | Some('b') | Some('c')) {
            if self.peek(0) == Some('r') && self.peek(1) != Some('r') {
                // `r` is always the last prefix letter.
                self.bump();
                break;
            }
            self.bump();
        }
        if self.peek(0) == Some('\'') {
            // b'x' byte literal: reuse the char scanner.
            self.char_or_lifetime(line);
            // Overwrite: it pushed Char/Lifetime already with correct line.
            return;
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let start = self.pos;
        let end;
        'outer: loop {
            match self.peek(0) {
                None => {
                    end = self.pos;
                    break;
                }
                Some('"') => {
                    // A raw string closes on `"` followed by `hashes` hashes.
                    for k in 0..hashes {
                        if self.peek(1 + k) != Some('#') {
                            self.bump();
                            continue 'outer;
                        }
                    }
                    end = self.pos;
                    self.bump(); // quote
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
                Some('\\') if hashes == 0 => {
                    // Only cooked (non-raw) prefixed strings process escapes;
                    // b"…" is cooked, r"…" is raw but has no hashes either.
                    // Treating `\"` as escaped in r"…" would mis-lex rare
                    // cases; none appear in this workspace and the failure
                    // mode is an over-long string token, never missed code.
                    self.bump();
                    self.bump();
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
        let text: String = self.chars[start..end].iter().map(|&(_, c)| c).collect();
        self.push(TokenKind::Str(text), line);
    }

    fn char_or_lifetime(&mut self, line: usize) {
        self.bump(); // the quote
        match (self.peek(0), self.peek(1)) {
            // Escaped char literal: '\n', '\'', '\\', '\u{..}'.
            (Some('\\'), _) => {
                self.bump(); // backslash
                self.bump(); // escaped char
                             // consume until closing quote (covers \u{1F600})
                while let Some(c) = self.peek(0) {
                    if c == '\'' {
                        self.bump();
                        break;
                    }
                    self.bump();
                }
                self.push(TokenKind::Char, line);
            }
            // 'x' with immediate close: char literal.
            (Some(_), Some('\'')) => {
                self.bump();
                self.bump();
                self.push(TokenKind::Char, line);
            }
            // 'ident — a lifetime (or loop label).
            (Some(c), _) if c.is_alphabetic() || c == '_' => {
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokenKind::Lifetime, line);
            }
            _ => {
                self.push(TokenKind::Punct('\''), line);
            }
        }
    }

    fn ident(&mut self, src: &str, line: usize) {
        let start_byte = self.chars[self.pos].0;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        let end_byte = self
            .chars
            .get(self.pos)
            .map(|&(b, _)| b)
            .unwrap_or(src.len());
        self.push(
            TokenKind::Ident(src[start_byte..end_byte].to_string()),
            line,
        );
    }

    fn number(&mut self, line: usize) {
        // Numbers can't contain the chars any rule matches on; consume the
        // alphanumeric run (handles 0xff, 1_000, 1e-7, suffixes).
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' || c == '.' {
                // `1..n` range: don't swallow the second dot.
                if c == '.' && self.peek(1) == Some('.') {
                    break;
                }
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(i) => Some(i),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_keywords() {
        let src = r##"
            // unsafe in a line comment
            /* unsafe in a /* nested */ block */
            let a = "unsafe in a string";
            let b = r#"unsafe in a raw "string""#;
            let c = 'u';
            fn safe() {}
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()), "{ids:?}");
        assert!(ids.contains(&"safe".to_string()));
    }

    #[test]
    fn real_unsafe_is_seen() {
        let ids = idents("unsafe fn f() { unsafe { g() } }");
        assert_eq!(ids.iter().filter(|i| *i == "unsafe").count(), 2);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; let d = '\\n';");
        assert!(ids.contains(&"str".to_string()));
        let toks = tokenize("'a fn");
        assert!(matches!(toks[0].kind, TokenKind::Lifetime));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = tokenize("a\nb\n\"s\ntill\"\nc");
        let find = |name: &str| {
            toks.iter()
                .find(|t| t.is_ident(name))
                .map(|t| t.line)
                .unwrap()
        };
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 2);
        assert_eq!(find("c"), 5);
    }

    #[test]
    fn raw_ident_is_not_a_string() {
        let toks = tokenize("r#fn r#\"raw\"#");
        assert!(toks[0].is_punct('#') || matches!(toks[0].kind, TokenKind::Ident(_)));
        assert!(toks
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Str(s) if s == "raw")));
    }
}
