//! `matrox-lint`: the workspace's project-specific static-analysis pass.
//!
//! MatRox's performance story rests on hand-verified `unsafe` (the
//! allocation-free executor's disjoint raw slicing, the AVX2 microkernel's
//! raw-pointer tiles, the work-stealing pool's stack-job handoff) and on a
//! handful of global contracts (concurrency routes through `matrox-rayon`,
//! env knobs are documented, the perf gate's keys don't drift). The
//! compiler and clippy enforce what they can — `forbid(unsafe_code)`,
//! `unsafe_op_in_unsafe_fn`, `undocumented_unsafe_blocks` via the
//! `[workspace.lints]` table — and this crate enforces the rest; see
//! [`rules`] for the six rules.
//!
//! Run it from the workspace root (CI runs it in the fail-early `lint`
//! job):
//!
//! ```bash
//! cargo run -p matrox-lint
//! ```
//!
//! Exit status 0 means the workspace is clean; 1 means violations were
//! printed, one `path:line: [rule] message` per line; 2 means the tool
//! could not read the workspace.
//!
//! The crate is dependency-free by design: a hand-rolled lexer
//! ([`lexer`]) tells code apart from strings and comments, and a token
//! scan stands in for JSON parsing. That keeps the tool buildable (and
//! trustworthy) independently of the code it audits.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use rules::{BenchArtifacts, Config, Diagnostic, SourceFile};
use std::path::{Path, PathBuf};

/// Directories the walker never descends into: build output, VCS metadata,
/// and the lint fixture corpus (which contains must-fail snippets on
/// purpose).
const SKIP_DIRS: &[&str] = &[
    "target",
    ".git",
    ".github",
    "proptest-regressions",
    "crates/lint/tests/fixtures",
];

/// Recursively collect every `.rs` file under `root`, skipping
/// `SKIP_DIRS`, with repo-relative `/`-separated paths, sorted so runs
/// are deterministic.
pub fn collect_rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = rel_path(root, &path);
            if entry.file_type()?.is_dir() {
                if SKIP_DIRS.iter().any(|s| rel == *s) {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Read and tokenize every Rust file in the workspace.
pub fn load_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    collect_rust_files(root)?
        .into_iter()
        .map(|p| {
            let src = std::fs::read_to_string(&p)?;
            Ok(SourceFile {
                path: rel_path(root, &p),
                tokens: lexer::tokenize(&src),
            })
        })
        .collect()
}

/// Locate the workspace root: walk up from `start` to the first directory
/// whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Run every rule against the workspace at `root` with the shipped
/// [`Config::workspace`] policy. Returns all diagnostics (empty = clean).
pub fn run_all(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let files = load_workspace(root)?;
    let cfg = Config::workspace();
    let mut diags = Vec::new();

    diags.extend(rules::unsafe_allowlist(&files, &cfg));
    diags.extend(rules::safety_comments(&files));
    diags.extend(rules::concurrency_confinement(&files, &cfg));
    diags.extend(rules::unwrap_ban(&files, &cfg));

    let knobs_md = std::fs::read_to_string(root.join("KNOBS.md")).unwrap_or_default();
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap_or_default();
    if knobs_md.is_empty() {
        diags.push(Diagnostic {
            path: "KNOBS.md".into(),
            line: 1,
            rule: "knob-manifest",
            message: "missing or empty knob manifest (KNOBS.md) at the workspace root".into(),
        });
    } else {
        diags.extend(rules::knob_manifest(&files, &knobs_md, &readme));
    }

    let gate_path = "crates/bench/src/bin/perf_smoke.rs";
    match files.iter().find(|f| f.path == gate_path) {
        Some(gate) => {
            let thresholds = std::fs::read_to_string(root.join("crates/bench/thresholds.json"))
                .unwrap_or_default();
            let mut committed = Vec::new();
            if let Ok(rd) = std::fs::read_dir(root) {
                for entry in rd.flatten() {
                    let name = entry.file_name().to_string_lossy().into_owned();
                    if name.starts_with("BENCH_") && name.ends_with(".json") {
                        if let Ok(contents) = std::fs::read_to_string(entry.path()) {
                            committed.push((name, contents));
                        }
                    }
                }
            }
            committed.sort();
            let artifacts = BenchArtifacts {
                thresholds,
                committed,
            };
            diags.extend(rules::bench_thresholds_sync(gate, &artifacts));
        }
        None => diags.push(Diagnostic {
            path: gate_path.into(),
            line: 1,
            rule: "bench-sync",
            message: "perf gate source not found; update the path in crates/lint/src/lib.rs".into(),
        }),
    }

    // Deterministic output order regardless of rule internals.
    diags.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    Ok(diags)
}
