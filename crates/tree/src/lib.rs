//! # matrox-tree
//!
//! Cluster-tree construction and interaction computation for MatRox.
//!
//! These are the first two modules of MatRox's modularized compression
//! (Section 3.1 of the paper):
//!
//! * **Tree construction** ([`ctree`]): builds the binary cluster tree
//!   (CTree) from the points with kd-tree partitioning for low-dimensional
//!   data and two-means partitioning for high-dimensional data.
//! * **Interaction computation** ([`htree`]): applies the admissibility
//!   condition (or GOFMM's budget, or the HSS weak-admissibility rule) to the
//!   CTree to find near and far interacting node pairs, producing the HTree.
//!
//! The structure information produced here is consumed by the sampling and
//! low-rank-approximation modules (`matrox-sampling`, `matrox-compress`) and
//! by the structure-analysis phase (`matrox-analysis`).

#![forbid(unsafe_code)]

pub mod ctree;
pub mod htree;

pub use ctree::{invert_permutation, ClusterTree, PartitionMethod, TreeNode};
pub use htree::{HTree, Structure};
