//! Interaction computation: turning a CTree into an HTree.
//!
//! The interaction-computation module of MatRox's compression takes the CTree
//! and the admissibility parameter and computes which node pairs interact as
//! *near* (kept dense) and which interact as *far* (low-rank approximated).
//! The CTree plus these interaction edges is the HTree (Figure 1b).
//!
//! Three structure modes are supported, matching the paper's experiments:
//!
//! * [`Structure::Geometric`] — the admissibility condition
//!   `τ·dist(α,β) > diam(α) + diam(β)` (used for the SMASH comparison,
//!   τ = 0.65 by default);
//! * [`Structure::Budget`] — GOFMM's budget parameter: each leaf keeps at
//!   most `budget · #leaves` nearest leaves as near interactions (budget 0.03
//!   is the paper's "H²-b", budget 0 degenerates to HSS);
//! * [`Structure::Hss`] — weak admissibility: every off-diagonal block is
//!   low-rank (STRUMPACK's only supported structure).

use crate::ctree::ClusterTree;

/// HMatrix structure selection (admissibility flavour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Structure {
    /// Geometric admissibility `τ·dist > diam + diam`.
    Geometric {
        /// Admissibility parameter τ.
        tau: f64,
    },
    /// GOFMM-style budget: fraction of leaves each leaf may keep as near.
    Budget {
        /// Fraction in `[0, 1]`; 0.03 is the paper's H²-b setting.
        budget: f64,
    },
    /// Weak admissibility / HSS: all off-diagonal blocks are far.
    Hss,
}

impl Structure {
    /// The paper's H²-b configuration (GOFMM budget 0.03).
    pub fn h2b() -> Self {
        Structure::Budget { budget: 0.03 }
    }

    /// Short name used in reports ("hss", "h2-b", "geom").
    pub fn name(&self) -> &'static str {
        match self {
            Structure::Geometric { .. } => "geom",
            Structure::Budget { .. } => "h2-b",
            Structure::Hss => "hss",
        }
    }
}

/// The HTree: a CTree plus near/far interaction lists.
///
/// `near[i]` is only non-empty for leaf nodes and contains leaf node ids `j`
/// such that the dense block `D_{i,j}` must be computed.  `far[i]` contains
/// node ids `j` (at the same tree level as `i`) such that the low-rank
/// coupling block `B_{i,j}` must be computed.  Both lists are *directed*: if
/// `(i, j)` is present, `(j, i)` is present as well, mirroring the loop
/// structure in Figure 1d of the paper.
#[derive(Debug, Clone)]
pub struct HTree {
    /// Near (dense) interaction lists, indexed by node id.
    pub near: Vec<Vec<usize>>,
    /// Far (low-rank) interaction lists, indexed by node id.
    pub far: Vec<Vec<usize>>,
    /// The structure mode used to build the lists.
    pub structure: Structure,
}

impl HTree {
    /// Compute the HTree for `tree` under the given structure mode.
    pub fn build(points_tree: &ClusterTree, structure: Structure) -> HTree {
        let n = points_tree.num_nodes();
        let mut near = vec![Vec::new(); n];
        let mut far = vec![Vec::new(); n];

        if n == 1 {
            // A single-leaf tree: the only block is the dense diagonal.
            near[0].push(0);
            return HTree {
                near,
                far,
                structure,
            };
        }

        // For budget mode, precompute the leaf-to-leaf "near" relation.
        let leaf_near = match structure {
            Structure::Budget { budget } => Some(budget_leaf_near(points_tree, budget)),
            _ => None,
        };

        // Dual traversal starting from the root's self pair.
        let mut stack = vec![(0usize, 0usize)];
        while let Some((a, b)) = stack.pop() {
            let na = &points_tree.nodes[a];
            let nb = &points_tree.nodes[b];
            if a == b {
                if na.is_leaf() {
                    near[a].push(a);
                } else {
                    let (l, r) = na.children.unwrap();
                    stack.push((l, l));
                    stack.push((l, r));
                    stack.push((r, l));
                    stack.push((r, r));
                }
                continue;
            }
            let admissible = match structure {
                Structure::Hss => true,
                Structure::Geometric { tau } => {
                    let dist = points_tree.node_distance(a, b);
                    tau * dist > na.diameter + nb.diameter
                }
                Structure::Budget { .. } => {
                    !has_near_leaf_pair(points_tree, leaf_near.as_ref().unwrap(), a, b)
                }
            };
            if admissible {
                far[a].push(b);
            } else if na.is_leaf() && nb.is_leaf() {
                near[a].push(b);
            } else if na.is_leaf() {
                let (l, r) = nb.children.unwrap();
                stack.push((a, l));
                stack.push((a, r));
            } else if nb.is_leaf() {
                let (l, r) = na.children.unwrap();
                stack.push((l, b));
                stack.push((r, b));
            } else {
                let (al, ar) = na.children.unwrap();
                let (bl, br) = nb.children.unwrap();
                stack.push((al, bl));
                stack.push((al, br));
                stack.push((ar, bl));
                stack.push((ar, br));
            }
        }

        for list in near.iter_mut().chain(far.iter_mut()) {
            list.sort_unstable();
            list.dedup();
        }

        HTree {
            near,
            far,
            structure,
        }
    }

    /// Total number of (directed) near interactions.
    pub fn num_near(&self) -> usize {
        self.near.iter().map(|v| v.len()).sum()
    }

    /// Total number of (directed) far interactions.
    pub fn num_far(&self) -> usize {
        self.far.iter().map(|v| v.len()).sum()
    }

    /// All directed near pairs `(i, j)`.
    pub fn near_pairs(&self) -> Vec<(usize, usize)> {
        self.near
            .iter()
            .enumerate()
            .flat_map(|(i, js)| js.iter().map(move |&j| (i, j)))
            .collect()
    }

    /// All directed far pairs `(i, j)`.
    pub fn far_pairs(&self) -> Vec<(usize, usize)> {
        self.far
            .iter()
            .enumerate()
            .flat_map(|(i, js)| js.iter().map(move |&j| (i, j)))
            .collect()
    }
}

/// Budget-mode near relation between leaves: each leaf marks the
/// `ceil(budget * #leaves)` leaves with the closest centroids (plus itself)
/// as near; the relation is then symmetrized.
fn budget_leaf_near(tree: &ClusterTree, budget: f64) -> Vec<Vec<bool>> {
    let leaves = tree.leaves();
    let nl = leaves.len();
    // leaf position lookup by node id
    let mut pos = vec![usize::MAX; tree.num_nodes()];
    for (p, &l) in leaves.iter().enumerate() {
        pos[l] = p;
    }
    let keep = ((budget * nl as f64).ceil() as usize).min(nl.saturating_sub(1));
    let mut near = vec![vec![false; nl]; nl];
    for (pi, &li) in leaves.iter().enumerate() {
        near[pi][pi] = true;
        if keep == 0 {
            continue;
        }
        let mut dists: Vec<(f64, usize)> = leaves
            .iter()
            .enumerate()
            .filter(|&(pj, _)| pj != pi)
            .map(|(pj, &lj)| (tree.node_distance(li, lj), pj))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for &(_, pj) in dists.iter().take(keep) {
            near[pi][pj] = true;
            near[pj][pi] = true;
        }
    }
    near
}

/// True when some descendant leaf of `a` is marked near some descendant leaf
/// of `b` in the budget relation.
fn has_near_leaf_pair(tree: &ClusterTree, leaf_near: &[Vec<bool>], a: usize, b: usize) -> bool {
    let leaves = tree.leaves();
    let ra = (tree.nodes[a].start, tree.nodes[a].end);
    let rb = (tree.nodes[b].start, tree.nodes[b].end);
    let under = |range: (usize, usize)| -> Vec<usize> {
        leaves
            .iter()
            .enumerate()
            .filter(|&(_, &l)| tree.nodes[l].start >= range.0 && tree.nodes[l].end <= range.1)
            .map(|(p, _)| p)
            .collect()
    };
    let la = under(ra);
    let lb = under(rb);
    la.iter().any(|&pa| lb.iter().any(|&pb| leaf_near[pa][pb]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctree::{ClusterTree, PartitionMethod};
    use matrox_points::{generate, DatasetId};

    fn build_tree(n: usize, leaf: usize) -> ClusterTree {
        let pts = generate(DatasetId::Grid, n, 1);
        ClusterTree::build(&pts, PartitionMethod::KdTree, leaf, 0)
    }

    fn check_symmetry(h: &HTree) {
        for (i, js) in h.near.iter().enumerate() {
            for &j in js {
                assert!(h.near[j].contains(&i), "near not symmetric: ({i},{j})");
            }
        }
        for (i, js) in h.far.iter().enumerate() {
            for &j in js {
                assert!(h.far[j].contains(&i), "far not symmetric: ({i},{j})");
            }
        }
    }

    /// Every ordered leaf pair must be covered exactly once: either by a near
    /// leaf-leaf interaction or by exactly one far interaction between
    /// ancestors (including the leaves themselves).
    fn check_coverage(tree: &ClusterTree, h: &HTree) {
        let leaves = tree.leaves();
        let ancestors = |mut x: usize| -> Vec<usize> {
            let mut v = vec![x];
            while let Some(p) = tree.nodes[x].parent {
                v.push(p);
                x = p;
            }
            v
        };
        for &la in &leaves {
            for &lb in &leaves {
                let mut count = 0;
                if h.near[la].contains(&lb) {
                    count += 1;
                }
                for &aa in &ancestors(la) {
                    for &ab in &ancestors(lb) {
                        if h.far[aa].contains(&ab) {
                            count += 1;
                        }
                    }
                }
                assert_eq!(
                    count, 1,
                    "leaf pair ({la},{lb}) covered {count} times instead of once"
                );
            }
        }
    }

    #[test]
    fn hss_structure_has_sibling_far_and_diagonal_near() {
        let tree = build_tree(256, 16);
        let h = HTree::build(&tree, Structure::Hss);
        // Near interactions are exactly the leaf diagonal.
        for (i, js) in h.near.iter().enumerate() {
            if tree.nodes[i].is_leaf() {
                assert_eq!(js, &vec![i]);
            } else {
                assert!(js.is_empty());
            }
        }
        // Every non-root node is far from exactly its sibling.
        for node in &tree.nodes {
            if let Some(p) = node.parent {
                let (l, r) = tree.nodes[p].children.unwrap();
                let sib = if node.id == l { r } else { l };
                assert_eq!(h.far[node.id], vec![sib]);
            }
        }
        check_symmetry(&h);
        check_coverage(&tree, &h);
    }

    #[test]
    fn geometric_structure_covers_all_pairs_once() {
        let tree = build_tree(256, 16);
        let h = HTree::build(&tree, Structure::Geometric { tau: 0.65 });
        check_symmetry(&h);
        check_coverage(&tree, &h);
        assert!(h.num_near() > 0);
        assert!(h.num_far() > 0);
    }

    #[test]
    fn budget_structure_covers_all_pairs_once() {
        let pts = generate(DatasetId::Higgs, 512, 3);
        let tree = ClusterTree::build(&pts, PartitionMethod::TwoMeans, 32, 0);
        let h = HTree::build(&tree, Structure::h2b());
        check_symmetry(&h);
        check_coverage(&tree, &h);
    }

    #[test]
    fn budget_zero_equals_hss_near_count() {
        let tree = build_tree(256, 16);
        let h_b0 = HTree::build(&tree, Structure::Budget { budget: 0.0 });
        let h_hss = HTree::build(&tree, Structure::Hss);
        assert_eq!(h_b0.num_near(), h_hss.num_near());
    }

    #[test]
    fn larger_budget_gives_more_near_interactions() {
        let tree = build_tree(512, 16);
        let small = HTree::build(&tree, Structure::Budget { budget: 0.03 });
        let large = HTree::build(&tree, Structure::Budget { budget: 0.25 });
        assert!(large.num_near() >= small.num_near());
    }

    #[test]
    fn looser_tau_gives_more_far_interactions() {
        let tree = build_tree(512, 16);
        // Larger tau admits pairs more easily -> more far blocks at higher
        // levels and fewer near blocks.
        let tight = HTree::build(&tree, Structure::Geometric { tau: 0.5 });
        let loose = HTree::build(&tree, Structure::Geometric { tau: 3.0 });
        assert!(loose.num_near() <= tight.num_near());
        check_coverage(&build_tree(512, 16), &tight);
    }

    #[test]
    fn single_leaf_tree_has_one_near_block() {
        let pts = generate(DatasetId::Random, 8, 5);
        let tree = ClusterTree::build(&pts, PartitionMethod::KdTree, 16, 0);
        let h = HTree::build(&tree, Structure::Hss);
        assert_eq!(h.num_near(), 1);
        assert_eq!(h.num_far(), 0);
    }

    #[test]
    fn far_interactions_connect_same_level_nodes() {
        let tree = build_tree(256, 16);
        for s in [
            Structure::Hss,
            Structure::Geometric { tau: 0.65 },
            Structure::h2b(),
        ] {
            let h = HTree::build(&tree, s);
            for (i, js) in h.far.iter().enumerate() {
                for &j in js {
                    assert_eq!(
                        tree.nodes[i].level, tree.nodes[j].level,
                        "far pair ({i},{j}) spans levels in {:?}",
                        s
                    );
                }
            }
        }
    }
}
