//! Binary cluster tree (CTree) construction.
//!
//! The CTree is built by recursively partitioning the point set until a node
//! owns fewer than `leaf_size` points (the paper's leaf-size constant `m`).
//! Two partitioning algorithms are provided, matching Section 3.1:
//!
//! * **kd-tree** splits (widest bounding-box dimension, median) for
//!   low-dimensional points (`d <= 3`), and
//! * **two-means** splits (two far-apart seeds, a few Lloyd iterations, then a
//!   balanced median split on the distance difference) for high-dimensional
//!   points (`d > 3`).
//!
//! Every node owns a contiguous range of a global permutation of the point
//! indices, so a node's index set is a slice — no per-node allocation.  Nodes
//! are numbered in breadth-first order with the root as node 0, matching the
//! numbering used in Figure 1 of the paper.
//!
//! Construction is **level-parallel on the work-stealing pool**: all nodes of
//! one level own disjoint ranges of the permutation, so their splits are
//! independent tasks.  The build is bitwise deterministic across pool widths
//! and grains: each task writes its result into a pre-sized slot (no
//! order-dependent accumulation), node ids are assigned in a sequential
//! fixed-order pass after every level's splits complete, and the two-means
//! seed selection draws from a *per-node* RNG
//! (`seed ^ node_id * 0x9e3779b97f4a7c15`) instead of a shared stream whose
//! consumption order would depend on scheduling.

use matrox_linalg::knobs::resolve_grain;
use matrox_points::PointSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Which partitioning algorithm to use when splitting a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMethod {
    /// Median split along the widest bounding-box dimension.
    KdTree,
    /// Two-means style split (balanced, on the projected distance difference).
    TwoMeans,
    /// Pick automatically: kd-tree for `d <= 3`, two-means otherwise (the
    /// paper's rule).
    Auto,
}

/// One node of the cluster tree.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// Node id (index into [`ClusterTree::nodes`]); the root is 0.
    pub id: usize,
    /// Parent id; `None` for the root.
    pub parent: Option<usize>,
    /// Children ids `(left, right)`; `None` for leaves.
    pub children: Option<(usize, usize)>,
    /// Depth from the root (root has level 0).
    pub level: usize,
    /// Start of this node's index range in [`ClusterTree::perm`].
    pub start: usize,
    /// One-past-the-end of this node's index range in [`ClusterTree::perm`].
    pub end: usize,
    /// Centroid of the owned points.
    pub centroid: Vec<f64>,
    /// Diameter estimate (diagonal of the axis-aligned bounding box).
    pub diameter: f64,
}

impl TreeNode {
    /// Number of points owned by this node.
    #[inline]
    pub fn num_points(&self) -> usize {
        self.end - self.start
    }

    /// True if this node has no children.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// A binary cluster tree over a [`PointSet`].
#[derive(Debug, Clone)]
pub struct ClusterTree {
    /// All nodes in breadth-first order; `nodes[0]` is the root.
    pub nodes: Vec<TreeNode>,
    /// Global permutation of point indices; node `x` owns
    /// `perm[nodes[x].start..nodes[x].end]`.
    pub perm: Vec<usize>,
    /// Inverse of [`ClusterTree::perm`]: `pos[i]` is the position of point
    /// `i` in the permuted (tree) ordering, so `pos[perm[p]] == p`.  Derived
    /// from `perm` at construction; consumers use it for O(1) membership
    /// tests and permutation-free scatters instead of re-inverting `perm`.
    pub pos: Vec<usize>,
    /// Leaf-size constant `m` used during construction.
    pub leaf_size: usize,
    /// Tree height: the maximum node level (root level is 0).
    pub height: usize,
}

/// Invert a permutation: `out[perm[p]] == p`.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut pos = vec![0usize; perm.len()];
    for (p, &i) in perm.iter().enumerate() {
        pos[i] = p;
    }
    pos
}

/// One frontier entry awaiting its split: `(node_id, start, end, level)`.
type FrontierNode = (usize, usize, usize, usize);

/// Outcome of one node's parallel split task: the split position plus the
/// geometry of both halves, written into a slot indexed by the node's
/// position in the level's frontier (fixed combination order).
struct SplitResult {
    node_id: usize,
    start: usize,
    mid: usize,
    end: usize,
    level: usize,
    left_geom: (Vec<f64>, f64),
    right_geom: (Vec<f64>, f64),
}

impl ClusterTree {
    /// Build a cluster tree over `points` with the given partitioning method
    /// and leaf size.  `seed` makes the two-means splits deterministic.
    ///
    /// Splits within a level run in parallel on the work-stealing pool; the
    /// result is bitwise identical at every pool width and grain (see the
    /// module docs for the determinism contract).
    pub fn build(
        points: &PointSet,
        method: PartitionMethod,
        leaf_size: usize,
        seed: u64,
    ) -> ClusterTree {
        Self::build_with_grain(points, method, leaf_size, seed, 0)
    }

    /// [`build`](ClusterTree::build) with an explicit grain (minimum split
    /// tasks per parallel work item; `0` = auto / the `MATROX_GRAIN` env
    /// knob).  Grain only changes task chunking, never the tree.
    pub fn build_with_grain(
        points: &PointSet,
        method: PartitionMethod,
        leaf_size: usize,
        seed: u64,
        grain: usize,
    ) -> ClusterTree {
        assert!(leaf_size >= 1, "leaf_size must be at least 1");
        assert!(!points.is_empty(), "cannot build a tree over zero points");
        let method = match method {
            PartitionMethod::Auto => {
                if points.dim() <= 3 {
                    PartitionMethod::KdTree
                } else {
                    PartitionMethod::TwoMeans
                }
            }
            m => m,
        };
        let grain = resolve_grain(grain);
        let mut perm: Vec<usize> = (0..points.len()).collect();
        let mut nodes: Vec<TreeNode> = Vec::new();

        let root_geom = node_geometry(points, &perm[0..points.len()]);
        nodes.push(TreeNode {
            id: 0,
            parent: None,
            children: None,
            level: 0,
            start: 0,
            end: points.len(),
            centroid: root_geom.0,
            diameter: root_geom.1,
        });

        // Level-by-level construction.  The frontier holds the nodes of the
        // current level in id order (which is also ascending range order, so
        // the disjoint-slice carving below works by construction); nodes
        // small enough to stay leaves are dropped from it up front.
        let mut frontier: Vec<FrontierNode> = vec![(0, 0, points.len(), 0)];
        let mut height = 0;

        while !frontier.is_empty() {
            let splittable: Vec<FrontierNode> = frontier
                .drain(..)
                .filter(|&(_, start, end, _)| end - start > leaf_size)
                .collect();
            if splittable.is_empty() {
                break;
            }

            // Carve one disjoint `&mut` slice of the permutation per
            // splittable node.  Ranges are disjoint and ascending, so
            // repeated `split_at_mut` hands every task its own slice with no
            // aliasing and no locking.
            let mut slices: Vec<&mut [usize]> = Vec::with_capacity(splittable.len());
            let mut rest: &mut [usize] = &mut perm;
            let mut consumed = 0usize;
            for &(_, start, end, _) in &splittable {
                let (_, tail) = rest.split_at_mut(start - consumed);
                let (slice, tail) = tail.split_at_mut(end - start);
                slices.push(slice);
                rest = tail;
                consumed = end;
            }

            // Parallel phase: split every node's slice and compute both
            // children's geometry.  `collect` preserves input order, so the
            // results land in frontier order — a pre-sized slot per node.
            let work: Vec<(FrontierNode, &mut [usize])> =
                splittable.into_iter().zip(slices).collect();
            let results: Vec<SplitResult> = work
                .into_par_iter()
                .with_min_len(grain)
                .map(|((node_id, start, end, level), slice)| {
                    let count = end - start;
                    let local_mid = match method {
                        PartitionMethod::KdTree => kd_split(points, slice),
                        PartitionMethod::TwoMeans => {
                            // Per-node RNG: the split is a pure function of
                            // (points, seed, node id), independent of the
                            // order sibling tasks run in.
                            let mut rng = StdRng::seed_from_u64(
                                seed ^ (node_id as u64).wrapping_mul(0x9e3779b97f4a7c15),
                            );
                            two_means_split(points, slice, &mut rng)
                        }
                        PartitionMethod::Auto => unreachable!(),
                    };
                    // Guard against degenerate splits (all points identical).
                    let local_mid = if local_mid == 0 || local_mid == count {
                        count / 2
                    } else {
                        local_mid
                    };
                    let mid = start + local_mid;
                    SplitResult {
                        node_id,
                        start,
                        mid,
                        end,
                        level,
                        left_geom: node_geometry(points, &slice[..local_mid]),
                        right_geom: node_geometry(points, &slice[local_mid..]),
                    }
                })
                .collect();

            // Sequential phase: assign child ids in frontier order, exactly
            // reproducing the classic BFS numbering (root = 0, siblings
            // adjacent, levels non-decreasing with id).
            for r in results {
                let left_id = nodes.len();
                let right_id = nodes.len() + 1;
                let child_level = r.level + 1;
                height = height.max(child_level);
                nodes.push(TreeNode {
                    id: left_id,
                    parent: Some(r.node_id),
                    children: None,
                    level: child_level,
                    start: r.start,
                    end: r.mid,
                    centroid: r.left_geom.0,
                    diameter: r.left_geom.1,
                });
                nodes.push(TreeNode {
                    id: right_id,
                    parent: Some(r.node_id),
                    children: None,
                    level: child_level,
                    start: r.mid,
                    end: r.end,
                    centroid: r.right_geom.0,
                    diameter: r.right_geom.1,
                });
                nodes[r.node_id].children = Some((left_id, right_id));
                frontier.push((left_id, r.start, r.mid, child_level));
                frontier.push((right_id, r.mid, r.end, child_level));
            }
        }

        let pos = invert_permutation(&perm);
        ClusterTree {
            nodes,
            perm,
            pos,
            leaf_size,
            height,
        }
    }

    /// Number of nodes in the tree.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The global point indices owned by node `id`.
    #[inline]
    pub fn indices(&self, id: usize) -> &[usize] {
        let n = &self.nodes[id];
        &self.perm[n.start..n.end]
    }

    /// Ids of all leaf nodes, in BFS order.
    pub fn leaves(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|n| n.is_leaf())
            .map(|n| n.id)
            .collect()
    }

    /// Ids of all nodes at the given level.
    pub fn nodes_at_level(&self, level: usize) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|n| n.level == level)
            .map(|n| n.id)
            .collect()
    }

    /// Geometric distance between the centroids of two nodes.
    pub fn node_distance(&self, a: usize, b: usize) -> f64 {
        let ca = &self.nodes[a].centroid;
        let cb = &self.nodes[b].centroid;
        let mut s = 0.0;
        for k in 0..ca.len() {
            let d = ca[k] - cb[k];
            s += d * d;
        }
        s.sqrt()
    }
}

/// Compute `(centroid, diameter)` for a set of point indices.  The diameter is
/// estimated as the diagonal of the axis-aligned bounding box, which is an
/// upper bound on the true diameter and deterministic.
fn node_geometry(points: &PointSet, idx: &[usize]) -> (Vec<f64>, f64) {
    if idx.is_empty() {
        return (vec![0.0; points.dim()], 0.0);
    }
    let centroid = points.centroid(idx);
    let (lo, hi) = points.bounding_box(idx);
    let mut diag2 = 0.0;
    for k in 0..points.dim() {
        let d = hi[k] - lo[k];
        diag2 += d * d;
    }
    (centroid, diag2.sqrt())
}

/// kd-tree split: choose the widest bounding-box dimension and split at the
/// median coordinate.  Returns the split position within `idx`.
fn kd_split(points: &PointSet, idx: &mut [usize]) -> usize {
    let (lo, hi) = points.bounding_box(idx);
    let mut best_dim = 0;
    let mut best_width = -1.0;
    for k in 0..points.dim() {
        let w = hi[k] - lo[k];
        if w > best_width {
            best_width = w;
            best_dim = k;
        }
    }
    let mid = idx.len() / 2;
    idx.select_nth_unstable_by(mid, |&a, &b| {
        points.point(a)[best_dim]
            .partial_cmp(&points.point(b)[best_dim])
            .unwrap()
    });
    mid
}

/// Two-means split for high-dimensional points: pick two far-apart seeds, run
/// two Lloyd iterations, then split at the median of the distance difference
/// so the two halves are balanced (keeping the binary tree complete, which
/// the coarsening algorithm relies on for load balance).
fn two_means_split(points: &PointSet, idx: &mut [usize], rng: &mut StdRng) -> usize {
    // Seed selection: a random point, then the point farthest from it.
    let a = idx[rng.gen_range(0..idx.len())];
    let b = *idx
        .iter()
        .max_by(|&&x, &&y| points.dist2(a, x).partial_cmp(&points.dist2(a, y)).unwrap())
        .unwrap();
    let mut c1: Vec<f64> = points.point(a).to_vec();
    let mut c2: Vec<f64> = points.point(b).to_vec();

    // A couple of Lloyd iterations to settle the two centers.
    for _ in 0..2 {
        let mut s1 = vec![0.0; points.dim()];
        let mut s2 = vec![0.0; points.dim()];
        let mut n1 = 0usize;
        let mut n2 = 0usize;
        for &i in idx.iter() {
            let d1 = points.dist2_to(i, &c1);
            let d2 = points.dist2_to(i, &c2);
            let p = points.point(i);
            if d1 <= d2 {
                for k in 0..points.dim() {
                    s1[k] += p[k];
                }
                n1 += 1;
            } else {
                for k in 0..points.dim() {
                    s2[k] += p[k];
                }
                n2 += 1;
            }
        }
        if n1 > 0 {
            for k in 0..points.dim() {
                c1[k] = s1[k] / n1 as f64;
            }
        }
        if n2 > 0 {
            for k in 0..points.dim() {
                c2[k] = s2[k] / n2 as f64;
            }
        }
    }

    // Balanced split on the signed distance difference.
    let mid = idx.len() / 2;
    idx.select_nth_unstable_by(mid, |&x, &y| {
        let dx = points.dist2_to(x, &c1) - points.dist2_to(x, &c2);
        let dy = points.dist2_to(y, &c1) - points.dist2_to(y, &c2);
        dx.partial_cmp(&dy).unwrap()
    });
    mid
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrox_points::{generate, DatasetId};

    fn check_tree_invariants(tree: &ClusterTree, n: usize) {
        // The permutation is a permutation.
        let mut sorted = tree.perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        // Root covers everything.
        assert_eq!(tree.nodes[0].start, 0);
        assert_eq!(tree.nodes[0].end, n);
        // Children partition their parent exactly.
        for node in &tree.nodes {
            if let Some((l, r)) = node.children {
                assert_eq!(tree.nodes[l].start, node.start);
                assert_eq!(tree.nodes[l].end, tree.nodes[r].start);
                assert_eq!(tree.nodes[r].end, node.end);
                assert_eq!(tree.nodes[l].parent, Some(node.id));
                assert_eq!(tree.nodes[r].parent, Some(node.id));
                assert_eq!(tree.nodes[l].level, node.level + 1);
            } else {
                assert!(node.num_points() <= tree.leaf_size || node.id == 0);
            }
        }
        // Leaves tile the permutation.
        let total: usize = tree
            .leaves()
            .iter()
            .map(|&l| tree.nodes[l].num_points())
            .sum();
        assert_eq!(total, n);
    }

    #[test]
    fn kd_tree_on_2d_grid() {
        let pts = generate(DatasetId::Grid, 256, 1);
        let tree = ClusterTree::build(&pts, PartitionMethod::Auto, 16, 0);
        check_tree_invariants(&tree, 256);
        assert!(tree.height >= 4);
        for &l in &tree.leaves() {
            assert!(tree.nodes[l].num_points() <= 16);
        }
    }

    #[test]
    fn two_means_on_high_dim() {
        let pts = generate(DatasetId::Higgs, 512, 2);
        let tree = ClusterTree::build(&pts, PartitionMethod::Auto, 32, 0);
        check_tree_invariants(&tree, 512);
        // Balanced splits give a complete-ish tree: every leaf within one
        // level of the height.
        for &l in &tree.leaves() {
            assert!(tree.nodes[l].level + 1 >= tree.height);
        }
    }

    #[test]
    fn leaf_size_one_gives_singleton_leaves() {
        let pts = generate(DatasetId::Random, 32, 3);
        let tree = ClusterTree::build(&pts, PartitionMethod::KdTree, 1, 0);
        check_tree_invariants(&tree, 32);
        for &l in &tree.leaves() {
            assert_eq!(tree.nodes[l].num_points(), 1);
        }
    }

    #[test]
    fn small_set_is_single_leaf() {
        let pts = generate(DatasetId::Random, 10, 4);
        let tree = ClusterTree::build(&pts, PartitionMethod::Auto, 16, 0);
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.height, 0);
        assert!(tree.nodes[0].is_leaf());
    }

    #[test]
    fn node_numbering_is_bfs() {
        let pts = generate(DatasetId::Grid, 128, 5);
        let tree = ClusterTree::build(&pts, PartitionMethod::KdTree, 8, 0);
        for node in &tree.nodes {
            if let Some(p) = node.parent {
                assert!(p < node.id, "parent id must precede child id");
            }
            if let Some((l, r)) = node.children {
                assert_eq!(r, l + 1, "siblings must be adjacent in BFS order");
            }
        }
        // Levels are non-decreasing with id in BFS order.
        for w in tree.nodes.windows(2) {
            assert!(w[0].level <= w[1].level);
        }
    }

    #[test]
    fn centroid_and_diameter_are_sane() {
        let pts = generate(DatasetId::Unit, 200, 6);
        let tree = ClusterTree::build(&pts, PartitionMethod::KdTree, 16, 0);
        let root = &tree.nodes[0];
        // All unit-circle points are within the bounding-box diagonal of each
        // other.
        assert!(root.diameter >= 1.9 && root.diameter <= 3.0);
        assert!(root.centroid.iter().all(|c| c.abs() < 0.2));
        // Deeper nodes have smaller diameters.
        let leaf = *tree.leaves().last().unwrap();
        assert!(tree.nodes[leaf].diameter < root.diameter);
    }

    #[test]
    fn identical_points_do_not_loop_forever() {
        let pts = matrox_points::PointSet::new(2, vec![0.5; 2 * 64]);
        let tree = ClusterTree::build(&pts, PartitionMethod::KdTree, 4, 0);
        check_tree_invariants(&tree, 64);
    }
}
