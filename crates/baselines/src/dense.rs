//! Dense (un-approximated) GEMM baseline.
//!
//! Sections 2.2 and 4.2 compare MatRox against computing `K * W` directly
//! with GEMM (MKL in the paper).  This module provides two flavours:
//!
//! * [`DenseBaseline::evaluate_implicit`] — never assembles `K`, evaluating
//!   kernel entries on the fly (memory-friendly; used for accuracy
//!   references);
//! * [`DenseBaseline::evaluate_assembled`] — assembles the full `N x N`
//!   kernel matrix once and multiplies it with the parallel GEMM kernel
//!   (the true "GEMM baseline": its `O(N^2 Q)` flop count is what HMatrix
//!   evaluation beats by the factors reported in the paper).

use matrox_linalg::{par_gemm, GemmOp, Matrix};
use matrox_points::{dense_kernel_matmul, kernel_block_par, Kernel, PointSet};

/// The dense GEMM comparator.
pub struct DenseBaseline<'a> {
    points: &'a PointSet,
    kernel: Kernel,
}

impl<'a> DenseBaseline<'a> {
    /// Create a dense baseline for the given points and kernel.
    pub fn new(points: &'a PointSet, kernel: Kernel) -> Self {
        DenseBaseline { points, kernel }
    }

    /// `K * W` without assembling `K`.
    pub fn evaluate_implicit(&self, w: &Matrix) -> Matrix {
        dense_kernel_matmul(self.points, &self.kernel, w)
    }

    /// Assemble `K` explicitly and multiply with parallel GEMM.
    pub fn evaluate_assembled(&self, w: &Matrix) -> Matrix {
        let n = self.points.len();
        let idx: Vec<usize> = (0..n).collect();
        let k = kernel_block_par(self.points, &self.kernel, &idx, &idx);
        let mut y = Matrix::zeros(n, w.cols());
        par_gemm(1.0, &k, GemmOp::NoTrans, w, GemmOp::NoTrans, 0.0, &mut y);
        y
    }

    /// Flop count of the dense product (for GFLOP/s reporting).
    pub fn flops(&self, q: usize) -> u64 {
        2 * (self.points.len() as u64) * (self.points.len() as u64) * q as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrox_linalg::relative_error;
    use matrox_points::{generate, DatasetId};
    use rand::SeedableRng;

    #[test]
    fn implicit_and_assembled_agree() {
        let pts = generate(DatasetId::Random, 300, 5);
        let baseline = DenseBaseline::new(&pts, Kernel::Gaussian { bandwidth: 1.0 });
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let w = Matrix::random_uniform(300, 6, &mut rng);
        let a = baseline.evaluate_implicit(&w);
        let b = baseline.evaluate_assembled(&w);
        assert!(relative_error(&a, &b) < 1e-12);
    }

    #[test]
    fn flops_scale_quadratically() {
        let pts = generate(DatasetId::Random, 100, 5);
        let baseline = DenseBaseline::new(&pts, Kernel::paper_gaussian());
        assert_eq!(baseline.flops(2), 2 * 100 * 100 * 2);
    }
}
