//! Dense Cholesky solver baseline.
//!
//! The solver-side analogue of [`crate::DenseBaseline`]: it assembles the
//! full `N x N` kernel matrix and factors it with the same dense Cholesky
//! kernel the structured factorization uses for its *leaf* blocks
//! (`matrox_linalg::cholesky`).  Because factorization and triangular solves
//! are shared code, the time and accuracy gap measured against
//! `HMatrix::solve` isolates exactly the effect of the rank structure —
//! `O(N^3)` dense elimination versus the ULV sweeps — mirroring how the
//! GEMM baseline isolates the structure effect for `matmul`.

use matrox_linalg::{cholesky, cholesky_solve, cholesky_solve_matrix, Matrix, NotPositiveDefinite};
use matrox_points::{kernel_block_par, Kernel, PointSet};

/// Dense Cholesky comparator: assembled `K = L L^T`, direct solves.
pub struct DenseCholeskyBaseline {
    l: Matrix,
}

impl DenseCholeskyBaseline {
    /// Assemble the kernel matrix over all points and factor it.
    ///
    /// Fails with [`NotPositiveDefinite`] when the assembled matrix has a
    /// non-positive pivot (e.g. a kernel bandwidth that makes `K`
    /// numerically rank deficient).
    pub fn new(points: &PointSet, kernel: &Kernel) -> Result<Self, NotPositiveDefinite> {
        let idx: Vec<usize> = (0..points.len()).collect();
        let k = kernel_block_par(points, kernel, &idx, &idx);
        let l = cholesky(&k)?;
        Ok(DenseCholeskyBaseline { l })
    }

    /// Problem size `N`.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solve `K x = b` for one right-hand side.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        cholesky_solve(&self.l, b)
    }

    /// Solve `K X = B` for a multi-column right-hand side.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        cholesky_solve_matrix(&self.l, b)
    }

    /// Flop count of the factorization (`N^3 / 3`, for rate reporting).
    pub fn factor_flops(&self) -> u64 {
        let n = self.l.rows() as u64;
        n * n * n / 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrox_points::{dense_kernel_matmul, generate, DatasetId};
    use rand::SeedableRng;

    #[test]
    fn solves_the_exact_kernel_system() {
        let pts = generate(DatasetId::Grid, 144, 3);
        // Bandwidth at the grid spacing keeps the kernel matrix SPD and
        // well conditioned.
        let kernel = Kernel::Gaussian {
            bandwidth: 1.0 / 12.0,
        };
        let baseline = DenseCholeskyBaseline::new(&pts, &kernel).expect("SPD");
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let x_true = Matrix::random_uniform(144, 3, &mut rng);
        let b = dense_kernel_matmul(&pts, &kernel, &x_true);
        let x = baseline.solve_matrix(&b);
        assert!(matrox_linalg::relative_error(&x, &x_true) < 1e-9);
        // Vector path agrees with the matrix path.
        let bv = b.col(0);
        let xv = baseline.solve(&bv);
        for (i, v) in xv.iter().enumerate() {
            assert!((v - x.get(i, 0)).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_deficient_kernel_is_rejected() {
        // Two coincident points give an exactly singular kernel matrix.
        let pts = matrox_points::PointSet::new(2, vec![0.1, 0.2, 0.1, 0.2, 0.5, 0.5]);
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        assert!(DenseCholeskyBaseline::new(&pts, &kernel).is_err());
    }
}
