//! STRUMPACK-style evaluation baseline.
//!
//! STRUMPACK is specialized to Hierarchical Semi-Separable (HSS) structure —
//! "a very large admissibility condition in which all off-diagonal blocks are
//! low-rank approximated" (Section 4.1) — and evaluates with level-by-level
//! traversals that synchronize between levels.  The paper also notes that
//! STRUMPACK does not optimize for load balance, so within a level the nodes
//! are simply split across threads regardless of their sranks.
//!
//! This module reproduces those properties over the shared compression
//! substrate: it refuses non-HSS structures, stores blocks in the per-block
//! ("tree-based") layout, and runs every tree level as a parallel loop with
//! an implicit barrier after it.

use matrox_compress::Compression;
use matrox_linalg::{gemm_seq, GemmOp, Matrix};
use matrox_tree::{ClusterTree, HTree, Structure};
use rayon::prelude::*;
use std::collections::HashMap;

/// Error returned when the baseline cannot handle the requested structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedStructure(pub String);

impl std::fmt::Display for UnsupportedStructure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported structure: {}", self.0)
    }
}
impl std::error::Error for UnsupportedStructure {}

/// STRUMPACK-style evaluator (HSS only, level-by-level with barriers).
pub struct StrumpackEvaluator<'a> {
    tree: &'a ClusterTree,
    compression: &'a Compression,
    far_by_target: HashMap<usize, Vec<(usize, &'a Matrix)>>,
    near_diag: Vec<(usize, &'a Matrix)>,
}

impl<'a> StrumpackEvaluator<'a> {
    /// Wrap a compression output.  Fails unless the HTree was built with the
    /// HSS (weak admissibility) structure, mirroring the library's scope.
    pub fn new(
        tree: &'a ClusterTree,
        htree: &'a HTree,
        compression: &'a Compression,
    ) -> Result<Self, UnsupportedStructure> {
        if htree.structure != Structure::Hss {
            return Err(UnsupportedStructure(format!(
                "STRUMPACK baseline supports only HSS, got {}",
                htree.structure.name()
            )));
        }
        let mut far_by_target: HashMap<usize, Vec<(usize, &Matrix)>> = HashMap::new();
        for ((i, j), b) in &compression.far_blocks {
            far_by_target.entry(*i).or_default().push((*j, b));
        }
        let near_diag = compression
            .near_blocks
            .iter()
            .map(|((i, _j), d)| (*i, d))
            .collect();
        Ok(StrumpackEvaluator {
            tree,
            compression,
            far_by_target,
            near_diag,
        })
    }

    /// Parallel level-by-level evaluation ("TB + DS" bar for STRUMPACK; the
    /// scheduling is static per level with a barrier between levels).
    pub fn evaluate(&self, w: &Matrix) -> Matrix {
        self.evaluate_impl(w, true)
    }

    /// Fully sequential evaluation ("TB (seq)").
    pub fn evaluate_sequential(&self, w: &Matrix) -> Matrix {
        self.evaluate_impl(w, false)
    }

    fn evaluate_impl(&self, w: &Matrix, parallel: bool) -> Matrix {
        let tree = self.tree;
        let q = w.cols();
        let n = tree.perm.len();
        assert_eq!(w.rows(), n);
        let n_nodes = tree.num_nodes();

        // Upward pass, one parallel loop + barrier per level.
        let mut t: Vec<Matrix> = vec![Matrix::zeros(0, q); n_nodes];
        for level in (1..=tree.height).rev() {
            let ids = tree.nodes_at_level(level);
            let level_t: Vec<(usize, Matrix)> = if parallel {
                ids.par_iter()
                    .map(|&id| (id, self.compute_t(id, w, &t)))
                    .collect()
            } else {
                ids.iter()
                    .map(|&id| (id, self.compute_t(id, w, &t)))
                    .collect()
            };
            for (id, m) in level_t {
                t[id] = m;
            }
        }

        // Coupling: per node, gather contributions from its (sibling) far
        // interactions; embarrassingly parallel per target node.
        let targets: Vec<usize> = (0..n_nodes).collect();
        let compute_s = |&id: &usize| -> (usize, Matrix) {
            let srank = self.compression.sranks[id];
            let mut s_i = Matrix::zeros(srank, q);
            if let Some(list) = self.far_by_target.get(&id) {
                for (j, b) in list {
                    if b.rows() == 0 || b.cols() == 0 {
                        continue;
                    }
                    gemm_seq(
                        1.0,
                        b,
                        GemmOp::NoTrans,
                        &t[*j],
                        GemmOp::NoTrans,
                        1.0,
                        &mut s_i,
                    );
                }
            }
            (id, s_i)
        };
        let mut s: Vec<Matrix> = vec![Matrix::zeros(0, q); n_nodes];
        let s_list: Vec<(usize, Matrix)> = if parallel {
            targets.par_iter().map(compute_s).collect()
        } else {
            targets.iter().map(compute_s).collect()
        };
        for (id, m) in s_list {
            s[id] = m;
        }

        // Downward pass, level by level with a barrier per level.
        let mut y = Matrix::zeros(n, q);
        for level in 1..=tree.height {
            let ids = tree.nodes_at_level(level);
            // Compute expansions in parallel, then apply pushes/outputs
            // sequentially (the barrier).
            let expansions: Vec<(usize, Matrix)> = if parallel {
                ids.par_iter()
                    .map(|&id| (id, self.expand(id, &s[id], q)))
                    .collect()
            } else {
                ids.iter()
                    .map(|&id| (id, self.expand(id, &s[id], q)))
                    .collect()
            };
            for (id, expanded) in expansions {
                if expanded.is_empty() {
                    continue;
                }
                let node = &tree.nodes[id];
                if node.is_leaf() {
                    y.scatter_add_rows(tree.indices(id), &expanded);
                } else {
                    let (l, r) = node.children.unwrap();
                    let rl = self.compression.sranks[l];
                    let rr = self.compression.sranks[r];
                    if rl > 0 {
                        s[l].add_assign(&expanded.submatrix(0, rl, 0, q));
                    }
                    if rr > 0 {
                        s[r].add_assign(&expanded.submatrix(rl, rl + rr, 0, q));
                    }
                }
            }
        }

        // Diagonal (near) blocks.
        let diag_contribs: Vec<(usize, Matrix)> = if parallel {
            self.near_diag
                .par_iter()
                .map(|(i, d)| {
                    let wj = w.gather_rows(tree.indices(*i));
                    let mut contrib = Matrix::zeros(d.rows(), q);
                    gemm_seq(
                        1.0,
                        d,
                        GemmOp::NoTrans,
                        &wj,
                        GemmOp::NoTrans,
                        0.0,
                        &mut contrib,
                    );
                    (*i, contrib)
                })
                .collect()
        } else {
            self.near_diag
                .iter()
                .map(|(i, d)| {
                    let wj = w.gather_rows(tree.indices(*i));
                    let mut contrib = Matrix::zeros(d.rows(), q);
                    gemm_seq(
                        1.0,
                        d,
                        GemmOp::NoTrans,
                        &wj,
                        GemmOp::NoTrans,
                        0.0,
                        &mut contrib,
                    );
                    (*i, contrib)
                })
                .collect()
        };
        for (i, contrib) in diag_contribs {
            y.scatter_add_rows(tree.indices(i), &contrib);
        }
        y
    }

    fn compute_t(&self, id: usize, w: &Matrix, t: &[Matrix]) -> Matrix {
        let q = w.cols();
        let basis = &self.compression.bases[id];
        if basis.srank == 0 {
            return Matrix::zeros(0, q);
        }
        let node = &self.tree.nodes[id];
        let input = if node.is_leaf() {
            w.gather_rows(self.tree.indices(id))
        } else {
            let (l, r) = node.children.unwrap();
            match (t[l].rows(), t[r].rows()) {
                (0, 0) => Matrix::zeros(0, q),
                (0, _) => t[r].clone(),
                (_, 0) => t[l].clone(),
                _ => t[l].vstack(&t[r]),
            }
        };
        let mut ti = Matrix::zeros(basis.srank, q);
        gemm_seq(
            1.0,
            &basis.v,
            GemmOp::Trans,
            &input,
            GemmOp::NoTrans,
            0.0,
            &mut ti,
        );
        ti
    }

    fn expand(&self, id: usize, s_i: &Matrix, q: usize) -> Matrix {
        let basis = &self.compression.bases[id];
        if basis.srank == 0 || s_i.rows() != basis.srank {
            return Matrix::zeros(0, 0);
        }
        let node = &self.tree.nodes[id];
        let rows = if node.is_leaf() {
            node.num_points()
        } else {
            let (l, r) = node.children.unwrap();
            self.compression.sranks[l] + self.compression.sranks[r]
        };
        let mut expanded = Matrix::zeros(rows, q);
        gemm_seq(
            1.0,
            &basis.u,
            GemmOp::NoTrans,
            s_i,
            GemmOp::NoTrans,
            0.0,
            &mut expanded,
        );
        expanded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrox_compress::{compress, reference_evaluate, CompressionParams};
    use matrox_linalg::relative_error;
    use matrox_points::{generate, DatasetId, Kernel};
    use matrox_sampling::sample_nodes_exhaustive;
    use matrox_tree::PartitionMethod;
    use rand::SeedableRng;

    #[test]
    fn rejects_non_hss_structures() {
        let pts = generate(DatasetId::Grid, 128, 7);
        let tree = ClusterTree::build(&pts, PartitionMethod::KdTree, 16, 0);
        let htree = HTree::build(&tree, Structure::Geometric { tau: 0.65 });
        let sampling = sample_nodes_exhaustive(&pts, &tree);
        let c = compress(
            &pts,
            &tree,
            &htree,
            &Kernel::paper_gaussian(),
            &sampling,
            &CompressionParams::default(),
        );
        assert!(StrumpackEvaluator::new(&tree, &htree, &c).is_err());
    }

    #[test]
    fn matches_reference_on_hss() {
        let pts = generate(DatasetId::Unit, 512, 7);
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let tree = ClusterTree::build(&pts, PartitionMethod::KdTree, 32, 0);
        let htree = HTree::build(&tree, Structure::Hss);
        let sampling = sample_nodes_exhaustive(&pts, &tree);
        let c = compress(
            &pts,
            &tree,
            &htree,
            &kernel,
            &sampling,
            &CompressionParams::default(),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let w = Matrix::random_uniform(512, 5, &mut rng);
        let y_ref = reference_evaluate(&c, &tree, &htree, &w);
        let eval = StrumpackEvaluator::new(&tree, &htree, &c).unwrap();
        assert!(relative_error(&eval.evaluate(&w), &y_ref) < 1e-12);
        assert!(relative_error(&eval.evaluate_sequential(&w), &y_ref) < 1e-12);
    }
}
