//! SMASH-style evaluation baseline.
//!
//! SMASH (Cai et al.) supports only 1–3-dimensional point sets and only
//! HMatrix-*vector* products (`Q = 1`), and traverses the cluster tree
//! level-by-level so "synchronization overheads increase with the length of
//! the critical path" (Section 1).  Its default kernel is the
//! inverse-distance kernel `1/||x-y||` with a geometric admissibility of
//! τ = 0.65, which is also the configuration MatRox uses when comparing
//! against it (Section 4.1).
//!
//! This baseline enforces those restrictions (dimension ≤ 3, single
//! right-hand side) and otherwise evaluates level-by-level over the shared
//! compression substrate.

use matrox_compress::Compression;
use matrox_linalg::{gemv, GemmOp, Matrix};
use matrox_tree::{ClusterTree, HTree};
use rayon::prelude::*;
use std::collections::HashMap;

/// Error for inputs outside SMASH's supported scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedInput(pub String);

impl std::fmt::Display for UnsupportedInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported input: {}", self.0)
    }
}
impl std::error::Error for UnsupportedInput {}

/// SMASH-style evaluator: matrix-vector only, low-dimensional points only,
/// level-by-level traversal.
pub struct SmashEvaluator<'a> {
    tree: &'a ClusterTree,
    compression: &'a Compression,
    far_by_target: HashMap<usize, Vec<(usize, &'a Matrix)>>,
}

impl<'a> SmashEvaluator<'a> {
    /// Wrap a compression output.  `dim` is the dimensionality of the points
    /// the tree was built over; SMASH only supports `dim <= 3`.
    pub fn new(
        tree: &'a ClusterTree,
        _htree: &'a HTree,
        compression: &'a Compression,
        dim: usize,
    ) -> Result<Self, UnsupportedInput> {
        if dim > 3 {
            return Err(UnsupportedInput(format!(
                "SMASH baseline supports 1-3 dimensional points, got d = {dim}"
            )));
        }
        let mut far_by_target: HashMap<usize, Vec<(usize, &Matrix)>> = HashMap::new();
        for ((i, j), b) in &compression.far_blocks {
            far_by_target.entry(*i).or_default().push((*j, b));
        }
        Ok(SmashEvaluator {
            tree,
            compression,
            far_by_target,
        })
    }

    /// Evaluate the matrix-vector product `y = K~ * w` (parallel per level).
    pub fn evaluate(&self, w: &[f64]) -> Vec<f64> {
        self.evaluate_impl(w, true)
    }

    /// Sequential matrix-vector product.
    pub fn evaluate_sequential(&self, w: &[f64]) -> Vec<f64> {
        self.evaluate_impl(w, false)
    }

    fn evaluate_impl(&self, w: &[f64], parallel: bool) -> Vec<f64> {
        let tree = self.tree;
        let n = tree.perm.len();
        assert_eq!(w.len(), n, "SMASH evaluates matrix-vector products only");
        let n_nodes = tree.num_nodes();

        // Upward pass over the vector, level by level.
        let mut t: Vec<Vec<f64>> = vec![Vec::new(); n_nodes];
        for level in (1..=tree.height).rev() {
            let ids = tree.nodes_at_level(level);
            let compute = |&id: &usize| -> (usize, Vec<f64>) {
                let basis = &self.compression.bases[id];
                if basis.srank == 0 {
                    return (id, Vec::new());
                }
                let node = &tree.nodes[id];
                let input: Vec<f64> = if node.is_leaf() {
                    tree.indices(id).iter().map(|&p| w[p]).collect()
                } else {
                    let (l, r) = node.children.unwrap();
                    let mut v = t[l].clone();
                    v.extend_from_slice(&t[r]);
                    v
                };
                let mut out = vec![0.0; basis.srank];
                gemv(1.0, &basis.v, GemmOp::Trans, &input, 0.0, &mut out);
                (id, out)
            };
            let results: Vec<(usize, Vec<f64>)> = if parallel {
                ids.par_iter().map(compute).collect()
            } else {
                ids.iter().map(compute).collect()
            };
            for (id, v) in results {
                t[id] = v;
            }
        }

        // Coupling per target node.
        let mut s: Vec<Vec<f64>> = (0..n_nodes)
            .map(|id| vec![0.0; self.compression.sranks[id]])
            .collect();
        let coupling = |id: usize| -> Vec<f64> {
            let mut acc = vec![0.0; self.compression.sranks[id]];
            if let Some(list) = self.far_by_target.get(&id) {
                for (j, b) in list {
                    if b.rows() == 0 || b.cols() == 0 || t[*j].is_empty() {
                        continue;
                    }
                    gemv(1.0, b, GemmOp::NoTrans, &t[*j], 1.0, &mut acc);
                }
            }
            acc
        };
        if parallel {
            let results: Vec<(usize, Vec<f64>)> = (0..n_nodes)
                .into_par_iter()
                .map(|id| (id, coupling(id)))
                .collect();
            for (id, v) in results {
                s[id] = v;
            }
        } else {
            for id in 0..n_nodes {
                s[id] = coupling(id);
            }
        }

        // Downward pass, level by level, plus near blocks.
        let mut y = vec![0.0; n];
        for level in 1..=tree.height {
            for id in tree.nodes_at_level(level) {
                let basis = &self.compression.bases[id];
                if basis.srank == 0 || s[id].len() != basis.srank {
                    continue;
                }
                let node = &tree.nodes[id];
                if node.is_leaf() {
                    let mut contrib = vec![0.0; node.num_points()];
                    gemv(1.0, &basis.u, GemmOp::NoTrans, &s[id], 0.0, &mut contrib);
                    for (k, &p) in tree.indices(id).iter().enumerate() {
                        y[p] += contrib[k];
                    }
                } else {
                    let (l, r) = node.children.unwrap();
                    let rl = self.compression.sranks[l];
                    let rr = self.compression.sranks[r];
                    let mut expanded = vec![0.0; rl + rr];
                    gemv(1.0, &basis.u, GemmOp::NoTrans, &s[id], 0.0, &mut expanded);
                    for k in 0..rl {
                        s[l][k] += expanded[k];
                    }
                    for k in 0..rr {
                        s[r][k] += expanded[rl + k];
                    }
                }
            }
        }
        for ((i, j), d) in &self.compression.near_blocks {
            let wj: Vec<f64> = self.tree.indices(*j).iter().map(|&p| w[p]).collect();
            let mut contrib = vec![0.0; d.rows()];
            gemv(1.0, d, GemmOp::NoTrans, &wj, 0.0, &mut contrib);
            for (k, &p) in self.tree.indices(*i).iter().enumerate() {
                y[p] += contrib[k];
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrox_compress::{compress, reference_evaluate, CompressionParams};
    use matrox_points::{generate, DatasetId, Kernel};
    use matrox_sampling::sample_nodes_exhaustive;
    use matrox_tree::{PartitionMethod, Structure};
    use rand::SeedableRng;

    #[test]
    fn rejects_high_dimensional_points() {
        let pts = generate(DatasetId::Higgs, 128, 7);
        let tree = ClusterTree::build(&pts, PartitionMethod::TwoMeans, 16, 0);
        let htree = HTree::build(&tree, Structure::Geometric { tau: 0.65 });
        let sampling = sample_nodes_exhaustive(&pts, &tree);
        let c = compress(
            &pts,
            &tree,
            &htree,
            &Kernel::smash_default(),
            &sampling,
            &CompressionParams::default(),
        );
        assert!(SmashEvaluator::new(&tree, &htree, &c, pts.dim()).is_err());
    }

    #[test]
    fn matches_reference_on_scientific_dataset() {
        let pts = generate(DatasetId::Sunflower, 512, 7);
        let kernel = Kernel::smash_default();
        let tree = ClusterTree::build(&pts, PartitionMethod::KdTree, 32, 0);
        let htree = HTree::build(&tree, Structure::Geometric { tau: 0.65 });
        let sampling = sample_nodes_exhaustive(&pts, &tree);
        let c = compress(
            &pts,
            &tree,
            &htree,
            &kernel,
            &sampling,
            &CompressionParams::default(),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let w = Matrix::random_uniform(512, 1, &mut rng);
        let y_ref = reference_evaluate(&c, &tree, &htree, &w);
        let eval = SmashEvaluator::new(&tree, &htree, &c, pts.dim()).unwrap();
        let wv: Vec<f64> = w.as_slice().to_vec();
        let y = eval.evaluate(&wv);
        let y_seq = eval.evaluate_sequential(&wv);
        let mut err = 0.0;
        let mut err_seq = 0.0;
        let mut base = 0.0;
        for i in 0..512 {
            err += (y[i] - y_ref.get(i, 0)).powi(2);
            err_seq += (y_seq[i] - y_ref.get(i, 0)).powi(2);
            base += y_ref.get(i, 0).powi(2);
        }
        assert!((err / base).sqrt() < 1e-12);
        assert!((err_seq / base).sqrt() < 1e-12);
    }
}
