//! GOFMM-style evaluation baseline.
//!
//! The paper characterizes GOFMM's evaluation as follows: submatrices live in
//! a *tree-based* storage (one allocation per block, reached by walking the
//! HTree), the reduction loops over near/far interactions are parallelized
//! with atomics on the shared output, and the tree loops are scheduled as a
//! dynamic task graph that "trades locality for load balance" (Sections 1 and
//! 4.3).  This module re-creates those properties on top of the same
//! compression output and the same GEMM kernels used by MatRox, so measured
//! differences come from scheduling, synchronization and data layout — which
//! is exactly what Figure 5 isolates.
//!
//! * near/far loops: `rayon` parallel iteration over *interactions* (not
//!   conflict-free groups), with a `parking_lot` mutex per output node to
//!   stand in for the `#pragma omp atomic` reductions of Figure 1d;
//! * tree loops: recursive `rayon::join` task parallelism (dynamic work
//!   stealing) instead of MatRox's locality-aware coarsen partitions;
//! * storage: the unordered, per-block allocations of
//!   [`matrox_compress::Compression`] ("TB" in the figures).

use matrox_compress::Compression;
use matrox_linalg::{gemm_seq, GemmOp, Matrix};
use matrox_tree::{ClusterTree, HTree};
// CONCURRENCY: the baseline's level-parallel sweeps accumulate into
// per-node cells; unlike the executor (disjoint-slot proofs + RawSlots),
// the baseline deliberately keeps the simple tree-based storage of the
// paper, so the cells are Mutex-guarded.  Contention is per-node and the
// baseline is measured for *time*, so the locks are part of what it models.
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::HashMap;

/// GOFMM-style evaluator over tree-based storage.
pub struct GofmmEvaluator<'a> {
    tree: &'a ClusterTree,
    compression: &'a Compression,
    near: Vec<((usize, usize), &'a Matrix)>,
    far: Vec<((usize, usize), &'a Matrix)>,
}

impl<'a> GofmmEvaluator<'a> {
    /// Wrap a compression output for GOFMM-style evaluation.
    pub fn new(tree: &'a ClusterTree, _htree: &'a HTree, compression: &'a Compression) -> Self {
        let near = compression
            .near_blocks
            .iter()
            .map(|((i, j), m)| ((*i, *j), m))
            .collect();
        let far = compression
            .far_blocks
            .iter()
            .map(|((i, j), m)| ((*i, *j), m))
            .collect();
        GofmmEvaluator {
            tree,
            compression,
            near,
            far,
        }
    }

    /// Evaluate `Y = K~ * W` with dynamic task scheduling ("TB + DS").
    pub fn evaluate(&self, w: &Matrix) -> Matrix {
        self.evaluate_impl(w, true)
    }

    /// Sequential evaluation over the tree-based storage ("TB (seq)").
    pub fn evaluate_sequential(&self, w: &Matrix) -> Matrix {
        self.evaluate_impl(w, false)
    }

    /// Multi-RHS evaluation processing `W` in panels of `panel_width`
    /// columns — the same batched entry point the MatRox session executor
    /// has, so plan-amortization comparisons (Figure 4) drive both systems
    /// through an identical interface.  `panel_width = 0` evaluates the
    /// whole `W` in one pass.  The result is bitwise identical to
    /// [`evaluate`](GofmmEvaluator::evaluate) column for column, since each
    /// output column accumulates independently.
    pub fn evaluate_batch(&self, w: &Matrix, panel_width: usize) -> Matrix {
        let q = w.cols();
        if panel_width == 0 || panel_width >= q {
            return self.evaluate(w);
        }
        let n = w.rows();
        let mut y = Matrix::zeros(n, q);
        let mut j0 = 0;
        while j0 < q {
            let j1 = (j0 + panel_width).min(q);
            let wp = w.submatrix(0, n, j0, j1);
            let yp = self.evaluate(&wp);
            for i in 0..n {
                y.row_mut(i)[j0..j1].copy_from_slice(yp.row(i));
            }
            j0 = j1;
        }
        y
    }

    fn evaluate_impl(&self, w: &Matrix, parallel: bool) -> Matrix {
        let tree = self.tree;
        let n = tree.perm.len();
        let q = w.cols();
        assert_eq!(w.rows(), n);
        let n_nodes = tree.num_nodes();

        // ---- upward pass: dynamic task recursion over the tree -----------
        let t: Vec<Matrix> = if parallel {
            let slots: Vec<Mutex<Matrix>> = (0..n_nodes)
                .map(|_| Mutex::new(Matrix::zeros(0, q)))
                .collect();
            if let Some((l, r)) = tree.nodes[0].children {
                rayon::join(
                    || self.upward_task(l, w, &slots),
                    || self.upward_task(r, w, &slots),
                );
            }
            slots.into_iter().map(|m| m.into_inner()).collect()
        } else {
            let mut t = vec![Matrix::zeros(0, q); n_nodes];
            for level in (1..=tree.height).rev() {
                for id in tree.nodes_at_level(level) {
                    t[id] = self.compute_t(id, w, &t);
                }
            }
            t
        };

        // ---- coupling: parallel over interactions with per-node locks ----
        let s: Vec<Matrix> = if parallel {
            let slots: Vec<Mutex<Matrix>> = self
                .compression
                .sranks
                .iter()
                .map(|&r| Mutex::new(Matrix::zeros(r, q)))
                .collect();
            self.far.par_iter().for_each(|((i, j), b)| {
                if b.rows() == 0 || b.cols() == 0 {
                    return;
                }
                let mut contrib = Matrix::zeros(b.rows(), q);
                gemm_seq(
                    1.0,
                    b,
                    GemmOp::NoTrans,
                    &t[*j],
                    GemmOp::NoTrans,
                    0.0,
                    &mut contrib,
                );
                slots[*i].lock().add_assign(&contrib);
            });
            slots.into_iter().map(|m| m.into_inner()).collect()
        } else {
            let mut s: Vec<Matrix> = self
                .compression
                .sranks
                .iter()
                .map(|&r| Matrix::zeros(r, q))
                .collect();
            for ((i, j), b) in &self.far {
                if b.rows() == 0 || b.cols() == 0 {
                    continue;
                }
                let mut si = std::mem::replace(&mut s[*i], Matrix::zeros(0, 0));
                gemm_seq(
                    1.0,
                    b,
                    GemmOp::NoTrans,
                    &t[*j],
                    GemmOp::NoTrans,
                    1.0,
                    &mut si,
                );
                s[*i] = si;
            }
            s
        };

        // ---- downward pass + near loop ------------------------------------
        let mut y = Matrix::zeros(n, q);
        if parallel {
            // Per-leaf output accumulators behind locks (atomic reductions).
            let leaf_acc: HashMap<usize, Mutex<Matrix>> = tree
                .leaves()
                .into_iter()
                .map(|l| (l, Mutex::new(Matrix::zeros(tree.nodes[l].num_points(), q))))
                .collect();
            // Downward: dynamic tasks pushing S to children.
            let s_cells: Vec<Mutex<Matrix>> = s.into_iter().map(Mutex::new).collect();
            if let Some((l, r)) = tree.nodes[0].children {
                rayon::join(
                    || self.downward_task(l, &s_cells, &leaf_acc, q),
                    || self.downward_task(r, &s_cells, &leaf_acc, q),
                );
            }
            // Near loop: parallel over interactions with locked accumulation.
            self.near.par_iter().for_each(|((i, j), d)| {
                let wj = w.gather_rows(tree.indices(*j));
                let mut contrib = Matrix::zeros(d.rows(), q);
                gemm_seq(
                    1.0,
                    d,
                    GemmOp::NoTrans,
                    &wj,
                    GemmOp::NoTrans,
                    0.0,
                    &mut contrib,
                );
                leaf_acc[i].lock().add_assign(&contrib);
            });
            for (leaf, acc) in leaf_acc {
                y.scatter_add_rows(tree.indices(leaf), &acc.into_inner());
            }
        } else {
            let mut s = s;
            for level in 1..=tree.height {
                for id in tree.nodes_at_level(level) {
                    let s_i = std::mem::replace(&mut s[id], Matrix::zeros(0, 0));
                    self.apply_down(id, &s_i, &mut s, &mut y, q);
                }
            }
            for ((i, j), d) in &self.near {
                let wj = w.gather_rows(tree.indices(*j));
                let mut contrib = Matrix::zeros(d.rows(), q);
                gemm_seq(
                    1.0,
                    d,
                    GemmOp::NoTrans,
                    &wj,
                    GemmOp::NoTrans,
                    0.0,
                    &mut contrib,
                );
                y.scatter_add_rows(tree.indices(*i), &contrib);
            }
        }
        y
    }

    fn compute_t(&self, id: usize, w: &Matrix, t: &[Matrix]) -> Matrix {
        let basis = &self.compression.bases[id];
        let q = w.cols();
        if basis.srank == 0 {
            return Matrix::zeros(0, q);
        }
        let node = &self.tree.nodes[id];
        let input = if node.is_leaf() {
            w.gather_rows(self.tree.indices(id))
        } else {
            let (l, r) = node.children.unwrap();
            match (t[l].rows(), t[r].rows()) {
                (0, 0) => Matrix::zeros(0, q),
                (0, _) => t[r].clone(),
                (_, 0) => t[l].clone(),
                _ => t[l].vstack(&t[r]),
            }
        };
        let mut ti = Matrix::zeros(basis.srank, q);
        gemm_seq(
            1.0,
            &basis.v,
            GemmOp::Trans,
            &input,
            GemmOp::NoTrans,
            0.0,
            &mut ti,
        );
        ti
    }

    fn upward_task(&self, id: usize, w: &Matrix, slots: &[Mutex<Matrix>]) {
        if let Some((l, r)) = self.tree.nodes[id].children {
            rayon::join(
                || self.upward_task(l, w, slots),
                || self.upward_task(r, w, slots),
            );
        }
        // Children are complete (join is a barrier for this subtree).
        let ti = {
            // Read children's T values from their slots.
            let node = &self.tree.nodes[id];
            let q = w.cols();
            let basis = &self.compression.bases[id];
            if basis.srank == 0 {
                Matrix::zeros(0, q)
            } else if node.is_leaf() {
                let input = w.gather_rows(self.tree.indices(id));
                let mut ti = Matrix::zeros(basis.srank, q);
                gemm_seq(
                    1.0,
                    &basis.v,
                    GemmOp::Trans,
                    &input,
                    GemmOp::NoTrans,
                    0.0,
                    &mut ti,
                );
                ti
            } else {
                let (l, r) = node.children.unwrap();
                let tl = slots[l].lock().clone();
                let tr = slots[r].lock().clone();
                let input = match (tl.rows(), tr.rows()) {
                    (0, 0) => Matrix::zeros(0, q),
                    (0, _) => tr,
                    (_, 0) => tl,
                    _ => tl.vstack(&tr),
                };
                let mut ti = Matrix::zeros(basis.srank, q);
                gemm_seq(
                    1.0,
                    &basis.v,
                    GemmOp::Trans,
                    &input,
                    GemmOp::NoTrans,
                    0.0,
                    &mut ti,
                );
                ti
            }
        };
        *slots[id].lock() = ti;
    }

    fn downward_task(
        &self,
        id: usize,
        s_cells: &[Mutex<Matrix>],
        leaf_acc: &HashMap<usize, Mutex<Matrix>>,
        q: usize,
    ) {
        let basis = &self.compression.bases[id];
        let node = &self.tree.nodes[id];
        let s_i = s_cells[id].lock().clone();
        if basis.srank != 0 && s_i.rows() == basis.srank {
            if node.is_leaf() {
                let mut contrib = Matrix::zeros(node.num_points(), q);
                gemm_seq(
                    1.0,
                    &basis.u,
                    GemmOp::NoTrans,
                    &s_i,
                    GemmOp::NoTrans,
                    0.0,
                    &mut contrib,
                );
                leaf_acc[&id].lock().add_assign(&contrib);
            } else {
                let (l, r) = node.children.unwrap();
                let rl = self.compression.bases[l].srank;
                let rr = self.compression.bases[r].srank;
                let mut expanded = Matrix::zeros(rl + rr, q);
                gemm_seq(
                    1.0,
                    &basis.u,
                    GemmOp::NoTrans,
                    &s_i,
                    GemmOp::NoTrans,
                    0.0,
                    &mut expanded,
                );
                if rl > 0 {
                    s_cells[l]
                        .lock()
                        .add_assign(&expanded.submatrix(0, rl, 0, q));
                }
                if rr > 0 {
                    s_cells[r]
                        .lock()
                        .add_assign(&expanded.submatrix(rl, rl + rr, 0, q));
                }
            }
        }
        if let Some((l, r)) = node.children {
            rayon::join(
                || self.downward_task(l, s_cells, leaf_acc, q),
                || self.downward_task(r, s_cells, leaf_acc, q),
            );
        }
    }

    fn apply_down(&self, id: usize, s_i: &Matrix, s: &mut [Matrix], y: &mut Matrix, q: usize) {
        let basis = &self.compression.bases[id];
        if basis.srank == 0 || s_i.rows() != basis.srank {
            return;
        }
        let node = &self.tree.nodes[id];
        if node.is_leaf() {
            let mut contrib = Matrix::zeros(node.num_points(), q);
            gemm_seq(
                1.0,
                &basis.u,
                GemmOp::NoTrans,
                s_i,
                GemmOp::NoTrans,
                0.0,
                &mut contrib,
            );
            y.scatter_add_rows(self.tree.indices(id), &contrib);
        } else {
            let (l, r) = node.children.unwrap();
            let rl = self.compression.bases[l].srank;
            let rr = self.compression.bases[r].srank;
            let mut expanded = Matrix::zeros(rl + rr, q);
            gemm_seq(
                1.0,
                &basis.u,
                GemmOp::NoTrans,
                s_i,
                GemmOp::NoTrans,
                0.0,
                &mut expanded,
            );
            if rl > 0 {
                let top = expanded.submatrix(0, rl, 0, q);
                if s[l].rows() == rl {
                    s[l].add_assign(&top);
                } else {
                    s[l] = top;
                }
            }
            if rr > 0 {
                let bottom = expanded.submatrix(rl, rl + rr, 0, q);
                if s[r].rows() == rr {
                    s[r].add_assign(&bottom);
                } else {
                    s[r] = bottom;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrox_compress::{compress, reference_evaluate, CompressionParams};
    use matrox_linalg::relative_error;
    use matrox_points::{generate, DatasetId, Kernel};
    use matrox_sampling::sample_nodes_exhaustive;
    use matrox_tree::{PartitionMethod, Structure};
    use rand::SeedableRng;

    fn setup(structure: Structure) -> (ClusterTree, HTree, Compression, Matrix, Matrix) {
        let pts = generate(DatasetId::Grid, 512, 7);
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let tree = ClusterTree::build(&pts, PartitionMethod::KdTree, 32, 0);
        let htree = HTree::build(&tree, structure);
        let sampling = sample_nodes_exhaustive(&pts, &tree);
        let c = compress(
            &pts,
            &tree,
            &htree,
            &kernel,
            &sampling,
            &CompressionParams::default(),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let w = Matrix::random_uniform(512, 4, &mut rng);
        let y_ref = reference_evaluate(&c, &tree, &htree, &w);
        (tree, htree, c, w, y_ref)
    }

    #[test]
    fn parallel_matches_reference_geometric() {
        let (tree, htree, c, w, y_ref) = setup(Structure::Geometric { tau: 0.65 });
        let eval = GofmmEvaluator::new(&tree, &htree, &c);
        let y = eval.evaluate(&w);
        assert!(relative_error(&y, &y_ref) < 1e-12);
    }

    #[test]
    fn batched_panels_match_full_evaluation() {
        let (tree, htree, c, w, y_ref) = setup(Structure::Geometric { tau: 0.65 });
        let eval = GofmmEvaluator::new(&tree, &htree, &c);
        let full = eval.evaluate_batch(&w, 0);
        assert!(relative_error(&full, &y_ref) < 1e-12);
        for panel in [1usize, 2, 3, 4, 16] {
            let y = eval.evaluate_batch(&w, panel);
            assert!(
                relative_error(&y, &full) < 1e-15,
                "panel {panel} diverged from full evaluation"
            );
        }
    }

    #[test]
    fn sequential_matches_reference_hss() {
        let (tree, htree, c, w, y_ref) = setup(Structure::Hss);
        let eval = GofmmEvaluator::new(&tree, &htree, &c);
        let y = eval.evaluate_sequential(&w);
        assert!(relative_error(&y, &y_ref) < 1e-12);
        let y_par = eval.evaluate(&w);
        assert!(relative_error(&y_par, &y_ref) < 1e-12);
    }
}
