//! # matrox-baselines
//!
//! Re-implementations of the evaluation strategies of the libraries MatRox is
//! compared against — GOFMM, STRUMPACK and SMASH — plus the dense GEMM
//! comparator.  The actual C++ libraries are not available offline, so each
//! baseline reproduces the properties the paper attributes to it (storage
//! layout, scheduling policy, synchronization behaviour, supported scope)
//! over the *same* compression output and the *same* GEMM kernels as the
//! MatRox executor.  Performance differences measured by the benchmark
//! harnesses therefore isolate exactly the effects the paper studies: data
//! layout (CDS vs. tree-based), loop structure (blocked/coarsened vs.
//! reduction/level-by-level), and scheduling (static load-balanced partitions
//! vs. dynamic tasks / per-level barriers).  See DESIGN.md substitution S4.
//!
//! | Baseline | Storage | Near/far loops | Tree loops | Scope |
//! |---|---|---|---|---|
//! | [`GofmmEvaluator`] | tree-based | parallel over interactions, locked reductions | dynamic `rayon::join` tasks | any structure, any dimension |
//! | [`StrumpackEvaluator`] | tree-based | parallel per target | level-by-level with barriers | HSS only |
//! | [`SmashEvaluator`] | tree-based | sequential near | level-by-level | 1–3-d points, matvec only |
//! | [`DenseBaseline`] | dense `K` | — | — | exact reference / GEMM comparison |
//! | [`DenseCholeskyBaseline`] | dense `K = L L^T` | — | — | exact direct solve (`K x = b` comparison) |

#![forbid(unsafe_code)]

pub mod cholesky;
pub mod dense;
pub mod gofmm;
pub mod smash;
pub mod strumpack;

pub use cholesky::DenseCholeskyBaseline;
pub use dense::DenseBaseline;
pub use gofmm::GofmmEvaluator;
pub use smash::{SmashEvaluator, UnsupportedInput};
pub use strumpack::{StrumpackEvaluator, UnsupportedStructure};
