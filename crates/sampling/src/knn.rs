//! Approximate k-nearest-neighbour search with random-projection trees.
//!
//! MatRox's sampling module computes a k-nearest-neighbour list for every
//! point "using a greedy search based on random projection trees that
//! recursively partitions the points along a random direction" (Section 3.1,
//! citing Dasgupta & Freund).  Exact k-NN would be `O(N^2 d)`; the RP-tree
//! approach builds a handful of randomized trees, restricts candidate pairs
//! to RP-tree leaves, and keeps the best `k` candidates per point.

use matrox_points::PointSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the approximate k-NN search.
#[derive(Debug, Clone, Copy)]
pub struct KnnParams {
    /// Number of neighbours kept per point (the paper's sampling size `k`).
    pub k: usize,
    /// Number of random-projection trees to build; more trees improve recall.
    pub num_trees: usize,
    /// RP-tree leaf capacity; candidates are scored all-pairs inside a leaf.
    pub leaf_cap: usize,
    /// RNG seed for the random projection directions.
    pub seed: u64,
}

impl Default for KnnParams {
    fn default() -> Self {
        KnnParams {
            k: 32,
            num_trees: 4,
            leaf_cap: 96,
            seed: 0x5eed,
        }
    }
}

/// Approximate k-nearest neighbours of every point.
///
/// Returns, for each point `i`, up to `params.k` neighbour indices sorted by
/// increasing distance (never containing `i` itself).
pub fn approximate_knn(points: &PointSet, params: &KnnParams) -> Vec<Vec<usize>> {
    let n = points.len();
    if n <= 1 {
        return vec![Vec::new(); n];
    }
    let k = params.k.min(n - 1);
    let mut rng = StdRng::seed_from_u64(params.seed);

    // Candidate neighbour sets, grown tree by tree.
    let mut best: Vec<Vec<(f64, usize)>> = vec![Vec::new(); n];

    for _tree in 0..params.num_trees.max(1) {
        let mut idx: Vec<usize> = (0..n).collect();
        let mut stack: Vec<(usize, usize)> = vec![(0, n)];
        // In-place recursive partitioning of `idx` along random directions.
        while let Some((start, end)) = stack.pop() {
            let len = end - start;
            if len <= params.leaf_cap.max(2 * k).max(4) {
                score_leaf(points, &idx[start..end], k, &mut best);
                continue;
            }
            // Random unit-ish direction.
            let dim = points.dim();
            let dir: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mid = start + len / 2;
            idx[start..end].select_nth_unstable_by(len / 2, |&a, &b| {
                let pa: f64 = points.point(a).iter().zip(&dir).map(|(x, d)| x * d).sum();
                let pb: f64 = points.point(b).iter().zip(&dir).map(|(x, d)| x * d).sum();
                pa.partial_cmp(&pb).unwrap()
            });
            stack.push((start, mid));
            stack.push((mid, end));
        }
    }

    // Finalize: sort by distance, dedup, truncate to k.
    best.into_iter()
        .map(|mut cands| {
            cands.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let mut out = Vec::with_capacity(k);
            let mut seen = std::collections::HashSet::new();
            for (_, j) in cands {
                if seen.insert(j) {
                    out.push(j);
                    if out.len() == k {
                        break;
                    }
                }
            }
            out
        })
        .collect()
}

/// Brute-force candidate scoring inside one RP-tree leaf.
fn score_leaf(points: &PointSet, leaf: &[usize], k: usize, best: &mut [Vec<(f64, usize)>]) {
    for (a, &i) in leaf.iter().enumerate() {
        for &j in &leaf[a + 1..] {
            let d = points.dist2(i, j);
            push_candidate(&mut best[i], d, j, 3 * k);
            push_candidate(&mut best[j], d, i, 3 * k);
        }
    }
}

/// Keep the candidate list bounded: append and, when it grows past `cap`,
/// retain only the closest `cap` entries.
fn push_candidate(list: &mut Vec<(f64, usize)>, dist: f64, idx: usize, cap: usize) {
    list.push((dist, idx));
    if list.len() > 2 * cap {
        list.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        list.truncate(cap);
    }
}

/// Exact k-nearest neighbours (quadratic); used by tests to measure the
/// recall of the approximate search and usable for tiny point sets.
pub fn exact_knn(points: &PointSet, k: usize) -> Vec<Vec<usize>> {
    let n = points.len();
    let k = k.min(n.saturating_sub(1));
    (0..n)
        .map(|i| {
            let mut dists: Vec<(f64, usize)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (points.dist2(i, j), j))
                .collect();
            dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            dists.into_iter().take(k).map(|(_, j)| j).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrox_points::{generate, DatasetId};

    #[test]
    fn knn_lists_have_requested_size_and_no_self() {
        let pts = generate(DatasetId::Random, 300, 1);
        let knn = approximate_knn(
            &pts,
            &KnnParams {
                k: 8,
                ..Default::default()
            },
        );
        assert_eq!(knn.len(), 300);
        for (i, list) in knn.iter().enumerate() {
            assert_eq!(list.len(), 8, "point {i}");
            assert!(!list.contains(&i));
            let unique: std::collections::HashSet<_> = list.iter().collect();
            assert_eq!(unique.len(), list.len());
        }
    }

    #[test]
    fn recall_against_exact_is_reasonable() {
        let pts = generate(DatasetId::Grid, 400, 2);
        let k = 10;
        let approx = approximate_knn(
            &pts,
            &KnnParams {
                k,
                num_trees: 6,
                leaf_cap: 64,
                seed: 3,
            },
        );
        let exact = exact_knn(&pts, k);
        let mut hit = 0usize;
        let mut total = 0usize;
        for i in 0..pts.len() {
            let truth: std::collections::HashSet<_> = exact[i].iter().collect();
            hit += approx[i].iter().filter(|j| truth.contains(j)).count();
            total += k;
        }
        let recall = hit as f64 / total as f64;
        assert!(recall > 0.6, "recall {recall} too low");
    }

    #[test]
    fn exact_knn_on_line_points_matches_intuition() {
        let pts =
            matrox_points::PointSet::from_points(&[vec![0.0], vec![1.0], vec![2.0], vec![10.0]]);
        let knn = exact_knn(&pts, 2);
        assert_eq!(knn[0], vec![1, 2]);
        assert_eq!(knn[3], vec![2, 1]);
    }

    #[test]
    fn tiny_point_sets_do_not_panic() {
        let pts = matrox_points::PointSet::from_points(&[vec![0.0, 0.0]]);
        let knn = approximate_knn(&pts, &KnnParams::default());
        assert_eq!(knn, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn high_dimensional_knn_works() {
        let pts = generate(DatasetId::Higgs, 256, 4);
        let knn = approximate_knn(
            &pts,
            &KnnParams {
                k: 16,
                ..Default::default()
            },
        );
        assert!(knn.iter().all(|l| l.len() == 16));
    }
}
