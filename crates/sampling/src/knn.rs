//! Approximate k-nearest-neighbour search with random-projection trees.
//!
//! MatRox's sampling module computes a k-nearest-neighbour list for every
//! point "using a greedy search based on random projection trees that
//! recursively partitions the points along a random direction" (Section 3.1,
//! citing Dasgupta & Freund).  Exact k-NN would be `O(N^2 d)`; the RP-tree
//! approach builds a handful of randomized trees, restricts candidate pairs
//! to RP-tree leaves, and keeps the best `k` candidates per point.
//!
//! Both phases run on the work-stealing pool and are bitwise deterministic
//! across pool widths:
//!
//! * **Tree construction** parallelizes *across* trees.  Every tree draws
//!   its projection directions from its own RNG seeded by `(seed, tree
//!   index)`, so tree `t` is a pure function of the inputs no matter which
//!   worker builds it or in what order.
//! * **Neighbour search** parallelizes *across points*.  Each point gathers
//!   candidates from its own leaf in every tree in fixed tree order, then
//!   ranks them by `(distance, index)` — the index tie-break makes the
//!   result independent of gathering order even for equidistant candidates.
//!   Each point's list lands in its own pre-sized output slot; there is no
//!   shared candidate accumulation anywhere.

use matrox_linalg::knobs::resolve_grain;
use matrox_points::PointSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Parameters for the approximate k-NN search.
#[derive(Debug, Clone, Copy)]
pub struct KnnParams {
    /// Number of neighbours kept per point (the paper's sampling size `k`).
    pub k: usize,
    /// Number of random-projection trees to build; more trees improve recall.
    pub num_trees: usize,
    /// RP-tree leaf capacity; candidates are scored all-pairs inside a leaf.
    pub leaf_cap: usize,
    /// RNG seed for the random projection directions.
    pub seed: u64,
    /// Minimum points per parallel search task; `0` = auto (the
    /// `MATROX_GRAIN` env knob, then 1).  Chunking only — never changes the
    /// neighbour lists.
    pub grain: usize,
}

impl Default for KnnParams {
    fn default() -> Self {
        KnnParams {
            k: 32,
            num_trees: 4,
            leaf_cap: 96,
            seed: 0x5eed,
            grain: 0,
        }
    }
}

/// One built random-projection tree: the permuted point indices plus the
/// leaf partition over them, and for every point the leaf it landed in.
struct RpTree {
    /// Point indices, permuted so each leaf is a contiguous range.
    idx: Vec<usize>,
    /// `(start, end)` ranges into `idx`, one per leaf.
    leaves: Vec<(usize, usize)>,
    /// `leaf_of[point] = leaf index` in `leaves`.
    leaf_of: Vec<usize>,
}

/// Build one RP-tree deterministically from `(points, seed, tree index)`.
fn build_rp_tree(points: &PointSet, leaf_bound: usize, seed: u64, tree: usize) -> RpTree {
    let n = points.len();
    let dim = points.dim();
    // Per-tree RNG: directions depend only on the tree index, never on
    // which worker builds the tree or when.
    let mut rng = StdRng::seed_from_u64(seed ^ (tree as u64).wrapping_mul(0x9e3779b97f4a7c15));
    let mut idx: Vec<usize> = (0..n).collect();
    let mut leaves: Vec<(usize, usize)> = Vec::new();
    let mut stack: Vec<(usize, usize)> = vec![(0, n)];
    // In-place recursive partitioning of `idx` along random directions.
    while let Some((start, end)) = stack.pop() {
        let len = end - start;
        if len <= leaf_bound {
            leaves.push((start, end));
            continue;
        }
        // Random unit-ish direction.
        let dir: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mid = start + len / 2;
        idx[start..end].select_nth_unstable_by(len / 2, |&a, &b| {
            let pa: f64 = points.point(a).iter().zip(&dir).map(|(x, d)| x * d).sum();
            let pb: f64 = points.point(b).iter().zip(&dir).map(|(x, d)| x * d).sum();
            pa.partial_cmp(&pb).unwrap()
        });
        stack.push((start, mid));
        stack.push((mid, end));
    }
    let mut leaf_of = vec![0usize; n];
    for (l, &(s, e)) in leaves.iter().enumerate() {
        for &p in &idx[s..e] {
            leaf_of[p] = l;
        }
    }
    RpTree {
        idx,
        leaves,
        leaf_of,
    }
}

/// Approximate k-nearest neighbours of every point.
///
/// Returns, for each point `i`, up to `params.k` neighbour indices sorted by
/// increasing distance (never containing `i` itself).  The output is a pure
/// function of `(points, params)` — bitwise identical at every pool width
/// and grain.
pub fn approximate_knn(points: &PointSet, params: &KnnParams) -> Vec<Vec<usize>> {
    let n = points.len();
    if n <= 1 {
        return vec![Vec::new(); n];
    }
    let k = params.k.min(n - 1);
    let grain = resolve_grain(params.grain);
    let leaf_bound = params.leaf_cap.max(2 * k).max(4);

    // Phase 1: build the trees, one parallel task per tree.
    let trees: Vec<RpTree> = (0..params.num_trees.max(1))
        .into_par_iter()
        .map(|t| build_rp_tree(points, leaf_bound, params.seed, t))
        .collect();

    // Phase 2: per-point candidate gathering and ranking, one output slot
    // per point.  Trees are visited in fixed order and ties rank by index,
    // so the schedule cannot influence the lists.
    let mut knn: Vec<Vec<usize>> = vec![Vec::new(); n];
    knn.par_iter_mut()
        .enumerate()
        .with_min_len(grain)
        .for_each(|(i, out)| {
            let mut cands: Vec<(f64, usize)> = Vec::with_capacity(trees.len() * leaf_bound);
            for tree in &trees {
                let (s, e) = tree.leaves[tree.leaf_of[i]];
                for &j in &tree.idx[s..e] {
                    if j != i {
                        cands.push((points.dist2(i, j), j));
                    }
                }
            }
            cands.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            // The same pair found via different trees yields the identical
            // (distance, index) entry, so after the sort duplicates are
            // adjacent and a plain dedup removes them all.
            cands.dedup();
            out.extend(cands.into_iter().take(k).map(|(_, j)| j));
        });
    knn
}

/// Exact k-nearest neighbours (quadratic); used by tests to measure the
/// recall of the approximate search and usable for tiny point sets.
pub fn exact_knn(points: &PointSet, k: usize) -> Vec<Vec<usize>> {
    let n = points.len();
    let k = k.min(n.saturating_sub(1));
    (0..n)
        .map(|i| {
            let mut dists: Vec<(f64, usize)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (points.dist2(i, j), j))
                .collect();
            dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            dists.into_iter().take(k).map(|(_, j)| j).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrox_points::{generate, DatasetId};

    #[test]
    fn knn_lists_have_requested_size_and_no_self() {
        let pts = generate(DatasetId::Random, 300, 1);
        let knn = approximate_knn(
            &pts,
            &KnnParams {
                k: 8,
                ..Default::default()
            },
        );
        assert_eq!(knn.len(), 300);
        for (i, list) in knn.iter().enumerate() {
            assert_eq!(list.len(), 8, "point {i}");
            assert!(!list.contains(&i));
            let unique: std::collections::HashSet<_> = list.iter().collect();
            assert_eq!(unique.len(), list.len());
        }
    }

    #[test]
    fn recall_against_exact_is_reasonable() {
        let pts = generate(DatasetId::Grid, 400, 2);
        let k = 10;
        let approx = approximate_knn(
            &pts,
            &KnnParams {
                k,
                num_trees: 6,
                leaf_cap: 64,
                seed: 3,
                grain: 0,
            },
        );
        let exact = exact_knn(&pts, k);
        let mut hit = 0usize;
        let mut total = 0usize;
        for i in 0..pts.len() {
            let truth: std::collections::HashSet<_> = exact[i].iter().collect();
            hit += approx[i].iter().filter(|j| truth.contains(j)).count();
            total += k;
        }
        let recall = hit as f64 / total as f64;
        assert!(recall > 0.6, "recall {recall} too low");
    }

    #[test]
    fn exact_knn_on_line_points_matches_intuition() {
        let pts =
            matrox_points::PointSet::from_points(&[vec![0.0], vec![1.0], vec![2.0], vec![10.0]]);
        let knn = exact_knn(&pts, 2);
        assert_eq!(knn[0], vec![1, 2]);
        assert_eq!(knn[3], vec![2, 1]);
    }

    #[test]
    fn tiny_point_sets_do_not_panic() {
        let pts = matrox_points::PointSet::from_points(&[vec![0.0, 0.0]]);
        let knn = approximate_knn(&pts, &KnnParams::default());
        assert_eq!(knn, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn high_dimensional_knn_works() {
        let pts = generate(DatasetId::Higgs, 256, 4);
        let knn = approximate_knn(
            &pts,
            &KnnParams {
                k: 16,
                ..Default::default()
            },
        );
        assert!(knn.iter().all(|l| l.len() == 16));
    }

    #[test]
    fn grain_never_changes_the_lists() {
        let pts = generate(DatasetId::Random, 257, 9);
        let base = approximate_knn(
            &pts,
            &KnnParams {
                k: 12,
                ..Default::default()
            },
        );
        for grain in [1, 7, 1024] {
            let other = approximate_knn(
                &pts,
                &KnnParams {
                    k: 12,
                    grain,
                    ..Default::default()
                },
            );
            assert_eq!(base, other, "grain {grain}");
        }
    }
}
