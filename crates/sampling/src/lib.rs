//! # matrox-sampling
//!
//! The sampling module of MatRox's modularized compression (Section 3.1).
//!
//! Interpolative decomposition of a node's full far-field block can be very
//! expensive, so MatRox — like ASKIT and GOFMM — samples the far field:
//! approximate k-nearest-neighbour lists are computed for every point with
//! random-projection trees ([`knn`]), the lists are merged per cluster-tree
//! node, and importance sampling selects the final per-node sample set
//! ([`node_sampling`]).
//!
//! Sampling depends only on the points and the CTree — not on the kernel
//! parameters or the requested accuracy — which is why it belongs to
//! *inspector-p1* and can be reused when the kernel or `bacc` change
//! (Section 5 of the paper).  The kernel passed to [`sample_nodes`] is used
//! only to rank candidates by importance, mirroring the role the
//! nearest-neighbour lists play in GOFMM.

#![forbid(unsafe_code)]

pub mod knn;
pub mod node_sampling;

pub use knn::{approximate_knn, exact_knn, KnnParams};
pub use node_sampling::{sample_nodes, sample_nodes_exhaustive, SamplingInfo, SamplingParams};
