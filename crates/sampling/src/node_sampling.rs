//! Per-node sampling information.
//!
//! After the point-wise k-NN lists are computed, MatRox "combines the lists
//! for each block using the clustering in the CTree to form a
//! nearest-neighbour list for the corresponding sub-domain/block" and then
//! applies importance sampling to select the final sample set for that block
//! (Section 3.1).  The sampled far-field points are the proxy columns against
//! which the interpolative decomposition of each node is computed.

use crate::knn::{approximate_knn, KnnParams};
use matrox_points::{Kernel, PointSet};
use matrox_tree::ClusterTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Parameters controlling per-node sampling.
#[derive(Debug, Clone, Copy)]
pub struct SamplingParams {
    /// Number of neighbours per point fed into the node lists (paper default
    /// "sampling size = 32").
    pub knn: KnnParams,
    /// Number of importance-sampled neighbour points kept per node.
    pub sampling_size: usize,
    /// Number of additional uniformly-sampled far points per node (improves
    /// the conditioning of the ID sample; ASKIT/GOFMM do the same).
    pub uniform_samples: usize,
    /// RNG seed for the uniform far samples.
    pub seed: u64,
    /// Minimum nodes per parallel sampling task; `0` = auto (the
    /// `MATROX_GRAIN` env knob, then 1).  Chunking only — each node's
    /// samples come from its own `(seed, id)` RNG, so the output never
    /// depends on this knob or the pool width.
    pub grain: usize,
}

impl Default for SamplingParams {
    fn default() -> Self {
        SamplingParams {
            knn: KnnParams::default(),
            sampling_size: 32,
            uniform_samples: 32,
            seed: 0xa11ce,
            grain: 0,
        }
    }
}

/// Sampling information for every cluster-tree node.
///
/// `samples[i]` holds global point indices outside node `i`'s index set that
/// serve as the far-field proxy columns for the ID of node `i`.
#[derive(Debug, Clone)]
pub struct SamplingInfo {
    /// Per-node sampled far-field point indices.
    pub samples: Vec<Vec<usize>>,
    /// The per-point k-NN lists the node lists were merged from (kept so the
    /// reuse experiments can report what inspector-p1 stores).
    pub point_knn: Vec<Vec<usize>>,
}

impl SamplingInfo {
    /// Total number of stored sample indices (a proxy for the memory the
    /// sampling module hands to inspector-p2).
    pub fn total_samples(&self) -> usize {
        self.samples.iter().map(|s| s.len()).sum()
    }
}

/// Compute sampling information for every node of the cluster tree.
///
/// The kernel is only used to rank neighbour candidates by importance
/// (kernel magnitude with respect to the node centroid); the actual kernel
/// evaluations for compression happen later in `matrox-compress`.
pub fn sample_nodes(
    points: &PointSet,
    tree: &ClusterTree,
    kernel: &Kernel,
    params: &SamplingParams,
) -> SamplingInfo {
    let point_knn = approximate_knn(points, &params.knn);

    // Inverse permutation: position of each point in the tree ordering, used
    // to test node membership in O(1).
    let pos = &tree.pos;

    let samples: Vec<Vec<usize>> = tree
        .nodes
        .par_iter()
        .with_min_len(matrox_linalg::knobs::resolve_grain(params.grain))
        .map(|node| {
            let mut rng = StdRng::seed_from_u64(
                params.seed ^ (node.id as u64).wrapping_mul(0x9e3779b97f4a7c15),
            );
            let inside = |q: usize| pos[q] >= node.start && pos[q] < node.end;

            // Merge member-point neighbour lists, excluding points inside the
            // node itself (those belong to the near field / diagonal block).
            let mut merged: Vec<usize> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for &p in tree.perm[node.start..node.end].iter() {
                for &q in &point_knn[p] {
                    if !inside(q) && seen.insert(q) {
                        merged.push(q);
                    }
                }
            }

            // Importance sampling: rank merged neighbours by kernel magnitude
            // w.r.t. the node centroid (for decaying kernels this favours the
            // strongest far interactions) and keep the top `sampling_size`.
            let mut weighted: Vec<(f64, usize)> = merged
                .iter()
                .map(|&q| {
                    let w = kernel.eval(&node.centroid, points.point(q));
                    (w, q)
                })
                .collect();
            weighted.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            let mut chosen: Vec<usize> = weighted
                .iter()
                .take(params.sampling_size)
                .map(|&(_, q)| q)
                .collect();

            // Top up with uniform samples from outside the node so the ID
            // sample also represents the weak, distant interactions.
            let outside_count = points.len() - node.num_points();
            let want_uniform = params
                .uniform_samples
                .min(outside_count.saturating_sub(chosen.len()));
            let mut guard = 0;
            while chosen.len() < params.sampling_size.min(outside_count) + want_uniform
                && guard < 20 * (want_uniform + 1)
            {
                guard += 1;
                let q = rng.gen_range(0..points.len());
                if !inside(q) && !chosen.contains(&q) {
                    chosen.push(q);
                }
            }
            chosen
        })
        .collect();

    SamplingInfo { samples, point_knn }
}

/// Exhaustive "sampling": every point outside the node is a sample.  This is
/// only feasible for small `N` and is used by tests and accuracy studies to
/// isolate the error of the ID itself from the sampling error.
pub fn sample_nodes_exhaustive(points: &PointSet, tree: &ClusterTree) -> SamplingInfo {
    let mut pos = vec![0usize; points.len()];
    for (p, &i) in tree.perm.iter().enumerate() {
        pos[i] = p;
    }
    let samples = tree
        .nodes
        .iter()
        .map(|node| {
            (0..points.len())
                .filter(|&q| pos[q] < node.start || pos[q] >= node.end)
                .collect()
        })
        .collect();
    SamplingInfo {
        samples,
        point_knn: vec![Vec::new(); points.len()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrox_points::{generate, DatasetId};
    use matrox_tree::PartitionMethod;

    fn setup(n: usize) -> (PointSet, ClusterTree) {
        let pts = generate(DatasetId::Random, n, 11);
        let tree = ClusterTree::build(&pts, PartitionMethod::KdTree, 32, 0);
        (pts, tree)
    }

    #[test]
    fn samples_exclude_node_members() {
        let (pts, tree) = setup(512);
        let info = sample_nodes(
            &pts,
            &tree,
            &Kernel::paper_gaussian(),
            &SamplingParams::default(),
        );
        assert_eq!(info.samples.len(), tree.num_nodes());
        for node in &tree.nodes {
            let members: std::collections::HashSet<_> =
                tree.perm[node.start..node.end].iter().collect();
            for q in &info.samples[node.id] {
                assert!(
                    !members.contains(q),
                    "node {} sampled its own member",
                    node.id
                );
            }
        }
    }

    #[test]
    fn samples_are_unique_per_node() {
        let (pts, tree) = setup(400);
        let info = sample_nodes(
            &pts,
            &tree,
            &Kernel::paper_gaussian(),
            &SamplingParams::default(),
        );
        for s in &info.samples {
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), s.len());
        }
    }

    #[test]
    fn root_node_has_no_far_field() {
        let (pts, tree) = setup(300);
        let info = sample_nodes(
            &pts,
            &tree,
            &Kernel::paper_gaussian(),
            &SamplingParams::default(),
        );
        assert!(
            info.samples[0].is_empty(),
            "the root has no far field to sample"
        );
    }

    #[test]
    fn sample_counts_are_bounded() {
        let (pts, tree) = setup(600);
        let p = SamplingParams {
            sampling_size: 16,
            uniform_samples: 8,
            ..Default::default()
        };
        let info = sample_nodes(&pts, &tree, &Kernel::paper_gaussian(), &p);
        for (i, s) in info.samples.iter().enumerate() {
            assert!(
                s.len() <= p.sampling_size + p.uniform_samples,
                "node {i} has {} samples",
                s.len()
            );
        }
    }

    #[test]
    fn exhaustive_sampling_covers_everything_outside() {
        let (pts, tree) = setup(128);
        let info = sample_nodes_exhaustive(&pts, &tree);
        for node in &tree.nodes {
            assert_eq!(info.samples[node.id].len(), pts.len() - node.num_points());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (pts, tree) = setup(256);
        let a = sample_nodes(
            &pts,
            &tree,
            &Kernel::paper_gaussian(),
            &SamplingParams::default(),
        );
        let b = sample_nodes(
            &pts,
            &tree,
            &Kernel::paper_gaussian(),
            &SamplingParams::default(),
        );
        assert_eq!(a.samples, b.samples);
    }
}
