//! Property coverage for the kernel-dispatch layer.
//!
//! Three pins, each per dispatchable architecture (scalar always; AVX2 when
//! the host has it — requesting it elsewhere must degrade to scalar):
//!
//! 1. **accuracy** — every dispatch path (NoTrans/TN, sequential/parallel)
//!    stays within `1e-12` relative error of the scalar reference
//!    [`gemm_seq`] on random shapes, including the microkernel edge shapes
//!    (`m < MR`, `n < NR`, `k = 0`, tall-skinny);
//! 2. **bitwise determinism** — for a fixed dispatch the result is bitwise
//!    identical across 1/2/4-thread pools and across RHS panel groupings;
//! 3. **fallback totality** — every [`KernelChoice`] resolves to a runnable
//!    kernel on every host.

use matrox_linalg::{gemm_seq, simd_available, GemmOp, KernelChoice, KernelDispatch, Matrix};
use proptest::prelude::*;
use rand::SeedableRng;

/// The dispatches that must all be exercised on this host: the scalar
/// fallback unconditionally, the SIMD microkernel when present.  (On a
/// non-AVX2 host `resolve(Avx2)` degrades to scalar, so the scalar path is
/// what "requesting avx2" runs — covered either way.)
fn dispatches() -> Vec<KernelDispatch> {
    let mut d = vec![
        KernelDispatch::scalar(),
        KernelDispatch::resolve(KernelChoice::Avx2),
    ];
    d.dedup_by_key(|k| k.is_simd());
    d
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, &mut rng)
}

/// Reference `A * B` through the never-dispatched scalar kernel.
fn reference(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_seq(1.0, a, GemmOp::NoTrans, b, GemmOp::NoTrans, 0.0, &mut c);
    c
}

fn assert_close(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len());
    for (x, y) in got.iter().zip(want) {
        assert!(
            (x - y).abs() <= 1e-12 * (1.0 + y.abs()),
            "{what}: {x} vs reference {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pin every dispatch path against `gemm_seq` on random shapes,
    /// including degenerate and microkernel-edge ones.
    #[test]
    fn all_dispatch_paths_match_gemm_seq(
        m in 1usize..48,
        k in 0usize..48,
        n in 1usize..48,
        seed in 0u64..10_000,
        stretch in 0u8..4,
    ) {
        // Occasionally stretch one dimension well past the pack-block sizes
        // so the kc/mc/nc loops run more than one iteration.  Under Miri
        // skip the stretch and clamp shapes: interpreted O(mkn) is where
        // the time goes, and small shapes reach the same unsafe code.
        let (m, k, n) = if cfg!(miri) {
            (m.min(6), k.min(6), n.min(6))
        } else {
            match stretch {
                1 => (m + 200, k, n),
                2 => (m, k + 200, n),
                3 => (m, k, n + 200),
                _ => (m, k, n),
            }
        };
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed + 1);
        let want = reference(&a, &b);

        for disp in dispatches() {
            let name = disp.name();
            let mut c = vec![0.0; m * n];
            disp.gemm(a.as_slice(), m, k, b.as_slice(), n, &mut c);
            assert_close(&c, want.as_slice(), &format!("{name} gemm {m}x{k}x{n}"));

            let mut c_par = vec![0.0; m * n];
            disp.par_gemm(a.as_slice(), m, k, b.as_slice(), n, &mut c_par);
            assert!(
                c.iter().zip(&c_par).all(|(x, y)| x.to_bits() == y.to_bits()),
                "{name}: par_gemm not bitwise equal to gemm at {m}x{k}x{n}"
            );

            // TN path: A stored transposed (k x m) must give the same
            // product, bitwise equal between sequential and parallel.
            let at = a.transpose();
            let mut t = vec![0.0; m * n];
            disp.gemm_tn(at.as_slice(), k, m, b.as_slice(), n, &mut t);
            assert_close(&t, want.as_slice(), &format!("{name} gemm_tn {m}x{k}x{n}"));
            let mut t_par = vec![0.0; m * n];
            disp.par_gemm_tn(at.as_slice(), k, m, b.as_slice(), n, &mut t_par);
            assert!(
                t.iter().zip(&t_par).all(|(x, y)| x.to_bits() == y.to_bits()),
                "{name}: par_gemm_tn not bitwise equal to gemm_tn at {m}x{k}x{n}"
            );
        }
    }

    /// Accumulating a product in RHS column panels must be bitwise
    /// identical to the full-width product for a fixed dispatch (the
    /// executor's panel-blocking contract).
    #[test]
    fn panel_grouping_is_bitwise_neutral(
        m in 1usize..32,
        k in 1usize..32,
        n in 2usize..40,
        panel in 1usize..12,
        seed in 0u64..10_000,
    ) {
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed + 7);
        for disp in dispatches() {
            let mut full = vec![0.25; m * n];
            disp.gemm(a.as_slice(), m, k, b.as_slice(), n, &mut full);
            let mut out = vec![0.25; m * n];
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + panel).min(n);
                let w = j1 - j0;
                let bp: Vec<f64> = (0..k)
                    .flat_map(|p| b.as_slice()[p * n + j0..p * n + j1].to_vec())
                    .collect();
                let mut cp: Vec<f64> = (0..m)
                    .flat_map(|i| out[i * n + j0..i * n + j1].to_vec())
                    .collect();
                disp.gemm(a.as_slice(), m, k, &bp, w, &mut cp);
                for i in 0..m {
                    out[i * n + j0..i * n + j1].copy_from_slice(&cp[i * w..(i + 1) * w]);
                }
                j0 = j1;
            }
            assert!(
                full.iter().zip(&out).all(|(x, y)| x.to_bits() == y.to_bits()),
                "{}: panel {panel} changed results at {m}x{k}x{n}",
                disp.name()
            );
        }
    }
}

/// The parallel kernels must be bitwise independent of the pool width for a
/// fixed dispatch (row chunks own disjoint output rows, and the per-row
/// accumulation chain never depends on the chunking).
#[test]
fn par_kernels_bitwise_identical_across_pool_widths() {
    let (m, k, n) = if cfg!(miri) {
        (19usize, 7usize, 5usize)
    } else {
        (173usize, 67usize, 29usize)
    };
    let a = random_matrix(m, k, 5);
    let b = random_matrix(k, n, 6);
    let at = a.transpose();
    for disp in dispatches() {
        let mut runs: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
        let widths: &[usize] = if cfg!(miri) { &[1, 2] } else { &[1, 2, 4] };
        for &nt in widths {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(nt)
                .build()
                .unwrap();
            let out = pool.install(|| {
                let mut c = vec![0.0; m * n];
                disp.par_gemm(a.as_slice(), m, k, b.as_slice(), n, &mut c);
                let mut t = vec![0.0; m * n];
                disp.par_gemm_tn(at.as_slice(), k, m, b.as_slice(), n, &mut t);
                (c, t)
            });
            runs.push(out);
        }
        for (c, t) in &runs[1..] {
            assert_eq!(
                c,
                &runs[0].0,
                "{}: par_gemm varies with pool width",
                disp.name()
            );
            assert_eq!(
                t,
                &runs[0].1,
                "{}: par_gemm_tn varies with pool width",
                disp.name()
            );
        }
    }
}

/// Requesting the SIMD kernel must be safe everywhere: on hosts without the
/// features it silently resolves to the scalar fallback and still computes
/// correct products.
#[test]
fn avx2_request_always_resolves_and_computes() {
    let d = KernelDispatch::resolve(KernelChoice::Avx2);
    assert_eq!(d.is_simd(), simd_available());
    let a = random_matrix(9, 11, 1);
    let b = random_matrix(11, 5, 2);
    let want = reference(&a, &b);
    let mut c = vec![0.0; 9 * 5];
    d.gemm(a.as_slice(), 9, 11, b.as_slice(), 5, &mut c);
    assert_close(&c, want.as_slice(), "resolve(Avx2)");
    // The explicit scalar fallback is always available and non-SIMD, even
    // on hosts where auto picks the microkernel.
    assert!(!KernelDispatch::scalar().is_simd());
    assert_eq!(
        KernelDispatch::for_choice(KernelChoice::Scalar).name(),
        "scalar"
    );
}
