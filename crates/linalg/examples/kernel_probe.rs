//! Quick probe of the kernel layer: scalar vs SIMD GF/s at a few shapes.
//!
//! ```bash
//! cargo run --release -p matrox-linalg --example kernel_probe
//! ```
//!
//! The full harness (GF/s table, executor/solve deltas, the perf-smoke
//! gate inputs) is `cargo run --release -p matrox-bench --bin bench_gemm`;
//! this example exists for fast iteration on the microkernel itself.

use matrox_linalg::{simd_available, KernelChoice, KernelDispatch};
use std::time::Instant;

fn gflops(disp: KernelDispatch, m: usize, k: usize, n: usize) -> f64 {
    let a: Vec<f64> = (0..m * k).map(|i| (i as f64 * 0.37).sin()).collect();
    let b: Vec<f64> = (0..k * n).map(|i| (i as f64 * 0.11).cos()).collect();
    let mut c = vec![0.0; m * n];
    let flops = 2.0 * (m * k * n) as f64;
    let reps = ((2e8 / flops) as usize).max(4);
    // Warm up (packs buffers, faults pages).
    disp.gemm(&a, m, k, &b, n, &mut c);
    let t0 = Instant::now();
    for _ in 0..reps {
        disp.gemm(&a, m, k, &b, n, &mut c);
    }
    let dt = t0.elapsed().as_secs_f64();
    flops * reps as f64 / dt / 1e9
}

fn main() {
    let scalar = KernelDispatch::scalar();
    let auto = KernelDispatch::resolve(KernelChoice::Auto);
    println!(
        "simd_available = {}, auto kernel = {}, blocking = {:?}",
        simd_available(),
        auto.name(),
        auto.blocking()
    );
    for &(m, k, n) in &[
        (64usize, 64usize, 8usize),
        (64, 64, 64),
        (64, 64, 256),
        (32, 32, 64),
        (256, 256, 256),
        (1024, 64, 128),
    ] {
        let gs = gflops(scalar, m, k, n);
        let ga = gflops(auto, m, k, n);
        println!("{m:>5} x {k:>4} x {n:>4}: scalar {gs:6.2} GF/s, {name} {ga:6.2} GF/s, speedup {sp:4.2}x",
            name = auto.name(), sp = ga / gs);
    }
}
