//! Matrix-matrix and matrix-vector products.
//!
//! The MatRox executor spends virtually all of its time in small-to-medium
//! dense products (`D_{i,j} * W_j`, `V_i^T * W_i`, `B_{i,j} * T_j`, ...), and
//! the dense baseline of the paper is a single large GEMM.  This module
//! provides:
//!
//! * [`gemm_seq`] — the cache-blocked *scalar reference* kernel.  This is
//!   the one entry point that never goes through the kernel dispatch; every
//!   dispatched path is pinned against it in tests.
//! * [`par_gemm`] — a rayon-parallel kernel that splits the rows of `C`; used
//!   for the peeled root iteration ("low-level" lowering in the paper) and the
//!   dense GEMM baseline.
//! * [`gemm`] — dispatching front-end that picks the sequential or parallel
//!   kernel based on the problem size.
//! * [`gemv`] — matrix-vector product for the SMASH-style (Q = 1) baseline.
//!
//! Except for [`gemm_seq`], every kernel here routes through the
//! process-wide [`KernelDispatch`] — the
//! packed AVX2 microkernel when the host supports it (see
//! [`crate::kernel`]), the historic scalar loops otherwise or under
//! `MATROX_KERNEL=scalar`.

use crate::kernel::KernelDispatch;
use crate::matrix::Matrix;

/// Whether an operand participates as itself or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmOp {
    /// Use the operand as stored.
    NoTrans,
    /// Use the transpose of the operand.
    Trans,
}

/// Blocking factors for the sequential micro-kernel.  Chosen so that one
/// `MC x KC` panel of `A` plus a `KC x NC` panel of `B` fit comfortably in L2.
const MC: usize = 64;
const KC: usize = 128;
const NC: usize = 256;

/// `C += A[i0..i1, :] * B` for the row range `[i0, i1)` of `A`/`C`.
///
/// `a`, `b`, `c` are row-major buffers with the given leading dimensions.
/// This is the scalar kernel: per output element the products accumulate in
/// storage order as `mul` + `add` with zero operands skipped — the exact
/// pre-SIMD behaviour the scalar dispatch arm must preserve.
pub(crate) fn gemm_block(
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    // Loop ordering i-p-j with blocking keeps B panel reuse high and lets the
    // innermost loop vectorize over contiguous rows of B and C.
    for jj in (0..n).step_by(NC) {
        let jmax = (jj + NC).min(n);
        for pp in (0..k).step_by(KC) {
            let pmax = (pp + KC).min(k);
            for ii in (0..m).step_by(MC) {
                let imax = (ii + MC).min(m);
                for i in ii..imax {
                    let arow = &a[i * lda..i * lda + k];
                    let crow = &mut c[i * ldc..i * ldc + n];
                    for p in pp..pmax {
                        let aval = arow[p];
                        if aval == 0.0 {
                            continue;
                        }
                        let brow = &b[p * ldb..p * ldb + n];
                        for j in jj..jmax {
                            crow[j] += aval * brow[j];
                        }
                    }
                }
            }
        }
    }
}

/// Sequential general matrix multiply: `C = alpha * op(A) * op(B) + beta * C`.
///
/// # Panics
/// Panics if the operand shapes are incompatible.
pub fn gemm_seq(
    alpha: f64,
    a: &Matrix,
    op_a: GemmOp,
    b: &Matrix,
    op_b: GemmOp,
    beta: f64,
    c: &mut Matrix,
) {
    // Materialize transposes; operand blocks in MatRox are small enough that
    // an explicit transpose is cheaper than a strided kernel and keeps the
    // hot loop contiguous.
    let at;
    let bt;
    let a_eff = match op_a {
        GemmOp::NoTrans => a,
        GemmOp::Trans => {
            at = a.transpose();
            &at
        }
    };
    let b_eff = match op_b {
        GemmOp::NoTrans => b,
        GemmOp::Trans => {
            bt = b.transpose();
            &bt
        }
    };

    let (m, k) = a_eff.shape();
    let (k2, n) = b_eff.shape();
    assert_eq!(k, k2, "gemm: inner dimensions differ ({k} vs {k2})");
    assert_eq!(c.shape(), (m, n), "gemm: C has wrong shape");

    if beta != 1.0 {
        if beta == 0.0 {
            c.fill_zero();
        } else {
            c.scale(beta);
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    if alpha == 1.0 {
        gemm_block(
            a_eff.as_slice(),
            k,
            b_eff.as_slice(),
            n,
            c.as_mut_slice(),
            n,
            m,
            k,
            n,
        );
    } else {
        // Scale A once rather than multiplying inside the hot loop.
        let mut a_scaled = a_eff.clone();
        a_scaled.scale(alpha);
        gemm_block(
            a_scaled.as_slice(),
            k,
            b_eff.as_slice(),
            n,
            c.as_mut_slice(),
            n,
            m,
            k,
            n,
        );
    }
}

/// Rayon-parallel GEMM: `C = alpha * op(A) * op(B) + beta * C`.
///
/// The rows of `C` are split across the current rayon thread pool and each
/// chunk runs the process-wide dispatched kernel.  This is the kernel used
/// for the peeled root iteration of the coarsened loop (the paper's
/// "low-level" specialization exploits block-level parallelism near the
/// tree root where task-level parallelism runs out) and for the dense GEMM
/// baseline.
pub fn par_gemm(
    alpha: f64,
    a: &Matrix,
    op_a: GemmOp,
    b: &Matrix,
    op_b: GemmOp,
    beta: f64,
    c: &mut Matrix,
) {
    gemm_matrix_dispatch(alpha, a, op_a, b, op_b, beta, c, true);
}

/// Shared front-end for [`gemm`] / [`par_gemm`]: materialize transposes,
/// apply `alpha`/`beta`, then hand the flat product to the dispatched
/// kernel.
fn gemm_matrix_dispatch(
    alpha: f64,
    a: &Matrix,
    op_a: GemmOp,
    b: &Matrix,
    op_b: GemmOp,
    beta: f64,
    c: &mut Matrix,
    parallel: bool,
) {
    let at;
    let bt;
    let a_eff = match op_a {
        GemmOp::NoTrans => a,
        GemmOp::Trans => {
            at = a.transpose();
            &at
        }
    };
    let b_eff = match op_b {
        GemmOp::NoTrans => b,
        GemmOp::Trans => {
            bt = b.transpose();
            &bt
        }
    };

    let (m, k) = a_eff.shape();
    let (k2, n) = b_eff.shape();
    assert_eq!(k, k2, "gemm: inner dimensions differ ({k} vs {k2})");
    assert_eq!(c.shape(), (m, n), "gemm: C has wrong shape");

    if beta != 1.0 {
        if beta == 0.0 {
            c.fill_zero();
        } else {
            c.scale(beta);
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    let disp = KernelDispatch::global();
    let run = |a_buf: &[f64], c_buf: &mut [f64]| {
        if parallel {
            disp.par_gemm(a_buf, m, k, b_eff.as_slice(), n, c_buf);
        } else {
            disp.gemm(a_buf, m, k, b_eff.as_slice(), n, c_buf);
        }
    };
    if alpha == 1.0 {
        run(a_eff.as_slice(), c.as_mut_slice());
    } else {
        // Scale A once rather than multiplying inside the hot loop.
        let mut a_scaled = a_eff.clone();
        a_scaled.scale(alpha);
        run(a_scaled.as_slice(), c.as_mut_slice());
    }
}

/// Fewest rows of `C` a parallel GEMM task should own.  A row of a typical
/// MatRox block is a few hundred multiply-adds; eight rows comfortably
/// amortize one deque push + steal (~a microsecond under the vendored pool).
pub(crate) const MIN_PAR_ROWS: usize = 8;

/// Size threshold (in multiply-add count) above which [`gemm`] switches from
/// the sequential to the parallel kernel.  Retuned for the real work-stealing
/// pool: forking now costs a deque push (not a no-op as under the sequential
/// stub, but far from the old conservative 4M-madd assumption), so the
/// crossover sits at ~1M multiply-adds — roughly where one thread's share at
/// 4 threads still dwarfs the handoff cost.
const PAR_FLOP_THRESHOLD: usize = 1 << 20;

/// General matrix multiply that dispatches between [`gemm_seq`] and
/// [`par_gemm`] based on problem size.
pub fn gemm(
    alpha: f64,
    a: &Matrix,
    op_a: GemmOp,
    b: &Matrix,
    op_b: GemmOp,
    beta: f64,
    c: &mut Matrix,
) {
    let m = match op_a {
        GemmOp::NoTrans => a.rows(),
        GemmOp::Trans => a.cols(),
    };
    let k = match op_a {
        GemmOp::NoTrans => a.cols(),
        GemmOp::Trans => a.rows(),
    };
    let n = match op_b {
        GemmOp::NoTrans => b.cols(),
        GemmOp::Trans => b.rows(),
    };
    gemm_matrix_dispatch(
        alpha,
        a,
        op_a,
        b,
        op_b,
        beta,
        c,
        m * k * n >= PAR_FLOP_THRESHOLD,
    );
}

/// Matrix-vector product `y = alpha * op(A) * x + beta * y`, routed through
/// the dispatched `dot`/`axpy` primitives (one per row, so the SMASH-style
/// `Q = 1` baseline follows the same kernel selection as everything else;
/// the scalar arm reproduces the historic loops exactly).
pub fn gemv(alpha: f64, a: &Matrix, op_a: GemmOp, x: &[f64], beta: f64, y: &mut [f64]) {
    let disp = KernelDispatch::global();
    match op_a {
        GemmOp::NoTrans => {
            assert_eq!(a.cols(), x.len(), "gemv: x length mismatch");
            assert_eq!(a.rows(), y.len(), "gemv: y length mismatch");
            for i in 0..a.rows() {
                let acc = disp.dot(a.row(i), x);
                y[i] = alpha * acc + beta * y[i];
            }
        }
        GemmOp::Trans => {
            assert_eq!(a.rows(), x.len(), "gemv^T: x length mismatch");
            assert_eq!(a.cols(), y.len(), "gemv^T: y length mismatch");
            if beta == 0.0 {
                y.iter_mut().for_each(|v| *v = 0.0);
            } else if beta != 1.0 {
                y.iter_mut().for_each(|v| *v *= beta);
            }
            for i in 0..a.rows() {
                let xv = alpha * x[i];
                if xv == 0.0 {
                    continue;
                }
                disp.axpy(xv, a.row(i), y);
            }
        }
    }
}

/// Raw-slice kernel: `C += A * B` where `A` is `m x k`, `B` is `k x n` and
/// `C` is `m x n`, all row-major and densely packed.
///
/// The MatRox executor operates directly on the flat CDS buffers and on
/// permuted right-hand-side/output buffers, so it needs a GEMM that does not
/// require wrapping slices into [`Matrix`] values.
pub fn gemm_slices(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, c: &mut [f64]) {
    KernelDispatch::global().gemm(a, m, k, b, n, c);
}

/// Raw-slice kernel for the panel-blocked executor: `C += A * B` where `B`
/// is a narrow RHS panel (`n` is the panel width).
///
/// Since the kernel-dispatch layer landed this is the same dispatched
/// kernel as [`gemm_slices`] (the historic small-shape specialization is
/// subsumed by the packed microkernel); the name is kept because the
/// executor's contract — panel-by-panel evaluation is **bitwise identical**
/// to full-width evaluation — is documented and tested against it.
///
/// ```
/// let a = [1.0, 2.0, 3.0, 4.0]; // 2 x 2
/// let b = [0.5, -1.0];          // 2 x 1 panel
/// let mut c = [0.0, 0.0];
/// matrox_linalg::gemm_panel(&a, 2, 2, &b, 1, &mut c);
/// assert_eq!(c, [0.5 * 1.0 - 2.0, 0.5 * 3.0 - 4.0]);
/// ```
pub fn gemm_panel(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, c: &mut [f64]) {
    KernelDispatch::global().gemm(a, m, k, b, n, c);
}

/// Raw-slice kernel: `C += A^T * B` where `A` is `k x m` (so `A^T` is
/// `m x k`), `B` is `k x n` and `C` is `m x n`, all row-major.
///
/// This is the upward-pass kernel `T_i = V_i^T * W_i`: `V_i` is stored
/// untransposed in CDS and the transpose is absorbed by the kernel (a
/// rank-1-update loop for the scalar arch, transposing packing for the
/// microkernel), keeping the accesses to `B` and `C` contiguous.
pub fn gemm_tn_slices(a: &[f64], k: usize, m: usize, b: &[f64], n: usize, c: &mut [f64]) {
    KernelDispatch::global().gemm_tn(a, k, m, b, n, c);
}

/// Scalar `C += A^T * B` with the historic rank-1-update loop ordering (the
/// scalar dispatch arm; per-element accumulation is `p`-ascending `mul` +
/// `add` with zero skipping — identical to [`gemm_block`]'s per-element
/// behaviour, which is what keeps the executor's mixed NoTrans/TN phases
/// panel-width independent).
pub(crate) fn gemm_tn_block(a: &[f64], k: usize, m: usize, b: &[f64], n: usize, c: &mut [f64]) {
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for i in 0..m {
            let aval = arow[i];
            if aval == 0.0 {
                continue;
            }
            let crow = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += aval * brow[j];
            }
        }
    }
}

/// Scalar `C += (A^T)[i0..i0+rows, :] * B` for a row chunk of the output
/// (`A` stored `k x lda`).  Per-element accumulation identical to
/// [`gemm_tn_block`] — the parallel TN path must be bitwise equal to the
/// sequential one at any chunking.
pub(crate) fn gemm_tn_rows(
    a: &[f64],
    lda: usize,
    i0: usize,
    rows: usize,
    k: usize,
    b: &[f64],
    n: usize,
    c: &mut [f64],
) {
    for i in 0..rows {
        let crow = &mut c[i * n..(i + 1) * n];
        for p in 0..k {
            let aval = a[p * lda + i0 + i];
            if aval == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for j in 0..n {
                crow[j] += aval * brow[j];
            }
        }
    }
}

/// Rayon-parallel version of [`gemm_slices`], splitting the rows of `C`.
/// Used for the peeled root iteration where task-level parallelism has run
/// out and block-level parallelism takes over.  Bitwise identical to
/// [`gemm_slices`] at every pool width for a fixed kernel selection.
pub fn par_gemm_slices(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, c: &mut [f64]) {
    KernelDispatch::global().par_gemm(a, m, k, b, n, c);
}

/// Rayon-parallel version of [`gemm_tn_slices`], splitting the rows of `C`
/// (= columns of the stored `A`).  Bitwise identical to [`gemm_tn_slices`]
/// at every pool width for a fixed kernel selection.
pub fn par_gemm_tn_slices(a: &[f64], k: usize, m: usize, b: &[f64], n: usize, c: &mut [f64]) {
    KernelDispatch::global().par_gemm_tn(a, k, m, b, n, c);
}

/// Convenience helper: `A * B` as a fresh matrix.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(1.0, a, GemmOp::NoTrans, b, GemmOp::NoTrans, 0.0, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a.get(i, p) * b.get(p, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        if a.shape() != b.shape() {
            return false;
        }
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
    }

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn gemm_matches_naive_small() {
        let a = random_matrix(7, 5, 1);
        let b = random_matrix(5, 9, 2);
        let mut c = Matrix::zeros(7, 9);
        gemm_seq(1.0, &a, GemmOp::NoTrans, &b, GemmOp::NoTrans, 0.0, &mut c);
        assert!(approx_eq(&c, &naive(&a, &b), 1e-12));
    }

    #[test]
    fn gemm_matches_naive_blocked_sizes() {
        let a = random_matrix(130, 140, 3);
        let b = random_matrix(140, 150, 4);
        let mut c = Matrix::zeros(130, 150);
        gemm_seq(1.0, &a, GemmOp::NoTrans, &b, GemmOp::NoTrans, 0.0, &mut c);
        assert!(approx_eq(&c, &naive(&a, &b), 1e-10));
    }

    #[test]
    fn gemm_transposed_a() {
        let a = random_matrix(5, 7, 5);
        let b = random_matrix(5, 4, 6);
        let mut c = Matrix::zeros(7, 4);
        gemm_seq(1.0, &a, GemmOp::Trans, &b, GemmOp::NoTrans, 0.0, &mut c);
        assert!(approx_eq(&c, &naive(&a.transpose(), &b), 1e-12));
    }

    #[test]
    fn gemm_transposed_b() {
        let a = random_matrix(6, 7, 7);
        let b = random_matrix(4, 7, 8);
        let mut c = Matrix::zeros(6, 4);
        gemm_seq(1.0, &a, GemmOp::NoTrans, &b, GemmOp::Trans, 0.0, &mut c);
        assert!(approx_eq(&c, &naive(&a, &b.transpose()), 1e-12));
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = random_matrix(4, 4, 9);
        let b = random_matrix(4, 4, 10);
        let mut c = Matrix::filled(4, 4, 1.0);
        gemm_seq(2.0, &a, GemmOp::NoTrans, &b, GemmOp::NoTrans, 3.0, &mut c);
        let mut expected = naive(&a, &b);
        expected.scale(2.0);
        let mut three = Matrix::filled(4, 4, 3.0);
        three.add_assign(&expected);
        assert!(approx_eq(&c, &three, 1e-12));
    }

    #[test]
    fn par_gemm_matches_seq() {
        let a = random_matrix(200, 64, 11);
        let b = random_matrix(64, 96, 12);
        let mut c1 = Matrix::zeros(200, 96);
        let mut c2 = Matrix::zeros(200, 96);
        gemm_seq(1.0, &a, GemmOp::NoTrans, &b, GemmOp::NoTrans, 0.0, &mut c1);
        par_gemm(1.0, &a, GemmOp::NoTrans, &b, GemmOp::NoTrans, 0.0, &mut c2);
        assert!(approx_eq(&c1, &c2, 1e-12));
    }

    #[test]
    fn gemv_matches_gemm() {
        let a = random_matrix(9, 6, 13);
        let x: Vec<f64> = (0..6).map(|i| i as f64 * 0.5 - 1.0).collect();
        let mut y = vec![0.0; 9];
        gemv(1.0, &a, GemmOp::NoTrans, &x, 0.0, &mut y);
        let xm = Matrix::from_vec(6, 1, x.clone());
        let expected = matmul(&a, &xm);
        for i in 0..9 {
            assert!((y[i] - expected.get(i, 0)).abs() < 1e-12);
        }
    }

    #[test]
    fn gemv_transposed() {
        let a = random_matrix(9, 6, 14);
        let x: Vec<f64> = (0..9).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; 6];
        gemv(1.0, &a, GemmOp::Trans, &x, 0.0, &mut y);
        let xm = Matrix::from_vec(9, 1, x.clone());
        let expected = matmul(&a.transpose(), &xm);
        for i in 0..6 {
            assert!((y[i] - expected.get(i, 0)).abs() < 1e-12);
        }
    }

    #[test]
    fn gemm_slices_matches_matrix_gemm() {
        let a = random_matrix(13, 9, 21);
        let b = random_matrix(9, 7, 22);
        let expected = matmul(&a, &b);
        let mut c = vec![0.0; 13 * 7];
        gemm_slices(a.as_slice(), 13, 9, b.as_slice(), 7, &mut c);
        for (x, y) in c.iter().zip(expected.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
        let mut cp = vec![0.0; 13 * 7];
        par_gemm_slices(a.as_slice(), 13, 9, b.as_slice(), 7, &mut cp);
        assert_eq!(c, cp);
    }

    #[test]
    fn gemm_tn_slices_matches_transposed_gemm() {
        let a = random_matrix(11, 6, 23); // k x m
        let b = random_matrix(11, 5, 24); // k x n
        let expected = matmul(&a.transpose(), &b);
        let mut c = vec![0.0; 6 * 5];
        gemm_tn_slices(a.as_slice(), 11, 6, b.as_slice(), 5, &mut c);
        for (x, y) in c.iter().zip(expected.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn gemm_panel_is_bitwise_identical_to_gemm_slices() {
        // Small (direct path) and large (blocked fallback) shapes; both must
        // match gemm_slices bit for bit, since the executor mixes the two
        // kernels depending on panel width.
        for &(m, k, n, seed) in &[
            (13usize, 9usize, 7usize, 31u64),
            (64, 128, 8, 32),
            (70, 140, 300, 33), // exceeds MC/KC/NC -> blocked fallback
            (1, 1, 1, 34),
        ] {
            let a = random_matrix(m, k, seed);
            let b = random_matrix(k, n, seed + 100);
            let mut c1 = vec![0.25; m * n];
            let mut c2 = vec![0.25; m * n];
            gemm_slices(a.as_slice(), m, k, b.as_slice(), n, &mut c1);
            gemm_panel(a.as_slice(), m, k, b.as_slice(), n, &mut c2);
            assert!(
                c1.iter().zip(&c2).all(|(x, y)| x.to_bits() == y.to_bits()),
                "panel kernel diverged at m={m} k={k} n={n}"
            );
        }
    }

    #[test]
    fn gemm_panel_column_panels_match_full_width() {
        // Computing a wide product panel-by-panel must equal the full-width
        // product bitwise: each output column only ever accumulates over k in
        // storage order, independently of the panel grouping.
        let (m, k, n) = (24usize, 40usize, 19usize);
        let a = random_matrix(m, k, 41);
        let b = random_matrix(k, n, 42);
        let mut full = vec![0.0; m * n];
        gemm_panel(a.as_slice(), m, k, b.as_slice(), n, &mut full);
        for panel in [1usize, 4, 8] {
            let mut out = vec![0.0; m * n];
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + panel).min(n);
                let w = j1 - j0;
                let bp: Vec<f64> = (0..k)
                    .flat_map(|p| b.as_slice()[p * n + j0..p * n + j1].to_vec())
                    .collect();
                let mut cp = vec![0.0; m * w];
                gemm_panel(a.as_slice(), m, k, &bp, w, &mut cp);
                for i in 0..m {
                    out[i * n + j0..i * n + j1].copy_from_slice(&cp[i * w..(i + 1) * w]);
                }
                j0 = j1;
            }
            assert!(
                full.iter()
                    .zip(&out)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "panel width {panel} diverged"
            );
        }
    }

    #[test]
    fn slice_kernels_accumulate() {
        let a = random_matrix(4, 4, 25);
        let b = random_matrix(4, 4, 26);
        let mut c = vec![1.0; 16];
        gemm_slices(a.as_slice(), 4, 4, b.as_slice(), 4, &mut c);
        let mut expected = matmul(&a, &b);
        expected.add_assign(&Matrix::filled(4, 4, 1.0));
        for (x, y) in c.iter().zip(expected.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn gemm_zero_dimensions_are_noops() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        let mut c = Matrix::zeros(0, 3);
        gemm(1.0, &a, GemmOp::NoTrans, &b, GemmOp::NoTrans, 0.0, &mut c);
        assert!(c.is_empty());
    }
}
