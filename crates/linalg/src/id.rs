//! Interpolative decomposition (ID).
//!
//! MatRox (following ASKIT/GOFMM) compresses every low-rank block with an
//! interpolative decomposition: a subset of the block's own rows (the
//! *skeleton*) is selected and the remaining rows are expressed as linear
//! combinations of the skeleton rows.  For a node `i` with index set `I_i`
//! and a sampled far-field block `A = K(I_i, S_i)` the **row ID**
//!
//! ```text
//! A  ≈  P * A[J, :]          P  (|I_i| x k),  J ⊆ I_i,  |J| = k = srank_i
//! ```
//!
//! gives the interpolation matrix `P` (the paper's `U_i`/`V_i` generators)
//! and the skeleton indices `J` used to form the coupling blocks
//! `B_{i,j} = K(skel_i, skel_j)`.
//!
//! The rank `k` is chosen adaptively: the column-pivoted QR underlying the ID
//! stops when the diagonal of `R` falls below `bacc * |R[0,0]|`, exactly the
//! "srank adaptively tuned to meet the user-requested block approximation
//! accuracy" behaviour described in Section 2.1 of the paper.

use crate::gemm::{gemm_seq, GemmOp};
use crate::matrix::Matrix;
use crate::qr::pivoted_qr;
use crate::solve::solve_upper_triangular_matrix;

/// Result of a row or column interpolative decomposition.
#[derive(Debug, Clone)]
pub struct IdResult {
    /// Detected rank `k` (the `srank` of the block).
    pub rank: usize,
    /// Skeleton indices (row indices for [`row_id`], column indices for
    /// [`column_id`]) into the original matrix, in pivot order.
    pub skeleton: Vec<usize>,
    /// Interpolation matrix: `m x k` for a row ID (`A ≈ interp * A[skeleton, :]`),
    /// `k x n` for a column ID (`A ≈ A[:, skeleton] * interp`).
    pub interp: Matrix,
}

/// Column interpolative decomposition `A ≈ A[:, J] * X`.
///
/// * `tol` — relative tolerance controlling the adaptive rank.
/// * `max_rank` — hard cap on the rank.
pub fn column_id(a: &Matrix, tol: f64, max_rank: usize) -> IdResult {
    let n = a.cols();
    let f = pivoted_qr(a, tol, max_rank);
    let k = f.rank;

    if k == 0 {
        return IdResult {
            rank: 0,
            skeleton: Vec::new(),
            interp: Matrix::zeros(0, n),
        };
    }

    // R = [R11 R12] with R11 (k x k) upper triangular over the pivoted columns.
    let r11 = f.r.submatrix(0, k, 0, k);
    let r12 = f.r.submatrix(0, k, k, n);
    // T = R11^{-1} R12  (k x (n-k))
    let t = if n > k {
        solve_upper_triangular_matrix(&r11, &r12)
    } else {
        Matrix::zeros(k, 0)
    };

    // X (k x n) in *original* column order: X[:, perm[j]] = I_col(j) for j < k,
    // X[:, perm[j]] = T[:, j-k] for j >= k.
    let mut x = Matrix::zeros(k, n);
    for j in 0..k {
        x.set(j, f.perm[j], 1.0);
    }
    for j in k..n {
        let orig = f.perm[j];
        for i in 0..k {
            x.set(i, orig, t.get(i, j - k));
        }
    }

    IdResult {
        rank: k,
        skeleton: f.perm[..k].to_vec(),
        interp: x,
    }
}

/// Row interpolative decomposition `A ≈ P * A[J, :]`.
///
/// Implemented as a column ID of `A^T`: skeleton columns of `A^T` are skeleton
/// rows of `A`, and the interpolation matrix is the transpose of the column
/// interpolation factor.
pub fn row_id(a: &Matrix, tol: f64, max_rank: usize) -> IdResult {
    let at = a.transpose();
    let cid = column_id(&at, tol, max_rank);
    IdResult {
        rank: cid.rank,
        skeleton: cid.skeleton,
        interp: cid.interp.transpose(),
    }
}

/// Reconstruct `P * A[J, :]` for a row ID — used by tests and by the accuracy
/// diagnostics in the benchmark harnesses.
pub fn reconstruct_row_id(a: &Matrix, id: &IdResult) -> Matrix {
    let skel_rows = a.gather_rows(&id.skeleton);
    let mut out = Matrix::zeros(a.rows(), a.cols());
    gemm_seq(
        1.0,
        &id.interp,
        GemmOp::NoTrans,
        &skel_rows,
        GemmOp::NoTrans,
        0.0,
        &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::relative_error;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn low_rank_matrix(m: usize, n: usize, r: usize, seed: u64) -> Matrix {
        let a = random_matrix(m, r, seed);
        let b = random_matrix(r, n, seed + 1);
        crate::gemm::matmul(&a, &b)
    }

    #[test]
    fn row_id_exact_on_low_rank() {
        let a = low_rank_matrix(30, 20, 4, 5);
        let id = row_id(&a, 1e-10, usize::MAX);
        assert_eq!(id.rank, 4);
        let rec = reconstruct_row_id(&a, &id);
        assert!(relative_error(&rec, &a) < 1e-8);
    }

    #[test]
    fn column_id_exact_on_low_rank() {
        let a = low_rank_matrix(20, 30, 6, 8);
        let id = column_id(&a, 1e-10, usize::MAX);
        assert_eq!(id.rank, 6);
        let skel = a.gather_cols(&id.skeleton);
        let rec = crate::gemm::matmul(&skel, &id.interp);
        assert!(relative_error(&rec, &a) < 1e-8);
    }

    #[test]
    fn skeleton_indices_are_valid_and_unique() {
        let a = low_rank_matrix(25, 25, 7, 9);
        let id = row_id(&a, 1e-8, usize::MAX);
        let mut seen = std::collections::HashSet::new();
        for &s in &id.skeleton {
            assert!(s < 25);
            assert!(seen.insert(s), "duplicate skeleton index");
        }
    }

    #[test]
    fn interpolation_matrix_has_identity_on_skeleton_rows() {
        let a = low_rank_matrix(20, 15, 5, 10);
        let id = row_id(&a, 1e-10, usize::MAX);
        for (col, &row) in id.skeleton.iter().enumerate() {
            for c in 0..id.rank {
                let expected = if c == col { 1.0 } else { 0.0 };
                assert!(
                    (id.interp.get(row, c) - expected).abs() < 1e-12,
                    "interp[{row},{c}] should be {expected}"
                );
            }
        }
    }

    #[test]
    fn max_rank_caps_the_skeleton() {
        let a = random_matrix(40, 40, 11);
        let id = row_id(&a, 0.0, 9);
        assert_eq!(id.rank, 9);
        assert_eq!(id.interp.shape(), (40, 9));
    }

    #[test]
    fn zero_matrix_gives_rank_zero() {
        let a = Matrix::zeros(10, 10);
        let id = row_id(&a, 1e-12, usize::MAX);
        assert_eq!(id.rank, 0);
        assert!(id.skeleton.is_empty());
    }

    #[test]
    fn tighter_tolerance_never_decreases_rank() {
        // A kernel-like matrix with decaying spectrum.
        let n = 48;
        let pts: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let a = Matrix::from_fn(n, n, |i, j| (-(pts[i] - pts[j]).powi(2) * 40.0).exp());
        let loose = row_id(&a, 1e-2, usize::MAX);
        let tight = row_id(&a, 1e-8, usize::MAX);
        assert!(tight.rank >= loose.rank);
        let rec_tight = reconstruct_row_id(&a, &tight);
        let rec_loose = reconstruct_row_id(&a, &loose);
        assert!(relative_error(&rec_tight, &a) <= relative_error(&rec_loose, &a) + 1e-12);
    }

    #[test]
    fn id_error_tracks_tolerance_on_smooth_kernel() {
        let n = 64;
        let pts: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let a = Matrix::from_fn(n, n, |i, j| (-(pts[i] - pts[j] + 2.0).powi(2)).exp());
        for &tol in &[1e-3, 1e-6, 1e-9] {
            let id = row_id(&a, tol, usize::MAX);
            let rec = reconstruct_row_id(&a, &id);
            let err = relative_error(&rec, &a);
            assert!(
                err < tol * 1e3,
                "tol {tol} gave error {err} with rank {}",
                id.rank
            );
        }
    }
}
