//! Deterministic fault-injection harness.
//!
//! A *failpoint* is a named site in the library where a fault can be forced
//! on demand: a Cholesky breakdown during factorization, a NaN poisoning the
//! evaluation output, a panic inside a pool job or a parallel compression
//! task, a truncated or byte-flipped model stream during `matrox_core::load`.
//! Production code paths call
//! [`should_fire`] at these sites; when the failpoint is armed the site
//! injects its fault, otherwise the call is a cheap hash-map miss behind a
//! short critical section.
//!
//! Failpoints are armed two ways:
//!
//! * the `MATROX_FAILPOINT` environment variable, read once on first use,
//!   with the format `name[=count][;name...]` — e.g.
//!   `MATROX_FAILPOINT=chol-breakdown=1;eval-poison` arms one forced
//!   Cholesky breakdown and an always-on evaluation poison.  An omitted
//!   count arms the failpoint permanently.  This is how the CI
//!   fault-injection leg drives whole-process tests.
//! * programmatically via [`set`] / [`clear`] / [`clear_all`] — this is what
//!   deterministic unit tests use.  Tests that arm failpoints share process
//!   globals, so they live in a dedicated integration-test binary and run
//!   single-threaded sites (see `crates/core/tests/failpoints.rs`).
//!
//! Every site fires a *bounded* number of times (the count decrements on
//! each fire and the entry disarms at zero), so recovery paths — e.g. the
//! ridge-escalation retry after a forced breakdown — are genuinely
//! exercised: the first attempt fails, the retry runs clean.
//!
//! The catalog of registered sites lives in the `names` module; DESIGN.md
//! documents what each one injects.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Registered failpoint names.  Arming any other name is allowed but has no
/// effect (no site checks it).
pub mod names {
    /// Forces the next `HMatrix::factorize` attempt to report a leaf
    /// Cholesky breakdown, exercising the ridge-escalation retry loop.
    pub const CHOL_BREAKDOWN: &str = "chol-breakdown";
    /// Overwrites one output element with NaN right before the evaluation
    /// output screen, exercising the `NumericalBreakdown` return.
    pub const EVAL_POISON: &str = "eval-poison";
    /// Panics inside a pool job during `EvalSession::evaluate`, exercising
    /// the `catch_unwind` containment boundary (`PoolPanic`).
    pub const EVAL_PANIC: &str = "eval-panic";
    /// Panics inside a parallel per-node low-rank compression task
    /// (`matrox_compress::compress`), exercising the inspector's
    /// `catch_unwind` containment boundary (`PoolPanic`): the panic must
    /// propagate off the worker and surface as an error, never hang the
    /// pool or poison later inspections.
    pub const COMPRESS_PANIC: &str = "compress-panic";
    /// Truncates the byte stream read by `load`/`load_factored` to half its
    /// length, exercising the hardened reader's truncation handling.
    pub const IO_TRUNCATE: &str = "io-truncate";
    /// XOR-flips one bit in the middle of the byte stream read by
    /// `load`/`load_factored`, exercising the corruption handling.
    pub const IO_FLIP: &str = "io-flip";
}

/// Fire this many times and disarm; used for names armed without `=count`.
const UNBOUNDED: u64 = u64::MAX;

// CONCURRENCY: the failpoint registry is process-global state shared by
// every thread that can hit an injection site (pool workers included), so
// it is guarded by a std Mutex; each critical section is a single HashMap
// operation, never held across an injected fault or any user code.
static REGISTRY: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();

fn registry() -> &'static Mutex<HashMap<String, u64>> {
    REGISTRY.get_or_init(|| {
        Mutex::new(parse(
            &std::env::var("MATROX_FAILPOINT").unwrap_or_default(),
        ))
    })
}

/// Lock the registry, recovering from poisoning: a panic injected *by* a
/// failpoint site must not disable the harness for the rest of the process.
fn lock() -> std::sync::MutexGuard<'static, HashMap<String, u64>> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Parse the `MATROX_FAILPOINT` format: `name[=count][;name...]`.
/// Unparseable counts and empty segments are ignored rather than rejected —
/// a malformed knob must never take the process down.
fn parse(spec: &str) -> HashMap<String, u64> {
    let mut map = HashMap::new();
    for seg in spec.split(';') {
        let seg = seg.trim();
        if seg.is_empty() {
            continue;
        }
        match seg.split_once('=') {
            None => {
                map.insert(seg.to_string(), UNBOUNDED);
            }
            Some((name, count)) => {
                if let Ok(c) = count.trim().parse::<u64>() {
                    if c > 0 {
                        map.insert(name.trim().to_string(), c);
                    }
                }
            }
        }
    }
    map
}

/// True when the named failpoint is armed; decrements its remaining count
/// and disarms it at zero.  Injection sites call this exactly once per
/// potential fault.
pub fn should_fire(name: &str) -> bool {
    let mut reg = lock();
    match reg.get_mut(name) {
        None => false,
        Some(count) => {
            if *count != UNBOUNDED {
                *count -= 1;
                if *count == 0 {
                    reg.remove(name);
                }
            }
            true
        }
    }
}

/// Arm `name` to fire `count` times (0 disarms).  Programmatic twin of the
/// `MATROX_FAILPOINT` knob for deterministic tests.
pub fn set(name: &str, count: u64) {
    let mut reg = lock();
    if count == 0 {
        reg.remove(name);
    } else {
        reg.insert(name.to_string(), count);
    }
}

/// Disarm `name`.
pub fn clear(name: &str) {
    set(name, 0);
}

/// Disarm every failpoint (including ones armed via the environment).
pub fn clear_all() {
    lock().clear();
}

/// True when `name` is currently armed (does not consume a fire).
pub fn armed(name: &str) -> bool {
    lock().contains_key(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_counts_names_and_garbage() {
        let map = parse("chol-breakdown=2; eval-poison ;;bad=count;zero=0");
        assert_eq!(map.get("chol-breakdown"), Some(&2));
        assert_eq!(map.get("eval-poison"), Some(&UNBOUNDED));
        assert!(!map.contains_key("bad"));
        assert!(!map.contains_key("zero"));
        assert!(parse("").is_empty());
    }

    #[test]
    fn counted_failpoints_disarm_after_their_fires() {
        // A name no other test (or injection site) uses, so parallel test
        // threads cannot race on it.
        let name = "unit-test-counted-fp";
        set(name, 2);
        assert!(armed(name));
        assert!(should_fire(name));
        assert!(should_fire(name));
        assert!(!should_fire(name), "third check must find it disarmed");
        assert!(!armed(name));
    }

    #[test]
    fn clear_disarms_an_unbounded_failpoint() {
        let name = "unit-test-unbounded-fp";
        set(name, UNBOUNDED);
        assert!(should_fire(name));
        assert!(should_fire(name), "unbounded fires repeatedly");
        clear(name);
        assert!(!should_fire(name));
    }
}
