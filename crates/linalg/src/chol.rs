//! Dense Cholesky factorization and SPD solves.
//!
//! The ULV-style HSS factorization (`matrox-factor`) factors every leaf
//! diagonal block `D_i = L_i L_i^T`, and the dense solver baseline factors
//! the fully assembled kernel matrix the same way, so the two share one
//! kernel and measured differences isolate the *structure*, not the BLAS.
//! The original framework would call LAPACK `dpotrf`/`dpotrs` here; this is
//! the pure-Rust equivalent (DESIGN.md substitution S7): a right-looking
//! blocked factorization whose trailing update is a symmetric rank-`k`
//! update ([`syrk_lower`]) touching only the lower triangle.

use crate::kernel::KernelDispatch;
use crate::matrix::Matrix;
use crate::solve::{solve_lower_transpose_matrix, solve_lower_triangular_matrix};

/// Error returned when a pivot of the factorization is not strictly positive:
/// the input is not (numerically) positive definite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NotPositiveDefinite {
    /// Index of the failing pivot.
    pub pivot: usize,
    /// Value of the failing pivot (`<= 0` or non-finite).
    pub value: f64,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite: pivot {} is {:e}",
            self.pivot, self.value
        )
    }
}
impl std::error::Error for NotPositiveDefinite {}

/// Panel width of the blocked factorization.  One `CHOL_BLOCK`-wide panel of
/// `L` stays resident in L1/L2 while the trailing update streams over it.
const CHOL_BLOCK: usize = 64;

/// Compute the lower-triangular Cholesky factor `L` with `A = L L^T`.
///
/// Only the lower triangle of `a` is read; the strict upper triangle of the
/// returned factor is zero.  Fails with [`NotPositiveDefinite`] when a pivot
/// is non-positive or non-finite.
///
/// # Panics
/// Panics if `a` is not square.
pub fn cholesky(a: &Matrix) -> Result<Matrix, NotPositiveDefinite> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "cholesky: matrix must be square");
    let mut l = a.clone();
    let data = l.as_mut_slice();
    for k0 in (0..n).step_by(CHOL_BLOCK) {
        let k1 = (k0 + CHOL_BLOCK).min(n);
        factor_diag_block(data, n, k0, k1)?;
        if k1 < n {
            // Panel solve: L21 = A21 * L11^{-T}, one forward substitution
            // per row of the panel (row-major friendly).
            for i in k1..n {
                for j in k0..k1 {
                    let mut s = data[i * n + j];
                    for p in k0..j {
                        s -= data[i * n + p] * data[j * n + p];
                    }
                    data[i * n + j] = s / data[j * n + j];
                }
            }
            // Trailing symmetric update: A22 -= L21 * L21^T (lower only).
            syrk_lower_slices(data, n, k1, n, k0, k1);
        }
    }
    // The factor only ever reads the lower triangle; zero the rest so the
    // result is a clean triangular matrix (and bitwise-stable to serialize).
    for i in 0..n {
        for j in (i + 1)..n {
            data[i * n + j] = 0.0;
        }
    }
    Ok(l)
}

/// Unblocked factorization of the diagonal block `[k0, k1)` (columns within
/// the panel; rows outside it are handled by the caller's panel solve).
fn factor_diag_block(
    data: &mut [f64],
    ld: usize,
    k0: usize,
    k1: usize,
) -> Result<(), NotPositiveDefinite> {
    for j in k0..k1 {
        let mut d = data[j * ld + j];
        for p in k0..j {
            d -= data[j * ld + p] * data[j * ld + p];
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(NotPositiveDefinite { pivot: j, value: d });
        }
        let ljj = d.sqrt();
        data[j * ld + j] = ljj;
        for i in (j + 1)..k1 {
            let mut s = data[i * ld + j];
            for p in k0..j {
                s -= data[i * ld + p] * data[j * ld + p];
            }
            data[i * ld + j] = s / ljj;
        }
    }
    Ok(())
}

/// `C[i, j] -= sum_p A[i, p] * A[j, p]` for `start <= j <= i < end`, with the
/// rank columns `p` in `[p0, p1)`; `C` and `A` share the buffer `data` (the
/// in-place trailing update of the blocked Cholesky).
fn syrk_lower_slices(data: &mut [f64], ld: usize, start: usize, end: usize, p0: usize, p1: usize) {
    const TILE: usize = 32;
    let disp = KernelDispatch::global();
    let pw = p1 - p0;
    // One scratch buffer for the whole update: the borrow checker cannot see
    // that the written entries (columns >= p1) never alias the panel columns
    // (< p1), so each row tile's panel rows are staged here once instead of
    // re-borrowing (or re-allocating) inside the inner loops.
    let mut panel = vec![0.0f64; TILE * pw];
    for ii in (start..end).step_by(TILE) {
        let imax = (ii + TILE).min(end);
        for (r, i) in (ii..imax).enumerate() {
            panel[r * pw..(r + 1) * pw].copy_from_slice(&data[i * ld + p0..i * ld + p1]);
        }
        for jj in (start..=ii).step_by(TILE) {
            let jmax = (jj + TILE).min(imax);
            for i in ii..imax {
                let arow_i = &panel[(i - ii) * pw..(i - ii + 1) * pw];
                for j in jj..jmax.min(i + 1) {
                    let arow_j = &data[j * ld + p0..j * ld + p1];
                    let s = disp.dot(arow_i, arow_j);
                    data[i * ld + j] -= s;
                }
            }
        }
    }
}

/// Symmetric rank-`k` update on the lower triangle: `C[i, j] += alpha *
/// (A A^T)[i, j]` for `j <= i`.  The strict upper triangle of `C` is left
/// untouched.
///
/// # Panics
/// Panics if `C` is not square with `C.rows() == A.rows()`.
pub fn syrk_lower(alpha: f64, a: &Matrix, c: &mut Matrix) {
    let n = c.rows();
    assert_eq!(n, c.cols(), "syrk_lower: C must be square");
    assert_eq!(n, a.rows(), "syrk_lower: A rows must match C");
    let disp = KernelDispatch::global();
    for i in 0..n {
        let crow = c.row_mut(i);
        for j in 0..=i {
            let s = disp.dot(a.row(i), a.row(j));
            crow[j] += alpha * s;
        }
    }
}

/// Solve `A x = b` given the Cholesky factor `L` of `A` (forward then
/// transposed-backward substitution).
pub fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let bm = Matrix::from_vec(b.len(), 1, b.to_vec());
    cholesky_solve_matrix(l, &bm).into_vec()
}

/// Solve `A X = B` for a matrix right-hand side given the Cholesky factor
/// `L` of `A`.
pub fn cholesky_solve_matrix(l: &Matrix, b: &Matrix) -> Matrix {
    let y = solve_lower_triangular_matrix(l, b);
    solve_lower_transpose_matrix(l, &y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms::relative_error;
    use rand::SeedableRng;

    /// A random well-conditioned SPD matrix: `M M^T + n I`.
    fn spd(n: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = Matrix::random_uniform(n, n, &mut rng);
        let mut a = matmul(&m, &m.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        for n in [1usize, 5, 63, 64, 65, 130] {
            let a = spd(n, n as u64);
            let l = cholesky(&a).expect("SPD input must factor");
            let back = matmul(&l, &l.transpose());
            assert!(
                relative_error(&back, &a) < 1e-12,
                "n = {n}: L L^T != A (err {})",
                relative_error(&back, &a)
            );
            // Strict upper triangle must be exactly zero.
            for i in 0..n {
                for j in (i + 1)..n {
                    assert_eq!(l.get(i, j), 0.0);
                }
            }
        }
    }

    #[test]
    fn solve_matches_true_solution() {
        let n = 40;
        let a = spd(n, 7);
        let x_true = Matrix::from_fn(n, 3, |i, j| ((i * 3 + j) as f64 * 0.1).sin());
        let b = matmul(&a, &x_true);
        let l = cholesky(&a).unwrap();
        let x = cholesky_solve_matrix(&l, &b);
        assert!(relative_error(&x, &x_true) < 1e-10);
        let bv: Vec<f64> = b.col(0);
        let xv = cholesky_solve(&l, &bv);
        for i in 0..n {
            assert!((xv[i] - x_true.get(i, 0)).abs() < 1e-9);
        }
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let mut a = spd(6, 3);
        a[(4, 4)] = -50.0;
        let err = cholesky(&a).unwrap_err();
        assert!(err.pivot <= 4);
        assert!(err.value <= 0.0);
    }

    #[test]
    fn empty_matrix_factors_trivially() {
        let a = Matrix::zeros(0, 0);
        let l = cholesky(&a).unwrap();
        assert_eq!(l.shape(), (0, 0));
    }

    #[test]
    fn syrk_matches_explicit_product_on_lower_triangle() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let a = Matrix::random_uniform(9, 4, &mut rng);
        let full = matmul(&a, &a.transpose());
        let mut c = Matrix::filled(9, 9, 2.0);
        syrk_lower(-1.0, &a, &mut c);
        for i in 0..9 {
            for j in 0..9 {
                if j <= i {
                    assert!((c.get(i, j) - (2.0 - full.get(i, j))).abs() < 1e-12);
                } else {
                    assert_eq!(c.get(i, j), 2.0, "upper triangle must be untouched");
                }
            }
        }
    }
}
