//! AVX2 + FMA packed GEMM path.
//!
//! The computational core is a 4x8 register tile ([`pack::MR`] x
//! [`pack::NR`]): 8 `ymm` accumulators (4 rows x 2 four-lane column
//! vectors), one broadcast register for `A` and two load registers for `B` —
//! 11 of the 16 architectural `ymm` registers, leaving slack for the
//! address arithmetic.  Per iteration of the depth loop the kernel issues 8
//! fused multiply-adds on 4-lane `f64` vectors, i.e. 32 flops against 12
//! loaded values, which is what moves a dense product from memory-bound to
//! FMA-port-bound.
//!
//! # Bitwise-determinism contract
//!
//! Every output element accumulates as a single chain of
//! `c = fma(a_ip, b_pj, c)` operations with `p` strictly ascending in
//! storage order:
//!
//! * the accumulators are **loaded from `C`** before the depth loop and
//!   stored back after it, so `kc`-blocking by the caller merely inserts
//!   value-neutral memory round-trips into the chain;
//! * edge tiles (`m % MR != 0`, `n % NR != 0`) run the **same full-width
//!   microkernel** against a zero-padded stack tile; padded lanes are
//!   discarded, real lanes see the identical fma chain;
//! * there is **no zero-skipping** (the scalar kernel's `a == 0` shortcut
//!   cannot be applied per-lane), so the chain's shape depends only on `kc`.
//!
//! Consequently the result of a product depends only on the logical
//! operands and the depth `k` — not on row chunking (thread count), column
//! grouping (RHS panel width), or the cache-derived `mc`/`nc` blocking.
#![cfg(target_arch = "x86_64")]

use super::pack::{pack_a, pack_a_trans, pack_b, packed_a_len, packed_b_len, MR, NR};
use core::arch::x86_64::*;
use matrox_cachesim::GemmBlocking;
use std::cell::RefCell;

thread_local! {
    /// Per-thread packing scratch (`A` buffer, `B` buffer).  Sized by the
    /// blocking parameters on first use and reused for every subsequent
    /// product on the same thread, so steady-state GEMM calls allocate
    /// nothing.
    static PACK_BUFS: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// The 4x8 microkernel: `C[0..4, 0..8] = fma-chain over the packed panels`.
///
/// # Safety
/// Requires the `avx2` and `fma` CPU features.  `a` must point to `kc * MR`
/// packed-A values, `b` to `kc * NR` packed-B values, and `c` to a tile with
/// 4 rows of 8 `f64`s at leading dimension `ldc` (all rows fully in bounds).
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn mkernel_4x8(kc: usize, a: *const f64, b: *const f64, c: *mut f64, ldc: usize) {
    // SAFETY: per the fn contract every pointer access below is in bounds —
    // `a` strides `p * MR + i` with `p < kc`, `i < MR` (a packed panel of
    // exactly `kc * MR` values), `b` strides `p * NR + {0,4}` within
    // `kc * NR`, and `c` is accessed at `i * ldc + {0..8}` with all four
    // rows fully in bounds.  Loads/stores are `loadu`/`storeu`, so no
    // alignment requirement beyond `f64`'s.
    unsafe {
        let mut acc = [[_mm256_setzero_pd(); 2]; MR];
        for (i, row) in acc.iter_mut().enumerate() {
            row[0] = _mm256_loadu_pd(c.add(i * ldc));
            row[1] = _mm256_loadu_pd(c.add(i * ldc + 4));
        }
        for p in 0..kc {
            let b0 = _mm256_loadu_pd(b.add(p * NR));
            let b1 = _mm256_loadu_pd(b.add(p * NR + 4));
            for (i, row) in acc.iter_mut().enumerate() {
                let ai = _mm256_set1_pd(*a.add(p * MR + i));
                row[0] = _mm256_fmadd_pd(ai, b0, row[0]);
                row[1] = _mm256_fmadd_pd(ai, b1, row[1]);
            }
        }
        for (i, row) in acc.iter().enumerate() {
            _mm256_storeu_pd(c.add(i * ldc), row[0]);
            _mm256_storeu_pd(c.add(i * ldc + 4), row[1]);
        }
    }
}

/// Run the microkernel on a possibly partial tile (`mr_eff x nr_eff` valid
/// elements).  Partial tiles are staged through a zero-padded stack tile so
/// the fma chain of every *valid* element is identical to the full-tile
/// path (see the module docs).
///
/// # Safety
/// Same as [`mkernel_4x8`], except `c` only needs `mr_eff` rows x `nr_eff`
/// columns in bounds.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn mkernel_tile(
    kc: usize,
    a: *const f64,
    b: *const f64,
    c: *mut f64,
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    if mr_eff == MR && nr_eff == NR {
        // SAFETY: full tile — the fn contract is exactly `mkernel_4x8`'s.
        unsafe { mkernel_4x8(kc, a, b, c, ldc) };
        return;
    }
    let mut tile = [0.0f64; MR * NR];
    // SAFETY: partial tile — only the `mr_eff x nr_eff` valid elements of
    // `c` are touched (in bounds per the fn contract); the microkernel runs
    // against the stack tile, which is a full `MR x NR` at ld `NR`.
    unsafe {
        for i in 0..mr_eff {
            for j in 0..nr_eff {
                tile[i * NR + j] = *c.add(i * ldc + j);
            }
        }
        mkernel_4x8(kc, a, b, tile.as_mut_ptr(), NR);
        for i in 0..mr_eff {
            for j in 0..nr_eff {
                *c.add(i * ldc + j) = tile[i * NR + j];
            }
        }
    }
}

/// Sweep the microkernel over one packed `mb x kb` A-block and `kb x nb`
/// B-block, updating `c[ic.., jc..]` (leading dimension `ldc`).
///
/// # Safety
/// Requires `avx2`/`fma`; `apack`/`bpack` must hold `packed_a_len(mb, kb)` /
/// `packed_b_len(nb, kb)` values; `c` must cover rows `[ic, ic + mb)` x
/// columns `[jc, jc + nb)`.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn tile_sweep(
    kb: usize,
    mb: usize,
    nb: usize,
    apack: &[f64],
    bpack: &[f64],
    c: &mut [f64],
    ldc: usize,
    ic: usize,
    jc: usize,
) {
    // SAFETY: panel `ti` of the packed A block starts at `ti * MR * kb`
    // (zero-padded to a whole panel by the packers, so full-panel reads stay
    // in bounds even when `mr_eff < MR`); likewise `tj * NR * kb` for B.
    // The C tile pointer sits at row `ic + ti*MR`, col `jc + tj*NR`, and
    // `mkernel_tile` only touches its `mr_eff x nr_eff` valid elements —
    // within the `[ic, ic+mb) x [jc, jc+nb)` region the fn contract covers.
    unsafe {
        for ti in 0..mb.div_ceil(MR) {
            let mr_eff = MR.min(mb - ti * MR);
            let apanel = apack.as_ptr().add(ti * MR * kb);
            for tj in 0..nb.div_ceil(NR) {
                let nr_eff = NR.min(nb - tj * NR);
                let bpanel = bpack.as_ptr().add(tj * NR * kb);
                let ctile = c.as_mut_ptr().add((ic + ti * MR) * ldc + jc + tj * NR);
                mkernel_tile(kb, apanel, bpanel, ctile, ldc, mr_eff, nr_eff);
            }
        }
    }
}

/// Packed, cache-blocked `C += op(A) * B` over raw row-major slices.
///
/// * `trans_a = false`: `A` is `m x k` row-major with leading dimension
///   `lda` and the product reads logical rows `[i0, i0 + m)` (so a parallel
///   caller can hand each row chunk the full `a` slice).
/// * `trans_a = true`: `A` is stored `k x lda` row-major and the product
///   uses columns `[i0, i0 + m)` of it as the rows of `A^T`.
///
/// `b` is `k x n` row-major, `c` is `m x n` row-major (the chunk's own
/// rows).  Caller guarantees the `avx2`/`fma` features are present (checked
/// once at dispatch resolution).
pub fn gemm_blocked(
    blk: GemmBlocking,
    trans_a: bool,
    a: &[f64],
    lda: usize,
    i0: usize,
    m: usize,
    k: usize,
    b: &[f64],
    n: usize,
    c: &mut [f64],
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    PACK_BUFS.with(|cell| {
        let mut bufs = cell.borrow_mut();
        let (abuf, bbuf) = &mut *bufs;
        let amax = packed_a_len(blk.mc.min(m), blk.kc.min(k));
        let bmax = packed_b_len(blk.nc.min(n), blk.kc.min(k));
        if abuf.len() < amax {
            abuf.resize(amax, 0.0);
        }
        if bbuf.len() < bmax {
            bbuf.resize(bmax, 0.0);
        }
        for jc in (0..n).step_by(blk.nc) {
            let nb = blk.nc.min(n - jc);
            for pc in (0..k).step_by(blk.kc) {
                let kb = blk.kc.min(k - pc);
                pack_b(b, n, pc, kb, jc, nb, bbuf);
                for ic in (0..m).step_by(blk.mc) {
                    let mb = blk.mc.min(m - ic);
                    if trans_a {
                        pack_a_trans(a, lda, i0 + ic, mb, pc, kb, abuf);
                    } else {
                        pack_a(a, lda, i0 + ic, mb, pc, kb, abuf);
                    }
                    // SAFETY: dispatch resolution verified avx2+fma; the
                    // packed buffers were filled for exactly (mb, kb) /
                    // (nb, kb); c covers rows [ic, ic+mb) x cols [jc, jc+nb)
                    // at leading dimension n.
                    unsafe { tile_sweep(kb, mb, nb, abuf, bbuf, c, n, ic, jc) }
                }
            }
        }
    });
}

/// AVX2 dot product: four independent 4-lane accumulators over 16-element
/// strides, then a fixed-order horizontal reduction, then an fma tail.  The
/// summation tree depends only on `x.len()`, so the result is deterministic
/// for a given input length.
///
/// Caller guarantees `avx2`/`fma` (checked at dispatch resolution) and
/// `x.len() == y.len()`.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    // SAFETY: feature presence is the dispatch's invariant; slices are
    // equal-length and all loads below stay in bounds.
    unsafe { dot_inner(x, y) }
}

/// # Safety
/// Requires the `avx2`/`fma` CPU features and `x.len() == y.len()` (the
/// safe wrapper [`dot`] checks the latter and dispatch resolution the
/// former).
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_inner(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    // SAFETY: every load below reads `[i, i + 4)` with `i + 4 <= n` (or
    // `[i, i + 16)` with `i + 16 <= n`), inside both equal-length slices;
    // the scalar tail dereferences `i < n` one element at a time.
    unsafe {
        let mut acc = [_mm256_setzero_pd(); 4];
        let mut i = 0;
        while i + 16 <= n {
            for (lane, a) in acc.iter_mut().enumerate() {
                let xv = _mm256_loadu_pd(xp.add(i + 4 * lane));
                let yv = _mm256_loadu_pd(yp.add(i + 4 * lane));
                *a = _mm256_fmadd_pd(xv, yv, *a);
            }
            i += 16;
        }
        while i + 4 <= n {
            let xv = _mm256_loadu_pd(xp.add(i));
            let yv = _mm256_loadu_pd(yp.add(i));
            acc[0] = _mm256_fmadd_pd(xv, yv, acc[0]);
            i += 4;
        }
        let v = _mm256_add_pd(_mm256_add_pd(acc[0], acc[1]), _mm256_add_pd(acc[2], acc[3]));
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), v);
        let mut s = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
        while i < n {
            s = (*xp.add(i)).mul_add(*yp.add(i), s);
            i += 1;
        }
        s
    }
}

/// AVX2 `y += alpha * x` (element-wise fma).  Caller guarantees
/// `avx2`/`fma` and `x.len() == y.len()`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    // SAFETY: feature presence is the dispatch's invariant; loads/stores
    // stay within the equal-length slices.
    unsafe { axpy_inner(alpha, x, y) }
}

/// # Safety
/// Requires the `avx2`/`fma` CPU features and `x.len() == y.len()` (the
/// safe wrapper [`axpy`] checks the latter and dispatch resolution the
/// former).
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn axpy_inner(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len();
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let av = _mm256_set1_pd(alpha);
    // SAFETY: vector loads/stores cover `[i, i + 4)` with `i + 4 <= n`,
    // the scalar tail `i < n` — all inside the equal-length slices; `x`
    // and `y` are distinct borrows, so the store never aliases the load.
    unsafe {
        let mut i = 0;
        while i + 4 <= n {
            let xv = _mm256_loadu_pd(xp.add(i));
            let yv = _mm256_loadu_pd(yp.add(i));
            _mm256_storeu_pd(yp.add(i), _mm256_fmadd_pd(av, xv, yv));
            i += 4;
        }
        while i < n {
            *yp.add(i) = alpha.mul_add(*xp.add(i), *yp.add(i));
            i += 1;
        }
    }
}
