//! Operand packing for the register-blocked microkernel.
//!
//! A packed GEMM never streams its operands straight from the row-major
//! source: it first copies a block of `A` and a block of `B` into buffers
//! whose layout matches the microkernel's register tiling, so the inner loop
//! reads both operands with stride 1 and every cache line it pulls is fully
//! used.  The formats (the "panel-major" layouts every BLIS-style kernel
//! uses) are:
//!
//! * **packed `A`** — the `mb x kb` block is cut into panels of [`MR`] rows;
//!   within a panel the elements are stored column-by-column (`p` major,
//!   then row-within-panel), so the microkernel reads the [`MR`] values of
//!   one `p` as one contiguous group.  Element `(i, p)` of the block lives at
//!   `(i / MR) * MR * kb + p * MR + i % MR`.
//! * **packed `B`** — the `kb x nb` block is cut into panels of [`NR`]
//!   columns; within a panel the elements are stored row-by-row, so one `p`
//!   contributes [`NR`] contiguous values.  Element `(p, j)` lives at
//!   `(j / NR) * NR * kb + p * NR + j % NR`.
//!
//! The last panel of each operand is **zero-padded** to the full [`MR`] /
//! [`NR`] width.  The microkernel always computes full `MR x NR` tiles;
//! products involving the padding multiply zeros into result lanes that are
//! never written back, so padding changes no observable value (see the
//! bitwise-determinism contract in the crate docs).

/// Microkernel tile height (rows of `C` per register tile).
pub const MR: usize = 4;
/// Microkernel tile width (columns of `C` per register tile).
pub const NR: usize = 8;

/// Length of the packed-`A` buffer for an `mb x kb` block (`mb` rounded up
/// to whole [`MR`]-row panels).
pub fn packed_a_len(mb: usize, kb: usize) -> usize {
    mb.div_ceil(MR) * MR * kb
}

/// Length of the packed-`B` buffer for a `kb x nb` block (`nb` rounded up
/// to whole [`NR`]-column panels).
pub fn packed_b_len(nb: usize, kb: usize) -> usize {
    nb.div_ceil(NR) * NR * kb
}

/// Pack rows `[i0, i0 + mb)` x columns `[p0, p0 + kb)` of the row-major
/// matrix `a` (leading dimension `lda`) into `out` in packed-`A` layout.
///
/// `out[..packed_a_len(mb, kb)]` is fully overwritten, padding included, so
/// a reused (possibly stale) scratch buffer is safe.
pub fn pack_a(a: &[f64], lda: usize, i0: usize, mb: usize, p0: usize, kb: usize, out: &mut [f64]) {
    let panels = mb.div_ceil(MR);
    for t in 0..panels {
        let rows_here = MR.min(mb - t * MR);
        let panel = &mut out[t * MR * kb..(t + 1) * MR * kb];
        for p in 0..kb {
            for r in 0..rows_here {
                panel[p * MR + r] = a[(i0 + t * MR + r) * lda + p0 + p];
            }
            for r in rows_here..MR {
                panel[p * MR + r] = 0.0;
            }
        }
    }
}

/// Like [`pack_a`], but packs a block of the *transpose* of `a`: `a` is
/// stored `k x m` row-major (leading dimension `lda = m`), and the packed
/// block covers rows `[i0, i0 + mb)` x columns `[p0, p0 + kb)` of `A^T`,
/// i.e. element `(i, p)` is read from `a[(p0 + p) * lda + i0 + i]`.
///
/// This is the upward-pass (`T_i = V_i^T W_i`) packing: `V` is stored
/// untransposed in CDS and the transpose happens for free during the copy.
pub fn pack_a_trans(
    a: &[f64],
    lda: usize,
    i0: usize,
    mb: usize,
    p0: usize,
    kb: usize,
    out: &mut [f64],
) {
    let panels = mb.div_ceil(MR);
    for t in 0..panels {
        let rows_here = MR.min(mb - t * MR);
        let panel = &mut out[t * MR * kb..(t + 1) * MR * kb];
        for p in 0..kb {
            let arow = &a[(p0 + p) * lda..];
            for r in 0..rows_here {
                panel[p * MR + r] = arow[i0 + t * MR + r];
            }
            for r in rows_here..MR {
                panel[p * MR + r] = 0.0;
            }
        }
    }
}

/// Pack rows `[p0, p0 + kb)` x columns `[j0, j0 + nb)` of the row-major
/// matrix `b` (leading dimension `ldb`) into `out` in packed-`B` layout.
pub fn pack_b(b: &[f64], ldb: usize, p0: usize, kb: usize, j0: usize, nb: usize, out: &mut [f64]) {
    let panels = nb.div_ceil(NR);
    for u in 0..panels {
        let cols_here = NR.min(nb - u * NR);
        let panel = &mut out[u * NR * kb..(u + 1) * NR * kb];
        for p in 0..kb {
            let brow = &b[(p0 + p) * ldb + j0 + u * NR..];
            for cidx in 0..cols_here {
                panel[p * NR + cidx] = brow[cidx];
            }
            for cidx in cols_here..NR {
                panel[p * NR + cidx] = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Read element `(i, p)` back out of a packed-A buffer.
    fn packed_a_get(buf: &[f64], kb: usize, i: usize, p: usize) -> f64 {
        buf[(i / MR) * MR * kb + p * MR + i % MR]
    }

    /// Read element `(p, j)` back out of a packed-B buffer.
    fn packed_b_get(buf: &[f64], kb: usize, p: usize, j: usize) -> f64 {
        buf[(j / NR) * NR * kb + p * NR + j % NR]
    }

    #[test]
    fn pack_a_round_trips_with_zero_padding() {
        // Deliberately awkward shapes: m < MR, m % MR != 0, k = 0.
        for (m, k) in [(1usize, 5usize), (3, 7), (6, 4), (4, 0), (9, 1)] {
            let a: Vec<f64> = (0..m * k).map(|x| x as f64 + 1.0).collect();
            let mut out = vec![f64::NAN; packed_a_len(m, k)];
            pack_a(&a, k.max(1), 0, m, 0, k, &mut out);
            for i in 0..m.div_ceil(MR) * MR {
                for p in 0..k {
                    let expect = if i < m { a[i * k.max(1) + p] } else { 0.0 };
                    assert_eq!(packed_a_get(&out, k, i, p), expect, "(i={i}, p={p})");
                }
            }
        }
    }

    #[test]
    fn pack_a_trans_reads_the_transpose() {
        let (k, m) = (5usize, 7usize); // a is k x m, block covers all of A^T
        let a: Vec<f64> = (0..k * m).map(|x| (x as f64).sin()).collect();
        let mut out = vec![f64::NAN; packed_a_len(m, k)];
        pack_a_trans(&a, m, 0, m, 0, k, &mut out);
        for i in 0..m {
            for p in 0..k {
                assert_eq!(packed_a_get(&out, k, i, p), a[p * m + i]);
            }
        }
    }

    #[test]
    fn pack_b_round_trips_with_zero_padding() {
        for (k, n) in [(4usize, 3usize), (2, 8), (5, 17), (0, 9), (1, 1)] {
            let b: Vec<f64> = (0..k * n).map(|x| x as f64 * 0.5 - 3.0).collect();
            let mut out = vec![f64::NAN; packed_b_len(n, k)];
            pack_b(&b, n.max(1), 0, k, 0, n, &mut out);
            for p in 0..k {
                for j in 0..n.div_ceil(NR) * NR {
                    let expect = if j < n { b[p * n.max(1) + j] } else { 0.0 };
                    assert_eq!(packed_b_get(&out, k, p, j), expect, "(p={p}, j={j})");
                }
            }
        }
    }

    #[test]
    fn sub_block_packing_matches_full_packing() {
        // Packing a sub-block must read exactly the sub-block's elements.
        let (m, k) = (11usize, 9usize);
        let a: Vec<f64> = (0..m * k).map(|x| x as f64).collect();
        let (i0, mb, p0, kb) = (4usize, 5usize, 2usize, 6usize);
        let mut out = vec![f64::NAN; packed_a_len(mb, kb)];
        pack_a(&a, k, i0, mb, p0, kb, &mut out);
        for i in 0..mb {
            for p in 0..kb {
                assert_eq!(packed_a_get(&out, kb, i, p), a[(i0 + i) * k + p0 + p]);
            }
        }
    }
}
