//! # matrox-linalg
//!
//! Dense linear-algebra substrate for the MatRox reproduction.
//!
//! The original MatRox implementation links Intel MKL for BLAS/LAPACK
//! routines (GEMM inside the executor, pivoted QR inside the interpolative
//! decomposition used by compression).  This crate provides the equivalent
//! functionality in pure Rust so that the whole workspace is self-contained:
//!
//! * [`Matrix`] — a dense, row-major, `f64` matrix with the small set of
//!   operations the rest of the workspace needs.
//! * [`mod@gemm`] — cache-blocked sequential and rayon-parallel matrix-matrix
//!   products (`C ← αAB + βC`), plus `gemv` and transposed variants.
//! * [`mod@kernel`] — the kernel layer under those products: a packed,
//!   register-blocked AVX2+FMA microkernel with runtime feature detection,
//!   the portable scalar fallback, and the [`KernelDispatch`] every hot
//!   caller resolves once (overridable via `MATROX_KERNEL=auto|scalar|avx2`).
//!   See its module docs for the packing formats and the
//!   bitwise-determinism contract.
//! * [`qr`] — Householder column-pivoted QR (Businger–Golub) with adaptive
//!   rank detection.
//! * [`chol`] — blocked dense Cholesky with a symmetric rank-`k` trailing
//!   update; factors the ULV leaf blocks and the dense solver baseline.
//! * [`lu`] — partial-pivoted LU for the small nonsymmetric sibling-merge
//!   systems of the HSS factorization.
//! * [`id`] — row/column interpolative decompositions built on top of the
//!   pivoted QR; this is the compression workhorse of MatRox.
//! * [`norms`] — Frobenius norms and relative-error helpers used by the
//!   accuracy experiments (Figure 9 of the paper).
//!
//! All evaluation strategies in the workspace (MatRox itself as well as the
//! GOFMM-, STRUMPACK- and SMASH-style baselines) share these kernels, so the
//! relative performance comparisons reported by the benchmark harnesses are
//! not skewed by different BLAS backends.
//!
//! # Example: a dispatched product
//!
//! [`gemm()`] is the front-end the rest of the workspace calls; it routes
//! through the process-wide kernel selection (AVX2 microkernel where
//! available, scalar otherwise) and stays within `1e-12` relative error of
//! the scalar reference [`gemm_seq`]:
//!
//! ```
//! use matrox_linalg::{gemm, gemm_seq, GemmOp, Matrix};
//!
//! let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
//! let b = Matrix::from_rows(&[vec![0.5, 0.0], vec![-1.0, 2.0]]);
//! let mut c = Matrix::zeros(2, 2);
//! let mut c_ref = Matrix::zeros(2, 2);
//! gemm(1.0, &a, GemmOp::NoTrans, &b, GemmOp::NoTrans, 0.0, &mut c);
//! gemm_seq(1.0, &a, GemmOp::NoTrans, &b, GemmOp::NoTrans, 0.0, &mut c_ref);
//! for i in 0..2 {
//!     for j in 0..2 {
//!         assert!((c.get(i, j) - c_ref.get(i, j)).abs() < 1e-12);
//!     }
//! }
//! ```

pub mod chol;
pub mod failpoint;
pub mod gemm;
pub mod id;
pub mod kernel;
pub mod knobs;
pub mod lu;
pub mod matrix;
pub mod norms;
pub mod qr;
pub mod solve;

pub use chol::{cholesky, cholesky_solve, cholesky_solve_matrix, syrk_lower, NotPositiveDefinite};
pub use gemm::{
    gemm, gemm_panel, gemm_seq, gemm_slices, gemm_tn_slices, gemv, matmul, par_gemm,
    par_gemm_slices, par_gemm_tn_slices, GemmOp,
};
pub use id::{column_id, row_id, IdResult};
pub use kernel::{simd_available, KernelArch, KernelChoice, KernelDispatch};
pub use lu::{lu_factor, lu_solve, lu_solve_matrix, LuFactors, SingularMatrix};
pub use matrix::{all_finite, Matrix};
pub use norms::{frobenius_norm, relative_error};
pub use qr::{pivoted_qr, PivotedQr};
pub use solve::{
    solve_lower_transpose_matrix, solve_lower_triangular, solve_lower_triangular_matrix,
    solve_upper_triangular, solve_upper_triangular_matrix,
};
