//! Norms and error measures.
//!
//! The overall accuracy reported in Figure 9 of the paper is
//! `eps_f = ||K~ W - K W||_F / ||K W||_F`; [`relative_error`] implements that
//! measure for arbitrary matrix pairs.

use crate::matrix::Matrix;

/// Frobenius norm of a matrix.
pub fn frobenius_norm(a: &Matrix) -> f64 {
    a.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Frobenius norm of a raw slice (treated as a flat vector).
pub fn frobenius_norm_slice(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Relative Frobenius error `||a - b||_F / ||b||_F`.
///
/// When `b` is exactly zero the absolute error `||a||_F` is returned instead,
/// so the function is total.
pub fn relative_error(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape(), "relative_error: shape mismatch");
    let mut diff = 0.0;
    let mut base = 0.0;
    for (x, y) in a.as_slice().iter().zip(b.as_slice().iter()) {
        let d = x - y;
        diff += d * d;
        base += y * y;
    }
    if base == 0.0 {
        diff.sqrt()
    } else {
        (diff / base).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frobenius_of_identity() {
        let m = Matrix::identity(4);
        assert!((frobenius_norm(&m) - 2.0).abs() < 1e-14);
    }

    #[test]
    fn relative_error_of_equal_matrices_is_zero() {
        let m = Matrix::from_fn(5, 5, |i, j| (i + j) as f64);
        assert_eq!(relative_error(&m, &m), 0.0);
    }

    #[test]
    fn relative_error_scales() {
        let a = Matrix::filled(2, 2, 1.1);
        let b = Matrix::filled(2, 2, 1.0);
        let e = relative_error(&a, &b);
        assert!((e - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_base_falls_back_to_absolute() {
        let a = Matrix::filled(2, 2, 3.0);
        let b = Matrix::zeros(2, 2);
        assert!((relative_error(&a, &b) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn slice_norm_matches_matrix_norm() {
        let m = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(frobenius_norm(&m), frobenius_norm_slice(m.as_slice()));
    }
}
