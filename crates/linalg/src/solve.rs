//! Triangular solves used by the interpolative decomposition.
//!
//! The ID needs `T = R11^{-1} R12` where `R11` is the leading `k x k` upper
//! triangle of the pivoted-QR factor.  We solve column by column with plain
//! back-substitution; `k` is bounded by the maximum submatrix rank (256 in the
//! paper's default configuration), so this is never a bottleneck.

use crate::matrix::Matrix;

/// Solve `U x = b` where `U` is the upper-triangular leading block of `u`
/// (only entries `u[i][j]` with `j >= i` and `i, j < n` are referenced).
///
/// # Panics
/// Panics on dimension mismatch or on an exactly singular diagonal entry.
pub fn solve_upper_triangular(u: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = b.len();
    assert!(u.rows() >= n && u.cols() >= n, "solve: U too small");
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let mut acc = x[i];
        let row = u.row(i);
        for j in (i + 1)..n {
            acc -= row[j] * x[j];
        }
        let d = row[i];
        assert!(d != 0.0, "solve_upper_triangular: singular diagonal at {i}");
        x[i] = acc / d;
    }
    x
}

/// Solve `U X = B` column-by-column, where `U` is `k x k` upper triangular
/// (taken from the leading block of `u`) and `B` is `k x n`.
pub fn solve_upper_triangular_matrix(u: &Matrix, b: &Matrix) -> Matrix {
    let k = b.rows();
    let n = b.cols();
    let mut x = Matrix::zeros(k, n);
    // Back-substitution over all right-hand sides at once, row-major friendly:
    // process rows bottom-up, updating full rows.
    let mut work = b.clone();
    for i in (0..k).rev() {
        let urow_i = u.row(i).to_vec();
        let d = urow_i[i];
        assert!(
            d != 0.0,
            "solve_upper_triangular_matrix: singular diagonal at {i}"
        );
        // x[i, :] = (work[i, :] - sum_{j>i} U[i,j] * x[j, :]) / d
        let mut acc = work.row(i).to_vec();
        for j in (i + 1)..k {
            let uij = urow_i[j];
            if uij == 0.0 {
                continue;
            }
            let xrow = x.row(j).to_vec();
            for c in 0..n {
                acc[c] -= uij * xrow[c];
            }
        }
        for c in 0..n {
            acc[c] /= d;
        }
        x.row_mut(i).copy_from_slice(&acc);
        work.row_mut(i).iter_mut().for_each(|v| *v = 0.0);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms::relative_error;

    fn upper(n: usize, seed: u64) -> Matrix {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Matrix::from_fn(n, n, |i, j| {
            if j > i {
                rng.gen_range(-1.0..1.0)
            } else if j == i {
                rng.gen_range(1.0..2.0)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn vector_solve_matches_product() {
        let u = upper(8, 1);
        let x_true: Vec<f64> = (0..8).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut b = vec![0.0; 8];
        crate::gemm::gemv(1.0, &u, crate::gemm::GemmOp::NoTrans, &x_true, 0.0, &mut b);
        let x = solve_upper_triangular(&u, &b);
        for (a, b) in x.iter().zip(x_true.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn matrix_solve_matches_product() {
        let u = upper(10, 2);
        let x_true = Matrix::from_fn(10, 4, |i, j| ((i * 4 + j) as f64).sin());
        let b = matmul(&u, &x_true);
        let x = solve_upper_triangular_matrix(&u, &b);
        assert!(relative_error(&x, &x_true) < 1e-10);
    }

    #[test]
    #[should_panic]
    fn singular_diagonal_panics() {
        let mut u = upper(4, 3);
        u.set(2, 2, 0.0);
        let _ = solve_upper_triangular(&u, &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn empty_solve_is_empty() {
        let u = Matrix::zeros(0, 0);
        let b = Matrix::zeros(0, 3);
        let x = solve_upper_triangular_matrix(&u, &b);
        assert_eq!(x.shape(), (0, 3));
    }
}
