//! Triangular solves used by the interpolative decomposition and the
//! ULV-style HSS factorization.
//!
//! The ID needs `T = R11^{-1} R12` where `R11` is the leading `k x k` upper
//! triangle of the pivoted-QR factor.  We solve column by column with plain
//! back-substitution; `k` is bounded by the maximum submatrix rank (256 in the
//! paper's default configuration), so this is never a bottleneck.
//!
//! The lower-triangular variants are the forward/backward substitution
//! kernels of the Cholesky-based solves (`crate::chol`, `matrox-factor`):
//! the ULV sweeps solve `L y = b` on the way up and `L^T x = y` on the way
//! down, both against the same stored lower factor.

use crate::matrix::Matrix;

/// Solve `U x = b` where `U` is the upper-triangular leading block of `u`
/// (only entries `u[i][j]` with `j >= i` and `i, j < n` are referenced).
///
/// # Panics
/// Panics on dimension mismatch or on an exactly singular diagonal entry.
pub fn solve_upper_triangular(u: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = b.len();
    assert!(u.rows() >= n && u.cols() >= n, "solve: U too small");
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let mut acc = x[i];
        let row = u.row(i);
        for j in (i + 1)..n {
            acc -= row[j] * x[j];
        }
        let d = row[i];
        assert!(d != 0.0, "solve_upper_triangular: singular diagonal at {i}");
        x[i] = acc / d;
    }
    x
}

/// Solve `U X = B` column-by-column, where `U` is `k x k` upper triangular
/// (taken from the leading block of `u`) and `B` is `k x n`.
pub fn solve_upper_triangular_matrix(u: &Matrix, b: &Matrix) -> Matrix {
    let k = b.rows();
    let n = b.cols();
    let mut x = Matrix::zeros(k, n);
    // Back-substitution over all right-hand sides at once, row-major friendly:
    // process rows bottom-up, updating full rows.  Each row of `b` is read
    // exactly once (at its own iteration), so no work buffer is needed.
    for i in (0..k).rev() {
        let urow_i = u.row(i).to_vec();
        let d = urow_i[i];
        assert!(
            d != 0.0,
            "solve_upper_triangular_matrix: singular diagonal at {i}"
        );
        // x[i, :] = (b[i, :] - sum_{j>i} U[i,j] * x[j, :]) / d
        let mut acc = b.row(i).to_vec();
        for j in (i + 1)..k {
            let uij = urow_i[j];
            if uij == 0.0 {
                continue;
            }
            let xrow = x.row(j).to_vec();
            for c in 0..n {
                acc[c] -= uij * xrow[c];
            }
        }
        for c in 0..n {
            acc[c] /= d;
        }
        x.row_mut(i).copy_from_slice(&acc);
    }
    x
}

/// Solve `L x = b` where `L` is the lower-triangular leading block of `l`
/// (only entries `l[i][j]` with `j <= i` and `i, j < b.len()` are
/// referenced).
///
/// # Panics
/// Panics on dimension mismatch or on an exactly singular diagonal entry.
pub fn solve_lower_triangular(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = b.len();
    assert!(l.rows() >= n && l.cols() >= n, "solve: L too small");
    let mut x = b.to_vec();
    for i in 0..n {
        let row = l.row(i);
        let mut acc = x[i];
        for j in 0..i {
            acc -= row[j] * x[j];
        }
        let d = row[i];
        assert!(d != 0.0, "solve_lower_triangular: singular diagonal at {i}");
        x[i] = acc / d;
    }
    x
}

/// Solve `L X = B` by forward substitution over all right-hand sides at
/// once, where `L` is `k x k` lower triangular (taken from the leading block
/// of `l`) and `B` is `k x n`.  This is the upward half of the ULV leaf
/// solves.
pub fn solve_lower_triangular_matrix(l: &Matrix, b: &Matrix) -> Matrix {
    let k = b.rows();
    let n = b.cols();
    assert!(l.rows() >= k && l.cols() >= k, "solve: L too small");
    let mut x = Matrix::zeros(k, n);
    for i in 0..k {
        let lrow_i = l.row(i).to_vec();
        let d = lrow_i[i];
        assert!(
            d != 0.0,
            "solve_lower_triangular_matrix: singular diagonal at {i}"
        );
        let mut acc = b.row(i).to_vec();
        for j in 0..i {
            let lij = lrow_i[j];
            if lij == 0.0 {
                continue;
            }
            let xrow = x.row(j).to_vec();
            for c in 0..n {
                acc[c] -= lij * xrow[c];
            }
        }
        for c in 0..n {
            acc[c] /= d;
        }
        x.row_mut(i).copy_from_slice(&acc);
    }
    x
}

/// Solve `L^T X = B` against the *stored lower* factor `L` (the backward
/// half of a Cholesky solve, without materializing the transpose).
pub fn solve_lower_transpose_matrix(l: &Matrix, b: &Matrix) -> Matrix {
    let k = b.rows();
    let n = b.cols();
    assert!(l.rows() >= k && l.cols() >= k, "solve: L too small");
    let mut x = Matrix::zeros(k, n);
    for i in (0..k).rev() {
        let d = l.get(i, i);
        assert!(
            d != 0.0,
            "solve_lower_transpose_matrix: singular diagonal at {i}"
        );
        let mut acc = b.row(i).to_vec();
        for j in (i + 1)..k {
            // (L^T)[i, j] = L[j, i]
            let lji = l.get(j, i);
            if lji == 0.0 {
                continue;
            }
            let xrow = x.row(j).to_vec();
            for c in 0..n {
                acc[c] -= lji * xrow[c];
            }
        }
        for c in 0..n {
            acc[c] /= d;
        }
        x.row_mut(i).copy_from_slice(&acc);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms::relative_error;

    fn upper(n: usize, seed: u64) -> Matrix {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Matrix::from_fn(n, n, |i, j| {
            if j > i {
                rng.gen_range(-1.0..1.0)
            } else if j == i {
                rng.gen_range(1.0..2.0)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn vector_solve_matches_product() {
        let u = upper(8, 1);
        let x_true: Vec<f64> = (0..8).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut b = vec![0.0; 8];
        crate::gemm::gemv(1.0, &u, crate::gemm::GemmOp::NoTrans, &x_true, 0.0, &mut b);
        let x = solve_upper_triangular(&u, &b);
        for (a, b) in x.iter().zip(x_true.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn matrix_solve_matches_product() {
        let u = upper(10, 2);
        let x_true = Matrix::from_fn(10, 4, |i, j| ((i * 4 + j) as f64).sin());
        let b = matmul(&u, &x_true);
        let x = solve_upper_triangular_matrix(&u, &b);
        assert!(relative_error(&x, &x_true) < 1e-10);
    }

    #[test]
    #[should_panic]
    fn singular_diagonal_panics() {
        let mut u = upper(4, 3);
        u.set(2, 2, 0.0);
        let _ = solve_upper_triangular(&u, &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn empty_solve_is_empty() {
        let u = Matrix::zeros(0, 0);
        let b = Matrix::zeros(0, 3);
        let x = solve_upper_triangular_matrix(&u, &b);
        assert_eq!(x.shape(), (0, 3));
    }

    fn lower(n: usize, seed: u64) -> Matrix {
        upper(n, seed).transpose()
    }

    #[test]
    fn lower_vector_solve_matches_product() {
        let l = lower(9, 4);
        let x_true: Vec<f64> = (0..9).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut b = vec![0.0; 9];
        crate::gemm::gemv(1.0, &l, crate::gemm::GemmOp::NoTrans, &x_true, 0.0, &mut b);
        let x = solve_lower_triangular(&l, &b);
        for (a, b) in x.iter().zip(x_true.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn lower_matrix_solve_matches_product() {
        let l = lower(12, 5);
        let x_true = Matrix::from_fn(12, 3, |i, j| ((i * 3 + j) as f64 * 0.2).cos());
        let b = matmul(&l, &x_true);
        let x = solve_lower_triangular_matrix(&l, &b);
        assert!(relative_error(&x, &x_true) < 1e-10);
    }

    #[test]
    fn lower_transpose_solve_matches_explicit_transpose() {
        let l = lower(10, 6);
        let x_true = Matrix::from_fn(10, 2, |i, j| ((i + j) as f64 * 0.4).sin());
        let b = matmul(&l.transpose(), &x_true);
        let x = solve_lower_transpose_matrix(&l, &b);
        assert!(relative_error(&x, &x_true) < 1e-10);
        // Must agree with solving the materialized transpose as an upper system.
        let x2 = solve_upper_triangular_matrix(&l.transpose(), &b);
        assert!(relative_error(&x, &x2) < 1e-13);
    }

    #[test]
    fn lower_empty_solves_are_empty() {
        let l = Matrix::zeros(0, 0);
        assert_eq!(
            solve_lower_triangular_matrix(&l, &Matrix::zeros(0, 2)).shape(),
            (0, 2)
        );
        assert_eq!(
            solve_lower_transpose_matrix(&l, &Matrix::zeros(0, 2)).shape(),
            (0, 2)
        );
        assert!(solve_lower_triangular(&l, &[]).is_empty());
    }
}
