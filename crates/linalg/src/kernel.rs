//! Kernel selection: the packed SIMD microkernel layer and its dispatch.
//!
//! Every hot product in the workspace (executor leaf/coupling/transfer
//! phases, the ULV factorization's reduced-matrix updates, the dense
//! baselines) funnels through a [`KernelDispatch`]: a kernel *architecture*
//! resolved **once** at startup from, in priority order,
//!
//! 1. an explicit [`KernelChoice`] carried by the caller
//!    (`ExecOptions::kernel` / `MatRoxParams::kernel` upstream);
//! 2. the `MATROX_KERNEL` environment variable (`auto`, `scalar`, `avx2`);
//! 3. runtime CPU feature detection (`auto`).
//!
//! Two architectures exist today:
//!
//! * [`KernelArch::Scalar`] — the original cache-blocked scalar loops
//!   (`C += A*B` with per-element `mul` + `add`, zero-skipping).  This is
//!   the portable fallback and is bitwise-identical to the pre-SIMD
//!   behaviour of the workspace.
//! * [`KernelArch::Avx2`] — a packed, register-blocked 4x8 `f64`
//!   microkernel using AVX2 + FMA intrinsics (see [`mod@crate::kernel::pack`] for
//!   the panel formats and `kernel/avx2.rs` for the tile).  Selected by
//!   `auto` when the CPU supports it; requesting `avx2` on hardware
//!   without the features silently falls back to `scalar` (recorded in
//!   [`KernelDispatch::name`]).
//!
//! # The bitwise-determinism contract
//!
//! For a **fixed** dispatch, every entry point guarantees that each output
//! element accumulates its `k` products in storage order as one fixed
//! operation chain (`mul`+`add` for scalar, `fma` for AVX2).  The chain
//! depends only on the logical operands — never on thread count, row
//! chunking, RHS panel grouping or the cache-derived pack-block sizes.
//! That is the property the executor's "results are bitwise identical
//! across `RAYON_NUM_THREADS`, `MATROX_GRAIN` and `MATROX_PANEL`" tests
//! pin.  Results **do** differ between architectures (FMA rounds once,
//! mul+add rounds twice); switching kernels is the one knob that moves
//! results, which is why the selection is made once and logged rather than
//! decided per call site.
//!
//! ```
//! use matrox_linalg::kernel::{KernelChoice, KernelDispatch};
//!
//! // Resolve explicitly (tests, ablations) ...
//! let scalar = KernelDispatch::resolve(KernelChoice::Scalar);
//! assert_eq!(scalar.name(), "scalar");
//! // ... or take the process-wide selection (MATROX_KERNEL + detection).
//! let global = KernelDispatch::global();
//!
//! // C += A * B on raw row-major slices, 2x3 * 3x2:
//! let a = [1.0, 0.0, 2.0, 0.0, 1.0, -1.0];
//! let b = [1.0, 1.0, 2.0, 0.5, 0.0, -2.0];
//! let mut c = [0.0; 4];
//! global.gemm(&a, 2, 3, &b, 2, &mut c);
//! let mut c_ref = [0.0; 4];
//! scalar.gemm(&a, 2, 3, &b, 2, &mut c_ref);
//! for (x, y) in c.iter().zip(&c_ref) {
//!     assert!((x - y).abs() < 1e-12);
//! }
//! ```

pub mod pack;

#[cfg(target_arch = "x86_64")]
mod avx2;

use crate::gemm::{gemm_block, gemm_tn_block, gemm_tn_rows, MIN_PAR_ROWS};
use matrox_cachesim::{CacheParams, GemmBlocking};
use rayon::prelude::*;
use std::sync::OnceLock;

pub use pack::{pack_a, pack_a_trans, pack_b, packed_a_len, packed_b_len, MR, NR};

/// User-facing kernel request (the `MATROX_KERNEL` values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// Pick the fastest kernel the CPU supports (the default).
    #[default]
    Auto,
    /// Force the portable scalar kernel.
    Scalar,
    /// Request the AVX2+FMA microkernel; falls back to scalar when the CPU
    /// lacks the features.
    Avx2,
}

impl std::str::FromStr for KernelChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "auto" | "" => Ok(KernelChoice::Auto),
            "scalar" => Ok(KernelChoice::Scalar),
            "avx2" => Ok(KernelChoice::Avx2),
            other => Err(format!(
                "unknown kernel '{other}' (expected auto, scalar or avx2)"
            )),
        }
    }
}

/// Resolved kernel architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelArch {
    /// Cache-blocked scalar loops (portable fallback, pre-SIMD behaviour).
    Scalar,
    /// Packed 4x8 AVX2+FMA microkernel.
    Avx2,
}

/// Whether the AVX2+FMA microkernel can run on this host.
pub fn simd_available() -> bool {
    // Miri interprets MIR and has no AVX2/FMA intrinsics; reporting the
    // host CPU's features would dispatch into kernels it cannot execute.
    // Forcing `false` here routes every resolution path (auto, explicit
    // avx2 via its degrade-to-scalar rule) to the scalar kernel.
    #[cfg(miri)]
    {
        false
    }
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(all(not(target_arch = "x86_64"), not(miri)))]
    {
        false
    }
}

/// A resolved kernel selection: the architecture plus the cache-derived
/// pack-block sizes.  `Copy` and tiny, so callers resolve once and pass it
/// by value into their hot loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelDispatch {
    arch: KernelArch,
    blocking: GemmBlocking,
}

static GLOBAL: OnceLock<KernelDispatch> = OnceLock::new();

impl KernelDispatch {
    /// Resolve a choice against the host CPU.  `Auto` picks AVX2 when
    /// available; `Avx2` on unsupported hardware degrades to `Scalar`.
    pub fn resolve(choice: KernelChoice) -> Self {
        let arch = match choice {
            KernelChoice::Scalar => KernelArch::Scalar,
            KernelChoice::Auto | KernelChoice::Avx2 => {
                if simd_available() {
                    KernelArch::Avx2
                } else {
                    KernelArch::Scalar
                }
            }
        };
        KernelDispatch {
            arch,
            blocking: CacheParams::default().gemm_blocking(std::mem::size_of::<f64>(), MR, NR),
        }
    }

    /// The process-wide selection: `MATROX_KERNEL` if set (invalid values
    /// warn once and fall back to `auto`), otherwise CPU detection.
    /// Resolved once and cached for the lifetime of the process, so every
    /// caller that does not override the kernel agrees on one selection.
    pub fn global() -> Self {
        *GLOBAL.get_or_init(|| {
            let choice = match std::env::var("MATROX_KERNEL") {
                Ok(v) => v.parse().unwrap_or_else(|e| {
                    eprintln!("MATROX_KERNEL: {e}; using auto");
                    KernelChoice::Auto
                }),
                Err(_) => KernelChoice::Auto,
            };
            Self::resolve(choice)
        })
    }

    /// Resolve an explicit choice, deferring to the process-wide selection
    /// for `Auto` (so an unset per-call knob still honours
    /// `MATROX_KERNEL`).
    pub fn for_choice(choice: KernelChoice) -> Self {
        match choice {
            KernelChoice::Auto => Self::global(),
            other => Self::resolve(other),
        }
    }

    /// The portable scalar kernel (the reference the SIMD paths are pinned
    /// against).
    pub fn scalar() -> Self {
        Self::resolve(KernelChoice::Scalar)
    }

    /// Resolved architecture.
    pub fn arch(&self) -> KernelArch {
        self.arch
    }

    /// Stable name for logs and benchmark output (`"scalar"` / `"avx2"`).
    pub fn name(&self) -> &'static str {
        match self.arch {
            KernelArch::Scalar => "scalar",
            KernelArch::Avx2 => "avx2",
        }
    }

    /// Whether this dispatch runs the SIMD microkernel.
    pub fn is_simd(&self) -> bool {
        self.arch == KernelArch::Avx2
    }

    /// The cache-derived pack-block sizes (performance-only; see the
    /// determinism contract in the module docs).
    pub fn blocking(&self) -> GemmBlocking {
        self.blocking
    }

    /// `C += A * B`: `A` is `m x k`, `B` is `k x n`, `C` is `m x n`, all
    /// row-major and densely packed.
    pub fn gemm(&self, a: &[f64], m: usize, k: usize, b: &[f64], n: usize, c: &mut [f64]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        match self.arch {
            KernelArch::Scalar => gemm_block(a, k, b, n, c, n, m, k, n),
            KernelArch::Avx2 => self.avx2_gemm(false, a, k, 0, m, k, b, n, c),
        }
    }

    /// `C += A^T * B`: `A` is stored `k x m` row-major, `B` is `k x n`,
    /// `C` is `m x n`.  Produces results bitwise identical to packing the
    /// explicit transpose through [`KernelDispatch::gemm`].
    pub fn gemm_tn(&self, a: &[f64], k: usize, m: usize, b: &[f64], n: usize, c: &mut [f64]) {
        debug_assert_eq!(a.len(), k * m);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        match self.arch {
            KernelArch::Scalar => gemm_tn_block(a, k, m, b, n, c),
            KernelArch::Avx2 => self.avx2_gemm(true, a, m, 0, m, k, b, n, c),
        }
    }

    /// Rayon-parallel [`KernelDispatch::gemm`], splitting the rows of `C`.
    /// Bitwise identical to the sequential version at every pool width
    /// (rows accumulate independently).
    pub fn par_gemm(&self, a: &[f64], m: usize, k: usize, b: &[f64], n: usize, c: &mut [f64]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        let kern = *self;
        let chunk_rows = par_chunk_rows(m);
        c.par_chunks_mut(chunk_rows * n)
            .enumerate()
            .for_each(|(ci, c_chunk)| {
                let i0 = ci * chunk_rows;
                let rows_here = c_chunk.len() / n;
                match kern.arch {
                    KernelArch::Scalar => {
                        let a_chunk = &a[i0 * k..(i0 + rows_here) * k];
                        gemm_block(a_chunk, k, b, n, c_chunk, n, rows_here, k, n);
                    }
                    KernelArch::Avx2 => {
                        kern.avx2_gemm(false, a, k, i0, rows_here, k, b, n, c_chunk)
                    }
                }
            });
    }

    /// Rayon-parallel [`KernelDispatch::gemm_tn`], splitting the rows of
    /// `C` (= columns of the stored `A`).  Bitwise identical to the
    /// sequential version at every pool width.
    pub fn par_gemm_tn(&self, a: &[f64], k: usize, m: usize, b: &[f64], n: usize, c: &mut [f64]) {
        debug_assert_eq!(a.len(), k * m);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        let kern = *self;
        let chunk_rows = par_chunk_rows(m);
        c.par_chunks_mut(chunk_rows * n)
            .enumerate()
            .for_each(|(ci, c_chunk)| {
                let i0 = ci * chunk_rows;
                let rows_here = c_chunk.len() / n;
                match kern.arch {
                    KernelArch::Scalar => gemm_tn_rows(a, m, i0, rows_here, k, b, n, c_chunk),
                    KernelArch::Avx2 => kern.avx2_gemm(true, a, m, i0, rows_here, k, b, n, c_chunk),
                }
            });
    }

    /// Dot product `sum_i x[i] * y[i]` (the Cholesky trailing-update
    /// primitive).  Deterministic for a fixed dispatch and length.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn dot(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "dot: length mismatch");
        match self.arch {
            KernelArch::Scalar => {
                let mut s = 0.0;
                for (a, b) in x.iter().zip(y.iter()) {
                    s += a * b;
                }
                s
            }
            #[cfg(target_arch = "x86_64")]
            KernelArch::Avx2 => avx2::dot(x, y),
            #[cfg(not(target_arch = "x86_64"))]
            KernelArch::Avx2 => unreachable!("avx2 dispatch cannot exist off x86_64"),
        }
    }

    /// `y += alpha * x` (the LU elimination primitive).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), y.len(), "axpy: length mismatch");
        match self.arch {
            KernelArch::Scalar => {
                for (yv, xv) in y.iter_mut().zip(x.iter()) {
                    *yv += alpha * xv;
                }
            }
            #[cfg(target_arch = "x86_64")]
            KernelArch::Avx2 => avx2::axpy(alpha, x, y),
            #[cfg(not(target_arch = "x86_64"))]
            KernelArch::Avx2 => unreachable!("avx2 dispatch cannot exist off x86_64"),
        }
    }

    #[cfg(target_arch = "x86_64")]
    fn avx2_gemm(
        &self,
        trans_a: bool,
        a: &[f64],
        lda: usize,
        i0: usize,
        m: usize,
        k: usize,
        b: &[f64],
        n: usize,
        c: &mut [f64],
    ) {
        avx2::gemm_blocked(self.blocking, trans_a, a, lda, i0, m, k, b, n, c);
    }

    #[cfg(not(target_arch = "x86_64"))]
    fn avx2_gemm(
        &self,
        _trans_a: bool,
        _a: &[f64],
        _lda: usize,
        _i0: usize,
        _m: usize,
        _k: usize,
        _b: &[f64],
        _n: usize,
        _c: &mut [f64],
    ) {
        unreachable!("avx2 dispatch cannot exist off x86_64")
    }
}

/// Rows of `C` per parallel task: ~2 chunks per worker with the same
/// minimum-rows floor the historic `par_gemm_slices` used.
fn par_chunk_rows(m: usize) -> usize {
    let threads = rayon::current_num_threads().max(1);
    m.div_ceil(threads * 2).max(MIN_PAR_ROWS).min(m.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f64], m: usize, k: usize, b: &[f64], n: usize) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn rand_vec(len: usize, seed: u64) -> Vec<f64> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn dispatches() -> Vec<KernelDispatch> {
        let mut d = vec![KernelDispatch::scalar()];
        if simd_available() {
            d.push(KernelDispatch::resolve(KernelChoice::Avx2));
        }
        d
    }

    #[test]
    fn every_dispatch_matches_naive() {
        for disp in dispatches() {
            for &(m, k, n) in &[
                (1usize, 1usize, 1usize),
                (3, 5, 7),
                (4, 8, 8),
                (5, 9, 11),
                (64, 64, 32),
                (70, 130, 9),
                (13, 300, 17),
            ] {
                let a = rand_vec(m * k, (m * 1000 + n) as u64);
                let b = rand_vec(k * n, (k * 1000 + n) as u64);
                let naive_c = naive(&a, m, k, &b, n);
                let mut c = vec![0.0; m * n];
                disp.gemm(&a, m, k, &b, n, &mut c);
                for (x, y) in c.iter().zip(&naive_c) {
                    assert!(
                        (x - y).abs() <= 1e-12 * (1.0 + y.abs()),
                        "{} diverged at m={m} k={k} n={n}",
                        disp.name()
                    );
                }
            }
        }
    }

    #[test]
    fn tn_matches_explicit_transpose_bitwise() {
        for disp in dispatches() {
            for &(k, m, n) in &[(5usize, 7usize, 6usize), (64, 33, 8), (130, 70, 40)] {
                let a = rand_vec(k * m, 7); // stored k x m
                let b = rand_vec(k * n, 8);
                // Explicit transpose through the NoTrans path.
                let mut at = vec![0.0; m * k];
                for p in 0..k {
                    for i in 0..m {
                        at[i * k + p] = a[p * m + i];
                    }
                }
                let mut c1 = vec![0.5; m * n];
                let mut c2 = vec![0.5; m * n];
                disp.gemm(&at, m, k, &b, n, &mut c1);
                disp.gemm_tn(&a, k, m, &b, n, &mut c2);
                assert!(
                    c1.iter().zip(&c2).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "{}: TN and explicit-transpose paths diverged",
                    disp.name()
                );
            }
        }
    }

    #[test]
    fn par_paths_are_bitwise_equal_to_sequential() {
        for disp in dispatches() {
            let (m, k, n) = (137usize, 45usize, 23usize);
            let a = rand_vec(m * k, 21);
            let b = rand_vec(k * n, 22);
            let mut c_seq = vec![0.0; m * n];
            let mut c_par = vec![0.0; m * n];
            disp.gemm(&a, m, k, &b, n, &mut c_seq);
            disp.par_gemm(&a, m, k, &b, n, &mut c_par);
            assert!(c_seq
                .iter()
                .zip(&c_par)
                .all(|(x, y)| x.to_bits() == y.to_bits()));

            let at = rand_vec(k * m, 23); // k x m for the TN path
            let mut t_seq = vec![0.0; m * n];
            let mut t_par = vec![0.0; m * n];
            disp.gemm_tn(&at, k, m, &b, n, &mut t_seq);
            disp.par_gemm_tn(&at, k, m, &b, n, &mut t_par);
            assert!(t_seq
                .iter()
                .zip(&t_par)
                .all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    #[test]
    fn column_grouping_never_changes_results() {
        // The RHS-panel independence the executor relies on: computing a
        // product in column panels must equal the full-width product bit
        // for bit, for every dispatch.
        for disp in dispatches() {
            let (m, k, n) = (24usize, 40usize, 19usize);
            let a = rand_vec(m * k, 41);
            let b = rand_vec(k * n, 42);
            let mut full = vec![0.0; m * n];
            disp.gemm(&a, m, k, &b, n, &mut full);
            for panel in [1usize, 4, 8, 11] {
                let mut out = vec![0.0; m * n];
                let mut j0 = 0;
                while j0 < n {
                    let j1 = (j0 + panel).min(n);
                    let w = j1 - j0;
                    let bp: Vec<f64> = (0..k)
                        .flat_map(|p| b[p * n + j0..p * n + j1].to_vec())
                        .collect();
                    let mut cp = vec![0.0; m * w];
                    disp.gemm(&a, m, k, &bp, w, &mut cp);
                    for i in 0..m {
                        out[i * n + j0..i * n + j1].copy_from_slice(&cp[i * w..(i + 1) * w]);
                    }
                    j0 = j1;
                }
                assert!(
                    full.iter()
                        .zip(&out)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "{}: panel width {panel} changed results",
                    disp.name()
                );
            }
        }
    }

    #[test]
    fn dot_and_axpy_match_scalar_within_tolerance() {
        for disp in dispatches() {
            for len in [0usize, 1, 3, 4, 15, 16, 17, 64, 100] {
                let x = rand_vec(len, len as u64 + 1);
                let y = rand_vec(len, len as u64 + 2);
                let reference: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
                let d = disp.dot(&x, &y);
                assert!(
                    (d - reference).abs() <= 1e-12 * (1.0 + reference.abs()),
                    "{} dot diverged at len {len}",
                    disp.name()
                );
                let mut y1 = y.clone();
                disp.axpy(0.37, &x, &mut y1);
                for (i, v) in y1.iter().enumerate() {
                    let want = 0.37 * x[i] + y[i];
                    assert!((v - want).abs() <= 1e-14 * (1.0 + want.abs()));
                }
            }
        }
    }

    #[test]
    fn choice_parsing_and_fallback() {
        assert_eq!("auto".parse::<KernelChoice>().unwrap(), KernelChoice::Auto);
        assert_eq!(
            "SCALAR".parse::<KernelChoice>().unwrap(),
            KernelChoice::Scalar
        );
        assert_eq!("avx2".parse::<KernelChoice>().unwrap(), KernelChoice::Avx2);
        assert!("sse9".parse::<KernelChoice>().is_err());

        assert!(!KernelDispatch::scalar().is_simd());
        // Requesting AVX2 must resolve to *something* runnable everywhere:
        // the microkernel when the CPU has it, scalar otherwise.
        let d = KernelDispatch::resolve(KernelChoice::Avx2);
        assert_eq!(d.is_simd(), simd_available());
        let auto = KernelDispatch::resolve(KernelChoice::Auto);
        assert_eq!(auto.is_simd(), simd_available());
    }
}
