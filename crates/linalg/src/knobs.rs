//! Shared tuning-knob plumbing: positive-integer env knobs and the grain
//! resolution every parallel loop in the workspace uses.
//!
//! The executor introduced the policy (an explicit per-call setting wins,
//! then the `MATROX_GRAIN` environment variable, then auto); the parallel
//! inspector phases — tree partitioning, sampling, compression, CDS
//! assembly — honor exactly the same knob, so this module lives at the
//! bottom of the crate graph where all of them can reach it.
//! `matrox-exec` re-exports these functions to keep its public API.
//!
//! Grain is a pure performance knob: it changes how work is chunked across
//! pool workers, never what any loop computes.  Every consumer writes its
//! per-item outputs to pre-sized slots, so results are bitwise identical
//! for every grain (and every pool width).

/// Parse a positive-integer tuning knob from an environment variable's raw
/// value.  `Ok(None)` means the variable is unset and the automatic choice
/// applies; `Ok(Some(v))` is an explicit override; `Err` carries the message
/// for the one-time stderr warning.  Unparseable values, zero, and non-UTF-8
/// are all rejected loudly — a typo'd knob silently falling back to auto is
/// indistinguishable from the knob working, which is how mis-tuned
/// deployments happen.  Mirrors the `MATROX_KERNEL` policy (warn once, fall
/// back to auto) rather than failing the request: knobs tune performance,
/// never correctness, so a bad value should not take a serving process down.
pub fn parse_positive_knob(
    name: &str,
    value: Result<String, std::env::VarError>,
) -> Result<Option<usize>, String> {
    match value {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(e) => Err(format!("{name}: {e}; using auto")),
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(0) => Err(format!(
                "{name}: '{raw}' must be a positive integer; using auto"
            )),
            Ok(v) => Ok(Some(v)),
            Err(e) => Err(format!("{name}: cannot parse '{raw}': {e}; using auto")),
        },
    }
}

/// Read a positive-integer env knob, warning on stderr when the value is
/// invalid.  Returns `None` for unset or rejected values.  Callers cache the
/// result (the two call sites below each sit behind a `OnceLock`) so the
/// warning fires at most once per process per knob.
pub fn env_knob(name: &str) -> Option<usize> {
    match parse_positive_knob(name, std::env::var(name)) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            None
        }
    }
}

/// Resolve the effective grain (minimum work items per parallel task) for a
/// parallel loop: an explicit setting wins, then the `MATROX_GRAIN`
/// environment variable, then auto (1, letting the pool's width-scaled
/// heuristic decide).  Used by the executor's phase loops, the factor/solve
/// sweeps, and every parallel inspector phase, so one knob tunes the whole
/// pipeline.  Invalid or zero `MATROX_GRAIN` values are rejected with a
/// one-time stderr warning (see [`parse_positive_knob`]).
pub fn resolve_grain(explicit: usize) -> usize {
    if explicit > 0 {
        return explicit;
    }
    static ENV_GRAIN: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let env = *ENV_GRAIN.get_or_init(|| env_knob("MATROX_GRAIN").unwrap_or(0));
    env.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_positives_and_rejects_garbage() {
        let ok = |s: &str| parse_positive_knob("MATROX_GRAIN", Ok(s.to_string()));
        assert_eq!(ok("4"), Ok(Some(4)));
        assert_eq!(ok(" 16 "), Ok(Some(16)));
        assert_eq!(
            parse_positive_knob("MATROX_GRAIN", Err(std::env::VarError::NotPresent)),
            Ok(None)
        );
        assert!(ok("0").is_err());
        assert!(ok("abc").is_err());
    }

    #[test]
    fn explicit_grain_wins_over_auto() {
        assert_eq!(resolve_grain(7), 7);
        assert!(resolve_grain(0) >= 1);
    }
}
