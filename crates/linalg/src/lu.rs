//! Dense LU factorization with partial pivoting.
//!
//! The ULV-style HSS factorization reduces every sibling merge to a small
//! `(k_l + k_r)`-square system `[I, G_l B_lr; G_r B_rl, I]` coupling the two
//! children's skeleton coefficients.  That system is square and well
//! conditioned for SPD inputs but *not* symmetric, so it is factored once
//! here (LAPACK `dgetrf`/`dgetrs` territory) and re-solved during every
//! upward sweep.  Sizes are bounded by twice the maximum srank (2 x 256 in
//! the paper's configuration), so an unblocked kernel is sufficient.

use crate::kernel::KernelDispatch;
use crate::matrix::Matrix;

/// Error returned when elimination finds no usable pivot: the matrix is
/// exactly (or numerically) singular.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingularMatrix {
    /// Column at which elimination broke down.
    pub column: usize,
}

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular at column {}", self.column)
    }
}
impl std::error::Error for SingularMatrix {}

/// Packed LU factorization `P A = L U` (unit lower `L` and upper `U` share
/// one matrix, LAPACK-style; `piv[k]` is the row swapped with row `k`).
#[derive(Debug, Clone, PartialEq)]
pub struct LuFactors {
    /// `L` (strict lower, unit diagonal implied) and `U` (upper) packed.
    pub lu: Matrix,
    /// Row interchanges: at step `k`, rows `k` and `piv[k]` were swapped.
    pub piv: Vec<usize>,
}

/// Factor a square matrix with partial pivoting.
///
/// # Panics
/// Panics if `a` is not square.
pub fn lu_factor(a: &Matrix) -> Result<LuFactors, SingularMatrix> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "lu_factor: matrix must be square");
    let mut lu = a.clone();
    let mut piv = Vec::with_capacity(n);
    let disp = KernelDispatch::global();
    let data = lu.as_mut_slice();
    for k in 0..n {
        // Partial pivot: the largest magnitude in column k at or below row k.
        let mut p = k;
        let mut best = data[k * n + k].abs();
        for i in (k + 1)..n {
            let v = data[i * n + k].abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        if best == 0.0 || !best.is_finite() {
            return Err(SingularMatrix { column: k });
        }
        piv.push(p);
        if p != k {
            for j in 0..n {
                data.swap(k * n + j, p * n + j);
            }
        }
        let pivot = data[k * n + k];
        // Rank-1 trailing update, one dispatched axpy per row below the
        // pivot (rows `k` and `i > k` are disjoint, so split the buffer).
        let (head, tail) = data.split_at_mut((k + 1) * n);
        let krow = &head[k * n + k + 1..k * n + n];
        for irow in tail.chunks_exact_mut(n) {
            let lik = irow[k] / pivot;
            irow[k] = lik;
            if lik == 0.0 {
                continue;
            }
            disp.axpy(-lik, krow, &mut irow[k + 1..n]);
        }
    }
    Ok(LuFactors { lu, piv })
}

/// Solve `A X = B` (matrix right-hand side) from the packed factors.
///
/// # Panics
/// Panics if `b.rows()` does not match the factored dimension.
pub fn lu_solve_matrix(f: &LuFactors, b: &Matrix) -> Matrix {
    let n = f.lu.rows();
    assert_eq!(b.rows(), n, "lu_solve_matrix: dimension mismatch");
    let q = b.cols();
    let mut x = b.clone();
    // Apply the recorded interchanges in factorization order.
    for (k, &p) in f.piv.iter().enumerate() {
        if p != k {
            for c in 0..q {
                let a = x.get(k, c);
                let bv = x.get(p, c);
                x.set(k, c, bv);
                x.set(p, c, a);
            }
        }
    }
    // Forward substitution with the unit-lower factor.
    for i in 1..n {
        let lrow = f.lu.row(i).to_vec();
        let mut acc = x.row(i).to_vec();
        for j in 0..i {
            let lij = lrow[j];
            if lij == 0.0 {
                continue;
            }
            let xrow = x.row(j);
            for c in 0..q {
                acc[c] -= lij * xrow[c];
            }
        }
        x.row_mut(i).copy_from_slice(&acc);
    }
    // Back substitution with the upper factor.
    for i in (0..n).rev() {
        let urow = f.lu.row(i).to_vec();
        let mut acc = x.row(i).to_vec();
        for j in (i + 1)..n {
            let uij = urow[j];
            if uij == 0.0 {
                continue;
            }
            let xrow = x.row(j);
            for c in 0..q {
                acc[c] -= uij * xrow[c];
            }
        }
        let d = urow[i];
        for c in 0..q {
            acc[c] /= d;
        }
        x.row_mut(i).copy_from_slice(&acc);
    }
    x
}

/// Solve `A x = b` (vector right-hand side) from the packed factors.
pub fn lu_solve(f: &LuFactors, b: &[f64]) -> Vec<f64> {
    let bm = Matrix::from_vec(b.len(), 1, b.to_vec());
    lu_solve_matrix(f, &bm).into_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms::relative_error;
    use rand::SeedableRng;

    #[test]
    fn solve_recovers_true_solution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for n in [1usize, 2, 7, 20] {
            let mut a = Matrix::random_uniform(n, n, &mut rng);
            for i in 0..n {
                a[(i, i)] += 3.0; // keep comfortably nonsingular
            }
            let x_true = Matrix::from_fn(n, 3, |i, j| ((i + 2 * j) as f64 * 0.37).cos());
            let b = matmul(&a, &x_true);
            let f = lu_factor(&a).unwrap();
            let x = lu_solve_matrix(&f, &b);
            assert!(relative_error(&x, &x_true) < 1e-11, "n = {n}");
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let f = lu_factor(&a).unwrap();
        let x = lu_solve(&f, &[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_is_an_error() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(lu_factor(&a).is_err());
    }

    #[test]
    fn empty_system_solves_trivially() {
        let f = lu_factor(&Matrix::zeros(0, 0)).unwrap();
        let x = lu_solve_matrix(&f, &Matrix::zeros(0, 4));
        assert_eq!(x.shape(), (0, 4));
    }
}
