//! Dense, row-major `f64` matrix type.
//!
//! The matrix is intentionally minimal: it is a flat `Vec<f64>` with a shape,
//! plus the handful of operations the MatRox pipeline needs (row/column
//! gathering by index sets, transposition, slicing into the raw buffer).  The
//! heavy numerical work lives in [`mod@crate::gemm`], [`crate::qr`] and
//! [`crate::id`].

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64` values.
///
/// Storage is a single contiguous allocation of `rows * cols` elements where
/// element `(i, j)` lives at `data[i * cols + j]`.  Row-major layout is used
/// because the dominant access pattern in HMatrix evaluation is gathering and
/// scattering *rows* of the right-hand-side matrix `W` / result matrix `Y`
/// according to the index sets owned by cluster-tree nodes.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create an `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build a matrix by evaluating `f(i, j)` for every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build a matrix from a slice of rows (each row must have the same length).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of stored elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the raw row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and return its row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Read element `(i, j)` without bounds checks in release builds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Write element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols);
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Return the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        // Simple blocked transpose to stay cache friendly for larger matrices.
        const B: usize = 32;
        for ii in (0..self.rows).step_by(B) {
            for jj in (0..self.cols).step_by(B) {
                let imax = (ii + B).min(self.rows);
                let jmax = (jj + B).min(self.cols);
                for i in ii..imax {
                    for j in jj..jmax {
                        t.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        t
    }

    /// Gather the rows listed in `idx` (in order) into a new matrix.
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (r, &i) in idx.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.row(i));
        }
        out
    }

    /// Gather the columns listed in `idx` (in order) into a new matrix.
    pub fn gather_cols(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, idx.len());
        for i in 0..self.rows {
            let src = self.row(i);
            let dst = out.row_mut(i);
            for (c, &j) in idx.iter().enumerate() {
                dst[c] = src[j];
            }
        }
        out
    }

    /// Scatter-add the rows of `src` into the rows of `self` listed in `idx`:
    /// `self[idx[r], :] += src[r, :]`.
    pub fn scatter_add_rows(&mut self, idx: &[usize], src: &Matrix) {
        assert_eq!(idx.len(), src.rows());
        assert_eq!(self.cols, src.cols());
        for (r, &i) in idx.iter().enumerate() {
            let dst = self.row_mut(i);
            let s = src.row(r);
            for c in 0..s.len() {
                dst[c] += s[c];
            }
        }
    }

    /// Extract the contiguous sub-matrix `self[r0..r1, c0..c1]`.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows);
        assert!(c0 <= c1 && c1 <= self.cols);
        let mut out = Matrix::zeros(r1 - r0, c1 - c0);
        for i in r0..r1 {
            out.row_mut(i - r0).copy_from_slice(&self.row(i)[c0..c1]);
        }
        out
    }

    /// Element-wise `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
    }

    /// Element-wise `self -= other`.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= *b;
        }
    }

    /// Scale every element by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for a in self.data.iter_mut() {
            *a *= alpha;
        }
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Stack `self` on top of `other` (both must have the same column count).
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack: column mismatch");
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Maximum absolute element; 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// True when every element is finite (no NaN, no infinity).  The public
    /// evaluation and solve entry points screen their inputs with this so a
    /// poisoned request is rejected up front instead of propagating NaNs
    /// through the sweeps.
    pub fn all_finite(&self) -> bool {
        all_finite(&self.data)
    }

    /// Generate a matrix with entries drawn uniformly from `[-1, 1)` using the
    /// given RNG.  Used by the benchmark harnesses to build the dense
    /// right-hand-side matrix `W`.
    pub fn random_uniform<R: rand::Rng>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(rng.gen_range(-1.0..1.0));
        }
        Matrix { rows, cols, data }
    }
}

/// True when every element of the slice is finite (no NaN, no infinity).
/// Slice twin of [`Matrix::all_finite`] for the vector entry points.
pub fn all_finite(data: &[f64]) -> bool {
    data.iter().all(|x| x.is_finite())
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_show = 8;
        for i in 0..self.rows.min(max_show) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(max_show) {
                write!(f, "{:10.4}", self.get(i, j))?;
                if j + 1 < self.cols.min(max_show) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > max_show {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_shape_and_values() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_identity() {
        let m = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_indexes_row_major() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(5, 7, |i, j| (i * 7 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (7, 5));
        assert_eq!(t.transpose(), m);
        for i in 0..5 {
            for j in 0..7 {
                assert_eq!(m.get(i, j), t.get(j, i));
            }
        }
    }

    #[test]
    fn gather_rows_selects_in_order() {
        let m = Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f64);
        let g = m.gather_rows(&[3, 1]);
        assert_eq!(g.row(0), &[6.0, 7.0]);
        assert_eq!(g.row(1), &[2.0, 3.0]);
    }

    #[test]
    fn gather_cols_selects_in_order() {
        let m = Matrix::from_fn(2, 4, |i, j| (i * 4 + j) as f64);
        let g = m.gather_cols(&[2, 0]);
        assert_eq!(g.row(0), &[2.0, 0.0]);
        assert_eq!(g.row(1), &[6.0, 4.0]);
    }

    #[test]
    fn scatter_add_rows_accumulates() {
        let mut y = Matrix::zeros(4, 2);
        let src = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        y.scatter_add_rows(&[2, 0], &src);
        y.scatter_add_rows(&[2, 0], &src);
        assert_eq!(y.row(2), &[2.0, 4.0]);
        assert_eq!(y.row(0), &[6.0, 8.0]);
        assert_eq!(y.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(1, 3, 2, 4);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[6.0, 7.0]);
        assert_eq!(s.row(1), &[10.0, 11.0]);
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::filled(1, 3, 1.0);
        let b = Matrix::filled(2, 3, 2.0);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v.row(0), &[1.0, 1.0, 1.0]);
        assert_eq!(v.row(2), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn add_sub_scale() {
        let mut a = Matrix::filled(2, 2, 3.0);
        let b = Matrix::filled(2, 2, 1.0);
        a.add_assign(&b);
        assert_eq!(a.get(0, 0), 4.0);
        a.sub_assign(&b);
        assert_eq!(a.get(1, 1), 3.0);
        a.scale(2.0);
        assert_eq!(a.get(0, 1), 6.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_panics_on_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn max_abs_finds_largest_magnitude() {
        let m = Matrix::from_rows(&[vec![1.0, -5.0], vec![3.0, 2.0]]);
        assert_eq!(m.max_abs(), 5.0);
    }

    #[test]
    fn all_finite_detects_poison() {
        let mut m = Matrix::filled(2, 3, 1.0);
        assert!(m.all_finite());
        m.set(1, 2, f64::NAN);
        assert!(!m.all_finite());
        m.set(1, 2, f64::INFINITY);
        assert!(!m.all_finite());
        assert!(all_finite(&[0.0, -1.0]));
        assert!(!all_finite(&[0.0, f64::NEG_INFINITY]));
    }
}
