//! Householder column-pivoted QR (Businger–Golub) with adaptive rank
//! detection.
//!
//! MatRox uses interpolative decomposition (ID) for the low-rank blocks of
//! the HMatrix; the standard way to compute an ID is a rank-revealing,
//! column-pivoted QR of the sample matrix.  The factorization is truncated as
//! soon as the trailing diagonal of `R` drops below `tol * |R[0,0]|`, which is
//! exactly how the submatrix rank (`srank`) is "adaptively tuned to meet the
//! user-requested block approximation accuracy" in the paper.

use crate::matrix::Matrix;

/// Result of a (possibly truncated) column-pivoted QR factorization
/// `A P = Q R`.
#[derive(Debug, Clone)]
pub struct PivotedQr {
    /// Number of Householder reflections applied; equals the detected
    /// numerical rank when a tolerance is supplied.
    pub rank: usize,
    /// Column permutation: `perm[k]` is the original column index that was
    /// moved to position `k`.
    pub perm: Vec<usize>,
    /// The `rank x n` upper-trapezoidal factor `R` (rows beyond `rank` are
    /// dropped).
    pub r: Matrix,
    /// The `m x rank` orthonormal factor `Q` with explicit columns.
    pub q: Matrix,
}

impl PivotedQr {
    /// Reconstruct the (approximation of the) original matrix `Q * R * P^T`.
    pub fn reconstruct(&self) -> Matrix {
        let m = self.q.rows();
        let n = self.r.cols();
        let mut qr = Matrix::zeros(m, n);
        crate::gemm::gemm_seq(
            1.0,
            &self.q,
            crate::gemm::GemmOp::NoTrans,
            &self.r,
            crate::gemm::GemmOp::NoTrans,
            0.0,
            &mut qr,
        );
        // Undo the column permutation: column k of QR corresponds to original
        // column perm[k].
        let mut out = Matrix::zeros(m, n);
        for k in 0..n {
            let orig = self.perm[k];
            for i in 0..m {
                out.set(i, orig, qr.get(i, k));
            }
        }
        out
    }
}

/// Compute a column-pivoted QR factorization of `a`, truncated at relative
/// tolerance `tol` and absolute maximum rank `max_rank`.
///
/// * `tol` — stop when `|R[k,k]| <= tol * |R[0,0]|`.  Pass `0.0` for a full
///   factorization (up to `max_rank`).
/// * `max_rank` — hard cap on the number of reflections (the paper caps the
///   submatrix rank at 256 by default).
///
/// Returns the truncated factors together with the detected rank and the
/// column permutation.
pub fn pivoted_qr(a: &Matrix, tol: f64, max_rank: usize) -> PivotedQr {
    let m = a.rows();
    let n = a.cols();
    let kmax = m.min(n).min(max_rank);

    // Work on a column-major copy: the Householder updates touch whole
    // columns, so column-major keeps them contiguous.
    let mut col: Vec<Vec<f64>> = (0..n).map(|j| a.col(j)).collect();
    let mut perm: Vec<usize> = (0..n).collect();
    // Squared column norms, updated incrementally (Businger–Golub downdating).
    let mut norms: Vec<f64> = col.iter().map(|c| c.iter().map(|x| x * x).sum()).collect();

    // Householder reflector storage: v[0] per reflector (the sub-diagonal
    // entries of v are kept in-place below the diagonal of the column) and
    // the scalar taus.
    let mut taus: Vec<f64> = Vec::with_capacity(kmax);
    let mut v0s: Vec<f64> = Vec::with_capacity(kmax);
    let mut r00: f64 = 0.0;
    let mut rank = 0;

    for k in 0..kmax {
        // Pivot: bring the column with the largest remaining norm to front.
        let pivot = norms[k..]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i + k)
            .unwrap();
        if pivot != k {
            col.swap(k, pivot);
            perm.swap(k, pivot);
            norms.swap(k, pivot);
        }
        // Recompute the pivot norm exactly to avoid downdating drift.
        let exact: f64 = col[k][k..].iter().map(|x| x * x).sum();
        let alpha = exact.sqrt();
        if k == 0 {
            r00 = alpha;
        }
        // Rank detection: relative drop of the diagonal of R.
        if alpha <= tol * r00 || alpha == 0.0 {
            break;
        }

        // Householder reflector for column k, rows k..m.
        let mut v: Vec<f64> = col[k][k..].to_vec();
        let beta = if v[0] >= 0.0 { -alpha } else { alpha };
        v[0] -= beta;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        let tau = if vnorm2 == 0.0 { 0.0 } else { 2.0 / vnorm2 };

        // Apply the reflector to the trailing columns.
        for j in (k + 1)..n {
            let cj = &mut col[j];
            let mut dot = 0.0;
            for (i, vi) in v.iter().enumerate() {
                dot += vi * cj[k + i];
            }
            let scale = tau * dot;
            if scale != 0.0 {
                for (i, vi) in v.iter().enumerate() {
                    cj[k + i] -= scale * vi;
                }
            }
            // Downdate the running column norm.
            let r_kj = cj[k];
            norms[j] = (norms[j] - r_kj * r_kj).max(0.0);
        }

        // Store R[k,k] on the diagonal and the tail of v below it; v[0] and
        // tau go to side storage so Q can be re-assembled later.
        col[k][k] = beta;
        for (i, vi) in v.iter().enumerate().skip(1) {
            col[k][k + i] = *vi;
        }
        taus.push(tau);
        v0s.push(v[0]);
        rank = k + 1;
    }

    // Assemble R (rank x n): R[k, j] = col[j][k] for j >= k.
    let mut r = Matrix::zeros(rank, n);
    for j in 0..n {
        for k in 0..rank.min(j + 1) {
            r.set(k, j, col[j][k]);
        }
    }

    // Assemble Q (m x rank) by applying the reflectors to the leading columns
    // of the identity, in reverse order.
    let mut q = Matrix::zeros(m, rank);
    for k in 0..rank {
        q.set(k, k, 1.0);
    }
    for k in (0..rank).rev() {
        let tau = taus[k];
        if tau == 0.0 {
            continue;
        }
        let mut v = vec![0.0; m - k];
        v[0] = v0s[k];
        v[1..].copy_from_slice(&col[k][k + 1..m]);
        // Q <- (I - tau v v^T) Q, affecting rows k..m.
        for j in 0..rank {
            let mut dot = 0.0;
            for i in 0..(m - k) {
                dot += v[i] * q.get(k + i, j);
            }
            let scale = tau * dot;
            if scale != 0.0 {
                for i in 0..(m - k) {
                    let cur = q.get(k + i, j);
                    q.set(k + i, j, cur - scale * v[i]);
                }
            }
        }
    }

    PivotedQr { rank, perm, r, q }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::{frobenius_norm, relative_error};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn low_rank_matrix(m: usize, n: usize, r: usize, seed: u64) -> Matrix {
        let a = random_matrix(m, r, seed);
        let b = random_matrix(r, n, seed + 1);
        crate::gemm::matmul(&a, &b)
    }

    #[test]
    fn full_qr_reconstructs() {
        let a = random_matrix(12, 8, 42);
        let f = pivoted_qr(&a, 0.0, usize::MAX);
        assert_eq!(f.rank, 8);
        let rec = f.reconstruct();
        assert!(relative_error(&rec, &a) < 1e-12);
    }

    #[test]
    fn q_is_orthonormal() {
        let a = random_matrix(20, 10, 7);
        let f = pivoted_qr(&a, 0.0, usize::MAX);
        let qtq = crate::gemm::matmul(&f.q.transpose(), &f.q);
        let eye = Matrix::identity(f.rank);
        assert!(relative_error(&qtq, &eye) < 1e-12);
    }

    #[test]
    fn detects_numerical_rank_of_low_rank_matrix() {
        let a = low_rank_matrix(40, 30, 5, 3);
        let f = pivoted_qr(&a, 1e-10, usize::MAX);
        assert_eq!(f.rank, 5);
        let rec = f.reconstruct();
        assert!(relative_error(&rec, &a) < 1e-8);
    }

    #[test]
    fn respects_max_rank_cap() {
        let a = random_matrix(30, 30, 9);
        let f = pivoted_qr(&a, 0.0, 7);
        assert_eq!(f.rank, 7);
        assert_eq!(f.q.cols(), 7);
        assert_eq!(f.r.rows(), 7);
    }

    #[test]
    fn r_diagonal_is_non_increasing() {
        let a = random_matrix(25, 18, 11);
        let f = pivoted_qr(&a, 0.0, usize::MAX);
        let mut prev = f64::INFINITY;
        for k in 0..f.rank {
            let d = f.r.get(k, k).abs();
            assert!(d <= prev + 1e-10, "diagonal not non-increasing");
            prev = d;
        }
    }

    #[test]
    fn zero_matrix_has_rank_zero() {
        let a = Matrix::zeros(6, 6);
        let f = pivoted_qr(&a, 1e-12, usize::MAX);
        assert_eq!(f.rank, 0);
    }

    #[test]
    fn wide_and_tall_matrices_work() {
        let wide = random_matrix(5, 20, 21);
        let f = pivoted_qr(&wide, 0.0, usize::MAX);
        assert_eq!(f.rank, 5);
        assert!(relative_error(&f.reconstruct(), &wide) < 1e-12);

        let tall = random_matrix(20, 5, 22);
        let f = pivoted_qr(&tall, 0.0, usize::MAX);
        assert_eq!(f.rank, 5);
        assert!(relative_error(&f.reconstruct(), &tall) < 1e-12);
    }

    #[test]
    fn truncated_qr_error_matches_tolerance() {
        // A matrix with geometrically decaying singular values.
        let m = 40;
        let n = 40;
        let mut a = Matrix::zeros(m, n);
        for r in 0..n {
            let u = random_matrix(m, 1, 100 + r as u64);
            let v = random_matrix(1, n, 200 + r as u64);
            let mut uv = crate::gemm::matmul(&u, &v);
            uv.scale(0.5_f64.powi(r as i32));
            a.add_assign(&uv);
        }
        let tol = 1e-6;
        let f = pivoted_qr(&a, tol, usize::MAX);
        let rec = f.reconstruct();
        let err = relative_error(&rec, &a);
        // CPQR is rank revealing in practice; allow two orders of slack.
        assert!(err < tol * 100.0, "error {err} too large for tol {tol}");
        assert!(f.rank < 40, "should have truncated");
        assert!(frobenius_norm(&a) > 0.0);
    }
}
