//! Batched-evaluation acceptance: the plan-once / evaluate-many session.
//!
//! Pins the three contracts the batched engine must honor:
//!
//! 1. **panel blocking is invisible** — `evaluate(W)` is bitwise identical
//!    to evaluating `W`'s columns one matvec at a time, for awkward widths
//!    (1, 3, 8, 33) straddling the panel size;
//! 2. **determinism** — batched evaluation is bitwise identical at 1/2/4
//!    pool threads (conflict-free scheduling extends to the panel loop);
//! 3. **no state drift** — a session that has served 100 evaluations
//!    returns exactly what a fresh inspector run returns.

use matrox_core::{inspector, EvalSession, MatRoxParams};
use matrox_linalg::Matrix;
use matrox_points::{generate, DatasetId, Kernel, PointSet};
use rand::SeedableRng;

fn setting(n: usize) -> (PointSet, Kernel, MatRoxParams) {
    let pts = generate(DatasetId::Grid, n, 21);
    let kernel = Kernel::Gaussian { bandwidth: 1.0 };
    // Pin the coarsening partition count: the default tracks the pool width
    // and these tests compare runs across pools.
    let params = MatRoxParams::h2b()
        .with_bacc(1e-5)
        .with_leaf_size(32)
        .with_partitions(4);
    (pts, kernel, params)
}

fn bitwise_eq(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

#[test]
fn batched_evaluate_is_bitwise_identical_to_column_matvecs() {
    let n = 512;
    let (pts, kernel, params) = setting(n);
    let session = EvalSession::build(&pts, &kernel, &params).expect("session build");
    // A deliberately narrow panel width forces the panel loop to split even
    // small batches; it must agree with the auto-width session bit for bit.
    let narrow =
        EvalSession::build(&pts, &kernel, &params.with_panel_width(8)).expect("session build");
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    for q in [1usize, 3, 8, 33] {
        let w = Matrix::random_uniform(n, q, &mut rng);
        let batched = session.evaluate(&w).expect("evaluate");
        assert!(
            bitwise_eq(&batched, &narrow.evaluate(&w).expect("evaluate")),
            "panel width 8 diverged at q={q}"
        );
        let mut columns = Matrix::zeros(n, q);
        for j in 0..q {
            let col: Vec<f64> = (0..n).map(|i| w.get(i, j)).collect();
            let y = session.evaluate_vec(&col).expect("evaluate");
            for i in 0..n {
                columns.set(i, j, y[i]);
            }
        }
        assert!(
            bitwise_eq(&batched, &columns),
            "batched q={q} differs from column-by-column matvecs"
        );
    }
}

#[test]
fn batched_evaluation_is_deterministic_across_thread_widths() {
    let n = 512;
    let (pts, kernel, params) = setting(n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(78);
    let w = Matrix::random_uniform(n, 16, &mut rng);
    let mut runs: Vec<Matrix> = Vec::new();
    for &nt in &[1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(nt)
            .build()
            .unwrap();
        let y = pool.install(|| {
            let session = EvalSession::build(&pts, &kernel, &params).expect("session build");
            session.evaluate(&w).expect("evaluate")
        });
        runs.push(y);
    }
    for (i, y) in runs.iter().enumerate().skip(1) {
        assert!(
            bitwise_eq(y, &runs[0]),
            "batched evaluation at {} threads is not bitwise identical to 1 thread",
            [1usize, 2, 4][i]
        );
    }
}

#[test]
fn session_reuse_after_100_evaluations_matches_fresh_inspector() {
    let n = 256;
    let (pts, kernel, params) = setting(n);
    let session = EvalSession::build(&pts, &kernel, &params).expect("session build");
    let mut rng = rand::rngs::StdRng::seed_from_u64(79);
    // Serve 100 evaluations of varying widths; the session must not
    // accumulate any state that perturbs later results.
    for i in 0..100 {
        let q = 1 + i % 5;
        let w = Matrix::random_uniform(n, q, &mut rng);
        let y = session.evaluate(&w).expect("evaluate");
        assert_eq!(y.shape(), (n, q));
    }
    let stats = session.stats();
    assert_eq!(stats.evaluations, 100);
    assert!(stats.eval_seconds > 0.0);
    assert!(stats.amortized_per_query() < f64::INFINITY);

    let w = Matrix::random_uniform(n, 8, &mut rng);
    let warm = session.evaluate(&w).expect("evaluate");
    let fresh = inspector(&pts, &kernel, &params)
        .expect("inspector")
        .matmul(&w)
        .expect("matmul");
    assert!(
        bitwise_eq(&warm, &fresh),
        "evaluation 101 differs from a fresh inspector run"
    );
}
