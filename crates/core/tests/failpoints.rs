//! End-to-end fault-injection tests driven by the `matrox_core::failpoint`
//! harness — the deterministic twin of the CI leg that runs the suite with
//! `MATROX_FAILPOINT` set.
//!
//! The failpoint registry is process-global, so these tests live in their
//! own integration binary and are arranged so no two test functions touch
//! the same injection *operation*: one factorizes, one evaluates, one
//! loads.  Within a function, scenarios run sequentially with bounded
//! counts, so a concurrently running sibling cannot consume another test's
//! armed fire.

use matrox_core::{failpoint, inspector, EvalSession, MatRoxParams, MatroxError};
use matrox_linalg::Matrix;
use matrox_points::{generate, DatasetId, Kernel, PointSet};
use std::path::PathBuf;

fn spd_setup() -> (PointSet, Kernel, MatRoxParams) {
    let points = generate(DatasetId::Grid, 256, 0);
    let kernel = Kernel::GaussianRidge {
        bandwidth: 0.125,
        ridge: 8.0,
    };
    let params = MatRoxParams::hss().with_bacc(1e-6).with_leaf_size(32);
    (points, kernel, params)
}

/// A forced Cholesky breakdown is absorbed by the ridge-escalation retry:
/// the factorization succeeds with a recorded shift, the solve recovers,
/// and exhausting the retry budget surfaces `NumericalBreakdown`.
#[test]
fn chol_breakdown_is_recovered_by_ridge_escalation() {
    let (points, kernel, params) = spd_setup();
    let session = EvalSession::build(&points, &kernel, &params).expect("session build");
    let b = vec![1.0; points.len()];

    // Baseline: no failpoint, no ridge needed.
    let clean = session.factorize().expect("clean factorize");
    assert_eq!(clean.factor.timings.ridge_attempts, 0);
    assert_eq!(clean.factor.timings.applied_ridge, 0.0);
    let x_clean = clean.solve(&b).expect("clean solve");

    // One forced breakdown: the first attempt fails, the retry applies the
    // initial ridge and succeeds; the recovery is visible in the factor
    // timings and in the session statistics.
    failpoint::set(failpoint::names::CHOL_BREAKDOWN, 1);
    let recovered = session
        .factorize()
        .expect("ridge escalation must recover a forced breakdown");
    assert!(!failpoint::armed(failpoint::names::CHOL_BREAKDOWN));
    assert_eq!(recovered.factor.timings.ridge_attempts, 1);
    assert!(recovered.factor.timings.applied_ridge > 0.0);
    assert_eq!(session.stats().ridge_attempts, 1);

    // The recovered factor still solves: the shift is ~1e-8 * |K|, so the
    // solution stays close to the clean one.
    let x_rec = recovered.solve(&b).expect("recovered solve");
    assert_eq!(x_rec.len(), x_clean.len());
    let (mut diff, mut norm) = (0.0f64, 0.0f64);
    for (a, b) in x_rec.iter().zip(&x_clean) {
        assert!(a.is_finite());
        diff += (a - b) * (a - b);
        norm += b * b;
    }
    assert!(
        diff.sqrt() <= 1e-5 * norm.sqrt(),
        "ridge-recovered solution drifted: rel err {:e}",
        diff.sqrt() / norm.sqrt()
    );

    // Breakdown on every attempt: the escalation budget (initial try + 3
    // retries) is exhausted and the call reports NumericalBreakdown.
    failpoint::set(failpoint::names::CHOL_BREAKDOWN, u64::MAX);
    let err = session.factorize().expect_err("budget exhausted");
    failpoint::clear(failpoint::names::CHOL_BREAKDOWN);
    assert!(
        matches!(err, MatroxError::NumericalBreakdown(_)),
        "wrong error: {err:?}"
    );
    assert!(err.to_string().contains("ridge"), "message: {err}");

    // The failures left the session usable and deterministic.
    let x_again = session
        .factorize()
        .expect("factorize after failures")
        .solve(&b)
        .expect("solve after failures");
    assert_eq!(x_again, x_clean);
}

/// An injected pool-job panic is contained at the session boundary as
/// `PoolPanic`, an injected NaN in the output surfaces as
/// `NumericalBreakdown`, and neither poisons subsequent evaluations.
#[test]
fn evaluation_faults_are_contained_and_do_not_poison_the_session() {
    let points = generate(DatasetId::Grid, 512, 0);
    let kernel = Kernel::Gaussian { bandwidth: 5.0 };
    let params = MatRoxParams::h2b().with_bacc(1e-5).with_leaf_size(64);
    let session = EvalSession::build(&points, &kernel, &params).expect("session build");
    let w = Matrix::filled(points.len(), 4, 1.0);
    let baseline = session.evaluate(&w).expect("baseline evaluate");

    failpoint::set(failpoint::names::EVAL_PANIC, 1);
    let err = session.evaluate(&w).expect_err("injected panic");
    assert!(!failpoint::armed(failpoint::names::EVAL_PANIC));
    match &err {
        MatroxError::PoolPanic(msg) => assert!(
            msg.contains(failpoint::names::EVAL_PANIC),
            "payload should be preserved: {msg}"
        ),
        other => panic!("wrong error: {other:?}"),
    }

    failpoint::set(failpoint::names::EVAL_POISON, 1);
    let err = session.evaluate(&w).expect_err("injected NaN");
    assert!(!failpoint::armed(failpoint::names::EVAL_POISON));
    assert!(
        matches!(err, MatroxError::NumericalBreakdown(_)),
        "wrong error: {err:?}"
    );

    // Contained faults are visible in the statistics but do not count as
    // evaluations, and the next clean call is bitwise identical.
    let stats = session.stats();
    assert_eq!(stats.contained_panics, 1);
    assert_eq!(stats.evaluations, 1);
    let again = session.evaluate(&w).expect("evaluate after faults");
    assert_eq!(again.as_slice(), baseline.as_slice());
    assert_eq!(session.stats().evaluations, 2);
}

/// End-to-end proof of the `MATROX_FAILPOINT` *environment* path: run with
/// `MATROX_FAILPOINT=chol-breakdown=1` (the CI fault-injection leg does),
/// and the armed breakdown must be recovered by ridge escalation without
/// any programmatic arming.  Ignored by default because it requires the
/// environment to be set before the process starts.
#[test]
#[ignore = "requires MATROX_FAILPOINT=chol-breakdown=1 in the environment (CI fault-injection leg)"]
fn env_armed_chol_breakdown_is_recovered() {
    assert_eq!(
        std::env::var("MATROX_FAILPOINT").as_deref(),
        Ok("chol-breakdown=1"),
        "run this test with MATROX_FAILPOINT=chol-breakdown=1"
    );
    let (points, kernel, params) = spd_setup();
    let h = inspector(&points, &kernel, &params).expect("inspector");
    let recovered = h
        .factorize()
        .expect("env-armed breakdown must be recovered by ridge escalation");
    assert_eq!(recovered.factor.timings.ridge_attempts, 1);
    assert!(recovered.factor.timings.applied_ridge > 0.0);
    let x = recovered
        .solve(&vec![1.0; points.len()])
        .expect("recovered solve");
    assert!(x.iter().all(|v| v.is_finite()));
}

/// The `io-truncate` / `io-flip` failpoints corrupt the stream between the
/// filesystem and the parser; the hardened reader rejects both with
/// `Format` and an un-corrupted reload still round-trips.
#[test]
fn io_failpoints_exercise_the_hardened_reader() {
    let (points, kernel, params) = spd_setup();
    let h = inspector(&points, &kernel, &params).expect("inspector");
    let dir = std::env::temp_dir().join("matrox_failpoints_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path: PathBuf = dir.join("model.cds");
    matrox_core::save(&h, &path).expect("save");

    failpoint::set(failpoint::names::IO_TRUNCATE, 1);
    let err = matrox_core::load(&path).expect_err("truncated stream");
    assert!(!failpoint::armed(failpoint::names::IO_TRUNCATE));
    assert!(
        matches!(err, MatroxError::Format(_)),
        "wrong error: {err:?}"
    );

    // A single flipped bit mid-stream either fails structural validation
    // (`Format`) or lands in a value payload — in which case the parse must
    // be lossless: re-encoding reproduces the corrupted stream exactly (the
    // corruption-fuzz suite sweeps this property over every byte).
    failpoint::set(failpoint::names::IO_FLIP, 1);
    let flip_result = matrox_core::load(&path);
    assert!(!failpoint::armed(failpoint::names::IO_FLIP));
    match flip_result {
        Err(MatroxError::Format(_)) => {}
        Err(other) => panic!("wrong error for a flipped stream: {other:?}"),
        Ok(h2) => {
            let mut flipped = std::fs::read(&path).expect("reread");
            let mid = flipped.len() / 2;
            flipped[mid] ^= 0x01;
            assert_eq!(
                matrox_core::to_bytes(&h2).as_ref() as &[u8],
                &flipped[..],
                "accepted a corrupted stream without representing it losslessly"
            );
        }
    }

    // Disarmed, the same file loads and re-encodes identically.
    let reloaded = matrox_core::load(&path).expect("clean reload");
    assert_eq!(
        matrox_core::to_bytes(&reloaded).as_ref() as &[u8],
        matrox_core::to_bytes(&h).as_ref() as &[u8]
    );
    std::fs::remove_file(&path).ok();
}
