//! Integration coverage for HMatrix serialization (`io::{to_bytes,
//! from_bytes, save, load}`) across all three hierarchical structures the
//! inspector can produce: HSS, H²-b, and the geometric (tau-based) H².
//!
//! For each structure the round-trip must (a) succeed, (b) preserve the
//! executor's output to machine precision, (c) preserve the structural
//! metadata, and (d) be byte-stable (serialize → deserialize → serialize
//! yields identical bytes).

use matrox_core::io::{
    from_bytes, from_bytes_factored, load, load_factored, save, save_factored, to_bytes,
    to_bytes_factored,
};
use matrox_core::{inspector, FactoredHMatrix, HMatrix, MatRoxParams};
use matrox_linalg::{relative_error, Matrix};
use matrox_points::{generate, DatasetId, Kernel, PointSet};
use matrox_tree::Structure;
use rand::SeedableRng;

const N: usize = 384;

fn build(structure: Structure) -> (PointSet, HMatrix) {
    let pts = generate(DatasetId::Grid, N, 17);
    let kernel = Kernel::Gaussian { bandwidth: 2.0 };
    let params = MatRoxParams {
        structure,
        bacc: 1e-6,
        ..MatRoxParams::default()
    }
    .with_leaf_size(32);
    let h = inspector(&pts, &kernel, &params).expect("inspector");
    (pts, h)
}

fn all_structures() -> [Structure; 3] {
    [
        Structure::Hss,
        Structure::h2b(),
        Structure::Geometric { tau: 0.7 },
    ]
}

#[test]
fn roundtrip_preserves_evaluation_on_all_structures() {
    for structure in all_structures() {
        let (pts, h) = build(structure);
        let h2 = from_bytes(to_bytes(&h))
            .unwrap_or_else(|e| panic!("{}: deserialize failed: {e:?}", structure.name()));

        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let w = Matrix::random_uniform(pts.len(), 4, &mut rng);
        let err = relative_error(
            &h2.matmul(&w).expect("matmul"),
            &h.matmul(&w).expect("matmul"),
        );
        assert!(
            err < 1e-14,
            "{}: round-tripped evaluation differs (err = {err})",
            structure.name()
        );

        assert_eq!(h2.structure, h.structure, "{}", structure.name());
        assert_eq!(h2.bacc, h.bacc, "{}", structure.name());
        assert_eq!(h2.dim(), h.dim(), "{}", structure.name());
    }
}

#[test]
fn roundtrip_is_byte_stable_on_all_structures() {
    for structure in all_structures() {
        let (_, h) = build(structure);
        let bytes = to_bytes(&h);
        let h2 = from_bytes(bytes.clone()).expect("deserialize");
        assert_eq!(
            to_bytes(&h2),
            bytes,
            "{}: serialize(deserialize(b)) != b",
            structure.name()
        );
    }
}

#[test]
fn file_roundtrip_on_all_structures() {
    let dir = std::env::temp_dir().join("matrox_serialization_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    for (i, structure) in all_structures().into_iter().enumerate() {
        let (pts, h) = build(structure);
        let path = dir.join(format!("hmat_{i}.cds"));
        save(&h, &path).unwrap();
        let loaded = load(&path).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        let w = Matrix::random_uniform(pts.len(), 2, &mut rng);
        assert!(
            relative_error(
                &loaded.matmul(&w).expect("matmul"),
                &h.matmul(&w).expect("matmul")
            ) < 1e-14,
            "{}: file round-trip changed the evaluation",
            structure.name()
        );
        std::fs::remove_file(&path).ok();
    }
}

/// An HSS compression of a well-conditioned SPD Gaussian kernel (bandwidth
/// at the grid spacing), factored with the ULV subsystem.
fn build_factored() -> (PointSet, FactoredHMatrix) {
    let pts = generate(DatasetId::Grid, N, 17);
    let spacing = 1.0 / (N as f64).sqrt();
    let kernel = Kernel::Gaussian { bandwidth: spacing };
    let params = MatRoxParams::hss().with_bacc(1e-7).with_leaf_size(32);
    let h = inspector(&pts, &kernel, &params).expect("inspector");
    let fh = h.factorize().expect("HSS SPD kernel matrix must factor");
    (pts, fh)
}

#[test]
fn factored_roundtrip_preserves_solutions_bitwise() {
    let (pts, fh) = build_factored();
    let fh2 = from_bytes_factored(to_bytes_factored(&fh)).expect("deserialize factored");

    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let b = Matrix::random_uniform(pts.len(), 4, &mut rng);
    // The solve after reload must be bitwise identical: serialization stores
    // every factor value exactly (little-endian f64), and the sweeps are
    // deterministic.
    assert_eq!(
        fh.solve_matrix(&b).expect("solve").as_slice(),
        fh2.solve_matrix(&b).expect("solve").as_slice(),
        "reloaded factorization changed the solution"
    );
    // The embedded HMatrix must round-trip too (evaluation unchanged).
    let w = Matrix::random_uniform(pts.len(), 2, &mut rng);
    assert!(
        relative_error(
            &fh2.hmatrix.matmul(&w).expect("matmul"),
            &fh.hmatrix.matmul(&w).expect("matmul")
        ) < 1e-14
    );
}

#[test]
fn factored_roundtrip_is_byte_stable() {
    let (_, fh) = build_factored();
    let bytes = to_bytes_factored(&fh);
    let fh2 = from_bytes_factored(bytes.clone()).expect("deserialize");
    assert_eq!(
        to_bytes_factored(&fh2),
        bytes,
        "serialize(deserialize(b)) != b for the factored format"
    );
}

#[test]
fn factored_file_roundtrip_solves_after_reload() {
    let (pts, fh) = build_factored();
    let dir = std::env::temp_dir().join("matrox_serialization_roundtrip_factored");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("hmat.ulv");
    save_factored(&fh, &path).unwrap();
    let loaded = load_factored(&path).unwrap();
    let b: Vec<f64> = (0..pts.len())
        .map(|i| ((i % 13) as f64 - 6.0) * 0.5)
        .collect();
    assert_eq!(
        loaded.solve(&b).expect("solve"),
        fh.solve(&b).expect("solve"),
        "solution after file reload is not bitwise equal"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_factored_payload_is_an_error_not_a_panic() {
    let (_, fh) = build_factored();
    let bytes = to_bytes_factored(&fh);
    for keep in [9, bytes.len() / 2, bytes.len() - 8] {
        let truncated: Vec<u8> = bytes[..keep].to_vec();
        let result =
            std::panic::catch_unwind(|| from_bytes_factored(bytes::Bytes::from(truncated)));
        match result {
            Ok(Err(_)) => {}
            Ok(Ok(_)) => panic!("truncated factored payload deserialized successfully"),
            Err(_) => panic!("truncated factored payload panicked instead of erroring"),
        }
    }
}

#[test]
fn truncated_payload_is_an_error_not_a_panic() {
    let (_, h) = build(Structure::Hss);
    let bytes = to_bytes(&h);
    // Keep the magic header but drop the tail: must surface as Err, and the
    // error must be reported before any panic-prone buffer read.
    let truncated: Vec<u8> = bytes[..bytes.len() / 2].to_vec();
    let result = std::panic::catch_unwind(|| from_bytes(bytes::Bytes::from(truncated)));
    match result {
        Ok(Err(_)) => {}
        Ok(Ok(_)) => panic!("truncated payload deserialized successfully"),
        Err(_) => panic!("truncated payload caused a panic instead of an IoError"),
    }
}
