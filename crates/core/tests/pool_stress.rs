//! Pool-stress tests for the parallel inspector: pathological grain and
//! node-count settings, and fault containment when a pool job dies in the
//! middle of the compression phase.
//!
//! Both tests run inspectors, and one of them arms the process-global
//! `compress-panic` failpoint, so they serialize on a mutex: an armed fire
//! must never be consumed by the sibling's innocent compression pass.

use matrox_core::{failpoint, inspector, EvalSession, MatRoxParams, MatroxError};
use matrox_linalg::Matrix;
use matrox_points::{generate, DatasetId, Kernel, PointSet};
use std::sync::Mutex;

// CONCURRENCY: a process-wide Mutex serializing the two test functions —
// both run inspectors (and thus compression), and one arms the global
// `compress-panic` failpoint, so interleaving could misdeliver the fire.
// Lock poisoning is expected (assertion failures unwind while holding the
// guard) and harmless: the guard protects no data, so `into_inner` is safe.
static SERIAL: Mutex<()> = Mutex::new(());

fn tiny_node_setup() -> (PointSet, Kernel, MatRoxParams) {
    let points = generate(DatasetId::Grid, 2048, 3);
    let kernel = Kernel::Gaussian { bandwidth: 1.0 };
    // leaf_size 2 on n = 2048 produces ~2k nodes, so every parallel phase
    // sees a work list three orders of magnitude wider than the pool.
    let params = MatRoxParams::h2b().with_bacc(1e-3).with_leaf_size(2);
    (points, kernel, params)
}

/// grain = 1 on thousands of near-empty nodes: the scheduler floods the
/// pool with minimal work items and the output must still match the
/// auto-grain build bit for bit.
#[test]
fn grain_one_with_thousands_of_tiny_nodes_is_bitwise_stable() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (points, kernel, params) = tiny_node_setup();

    let auto = inspector(&points, &kernel, &params).expect("auto-grain inspector");
    assert!(
        auto.tree.nodes.len() > 1000,
        "stress setup is not stressful: only {} nodes",
        auto.tree.nodes.len()
    );
    let fine = inspector(&points, &kernel, &params.with_grain(1)).expect("grain-1 inspector");
    assert_eq!(
        matrox_core::to_bytes(&auto),
        matrox_core::to_bytes(&fine),
        "grain 1 changed the serialized image on a {}-node tree",
        auto.tree.nodes.len()
    );

    // The flood-scheduled plan still evaluates.
    let w = Matrix::filled(points.len(), 3, 0.5);
    let y = fine.matmul(&w).expect("matmul");
    assert!(y.as_slice().iter().all(|v| v.is_finite()));
}

/// A panic injected into a compression pool job surfaces as `PoolPanic`
/// at the inspector boundary — the call returns instead of hanging the
/// pool — and the process stays usable: a clean rebuild succeeds and is
/// bitwise identical to a pre-fault baseline.
#[test]
fn compression_panic_is_contained_and_leaves_the_process_usable() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let points = generate(DatasetId::Grid, 512, 0);
    let kernel = Kernel::Gaussian { bandwidth: 1.0 };
    let params = MatRoxParams::hss().with_bacc(1e-5).with_leaf_size(32);

    let baseline = EvalSession::build(&points, &kernel, &params).expect("baseline session");
    let w = Matrix::filled(points.len(), 2, 1.0);
    let y_baseline = baseline.evaluate(&w).expect("baseline evaluate");

    failpoint::set(failpoint::names::COMPRESS_PANIC, 1);
    let err = EvalSession::build(&points, &kernel, &params)
        .expect_err("injected compression panic must fail the build");
    assert!(
        !failpoint::armed(failpoint::names::COMPRESS_PANIC),
        "the failpoint should have fired exactly once"
    );
    match &err {
        MatroxError::PoolPanic(msg) => assert!(
            msg.contains(failpoint::names::COMPRESS_PANIC),
            "panic payload should be preserved: {msg}"
        ),
        other => panic!("wrong error: {other:?}"),
    }

    // The pool survived the contained panic: a clean rebuild works and
    // reproduces the baseline bitwise.
    let rebuilt = EvalSession::build(&points, &kernel, &params).expect("rebuild after fault");
    let y_rebuilt = rebuilt.evaluate(&w).expect("evaluate after fault");
    assert_eq!(y_rebuilt.as_slice(), y_baseline.as_slice());
}
