//! Corruption fuzz: the hardened model readers must survive *any*
//! single-byte corruption of a saved model.
//!
//! For every byte position of a small `MATROX1` and `MATROXF1` stream (and
//! several XOR masks per byte, covering low-bit value perturbations and
//! structural byte rewrites), the corrupted stream must either
//!
//! * be rejected with an `Err` (never a panic), or
//! * parse into a model whose re-encoding is bitwise identical to the
//!   corrupted stream (the flip landed in a value payload and the parse is
//!   lossless — nothing is silently normalized or truncated);
//!
//! and the parser must never allocate more than 16 MiB in a single request,
//! no matter what the corrupted length fields claim — the
//! remaining-bytes-capped `Vec::with_capacity` hardening, pinned here with
//! a counting global allocator.

use matrox_core::{
    from_bytes, from_bytes_factored, inspector, to_bytes, to_bytes_factored, MatRoxParams,
};
use matrox_points::{generate, DatasetId, Kernel};
use std::alloc::{GlobalAlloc, Layout, System};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Largest single allocation request a parse of adversarial bytes may make.
const ALLOC_CAP: usize = 16 * 1024 * 1024;

/// System allocator wrapped with a high-water mark of the largest single
/// request (what an uncapped `Vec::with_capacity(attacker_len)` would trip).
struct MaxRequestAlloc;

// CONCURRENCY: a single Relaxed high-water mark — the sweeps run inside one
// test function, so reset/read happen with no parse in flight; the counter
// only needs to be monotone within one parse.
static MAX_REQUEST: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System` plus a high-water-mark update —
// every GlobalAlloc obligation (layout fitting, no unwinding, pointer
// validity) is discharged by `System` itself.
unsafe impl GlobalAlloc for MaxRequestAlloc {
    // SAFETY: contract inherited verbatim from the `GlobalAlloc` trait.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        MAX_REQUEST.fetch_max(layout.size(), Ordering::Relaxed);
        // SAFETY: forwarding the caller's layout contract verbatim.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: contract inherited verbatim from the `GlobalAlloc` trait.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        MAX_REQUEST.fetch_max(layout.size(), Ordering::Relaxed);
        // SAFETY: forwarding the caller's layout contract verbatim.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: contract inherited verbatim from the `GlobalAlloc` trait.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        MAX_REQUEST.fetch_max(new_size, Ordering::Relaxed);
        // SAFETY: forwarding the caller's pointer/layout contract verbatim.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: contract inherited verbatim from the `GlobalAlloc` trait.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarding the caller's pointer/layout contract verbatim.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static WATCHER: MaxRequestAlloc = MaxRequestAlloc;

/// XOR masks swept per byte: low-bit (perturbs values in place), high-bit
/// (sign/tag flips), and full-byte inversion (structural rewrites, length
/// explosions).
const MASKS: [u8; 3] = [0x01, 0x80, 0xFF];

/// Run one parse attempt, returning the re-encoded bytes on success, and
/// enforcing the panic-freedom and allocation-cap properties.
fn parse_guarded(
    stream: &[u8],
    parse: &dyn Fn(Vec<u8>) -> Option<Vec<u8>>,
    what: &dyn Fn() -> String,
) -> Option<Vec<u8>> {
    MAX_REQUEST.store(0, Ordering::Relaxed);
    let result = catch_unwind(AssertUnwindSafe(|| parse(stream.to_vec())));
    let peak = MAX_REQUEST.load(Ordering::Relaxed);
    let reencoded = result.unwrap_or_else(|_| panic!("parser panicked on {}", what()));
    assert!(
        peak <= ALLOC_CAP,
        "parsing {} allocated {peak} bytes in one request (cap {ALLOC_CAP})",
        what()
    );
    reencoded
}

/// The fuzz property over one stream: every single-byte corruption is
/// rejected or parsed losslessly, without panics or oversized allocations.
fn fuzz_stream(label: &str, bytes: &[u8], parse: &dyn Fn(Vec<u8>) -> Option<Vec<u8>>) {
    // Baseline: the pristine stream parses and round-trips bitwise.
    let clean = parse_guarded(bytes, parse, &|| format!("pristine {label}"))
        .unwrap_or_else(|| panic!("pristine {label} stream must parse"));
    assert_eq!(
        clean, bytes,
        "pristine {label} re-encode must be bitwise identical"
    );

    let mut accepted = 0usize;
    let mut corrupted = bytes.to_vec();
    for pos in 0..corrupted.len() {
        for mask in MASKS {
            corrupted[pos] ^= mask;
            let what = || format!("{label} with byte {pos} ^ {mask:#04x}");
            if let Some(reencoded) = parse_guarded(&corrupted, parse, &what) {
                accepted += 1;
                assert_eq!(
                    reencoded,
                    corrupted,
                    "accepted a corrupted stream without representing it losslessly: {}",
                    what()
                );
            }
            corrupted[pos] ^= mask; // restore
        }
    }
    assert_eq!(corrupted, bytes, "sweep must restore the stream");
    // Sanity on the sweep itself: structural rewrites (magic, counts,
    // lengths) must actually be exercised — if nothing was ever rejected
    // the masks or the stream are too small to mean anything.
    assert!(
        accepted < corrupted.len() * MASKS.len(),
        "{label}: every corruption was accepted; the validators are not running"
    );
}

#[test]
fn every_single_byte_corruption_is_rejected_or_lossless() {
    // Small on purpose: the sweep parses the stream 3x per byte, and the
    // parse cost itself scales with the stream, so the sweep is ~quadratic.
    let points = generate(DatasetId::Grid, 32, 0);
    let kernel = Kernel::GaussianRidge {
        bandwidth: 0.125,
        ridge: 8.0,
    };
    let params = MatRoxParams::hss().with_bacc(1e-3).with_leaf_size(8);
    let h = inspector(&points, &kernel, &params).expect("inspector");

    let plain = to_bytes(&h).to_vec();
    fuzz_stream("MATROX1", &plain, &|data| {
        from_bytes(bytes::Bytes::from(data))
            .ok()
            .map(|h| to_bytes(&h).to_vec())
    });

    let factored = to_bytes_factored(&h.factorize().expect("factorize")).to_vec();
    fuzz_stream("MATROXF1", &factored, &|data| {
        from_bytes_factored(bytes::Bytes::from(data))
            .ok()
            .map(|fh| to_bytes_factored(&fh).to_vec())
    });
}
