//! The determinism wall for the level-parallel inspector.
//!
//! The inspector runs tree partitioning, neighbor/skeleton sampling,
//! per-level compression and CDS packing on the work-stealing pool.  The
//! contract pinned here is strict **bitwise** reproducibility: the pool
//! width may change the schedule, but never a single bit of the output.
//! Concretely, for every structure x accuracy combination:
//!
//! * the serialized `MATROX1` image is byte-identical at 1/2/4 threads;
//! * the CDS value buffers (generators, near blocks, coupling blocks)
//!   match bit for bit, as do the sranks and the tree permutation;
//! * the explicit `grain` knob changes scheduling only — never bytes;
//! * a parallel-inspected HSS matrix factorizes and solves to the same
//!   bits as the width-1 run, end to end.
//!
//! Under Miri the matrix shrinks (fewer combinations, smaller N) but the
//! same assertions run, so the pool-parallel phases stay under the
//! interpreter's aliasing checks.

use matrox_core::{inspector, to_bytes, HMatrix, MatRoxParams};
use matrox_points::{generate, DatasetId, Kernel, PointSet};

fn problem(n: usize) -> (PointSet, Kernel) {
    let pts = generate(DatasetId::Grid, n, 21);
    let kernel = Kernel::Gaussian { bandwidth: 1.0 };
    (pts, kernel)
}

fn settings() -> Vec<(&'static str, MatRoxParams)> {
    let mut out = Vec::new();
    let baccs: &[f64] = if cfg!(miri) {
        &[1.0e-3]
    } else {
        &[1.0e-3, 1.0e-7]
    };
    for &bacc in baccs {
        out.push(("hss", MatRoxParams::hss().with_bacc(bacc)));
        out.push(("h2b", MatRoxParams::h2b().with_bacc(bacc)));
        if !cfg!(miri) {
            out.push(("geometric", MatRoxParams::smash_setting().with_bacc(bacc)));
        }
    }
    for (_, p) in out.iter_mut() {
        *p = p.with_leaf_size(32);
    }
    out
}

fn inspect_at_width(
    pts: &PointSet,
    kernel: &Kernel,
    params: &MatRoxParams,
    threads: usize,
) -> HMatrix {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    pool.install(|| inspector(pts, kernel, params).expect("inspector"))
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Assert every determinism-relevant artifact of `h` matches `reference`,
/// with a separate message per artifact so a failure names the phase that
/// diverged (perm -> partitioning, sranks -> sampling/compression, value
/// buffers -> compression/packing, image -> anything serialized).
fn assert_bitwise_same(reference: &HMatrix, h: &HMatrix, what: &str) {
    assert_eq!(
        reference.tree.perm, h.tree.perm,
        "{what}: tree permutation diverged"
    );
    assert_eq!(
        reference.tree.pos, h.tree.pos,
        "{what}: inverse permutation diverged"
    );
    assert_eq!(
        reference.plan.cds.sranks, h.plan.cds.sranks,
        "{what}: sranks diverged"
    );
    assert!(
        bits_eq(&reference.plan.cds.gen_values, &h.plan.cds.gen_values),
        "{what}: generator values diverged"
    );
    assert!(
        bits_eq(&reference.plan.cds.d_values, &h.plan.cds.d_values),
        "{what}: near-block values diverged"
    );
    assert!(
        bits_eq(&reference.plan.cds.b_values, &h.plan.cds.b_values),
        "{what}: coupling-block values diverged"
    );
    assert_eq!(
        to_bytes(reference),
        to_bytes(h),
        "{what}: serialized MATROX1 image diverged"
    );
}

#[test]
fn inspector_is_bitwise_identical_across_pool_widths() {
    let n = if cfg!(miri) { 64 } else { 384 };
    let (pts, kernel) = problem(n);
    let widths: &[usize] = if cfg!(miri) { &[1, 2] } else { &[1, 2, 4] };
    for (name, params) in settings() {
        let reference = inspect_at_width(&pts, &kernel, &params, widths[0]);
        for &w in &widths[1..] {
            let h = inspect_at_width(&pts, &kernel, &params, w);
            assert_bitwise_same(
                &reference,
                &h,
                &format!("{name} bacc={:.0e} at {w} threads", params.bacc),
            );
        }
    }
}

#[test]
fn grain_changes_scheduling_not_bytes() {
    let n = if cfg!(miri) { 64 } else { 384 };
    let (pts, kernel) = problem(n);
    let params = MatRoxParams::h2b().with_bacc(1.0e-5).with_leaf_size(32);
    let reference = inspect_at_width(&pts, &kernel, &params, 4);
    for grain in [1usize, 7, 64, 100_000] {
        let h = inspect_at_width(&pts, &kernel, &params.with_grain(grain), 4);
        assert_bitwise_same(&reference, &h, &format!("grain={grain}"));
    }
}

#[test]
fn parallel_inspect_factorize_solve_matches_width_one() {
    let n = if cfg!(miri) { 64 } else { 384 };
    let (pts, kernel) = problem(n);
    let params = MatRoxParams::hss().with_bacc(1.0e-6).with_leaf_size(32);
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();

    let solve_at = |threads: usize| -> Vec<f64> {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let h = inspector(&pts, &kernel, &params).expect("inspector");
            let f = h.factorize().expect("factorize");
            f.solve(&b).expect("solve")
        })
    };

    let reference = solve_at(1);
    let widths: &[usize] = if cfg!(miri) { &[2] } else { &[2, 4] };
    for &w in widths {
        let x = solve_at(w);
        assert!(
            bits_eq(&reference, &x),
            "inspect->factorize->solve at {w} threads is not bitwise identical to 1 thread"
        );
    }
}
