//! # matrox-core
//!
//! The user-facing MatRox API: the inspector (modular compression +
//! structure analysis + code generation), the executor entry points on the
//! resulting [`HMatrix`], the inspector-p1/p2 split that enables reuse when
//! the kernel function or the accuracy change (Section 5 of the paper), and
//! HMatrix serialization (the `hmat.cds` artifact of Figure 2).
//!
//! ## Quick start
//!
//! ```
//! use matrox_core::{inspector, MatRoxParams};
//! use matrox_points::{generate, DatasetId, Kernel};
//! use matrox_linalg::Matrix;
//!
//! // Points, kernel, accuracy -> inspector -> HMatrix.
//! let points = generate(DatasetId::Grid, 512, 0);
//! let kernel = Kernel::Gaussian { bandwidth: 5.0 };
//! let params = MatRoxParams::h2b().with_bacc(1e-5).with_leaf_size(64);
//! let h = inspector(&points, &kernel, &params);
//!
//! // Executor: multiply the compressed matrix with a dense matrix W.
//! let w = Matrix::filled(points.len(), 8, 1.0);
//! let y = h.matmul(&w);
//! assert_eq!(y.shape(), (points.len(), 8));
//! ```

pub mod config;
pub mod hmatrix;
pub mod inspector;
pub mod io;
pub mod timings;

pub use config::MatRoxParams;
pub use hmatrix::HMatrix;
pub use inspector::{inspector, inspector_p1, inspector_p2, InspectorP1};
pub use io::{from_bytes, load, save, to_bytes, IoError};
pub use timings::InspectorTimings;
