//! # matrox-core
//!
//! The user-facing MatRox API: the inspector (modular compression +
//! structure analysis + code generation), the executor entry points on the
//! resulting [`HMatrix`], the inspector-p1/p2 split that enables reuse when
//! the kernel function or the accuracy change (Section 5 of the paper), and
//! HMatrix serialization (the `hmat.cds` artifact of Figure 2).
//!
//! ## Quick start
//!
//! ```
//! use matrox_core::{inspector, MatRoxParams};
//! use matrox_points::{generate, DatasetId, Kernel};
//! use matrox_linalg::Matrix;
//!
//! // Points, kernel, accuracy -> inspector -> HMatrix.
//! let points = generate(DatasetId::Grid, 512, 0);
//! let kernel = Kernel::Gaussian { bandwidth: 5.0 };
//! let params = MatRoxParams::h2b().with_bacc(1e-5).with_leaf_size(64);
//! let h = inspector(&points, &kernel, &params).expect("clean inputs");
//!
//! // Executor: multiply the compressed matrix with a dense matrix W.
//! let w = Matrix::filled(points.len(), 8, 1.0);
//! let y = h.matmul(&w).expect("finite RHS");
//! assert_eq!(y.shape(), (points.len(), 8));
//! ```
//!
//! ## Batched evaluation (plan once, evaluate many)
//!
//! Repeated evaluations should go through an [`EvalSession`]: the inspector
//! runs once, the executor's per-plan state (panel width, blocking-plan
//! targets) is derived once, and every `evaluate(W)` processes the RHS in
//! cache-sized column panels.  The session tracks the amortized per-query
//! cost:
//!
//! ```
//! use matrox_core::{EvalSession, MatRoxParams};
//! use matrox_points::{generate, DatasetId, Kernel};
//! use matrox_linalg::Matrix;
//!
//! let points = generate(DatasetId::Grid, 512, 0);
//! let kernel = Kernel::Gaussian { bandwidth: 5.0 };
//! let params = MatRoxParams::h2b().with_bacc(1e-5).with_leaf_size(64);
//! let session = EvalSession::build(&points, &kernel, &params).expect("clean inputs");
//! for batch in 0..3 {
//!     let w = Matrix::filled(points.len(), 16, 1.0 + batch as f64);
//!     let y = session.evaluate(&w).expect("finite RHS"); // panel-blocked, no plan re-walk
//!     assert_eq!(y.shape(), (points.len(), 16));
//! }
//! assert_eq!(session.stats().queries, 48);
//! assert!(session.stats().amortized_per_query().is_finite());
//! ```
//!
//! ## Solving
//!
//! An SPD kernel matrix compressed with the HSS structure can be
//! ULV-factored and solved directly (`K~ x = b`); the `GaussianRidge`
//! kernel is the standard `K + lambda I` kernel-ridge workload:
//!
//! ```
//! use matrox_core::{inspector, MatRoxParams};
//! use matrox_points::{generate, DatasetId, Kernel};
//!
//! let points = generate(DatasetId::Grid, 256, 0);
//! let kernel = Kernel::GaussianRidge { bandwidth: 0.125, ridge: 8.0 };
//! let params = MatRoxParams::hss().with_bacc(1e-6).with_leaf_size(32);
//! let factored = inspector(&points, &kernel, &params)
//!     .expect("clean inputs")
//!     .factorize()
//!     .expect("HSS + SPD: factorization succeeds");
//! let b = vec![1.0; points.len()];
//! let x = factored.solve(&b).expect("finite RHS");
//! assert_eq!(x.len(), points.len());
//! ```
//!
//! ## Error handling
//!
//! Every fallible entry point returns [`MatroxError`], the crate-wide
//! taxonomy: `InvalidInput` (caller-fixable: NaN/Inf data, shape
//! mismatches, bad parameters), `PlanMismatch` (a factor or plan applied
//! to the wrong operator), `NumericalBreakdown` (the math failed: Cholesky
//! breakdown past the ridge-escalation budget, non-finite output),
//! `Format`/`Io` (untrusted model bytes rejected by the hardened readers),
//! and `PoolPanic` (an internal invariant panic contained at the
//! [`EvalSession`] boundary).  Failures never poison the session: the next
//! clean call returns bitwise-identical results.  DESIGN.md documents the
//! recovery semantics; the `MATROX_FAILPOINT` knob (see
//! [`failpoint`]) injects each failure class deterministically.

#![forbid(unsafe_code)]

pub mod config;
pub mod error;
pub mod hmatrix;
pub mod inspector;
pub mod io;
pub mod session;
pub mod timings;
pub mod wire;

pub use config::MatRoxParams;
pub use error::MatroxError;
pub use hmatrix::{FactoredHMatrix, HMatrix};
pub use inspector::{inspector, inspector_p1, inspector_p2, InspectorP1};
pub use io::{
    from_bytes, from_bytes_factored, load, load_factored, save, save_factored, to_bytes,
    to_bytes_factored, IoError,
};
pub use matrox_factor::FactorError;
/// Deterministic fault-injection harness (re-exported from `matrox_linalg`,
/// where it lives so lower layers like `matrox-compress` can host injection
/// sites; the registry, knob format and API are unchanged).
pub use matrox_linalg::failpoint;
pub use matrox_linalg::{KernelChoice, KernelDispatch};
pub use session::EvalSession;
pub use timings::{FactorTimings, InspectTimings, InspectorTimings, SessionStats};
pub use wire::{WireReader, WireWriter};
