//! The user-facing [`HMatrix`] handle and its evaluation entry points.

use crate::error::MatroxError;
use crate::failpoint;
use crate::timings::InspectorTimings;
use matrox_codegen::{emit_source, EvalPlan};
use matrox_exec::{execute, ExecOptions};
use matrox_factor::{factor_with_ridge, FactorError, HssFactor};
use matrox_linalg::{all_finite, frobenius_norm, relative_error, KernelChoice, Matrix};
use matrox_points::{dense_kernel_matmul, Kernel, PointSet};
use matrox_tree::{ClusterTree, Structure};

/// Maximum number of ridge-escalation retries after a Cholesky breakdown.
const MAX_RIDGE_RETRIES: u32 = 3;

/// Growth factor of the diagonal shift between retries.
const RIDGE_GROWTH: f64 = 10.0;

/// Screen a right-hand side against the matrix dimension and NaN/Inf
/// poison.  Every public evaluation and solve entry point calls this first,
/// so invalid requests fail up front instead of propagating poison through
/// the sweeps.
fn screen_rhs(rows: usize, data: &[f64], n: usize, what: &str) -> Result<(), MatroxError> {
    if rows != n {
        return Err(MatroxError::InvalidInput(format!(
            "{what} has {rows} rows but the matrix dimension is {n}"
        )));
    }
    if !all_finite(data) {
        return Err(MatroxError::InvalidInput(format!(
            "{what} contains NaN or infinite entries"
        )));
    }
    Ok(())
}

/// A compressed kernel matrix ready for evaluation.
///
/// Produced by the inspector ([`crate::inspector()`] / [`crate::inspector_p2`]);
/// consumed by [`matmul`](HMatrix::matmul), which runs the MatRox executor
/// over the generated plan and CDS storage.
#[derive(Debug, Clone)]
pub struct HMatrix {
    /// The cluster tree the matrix was compressed over.
    pub tree: ClusterTree,
    /// The generated evaluation plan (lowering decisions + structure sets +
    /// CDS payload).
    pub plan: EvalPlan,
    /// The structure / admissibility mode used for compression.
    pub structure: Structure,
    /// The kernel the submatrices were evaluated with.
    pub kernel: Kernel,
    /// Block accuracy the matrix was compressed to.
    pub bacc: f64,
    /// Inspector timing breakdown (compression, structure analysis, codegen).
    pub timings: InspectorTimings,
    /// RHS panel width requested at inspection time
    /// ([`MatRoxParams::panel_width`](crate::MatRoxParams)); `0` = auto.
    /// A runtime tuning knob like `timings` — not serialized; reloaded
    /// matrices fall back to auto.
    pub panel_width: usize,
    /// GEMM kernel selection requested at inspection time
    /// ([`MatRoxParams::kernel`](crate::MatRoxParams)).  Honoured by every
    /// *executor* path derived from this matrix ([`HMatrix::matmul`],
    /// [`HMatrix::matvec`], sessions).  The factorization/solve sweeps
    /// (`crates/factor`) run their products through the process-wide
    /// selection instead (`MATROX_KERNEL`), so pinning a kernel for those
    /// requires the env var.  A runtime knob like `panel_width` —
    /// machine-specific, so not serialized; reloaded matrices fall back to
    /// [`KernelChoice::Auto`].
    pub gemm_kernel: KernelChoice,
}

impl HMatrix {
    /// Problem size `N` (number of points / matrix dimension).
    pub fn dim(&self) -> usize {
        self.tree.perm.len()
    }

    /// Evaluate `Y = K~ * W` with the generated (optimized) code.
    ///
    /// This is the one-shot path: it derives the executor's per-plan state
    /// and runs the same panel-blocked evaluation an
    /// [`EvalSession`](crate::EvalSession) serves — there is no separate
    /// executor implementation.  Repeated evaluations should build a
    /// session once so the state derivation is not paid per call.
    ///
    /// # Errors
    /// [`MatroxError::InvalidInput`] when `W` has the wrong row count or
    /// contains NaN/Inf entries.
    pub fn matmul(&self, w: &Matrix) -> Result<Matrix, MatroxError> {
        self.matmul_with(w, &self.default_exec_options())
    }

    /// The executor options every default evaluation path derives from this
    /// matrix: the plan's lowering decisions plus the inspection-time panel
    /// width and kernel selection.
    pub fn default_exec_options(&self) -> ExecOptions {
        ExecOptions::from_plan(&self.plan)
            .with_panel_width(self.panel_width)
            .with_kernel(self.gemm_kernel)
    }

    /// Evaluate with explicit executor options (used by the ablation and
    /// scalability harnesses).
    ///
    /// # Errors
    /// Same input-screening contract as [`matmul`](HMatrix::matmul).
    pub fn matmul_with(&self, w: &Matrix, opts: &ExecOptions) -> Result<Matrix, MatroxError> {
        screen_rhs(w.rows(), w.as_slice(), self.dim(), "right-hand side W")?;
        Ok(execute(&self.plan, &self.tree, w, opts))
    }

    /// Evaluate a matrix-vector product (`Q = 1`); a thin wrapper over the
    /// same session path as [`matmul`](HMatrix::matmul).
    ///
    /// # Errors
    /// Same input-screening contract as [`matmul`](HMatrix::matmul).
    pub fn matvec(&self, w: &[f64]) -> Result<Vec<f64>, MatroxError> {
        let wm = Matrix::from_vec(w.len(), 1, w.to_vec());
        Ok(self.matmul(&wm)?.into_vec())
    }

    /// Promote this matrix into a batched evaluation session (plan once /
    /// evaluate many); see [`EvalSession`](crate::EvalSession).
    pub fn into_session(self) -> crate::EvalSession {
        crate::EvalSession::from_hmatrix(self)
    }

    /// Overall accuracy `eps_f = ||K~W - KW||_F / ||KW||_F` against the exact
    /// kernel product (Figure 9's measure).  `O(N^2 Q)` — intended for the
    /// scaled-down experiment sizes.
    ///
    /// # Errors
    /// Same input-screening contract as [`matmul`](HMatrix::matmul).
    pub fn overall_accuracy(&self, points: &PointSet, w: &Matrix) -> Result<f64, MatroxError> {
        let approx = self.matmul(w)?;
        let exact = dense_kernel_matmul(points, &self.kernel, w);
        Ok(relative_error(&approx, &exact))
    }

    /// Flops of one evaluation with `q` columns (for GFLOP/s reporting).
    pub fn flops(&self, q: usize) -> u64 {
        self.plan.flops(q)
    }

    /// Compression ratio versus the dense `N x N` matrix.
    pub fn compression_ratio(&self) -> f64 {
        let dense = (self.dim() * self.dim() * std::mem::size_of::<f64>()) as f64;
        dense / self.plan.storage_bytes().max(1) as f64
    }

    /// Render the specialized evaluation code for this matrix (the
    /// `matmul.h` artifact of Figure 2).
    pub fn generated_code(&self) -> String {
        emit_source(&self.plan, "matmul")
    }

    /// Write the generated code to a file.
    pub fn write_generated_code(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.generated_code())
    }

    /// The starting diagonal shift of the breakdown-recovery loop, scaled
    /// to the magnitude of the stored leaf diagonal blocks so the first
    /// retry perturbs the operator by roughly one part in `1e8`.
    fn initial_ridge(&self) -> f64 {
        let scale = self
            .plan
            .cds
            .d_values
            .iter()
            .fold(0.0f64, |a, &x| a.max(x.abs()));
        if scale > 0.0 {
            scale * 1e-8
        } else {
            1e-8
        }
    }

    /// Compute the ULV-style factorization of this (HSS-compressed, SPD)
    /// matrix, enabling direct solves of `K~ x = b`.
    ///
    /// A Cholesky breakdown (a leaf diagonal block that is numerically not
    /// positive definite) does not fail the call immediately: the
    /// factorization is retried with an escalating diagonal shift
    /// `K~ + lambda I` (`lambda` starting near the operator's magnitude
    /// times `1e-8` and growing tenfold, at most three retries).  The attempt count and the shift that succeeded are
    /// recorded in the returned factor's
    /// [`timings`](matrox_factor::FactorTimings) — a nonzero
    /// `applied_ridge` means solves invert the shifted operator.
    ///
    /// # Errors
    /// [`MatroxError::PlanMismatch`] for non-HSS structures and
    /// [`MatroxError::NumericalBreakdown`] when the matrix still breaks
    /// down after the final escalation.
    pub fn factorize(&self) -> Result<FactoredHMatrix, MatroxError> {
        self.factorize_with(&self.default_exec_options())
    }

    /// [`factorize`](HMatrix::factorize) with explicit executor options
    /// (parallel sweeps + grain; results are bitwise identical either way).
    pub fn factorize_with(&self, opts: &ExecOptions) -> Result<FactoredHMatrix, MatroxError> {
        let mut ridge = 0.0f64;
        let mut attempts = 0u32;
        loop {
            // The `chol-breakdown` failpoint stands in for a barely-non-SPD
            // matrix: the attempt it fires on reports a breakdown without
            // running, so the escalation path below is exercised for real.
            let result = if failpoint::should_fire(failpoint::names::CHOL_BREAKDOWN) {
                Err(FactorError::NotPositiveDefinite {
                    node: 0,
                    pivot: 0,
                    value: -1.0,
                })
            } else {
                factor_with_ridge(&self.plan, &self.tree, opts, ridge)
            };
            match result {
                Ok(mut factor) => {
                    factor.timings.ridge_attempts = attempts;
                    factor.timings.applied_ridge = ridge;
                    return Ok(FactoredHMatrix {
                        hmatrix: self.clone(),
                        factor,
                    });
                }
                Err(e @ FactorError::NotPositiveDefinite { .. }) => {
                    if attempts >= MAX_RIDGE_RETRIES {
                        return Err(MatroxError::NumericalBreakdown(format!(
                            "{e}; still not positive definite after {attempts} ridge \
                             escalations (final shift {ridge:e})"
                        )));
                    }
                    attempts += 1;
                    ridge = if ridge == 0.0 {
                        self.initial_ridge()
                    } else {
                        ridge * RIDGE_GROWTH
                    };
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Solve `K~ x = b` for one right-hand-side vector.
    ///
    /// Convenience entry that factors on every call; factor once with
    /// [`factorize`](HMatrix::factorize) when solving repeatedly.
    ///
    /// # Errors
    /// The union of the [`factorize`](HMatrix::factorize) and
    /// [`FactoredHMatrix::solve`] contracts.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, MatroxError> {
        self.factorize()?.solve(b)
    }

    /// Solve `K~ X = B` for a multi-column right-hand side (see
    /// [`solve`](HMatrix::solve) for the factorization caveat).
    ///
    /// # Errors
    /// Same contract as [`solve`](HMatrix::solve).
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, MatroxError> {
        self.factorize()?.solve_matrix(b)
    }
}

/// An [`HMatrix`] together with its ULV-style factorization: the handle the
/// solver scenarios (regression, kernel ridge, preconditioning) hold on to.
///
/// Produced by [`HMatrix::factorize`]; solved with
/// [`solve`](FactoredHMatrix::solve) / [`solve_matrix`](FactoredHMatrix::solve_matrix);
/// stored and reloaded with [`crate::io::save_factored`] /
/// [`crate::io::load_factored`].
#[derive(Debug, Clone)]
pub struct FactoredHMatrix {
    /// The compressed matrix (tree + plan + CDS buffers the sweeps read).
    pub hmatrix: HMatrix,
    /// The factorization (leaf Cholesky factors + sibling merge systems).
    pub factor: HssFactor,
}

impl FactoredHMatrix {
    /// Problem size `N`.
    pub fn dim(&self) -> usize {
        self.hmatrix.dim()
    }

    /// Solve `K~ x = b` for one right-hand-side vector.
    ///
    /// # Errors
    /// [`MatroxError::InvalidInput`] when `b` has the wrong length or
    /// contains NaN/Inf, [`MatroxError::PlanMismatch`] when the factor does
    /// not belong to this matrix.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, MatroxError> {
        screen_rhs(b.len(), b, self.dim(), "right-hand side b")?;
        Ok(self.factor.solve(
            &self.hmatrix.plan,
            &self.hmatrix.tree,
            b,
            &self.hmatrix.default_exec_options(),
        )?)
    }

    /// Solve `K~ X = B` for a multi-column right-hand side.
    ///
    /// # Errors
    /// Same contract as [`solve`](FactoredHMatrix::solve).
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, MatroxError> {
        self.solve_matrix_with(b, &self.hmatrix.default_exec_options())
    }

    /// [`solve_matrix`](FactoredHMatrix::solve_matrix) with explicit
    /// executor options (used by the ablation and determinism harnesses).
    ///
    /// # Errors
    /// Same contract as [`solve`](FactoredHMatrix::solve).
    pub fn solve_matrix_with(&self, b: &Matrix, opts: &ExecOptions) -> Result<Matrix, MatroxError> {
        screen_rhs(b.rows(), b.as_slice(), self.dim(), "right-hand side B")?;
        Ok(self
            .factor
            .solve_matrix(&self.hmatrix.plan, &self.hmatrix.tree, b, opts)?)
    }

    /// Relative residual `||K x - b||_F / ||b||_F` of a solution against the
    /// *exact* kernel matrix (`O(N^2 Q)`, like
    /// [`HMatrix::overall_accuracy`]): the solver's end-to-end accuracy
    /// measure.
    pub fn relative_residual(&self, points: &PointSet, x: &Matrix, b: &Matrix) -> f64 {
        let mut r = dense_kernel_matmul(points, &self.hmatrix.kernel, x);
        r.sub_assign(b);
        let denom = frobenius_norm(b);
        if denom == 0.0 {
            frobenius_norm(&r)
        } else {
            frobenius_norm(&r) / denom
        }
    }
}
