//! The user-facing [`HMatrix`] handle and its evaluation entry points.

use crate::timings::InspectorTimings;
use matrox_codegen::{emit_source, EvalPlan};
use matrox_exec::{execute, ExecOptions};
use matrox_factor::{factor, FactorError, HssFactor};
use matrox_linalg::{frobenius_norm, relative_error, KernelChoice, Matrix};
use matrox_points::{dense_kernel_matmul, Kernel, PointSet};
use matrox_tree::{ClusterTree, Structure};

/// A compressed kernel matrix ready for evaluation.
///
/// Produced by the inspector ([`crate::inspector()`] / [`crate::inspector_p2`]);
/// consumed by [`matmul`](HMatrix::matmul), which runs the MatRox executor
/// over the generated plan and CDS storage.
#[derive(Debug, Clone)]
pub struct HMatrix {
    /// The cluster tree the matrix was compressed over.
    pub tree: ClusterTree,
    /// The generated evaluation plan (lowering decisions + structure sets +
    /// CDS payload).
    pub plan: EvalPlan,
    /// The structure / admissibility mode used for compression.
    pub structure: Structure,
    /// The kernel the submatrices were evaluated with.
    pub kernel: Kernel,
    /// Block accuracy the matrix was compressed to.
    pub bacc: f64,
    /// Inspector timing breakdown (compression, structure analysis, codegen).
    pub timings: InspectorTimings,
    /// RHS panel width requested at inspection time
    /// ([`MatRoxParams::panel_width`](crate::MatRoxParams)); `0` = auto.
    /// A runtime tuning knob like `timings` — not serialized; reloaded
    /// matrices fall back to auto.
    pub panel_width: usize,
    /// GEMM kernel selection requested at inspection time
    /// ([`MatRoxParams::kernel`](crate::MatRoxParams)).  Honoured by every
    /// *executor* path derived from this matrix ([`HMatrix::matmul`],
    /// [`HMatrix::matvec`], sessions).  The factorization/solve sweeps
    /// (`crates/factor`) run their products through the process-wide
    /// selection instead (`MATROX_KERNEL`), so pinning a kernel for those
    /// requires the env var.  A runtime knob like `panel_width` —
    /// machine-specific, so not serialized; reloaded matrices fall back to
    /// [`KernelChoice::Auto`].
    pub gemm_kernel: KernelChoice,
}

impl HMatrix {
    /// Problem size `N` (number of points / matrix dimension).
    pub fn dim(&self) -> usize {
        self.tree.perm.len()
    }

    /// Evaluate `Y = K~ * W` with the generated (optimized) code.
    ///
    /// This is the one-shot path: it derives the executor's per-plan state
    /// and runs the same panel-blocked evaluation an
    /// [`EvalSession`](crate::EvalSession) serves — there is no separate
    /// executor implementation.  Repeated evaluations should build a
    /// session once so the state derivation is not paid per call.
    pub fn matmul(&self, w: &Matrix) -> Matrix {
        execute(&self.plan, &self.tree, w, &self.default_exec_options())
    }

    /// The executor options every default evaluation path derives from this
    /// matrix: the plan's lowering decisions plus the inspection-time panel
    /// width and kernel selection.
    pub fn default_exec_options(&self) -> ExecOptions {
        ExecOptions::from_plan(&self.plan)
            .with_panel_width(self.panel_width)
            .with_kernel(self.gemm_kernel)
    }

    /// Evaluate with explicit executor options (used by the ablation and
    /// scalability harnesses).
    pub fn matmul_with(&self, w: &Matrix, opts: &ExecOptions) -> Matrix {
        execute(&self.plan, &self.tree, w, opts)
    }

    /// Evaluate a matrix-vector product (`Q = 1`); a thin wrapper over the
    /// same session path as [`matmul`](HMatrix::matmul).
    pub fn matvec(&self, w: &[f64]) -> Vec<f64> {
        let wm = Matrix::from_vec(w.len(), 1, w.to_vec());
        self.matmul(&wm).into_vec()
    }

    /// Promote this matrix into a batched evaluation session (plan once /
    /// evaluate many); see [`EvalSession`](crate::EvalSession).
    pub fn into_session(self) -> crate::EvalSession {
        crate::EvalSession::from_hmatrix(self)
    }

    /// Overall accuracy `eps_f = ||K~W - KW||_F / ||KW||_F` against the exact
    /// kernel product (Figure 9's measure).  `O(N^2 Q)` — intended for the
    /// scaled-down experiment sizes.
    pub fn overall_accuracy(&self, points: &PointSet, w: &Matrix) -> f64 {
        let approx = self.matmul(w);
        let exact = dense_kernel_matmul(points, &self.kernel, w);
        relative_error(&approx, &exact)
    }

    /// Flops of one evaluation with `q` columns (for GFLOP/s reporting).
    pub fn flops(&self, q: usize) -> u64 {
        self.plan.flops(q)
    }

    /// Compression ratio versus the dense `N x N` matrix.
    pub fn compression_ratio(&self) -> f64 {
        let dense = (self.dim() * self.dim() * std::mem::size_of::<f64>()) as f64;
        dense / self.plan.storage_bytes().max(1) as f64
    }

    /// Render the specialized evaluation code for this matrix (the
    /// `matmul.h` artifact of Figure 2).
    pub fn generated_code(&self) -> String {
        emit_source(&self.plan, "matmul")
    }

    /// Write the generated code to a file.
    pub fn write_generated_code(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.generated_code())
    }

    /// Compute the ULV-style factorization of this (HSS-compressed, SPD)
    /// matrix, enabling direct solves of `K~ x = b`.
    ///
    /// Fails with [`FactorError::UnsupportedStructure`] for non-HSS
    /// structures and [`FactorError::NotPositiveDefinite`] when a leaf
    /// diagonal block has a non-positive pivot.
    pub fn factorize(&self) -> Result<FactoredHMatrix, FactorError> {
        self.factorize_with(&self.default_exec_options())
    }

    /// [`factorize`](HMatrix::factorize) with explicit executor options
    /// (parallel sweeps + grain; results are bitwise identical either way).
    pub fn factorize_with(&self, opts: &ExecOptions) -> Result<FactoredHMatrix, FactorError> {
        let factor = factor(&self.plan, &self.tree, opts)?;
        Ok(FactoredHMatrix {
            hmatrix: self.clone(),
            factor,
        })
    }

    /// Solve `K~ x = b` for one right-hand-side vector.
    ///
    /// Convenience entry that factors on every call; factor once with
    /// [`factorize`](HMatrix::factorize) when solving repeatedly.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, FactorError> {
        Ok(self.factorize()?.solve(b))
    }

    /// Solve `K~ X = B` for a multi-column right-hand side (see
    /// [`solve`](HMatrix::solve) for the factorization caveat).
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, FactorError> {
        Ok(self.factorize()?.solve_matrix(b))
    }
}

/// An [`HMatrix`] together with its ULV-style factorization: the handle the
/// solver scenarios (regression, kernel ridge, preconditioning) hold on to.
///
/// Produced by [`HMatrix::factorize`]; solved with
/// [`solve`](FactoredHMatrix::solve) / [`solve_matrix`](FactoredHMatrix::solve_matrix);
/// stored and reloaded with [`crate::io::save_factored`] /
/// [`crate::io::load_factored`].
#[derive(Debug, Clone)]
pub struct FactoredHMatrix {
    /// The compressed matrix (tree + plan + CDS buffers the sweeps read).
    pub hmatrix: HMatrix,
    /// The factorization (leaf Cholesky factors + sibling merge systems).
    pub factor: HssFactor,
}

impl FactoredHMatrix {
    /// Problem size `N`.
    pub fn dim(&self) -> usize {
        self.hmatrix.dim()
    }

    /// Solve `K~ x = b` for one right-hand-side vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.factor.solve(
            &self.hmatrix.plan,
            &self.hmatrix.tree,
            b,
            &self.hmatrix.default_exec_options(),
        )
    }

    /// Solve `K~ X = B` for a multi-column right-hand side.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        self.solve_matrix_with(b, &self.hmatrix.default_exec_options())
    }

    /// [`solve_matrix`](FactoredHMatrix::solve_matrix) with explicit
    /// executor options (used by the ablation and determinism harnesses).
    pub fn solve_matrix_with(&self, b: &Matrix, opts: &ExecOptions) -> Matrix {
        self.factor
            .solve_matrix(&self.hmatrix.plan, &self.hmatrix.tree, b, opts)
    }

    /// Relative residual `||K x - b||_F / ||b||_F` of a solution against the
    /// *exact* kernel matrix (`O(N^2 Q)`, like
    /// [`HMatrix::overall_accuracy`]): the solver's end-to-end accuracy
    /// measure.
    pub fn relative_residual(&self, points: &PointSet, x: &Matrix, b: &Matrix) -> f64 {
        let mut r = dense_kernel_matmul(points, &self.hmatrix.kernel, x);
        r.sub_assign(b);
        let denom = frobenius_norm(b);
        if denom == 0.0 {
            frobenius_norm(&r)
        } else {
            frobenius_norm(&r) / denom
        }
    }
}
