//! Hardened wire primitives for length-prefixed protocol messages.
//!
//! The serving layer's network protocol (`matrox_serve::proto`) frames
//! requests and responses onto sockets, which makes every decoded byte
//! stream **untrusted input** — exactly the situation the PR-7 model
//! readers ([`crate::io`]) were hardened for.  This module extracts that
//! reader discipline into a reusable pair of cursor types so any protocol
//! built on top inherits the same contract:
//!
//! * every length field is validated against the bytes actually remaining
//!   *before* anything is allocated, so an adversarial 20-byte frame cannot
//!   request a multi-GiB `Vec`;
//! * every tag and flag must be canonical — a corrupted byte surfaces as
//!   [`MatroxError::Format`], never as a silently-normalized value;
//! * a successful decode consumes the stream exactly ([`WireReader::finish`]
//!   rejects trailing bytes), so accept-then-re-encode is bitwise lossless —
//!   the property the corruption-fuzz suites pin;
//! * nothing here panics on any input.
//!
//! Encoding is little-endian throughout, matching the `MATROX1`/`MATROXF1`
//! model formats.  Floating-point values round-trip by bit pattern (NaN
//! payloads included): the wire layer transports bits, the layers above
//! decide what bit patterns mean.

use crate::error::MatroxError;

/// Append-only encoder for wire messages.  Infallible: encoding only ever
/// grows a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// A writer pre-sized for roughly `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        WireWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True before the first write.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes verbatim (magic headers).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append one byte (tags, version numbers).
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` by little-endian bit pattern (lossless for every
    /// value including NaN payloads).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a UTF-8 string as `u64` length + bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append an `f64` slice as `u64` element count + bit patterns.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_f64(x);
        }
    }
}

/// Validating cursor over an untrusted byte slice.  Every accessor returns
/// [`MatroxError::Format`] instead of panicking or over-reading, and every
/// length-prefixed read is capped by the bytes remaining.
#[derive(Debug)]
pub struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader positioned at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        WireReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn short<T>(&self, what: &str) -> Result<T, MatroxError> {
        Err(MatroxError::Format(format!(
            "unexpected end of stream reading {what} ({} bytes remaining)",
            self.remaining()
        )))
    }

    /// Consume `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], MatroxError> {
        if self.remaining() < n {
            return self.short(what);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consume and verify a fixed magic header.
    pub fn expect_magic(&mut self, magic: &[u8], what: &str) -> Result<(), MatroxError> {
        let got = self.take_bytes(magic.len(), what)?;
        if got != magic {
            return Err(MatroxError::Format(format!(
                "bad {what} magic: expected {magic:02x?}, got {got:02x?}"
            )));
        }
        Ok(())
    }

    /// Consume one byte.
    pub fn take_u8(&mut self, what: &str) -> Result<u8, MatroxError> {
        Ok(self.take_bytes(1, what)?[0])
    }

    /// Consume a little-endian `u32`.
    pub fn take_u32(&mut self, what: &str) -> Result<u32, MatroxError> {
        let b = self.take_bytes(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Consume a little-endian `u64`.
    pub fn take_u64(&mut self, what: &str) -> Result<u64, MatroxError> {
        let b = self.take_bytes(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Consume an `f64` bit pattern.
    pub fn take_f64(&mut self, what: &str) -> Result<f64, MatroxError> {
        Ok(f64::from_bits(self.take_u64(what)?))
    }

    /// Consume a `u64` element count that precedes `elem_bytes`-sized
    /// elements, rejecting counts that could not possibly fit in the
    /// remaining stream.  This caps every downstream `Vec::with_capacity`
    /// at the stream length — the core hardening of the PR-7 readers.
    pub fn take_len(&mut self, elem_bytes: usize, what: &str) -> Result<usize, MatroxError> {
        let len = self.take_u64(what)?;
        let len = usize::try_from(len).map_err(|_| {
            MatroxError::Format(format!("{what} length {len} does not fit in usize"))
        })?;
        match len.checked_mul(elem_bytes.max(1)) {
            Some(total) if total <= self.remaining() => Ok(len),
            _ => Err(MatroxError::Format(format!(
                "{what} length {len} exceeds the {} bytes remaining",
                self.remaining()
            ))),
        }
    }

    /// Consume a `u64`-length-prefixed UTF-8 string.
    pub fn take_str(&mut self, what: &str) -> Result<String, MatroxError> {
        let len = self.take_len(1, what)?;
        let bytes = self.take_bytes(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| MatroxError::Format(format!("{what} is not valid UTF-8: {e}")))
    }

    /// Consume a `u64`-count-prefixed `f64` vector (bit patterns preserved).
    pub fn take_f64_vec(&mut self, what: &str) -> Result<Vec<f64>, MatroxError> {
        let len = self.take_len(8, what)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.take_f64(what)?);
        }
        Ok(v)
    }

    /// Assert the stream is fully consumed.  A valid message never has
    /// trailing bytes: accepting them would break the lossless
    /// accept-implies-identical-re-encode contract.
    pub fn finish(self, what: &str) -> Result<(), MatroxError> {
        if self.remaining() != 0 {
            return Err(MatroxError::Format(format!(
                "{} trailing bytes after {what}",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = WireWriter::new();
        w.put_bytes(b"MAGIC!!!");
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.0);
        w.put_str("tenant-a");
        w.put_f64_slice(&[1.5, f64::NAN, f64::INFINITY]);
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes);
        r.expect_magic(b"MAGIC!!!", "test").unwrap();
        assert_eq!(r.take_u8("tag").unwrap(), 7);
        assert_eq!(r.take_u32("len").unwrap(), 0xdead_beef);
        assert_eq!(r.take_u64("corr").unwrap(), u64::MAX - 3);
        assert_eq!(r.take_f64("x").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.take_str("tenant").unwrap(), "tenant-a");
        let v = r.take_f64_vec("rhs").unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], 1.5);
        assert!(v[1].is_nan(), "NaN bit pattern must survive");
        assert_eq!(v[2], f64::INFINITY);
        r.finish("test").unwrap();
    }

    #[test]
    fn adversarial_length_is_capped_before_allocation() {
        // A claimed element count of 2^60 over an 8-byte stream must be
        // rejected by take_len, never reach Vec::with_capacity.
        let mut w = WireWriter::new();
        w.put_u64(1u64 << 60);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(r.take_f64_vec("rhs").is_err());
        let mut r = WireReader::new(&bytes);
        assert!(r.take_str("name").is_err());
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes[..5]);
        assert!(r.take_u64("x").is_err(), "truncated u64");

        let mut r = WireReader::new(&bytes);
        assert_eq!(r.take_u32("x").unwrap(), 42);
        assert!(r.finish("msg").is_err(), "4 trailing bytes must fail");

        let mut r = WireReader::new(&bytes);
        assert!(r.expect_magic(b"MATROXS1", "frame").is_err(), "bad magic");
    }

    #[test]
    fn non_utf8_strings_are_format_errors() {
        let mut w = WireWriter::new();
        w.put_u64(2);
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.take_str("model"), Err(MatroxError::Format(_))));
    }
}
