//! User-facing configuration.
//!
//! Mirrors the inputs of Figure 2: the admissibility/structure selection, the
//! kernel (passed separately so inspector-p1 stays kernel-independent), the
//! block-approximation accuracy `bacc`, plus the internal knobs the paper
//! lists in Section 4.1 (leaf size, sampling size, maximum rank, blocksizes,
//! `agg`, `p`, the lowering thresholds).

use matrox_analysis::CoarsenParams;
use matrox_codegen::CodegenParams;
use matrox_linalg::KernelChoice;
use matrox_sampling::SamplingParams;
use matrox_tree::{PartitionMethod, Structure};

/// All parameters of the MatRox inspector.
#[derive(Debug, Clone, Copy)]
pub struct MatRoxParams {
    /// HMatrix structure / admissibility selection (HSS, H²-b budget, or
    /// geometric τ).
    pub structure: Structure,
    /// Cluster-tree partitioning method (the paper's rule is kd-tree for
    /// `d <= 3`, two-means otherwise; `Auto` applies that rule).
    pub partition: PartitionMethod,
    /// Leaf size `m` of the cluster tree.
    pub leaf_size: usize,
    /// Sampling-module parameters (k-NN size, sampling size, ...).
    pub sampling: SamplingParams,
    /// Block approximation accuracy `bacc`.
    pub bacc: f64,
    /// Maximum submatrix rank (paper default 256).
    pub max_rank: usize,
    /// Blocksize for near-interaction blocking (paper default 2).
    pub near_blocksize: usize,
    /// Blocksize for far-interaction blocking (paper default 4).
    pub far_blocksize: usize,
    /// Coarsening parameters (`p`, `agg`).
    pub coarsen: CoarsenParams,
    /// Code-generation thresholds.
    pub codegen: CodegenParams,
    /// Seed controlling tree construction and sampling randomness.
    pub seed: u64,
    /// RHS panel width for the panel-blocked executor; `0` = auto (sized
    /// from the CDS block extents so a block plus its panels fit in L2,
    /// overridable process-wide via the `MATROX_PANEL` env var).  Results
    /// are bitwise independent of this knob.
    pub panel_width: usize,
    /// GEMM kernel selection for the evaluation session built from these
    /// parameters ([`KernelChoice::Auto`] defers to the `MATROX_KERNEL`
    /// env var, then CPU feature detection).  Reaches every executor path
    /// (`matmul`, sessions); the factorization sweeps follow the
    /// process-wide `MATROX_KERNEL` selection instead.  A runtime/perf
    /// knob like `panel_width`: it is not serialized with the HMatrix, and
    /// for a fixed selection results are bitwise reproducible across
    /// thread counts and panel widths.
    pub kernel: KernelChoice,
    /// Minimum work items per parallel task across the inspector's parallel
    /// phases (tree partitioning, kNN, sampling, compression, CDS packing);
    /// `0` = auto (the `MATROX_GRAIN` env knob, then 1).  Like
    /// `panel_width`, grain only changes task chunking: the inspector output
    /// is bitwise independent of it and of the pool width.
    pub grain: usize,
}

impl Default for MatRoxParams {
    fn default() -> Self {
        MatRoxParams {
            structure: Structure::h2b(),
            partition: PartitionMethod::Auto,
            leaf_size: 64,
            sampling: SamplingParams::default(),
            bacc: 1e-5,
            max_rank: 256,
            near_blocksize: 2,
            far_blocksize: 4,
            // `p` is a *plan* parameter: it shapes the coarsened level sets
            // that end up in the CDS, so it must never be derived from the
            // pool width at hand or the same inputs would produce different
            // plan bytes on different machines (or across the determinism
            // suite's width sweep).  Fixed at the paper's reference socket
            // width; tune per machine with `with_partitions`.
            coarsen: CoarsenParams { p: 8, agg: 2 },
            codegen: CodegenParams::default(),
            seed: 0,
            panel_width: 0,
            kernel: KernelChoice::Auto,
            grain: 0,
        }
    }
}

impl MatRoxParams {
    /// The paper's HSS configuration (STRUMPACK comparison).
    pub fn hss() -> Self {
        MatRoxParams {
            structure: Structure::Hss,
            ..Default::default()
        }
    }

    /// The paper's H²-b configuration (GOFMM budget 0.03).
    pub fn h2b() -> Self {
        MatRoxParams {
            structure: Structure::h2b(),
            ..Default::default()
        }
    }

    /// The SMASH comparison configuration (geometric admissibility τ = 0.65).
    pub fn smash_setting() -> Self {
        MatRoxParams {
            structure: Structure::Geometric { tau: 0.65 },
            ..Default::default()
        }
    }

    /// Builder-style override of the block accuracy.
    pub fn with_bacc(mut self, bacc: f64) -> Self {
        self.bacc = bacc;
        self
    }

    /// Builder-style override of the leaf size.
    pub fn with_leaf_size(mut self, m: usize) -> Self {
        self.leaf_size = m;
        self
    }

    /// Builder-style override of the number of coarsening partitions `p`.
    pub fn with_partitions(mut self, p: usize) -> Self {
        self.coarsen.p = p.max(1);
        self
    }

    /// Builder-style override of the executor's RHS panel width
    /// (see [`MatRoxParams::panel_width`]).
    pub fn with_panel_width(mut self, panel_width: usize) -> Self {
        self.panel_width = panel_width;
        self
    }

    /// Builder-style override of the GEMM kernel selection
    /// (see [`MatRoxParams::kernel`]).
    pub fn with_kernel(mut self, kernel: KernelChoice) -> Self {
        self.kernel = kernel;
        self
    }

    /// Builder-style override of the inspector's parallel grain
    /// (see [`MatRoxParams::grain`]).
    pub fn with_grain(mut self, grain: usize) -> Self {
        self.grain = grain;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let p = MatRoxParams::default();
        assert_eq!(p.bacc, 1e-5);
        assert_eq!(p.max_rank, 256);
        assert_eq!(p.near_blocksize, 2);
        assert_eq!(p.far_blocksize, 4);
        assert_eq!(p.coarsen.agg, 2);
        assert_eq!(p.sampling.sampling_size, 32);
        assert_eq!(p.panel_width, 0, "panel width defaults to auto");
        assert_eq!(p.kernel, KernelChoice::Auto, "kernel defaults to auto");
        assert_eq!(p.grain, 0, "grain defaults to auto");
        assert_eq!(
            p.coarsen.p, 8,
            "coarsening p is a fixed plan parameter, never the pool width"
        );
    }

    #[test]
    fn builders_override_fields() {
        let p = MatRoxParams::hss()
            .with_bacc(1e-3)
            .with_leaf_size(128)
            .with_partitions(7);
        assert_eq!(p.structure, Structure::Hss);
        assert_eq!(p.bacc, 1e-3);
        assert_eq!(p.leaf_size, 128);
        assert_eq!(p.coarsen.p, 7);
    }
}
