//! The unified error taxonomy of the public MatRox API.
//!
//! Every fallible public entry point in this crate — the inspector,
//! [`HMatrix`](crate::HMatrix) evaluation and factorization,
//! [`EvalSession`](crate::EvalSession) queries, and the model (de)serializers
//! — returns [`MatroxError`].  The taxonomy encodes the fault-tolerance
//! contract "a request can fail; the process cannot":
//!
//! * **request failures** come back as `Err` (bad input, corrupt file,
//!   numerical breakdown, stale handle);
//! * **internal invariant violations** still panic, but the
//!   [`EvalSession`](crate::EvalSession) boundary contains them with
//!   `catch_unwind` and surfaces [`MatroxError::PoolPanic`] so a poisoned
//!   evaluation cannot take down a serving process;
//! * nothing in this crate aborts.
//!
//! The granular lower-level errors ([`IoError`], [`FactorError`],
//! [`NotPositiveDefinite`]) are absorbed
//! via `From` impls so `?` composes across the crate boundaries.

use crate::io::IoError;
use matrox_factor::FactorError;
use matrox_linalg::NotPositiveDefinite;

/// Render a `catch_unwind` payload as the human-readable panic message.
/// Shared by every containment boundary in the crate (the session's
/// evaluation wrapper and the inspector's parallel phases).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Unified error type returned by every public MatRox entry point.
#[derive(Debug)]
pub enum MatroxError {
    /// Underlying I/O failure while reading or writing a model file.
    Io(std::io::Error),
    /// A model stream is malformed: truncated, corrupt, or internally
    /// inconsistent.  The hardened readers return this for adversarial
    /// input instead of panicking or over-allocating.
    Format(String),
    /// A numerical computation broke down (non-SPD leaf block after ridge
    /// escalation, singular merge system, non-finite values produced during
    /// evaluation).
    NumericalBreakdown(String),
    /// The caller's input is invalid for the request: NaN/Inf poison in a
    /// right-hand side or point set, empty point sets, non-positive
    /// accuracies, shape mismatches against the session.
    InvalidInput(String),
    /// A plan, tree, factor, or right-hand side does not belong to the
    /// object it was handed to (stale or mismatched handle).
    PlanMismatch(String),
    /// A worker job panicked inside the evaluation pool; the panic was
    /// contained at the session boundary and the payload preserved here.
    PoolPanic(String),
    /// A serving front-end shed the request under load (admission caps hit,
    /// dispatch queue full, or latency budget expired while queued).  The
    /// request was never evaluated; retrying after backoff is safe.
    Overloaded(String),
}

impl std::fmt::Display for MatroxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatroxError::Io(e) => write!(f, "io error: {e}"),
            MatroxError::Format(m) => write!(f, "format error: {m}"),
            MatroxError::NumericalBreakdown(m) => write!(f, "numerical breakdown: {m}"),
            MatroxError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            MatroxError::PlanMismatch(m) => write!(f, "plan mismatch: {m}"),
            MatroxError::PoolPanic(m) => write!(f, "evaluation pool job panicked: {m}"),
            MatroxError::Overloaded(m) => write!(f, "overloaded: {m}"),
        }
    }
}

impl std::error::Error for MatroxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MatroxError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MatroxError {
    fn from(e: std::io::Error) -> Self {
        MatroxError::Io(e)
    }
}

impl From<IoError> for MatroxError {
    fn from(e: IoError) -> Self {
        match e {
            IoError::Io(e) => MatroxError::Io(e),
            IoError::Format(m) => MatroxError::Format(m),
        }
    }
}

impl From<NotPositiveDefinite> for MatroxError {
    fn from(e: NotPositiveDefinite) -> Self {
        MatroxError::NumericalBreakdown(e.to_string())
    }
}

impl From<FactorError> for MatroxError {
    fn from(e: FactorError) -> Self {
        match e {
            // Structure and handle mismatches are the caller pairing the
            // wrong plan/tree/factor, not arithmetic failing.
            FactorError::UnsupportedStructure(_) | FactorError::PlanMismatch(_) => {
                MatroxError::PlanMismatch(e.to_string())
            }
            FactorError::NotPositiveDefinite { .. } | FactorError::SingularMerge { .. } => {
                MatroxError::NumericalBreakdown(e.to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_errors_map_onto_the_taxonomy() {
        let e: MatroxError = FactorError::UnsupportedStructure("geometric".into()).into();
        assert!(matches!(e, MatroxError::PlanMismatch(_)));
        let e: MatroxError = FactorError::PlanMismatch("wrong tree".into()).into();
        assert!(matches!(e, MatroxError::PlanMismatch(_)));
        let e: MatroxError = FactorError::NotPositiveDefinite {
            node: 3,
            pivot: 1,
            value: -0.5,
        }
        .into();
        assert!(matches!(e, MatroxError::NumericalBreakdown(_)));
        let e: MatroxError = FactorError::SingularMerge { node: 7 }.into();
        assert!(matches!(e, MatroxError::NumericalBreakdown(_)));
    }

    #[test]
    fn io_errors_map_onto_the_taxonomy() {
        let e: MatroxError = IoError::Format("truncated".into()).into();
        assert!(matches!(e, MatroxError::Format(_)));
        let e: MatroxError = IoError::Io(std::io::Error::other("disk gone")).into();
        assert!(matches!(e, MatroxError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn breakdown_absorbs_cholesky_failures() {
        let e: MatroxError = NotPositiveDefinite {
            pivot: 4,
            value: f64::NAN,
        }
        .into();
        let msg = e.to_string();
        assert!(msg.contains("numerical breakdown"), "message: {msg}");
    }
}
