//! Inspector timing breakdown.
//!
//! Figure 4 and Figure 10 report the inspector time split into compression,
//! structure analysis, and code generation — and, for the reuse experiments,
//! into inspector-p1 vs inspector-p2.  The inspector records wall-clock time
//! per module in this struct so the benchmark harnesses can print the same
//! breakdown.

use std::time::Duration;

/// Wall-clock breakdown of the ULV-style factorization (leaf Cholesky vs
/// sibling merges), re-exported here so `matrox_core::timings` is the one
/// stop for every phase breakdown the harnesses report (inspector, factor).
pub use matrox_factor::FactorTimings;

/// Wall-clock time of every inspector module.
#[derive(Debug, Clone, Copy, Default)]
pub struct InspectorTimings {
    /// Tree construction (compression module 1).
    pub tree_construction: Duration,
    /// Interaction computation (compression module 2).
    pub interaction: Duration,
    /// Sampling (compression module 3).
    pub sampling: Duration,
    /// Low-rank approximation (compression module 4).
    pub low_rank: Duration,
    /// Blocking (structure analysis).
    pub blocking: Duration,
    /// Coarsening (structure analysis).
    pub coarsening: Duration,
    /// CDS data-layout construction (structure analysis).
    pub cds: Duration,
    /// Code generation (lowering decisions + source emission).
    pub codegen: Duration,
}

impl InspectorTimings {
    /// Total compression time (the four compression modules).
    pub fn compression(&self) -> Duration {
        self.tree_construction + self.interaction + self.sampling + self.low_rank
    }

    /// Total structure-analysis time.
    pub fn structure_analysis(&self) -> Duration {
        self.blocking + self.coarsening + self.cds
    }

    /// Total inspector time.
    pub fn total(&self) -> Duration {
        self.compression() + self.structure_analysis() + self.codegen
    }

    /// Time attributable to inspector-p1 (kernel/accuracy independent:
    /// tree construction, interaction computation, sampling, blocking,
    /// codegen skeleton).
    pub fn inspector_p1(&self) -> Duration {
        self.tree_construction + self.interaction + self.sampling + self.blocking + self.codegen
    }

    /// Time attributable to inspector-p2 (low-rank approximation,
    /// coarsening, CDS construction).
    pub fn inspector_p2(&self) -> Duration {
        self.low_rank + self.coarsening + self.cds
    }

    /// Fraction of the inspector spent outside compression (the paper reports
    /// structure analysis + code generation at ~8.1% on average).
    pub fn analysis_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            (self.structure_analysis() + self.codegen).as_secs_f64() / total
        }
    }

    /// The coarse four-phase view of the same timings ([`InspectTimings`]):
    /// how long the inspector spent partitioning, sampling, compressing, and
    /// assembling the plan.  The phases partition [`total`](Self::total).
    pub fn phases(&self) -> InspectTimings {
        InspectTimings {
            partition_seconds: (self.tree_construction + self.interaction).as_secs_f64(),
            sample_seconds: self.sampling.as_secs_f64(),
            compress_seconds: self.low_rank.as_secs_f64(),
            assemble_seconds: (self.blocking + self.coarsening + self.cds + self.codegen)
                .as_secs_f64(),
        }
    }
}

/// Coarse phase breakdown of one inspection, derived from
/// [`InspectorTimings::phases`] and surfaced through
/// [`SessionStats::inspect_phases`] so harnesses (fig4's BENCH output, the
/// perf-smoke gate) can report where parallel-inspector time goes without
/// walking the eight fine-grained modules.
///
/// The four phases map onto the parallel pipeline: *partition* is the
/// level-parallel cluster-tree build plus interaction lists, *sample* the
/// per-node neighbor/skeleton sampling, *compress* the level-parallel
/// low-rank approximation, and *assemble* the sequential-spine structure
/// analysis (blocking, coarsening, CDS packing, codegen).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InspectTimings {
    /// Cluster-tree partitioning + interaction computation.
    pub partition_seconds: f64,
    /// Per-node neighbor/skeleton sampling.
    pub sample_seconds: f64,
    /// Level-parallel low-rank compression.
    pub compress_seconds: f64,
    /// Blocking, coarsening, CDS assembly, and code generation.
    pub assemble_seconds: f64,
}

impl InspectTimings {
    /// Sum of the four phases — equals the inspector's total wall-clock.
    pub fn total_seconds(&self) -> f64 {
        self.partition_seconds + self.sample_seconds + self.compress_seconds + self.assemble_seconds
    }
}

/// Running cost accounting of an evaluation session ([`crate::EvalSession`]):
/// the one-time inspector cost plus the accumulated executor cost, and the
/// amortized per-query view of both — the economics Figure 4 is about
/// (inspection pays for itself once enough queries ride on the plan).
///
/// A *query* is one right-hand-side column; a batched `evaluate(W)` with
/// `Q` columns counts as one evaluation and `Q` queries.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SessionStats {
    /// One-time inspector wall-clock (tree + compression + CDS + plan).
    pub inspect_seconds: f64,
    /// Accumulated executor wall-clock over every `evaluate` call.
    pub eval_seconds: f64,
    /// Number of `evaluate` calls served.
    pub evaluations: u64,
    /// Total right-hand-side columns served.
    pub queries: u64,
    /// `evaluate` calls rejected up front (`InvalidInput`: wrong shape or
    /// NaN/Inf in the right-hand side).  Rejected calls do not count as
    /// evaluations and leave the session fully usable.
    pub invalid_inputs: u64,
    /// Panics that escaped an evaluation job and were contained at the
    /// session's `catch_unwind` boundary (`PoolPanic`).
    pub contained_panics: u64,
    /// Ridge-escalation retries the most recent factorization needed before
    /// the leaf Cholesky succeeded (0 = first attempt was clean).
    pub ridge_attempts: u32,
    /// Phase breakdown of the one-time inspection
    /// (`inspect_phases.total_seconds() ≈ inspect_seconds`).
    pub inspect_phases: InspectTimings,
}

impl SessionStats {
    /// Total session cost so far (inspection + evaluations).
    pub fn total_seconds(&self) -> f64 {
        self.inspect_seconds + self.eval_seconds
    }

    /// Amortized cost per query: `(inspect + eval) / queries`.  This is the
    /// quantity that must drop below the baselines' per-query cost as `Q`
    /// grows; `f64::INFINITY` before the first query.
    pub fn amortized_per_query(&self) -> f64 {
        if self.queries == 0 {
            f64::INFINITY
        } else {
            self.total_seconds() / self.queries as f64
        }
    }

    /// Marginal executor cost per query (inspection excluded).
    pub fn eval_per_query(&self) -> f64 {
        if self.queries == 0 {
            f64::INFINITY
        } else {
            self.eval_seconds / self.queries as f64
        }
    }

    /// Mean right-hand-side columns per `evaluate` call — the coalescing
    /// width a serving layer achieved on this session.  `0.0` before the
    /// first evaluation.
    pub fn mean_batch_width(&self) -> f64 {
        if self.evaluations == 0 {
            0.0
        } else {
            self.queries as f64 / self.evaluations as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InspectorTimings {
        InspectorTimings {
            tree_construction: Duration::from_millis(10),
            interaction: Duration::from_millis(5),
            sampling: Duration::from_millis(20),
            low_rank: Duration::from_millis(100),
            blocking: Duration::from_millis(1),
            coarsening: Duration::from_millis(2),
            cds: Duration::from_millis(3),
            codegen: Duration::from_millis(4),
        }
    }

    #[test]
    fn aggregates_add_up() {
        let t = sample();
        assert_eq!(t.compression(), Duration::from_millis(135));
        assert_eq!(t.structure_analysis(), Duration::from_millis(6));
        assert_eq!(t.total(), Duration::from_millis(145));
        assert_eq!(t.inspector_p1() + t.inspector_p2(), t.total());
    }

    #[test]
    fn phase_view_partitions_the_total() {
        let t = sample();
        let p = t.phases();
        assert!((p.partition_seconds - 0.015).abs() < 1e-12);
        assert!((p.sample_seconds - 0.020).abs() < 1e-12);
        assert!((p.compress_seconds - 0.100).abs() < 1e-12);
        assert!((p.assemble_seconds - 0.010).abs() < 1e-12);
        assert!((p.total_seconds() - t.total().as_secs_f64()).abs() < 1e-12);
    }

    #[test]
    fn analysis_fraction_is_small_for_compression_heavy_runs() {
        let t = sample();
        let f = t.analysis_fraction();
        assert!(f > 0.0 && f < 0.2, "fraction {f}");
    }

    #[test]
    fn session_stats_amortize_the_inspector() {
        let mut s = SessionStats {
            inspect_seconds: 10.0,
            ..Default::default()
        };
        assert!(s.amortized_per_query().is_infinite());
        s.eval_seconds = 2.0;
        s.evaluations = 2;
        s.queries = 100;
        assert!((s.total_seconds() - 12.0).abs() < 1e-12);
        assert!((s.amortized_per_query() - 0.12).abs() < 1e-12);
        assert!((s.eval_per_query() - 0.02).abs() < 1e-12);
        assert!((s.mean_batch_width() - 50.0).abs() < 1e-12);
        assert_eq!(SessionStats::default().mean_batch_width(), 0.0);
        // More queries on the same plan only ever lower the amortized cost
        // (eval time grows at the marginal rate, inspection is sunk).
        let before = s.amortized_per_query();
        s.eval_seconds += 0.02 * 100.0;
        s.queries += 100;
        assert!(s.amortized_per_query() < before);
    }
}
