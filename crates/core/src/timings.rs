//! Inspector timing breakdown.
//!
//! Figure 4 and Figure 10 report the inspector time split into compression,
//! structure analysis, and code generation — and, for the reuse experiments,
//! into inspector-p1 vs inspector-p2.  The inspector records wall-clock time
//! per module in this struct so the benchmark harnesses can print the same
//! breakdown.

use std::time::Duration;

/// Wall-clock breakdown of the ULV-style factorization (leaf Cholesky vs
/// sibling merges), re-exported here so `matrox_core::timings` is the one
/// stop for every phase breakdown the harnesses report (inspector, factor).
pub use matrox_factor::FactorTimings;

/// Wall-clock time of every inspector module.
#[derive(Debug, Clone, Copy, Default)]
pub struct InspectorTimings {
    /// Tree construction (compression module 1).
    pub tree_construction: Duration,
    /// Interaction computation (compression module 2).
    pub interaction: Duration,
    /// Sampling (compression module 3).
    pub sampling: Duration,
    /// Low-rank approximation (compression module 4).
    pub low_rank: Duration,
    /// Blocking (structure analysis).
    pub blocking: Duration,
    /// Coarsening (structure analysis).
    pub coarsening: Duration,
    /// CDS data-layout construction (structure analysis).
    pub cds: Duration,
    /// Code generation (lowering decisions + source emission).
    pub codegen: Duration,
}

impl InspectorTimings {
    /// Total compression time (the four compression modules).
    pub fn compression(&self) -> Duration {
        self.tree_construction + self.interaction + self.sampling + self.low_rank
    }

    /// Total structure-analysis time.
    pub fn structure_analysis(&self) -> Duration {
        self.blocking + self.coarsening + self.cds
    }

    /// Total inspector time.
    pub fn total(&self) -> Duration {
        self.compression() + self.structure_analysis() + self.codegen
    }

    /// Time attributable to inspector-p1 (kernel/accuracy independent:
    /// tree construction, interaction computation, sampling, blocking,
    /// codegen skeleton).
    pub fn inspector_p1(&self) -> Duration {
        self.tree_construction + self.interaction + self.sampling + self.blocking + self.codegen
    }

    /// Time attributable to inspector-p2 (low-rank approximation,
    /// coarsening, CDS construction).
    pub fn inspector_p2(&self) -> Duration {
        self.low_rank + self.coarsening + self.cds
    }

    /// Fraction of the inspector spent outside compression (the paper reports
    /// structure analysis + code generation at ~8.1% on average).
    pub fn analysis_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            (self.structure_analysis() + self.codegen).as_secs_f64() / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InspectorTimings {
        InspectorTimings {
            tree_construction: Duration::from_millis(10),
            interaction: Duration::from_millis(5),
            sampling: Duration::from_millis(20),
            low_rank: Duration::from_millis(100),
            blocking: Duration::from_millis(1),
            coarsening: Duration::from_millis(2),
            cds: Duration::from_millis(3),
            codegen: Duration::from_millis(4),
        }
    }

    #[test]
    fn aggregates_add_up() {
        let t = sample();
        assert_eq!(t.compression(), Duration::from_millis(135));
        assert_eq!(t.structure_analysis(), Duration::from_millis(6));
        assert_eq!(t.total(), Duration::from_millis(145));
        assert_eq!(t.inspector_p1() + t.inspector_p2(), t.total());
    }

    #[test]
    fn analysis_fraction_is_small_for_compression_heavy_runs() {
        let t = sample();
        let f = t.analysis_fraction();
        assert!(f > 0.0 && f < 0.2, "fraction {f}");
    }
}
