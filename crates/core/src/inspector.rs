//! The MatRox inspector, full and split into the reusable phases p1/p2.
//!
//! The inspector (Figure 3) runs modular compression, structure analysis and
//! code generation.  [`inspector`] runs everything; [`inspector_p1`] /
//! [`inspector_p2`] implement the reuse scheme of Section 5: p1 depends only
//! on the points and the admissibility/structure selection (tree
//! construction, interaction computation, sampling, blocking and the code
//! skeleton), while p2 depends on the kernel function and the block accuracy
//! (low-rank approximation, coarsening, CDS construction).  When only the
//! kernel or `bacc` change, re-running p2 alone reuses all of p1's work —
//! this is what Figure 10 measures.

use crate::config::MatRoxParams;
use crate::hmatrix::HMatrix;
use crate::timings::InspectorTimings;
use matrox_analysis::{build_blockset, build_cds, build_coarsenset, BlockSet};
use matrox_codegen::generate_plan;
use matrox_compress::{compress, CompressionParams};
use matrox_points::{Kernel, PointSet};
use matrox_sampling::{sample_nodes, SamplingInfo};
use matrox_tree::{ClusterTree, HTree};
use std::time::Instant;

/// Output of inspector-p1: everything that does not depend on the kernel
/// parameters or the requested accuracy.
#[derive(Debug, Clone)]
pub struct InspectorP1 {
    /// The cluster tree (tree-construction module).
    pub tree: ClusterTree,
    /// The HTree (interaction-computation module).
    pub htree: HTree,
    /// Per-node sampling information (sampling module).
    pub sampling: SamplingInfo,
    /// Near-interaction blockset (blocking, structure analysis).
    pub near_blockset: BlockSet,
    /// Far-interaction blockset (blocking, structure analysis).
    pub far_blockset: BlockSet,
    /// Parameters p1 was run with (p2 reuses them).
    pub params: MatRoxParams,
    /// Wall-clock breakdown of the p1 modules.
    pub timings: InspectorTimings,
}

/// Run inspector-p1: tree construction, interaction computation, sampling and
/// blocking.  The kernel passed here is only used to rank sampling
/// candidates; changing it later does **not** require re-running p1
/// (GOFMM-style neighbour sampling is geometry-driven).
pub fn inspector_p1(points: &PointSet, kernel: &Kernel, params: &MatRoxParams) -> InspectorP1 {
    let mut timings = InspectorTimings::default();

    let t0 = Instant::now();
    let tree = ClusterTree::build(points, params.partition, params.leaf_size, params.seed);
    timings.tree_construction = t0.elapsed();

    let t0 = Instant::now();
    let htree = HTree::build(&tree, params.structure);
    timings.interaction = t0.elapsed();

    let t0 = Instant::now();
    let sampling = sample_nodes(points, &tree, kernel, &params.sampling);
    timings.sampling = t0.elapsed();

    let t0 = Instant::now();
    let near_blockset =
        build_blockset(&htree.near_pairs(), tree.num_nodes(), params.near_blocksize);
    let far_blockset = build_blockset(&htree.far_pairs(), tree.num_nodes(), params.far_blocksize);
    timings.blocking = t0.elapsed();

    InspectorP1 {
        tree,
        htree,
        sampling,
        near_blockset,
        far_blockset,
        params: *params,
        timings,
    }
}

/// Run inspector-p2 on top of a p1 result: low-rank approximation with the
/// given kernel and accuracy, coarsening, CDS construction and code
/// generation.  Returns the ready-to-evaluate [`HMatrix`].
pub fn inspector_p2(points: &PointSet, p1: &InspectorP1, kernel: &Kernel, bacc: f64) -> HMatrix {
    let mut timings = p1.timings;
    let params = &p1.params;

    let t0 = Instant::now();
    let compression = compress(
        points,
        &p1.tree,
        &p1.htree,
        kernel,
        &p1.sampling,
        &CompressionParams {
            bacc,
            max_rank: params.max_rank,
        },
    );
    timings.low_rank = t0.elapsed();

    let t0 = Instant::now();
    let coarsenset = build_coarsenset(&p1.tree, &compression.sranks, &params.coarsen);
    timings.coarsening = t0.elapsed();

    let t0 = Instant::now();
    let cds = build_cds(
        &p1.tree,
        &compression,
        &p1.near_blockset,
        &p1.far_blockset,
        &coarsenset,
    );
    timings.cds = t0.elapsed();

    let t0 = Instant::now();
    let plan = generate_plan(
        p1.near_blockset.clone(),
        p1.far_blockset.clone(),
        coarsenset,
        cds,
        p1.tree.height,
        p1.tree.leaves().len(),
        &params.codegen,
    );
    timings.codegen = t0.elapsed();

    HMatrix {
        tree: p1.tree.clone(),
        plan,
        structure: params.structure,
        kernel: *kernel,
        bacc,
        timings,
        panel_width: params.panel_width,
        gemm_kernel: params.kernel,
    }
}

/// Run the full inspector (Figure 2): compression, structure analysis and
/// code generation in one call.
pub fn inspector(points: &PointSet, kernel: &Kernel, params: &MatRoxParams) -> HMatrix {
    let p1 = inspector_p1(points, kernel, params);
    inspector_p2(points, &p1, kernel, params.bacc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrox_linalg::Matrix;
    use matrox_points::{generate, DatasetId};
    use rand::SeedableRng;

    fn small_points() -> PointSet {
        generate(DatasetId::Grid, 512, 5)
    }

    #[test]
    fn full_inspector_produces_accurate_hmatrix() {
        let pts = small_points();
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let params = MatRoxParams::smash_setting()
            .with_bacc(1e-6)
            .with_leaf_size(32);
        let h = inspector(&pts, &kernel, &params);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let w = Matrix::random_uniform(pts.len(), 4, &mut rng);
        let acc = h.overall_accuracy(&pts, &w);
        assert!(acc < 1e-2, "overall accuracy {acc}");
        // At this very small N the compressed form is not yet smaller than
        // the dense matrix (constant overheads dominate); just check the
        // ratio is sane.  The integration tests check >1 at larger N.
        assert!(h.compression_ratio() > 0.2);
        assert!(h.timings.total().as_nanos() > 0);
    }

    #[test]
    fn p1_plus_p2_equals_full_inspector() {
        let pts = small_points();
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let params = MatRoxParams::hss().with_bacc(1e-5).with_leaf_size(32);
        let full = inspector(&pts, &kernel, &params);
        let p1 = inspector_p1(&pts, &kernel, &params);
        let reused = inspector_p2(&pts, &p1, &kernel, params.bacc);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let w = Matrix::random_uniform(pts.len(), 3, &mut rng);
        let a = full.matmul(&w);
        let b = reused.matmul(&w);
        assert!(matrox_linalg::relative_error(&a, &b) < 1e-12);
    }

    #[test]
    fn p2_reuse_supports_changing_accuracy_and_kernel() {
        let pts = small_points();
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let params = MatRoxParams::smash_setting().with_leaf_size(32);
        let p1 = inspector_p1(&pts, &kernel, &params);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let w = Matrix::random_uniform(pts.len(), 2, &mut rng);

        let mut prev_err = f64::INFINITY;
        for bacc in [1e-2, 1e-4, 1e-6] {
            let h = inspector_p2(&pts, &p1, &kernel, bacc);
            let err = h.overall_accuracy(&pts, &w);
            assert!(
                err <= prev_err * 10.0,
                "accuracy did not improve: {err} after {prev_err}"
            );
            prev_err = err;
        }

        // Changing the kernel also only needs p2.
        let laplace = Kernel::Laplace { bandwidth: 1.0 };
        let h = inspector_p2(&pts, &p1, &laplace, 1e-5);
        let err = h.overall_accuracy(&pts, &w);
        assert!(err < 0.3, "kernel change produced error {err}");
    }

    #[test]
    fn generated_code_is_rendered() {
        let pts = small_points();
        let kernel = Kernel::paper_gaussian();
        let h = inspector(&pts, &kernel, &MatRoxParams::h2b().with_leaf_size(32));
        let code = h.generated_code();
        assert!(code.contains("pub fn matmul"));
    }

    #[test]
    fn timings_partition_into_p1_and_p2() {
        let pts = small_points();
        let kernel = Kernel::paper_gaussian();
        let h = inspector(&pts, &kernel, &MatRoxParams::h2b().with_leaf_size(32));
        let t = &h.timings;
        assert_eq!(t.inspector_p1() + t.inspector_p2(), t.total());
        assert!(t.low_rank.as_nanos() > 0);
    }
}
