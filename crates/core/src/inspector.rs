//! The MatRox inspector, full and split into the reusable phases p1/p2.
//!
//! The inspector (Figure 3) runs modular compression, structure analysis and
//! code generation.  [`inspector`] runs everything; [`inspector_p1`] /
//! [`inspector_p2`] implement the reuse scheme of Section 5: p1 depends only
//! on the points and the admissibility/structure selection (tree
//! construction, interaction computation, sampling, blocking and the code
//! skeleton), while p2 depends on the kernel function and the block accuracy
//! (low-rank approximation, coarsening, CDS construction).  When only the
//! kernel or `bacc` change, re-running p2 alone reuses all of p1's work —
//! this is what Figure 10 measures.
//!
//! Every phase with per-node or per-block parallelism (tree partitioning,
//! kNN, sampling, compression, CDS packing) runs on the work-stealing pool
//! with fixed combination order, so the inspector output — CDS bytes, ranks,
//! permutations, the serialized image — is bitwise identical at every pool
//! width and grain (see DESIGN.md, "Parallel inspector").  Both phases run
//! inside a `catch_unwind` boundary: a panic on a pool worker surfaces as
//! [`MatroxError::PoolPanic`] instead of unwinding into the caller, and the
//! next clean inspection is unaffected.

use crate::config::MatRoxParams;
use crate::error::{panic_message, MatroxError};
use crate::hmatrix::HMatrix;
use crate::timings::InspectorTimings;
use matrox_analysis::{build_blockset, build_cds_with_grain, build_coarsenset, BlockSet};
use matrox_codegen::generate_plan;
use matrox_compress::{compress, CompressionParams};
use matrox_points::{Kernel, PointSet};
use matrox_sampling::{sample_nodes, SamplingInfo, SamplingParams};
use matrox_tree::{ClusterTree, HTree};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Run one inspector phase inside a `catch_unwind` containment boundary.
/// AssertUnwindSafe is sound because the closures only read their inputs
/// and any partially-built output is dropped with the unwind.
fn contain<T>(f: impl FnOnce() -> Result<T, MatroxError>) -> Result<T, MatroxError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => Err(MatroxError::PoolPanic(panic_message(payload))),
    }
}

/// Resolve the effective sampling parameters: a sub-parameter grain of 0
/// inherits the top-level [`MatRoxParams::grain`].
fn effective_sampling(params: &MatRoxParams) -> SamplingParams {
    let mut sp = params.sampling;
    if sp.grain == 0 {
        sp.grain = params.grain;
    }
    if sp.knn.grain == 0 {
        sp.knn.grain = params.grain;
    }
    sp
}

/// Output of inspector-p1: everything that does not depend on the kernel
/// parameters or the requested accuracy.
#[derive(Debug, Clone)]
pub struct InspectorP1 {
    /// The cluster tree (tree-construction module).
    pub tree: ClusterTree,
    /// The HTree (interaction-computation module).
    pub htree: HTree,
    /// Per-node sampling information (sampling module).
    pub sampling: SamplingInfo,
    /// Near-interaction blockset (blocking, structure analysis).
    pub near_blockset: BlockSet,
    /// Far-interaction blockset (blocking, structure analysis).
    pub far_blockset: BlockSet,
    /// Parameters p1 was run with (p2 reuses them).
    pub params: MatRoxParams,
    /// Wall-clock breakdown of the p1 modules.
    pub timings: InspectorTimings,
}

/// Screen the inputs shared by every inspector entry point: a non-empty,
/// finite point set, finite positive kernel parameters, a usable leaf size.
/// Rejecting poison here keeps NaN coordinates from silently contaminating
/// the whole compressed representation.
fn screen_inspector_inputs(
    points: &PointSet,
    kernel: &Kernel,
    params: &MatRoxParams,
) -> Result<(), MatroxError> {
    if points.is_empty() {
        return Err(MatroxError::InvalidInput("empty point set".into()));
    }
    if !matrox_linalg::all_finite(points.coords()) {
        return Err(MatroxError::InvalidInput(
            "point set contains NaN or infinite coordinates".into(),
        ));
    }
    screen_kernel(kernel)?;
    if params.leaf_size == 0 {
        return Err(MatroxError::InvalidInput(
            "leaf size must be positive".into(),
        ));
    }
    Ok(())
}

fn screen_kernel(kernel: &Kernel) -> Result<(), MatroxError> {
    let ok = match *kernel {
        Kernel::Gaussian { bandwidth }
        | Kernel::Laplace { bandwidth }
        | Kernel::Cauchy { bandwidth } => bandwidth.is_finite() && bandwidth > 0.0,
        Kernel::InverseDistance { diag } => diag.is_finite(),
        Kernel::GaussianRidge { bandwidth, ridge } => {
            bandwidth.is_finite() && bandwidth > 0.0 && ridge.is_finite() && ridge >= 0.0
        }
    };
    if ok {
        Ok(())
    } else {
        Err(MatroxError::InvalidInput(format!(
            "kernel parameters must be finite (bandwidths positive): {kernel:?}"
        )))
    }
}

fn screen_bacc(bacc: f64) -> Result<(), MatroxError> {
    if bacc.is_finite() && bacc > 0.0 {
        Ok(())
    } else {
        Err(MatroxError::InvalidInput(format!(
            "block accuracy must be finite and positive, got {bacc:e}"
        )))
    }
}

/// Run inspector-p1: tree construction, interaction computation, sampling and
/// blocking.  The kernel passed here is only used to rank sampling
/// candidates; changing it later does **not** require re-running p1
/// (GOFMM-style neighbour sampling is geometry-driven).
///
/// # Errors
/// [`MatroxError::InvalidInput`] for empty or NaN/Inf-poisoned point sets
/// and non-finite kernel parameters.
pub fn inspector_p1(
    points: &PointSet,
    kernel: &Kernel,
    params: &MatRoxParams,
) -> Result<InspectorP1, MatroxError> {
    screen_inspector_inputs(points, kernel, params)?;
    contain(|| {
        let mut timings = InspectorTimings::default();

        let t0 = Instant::now();
        let tree = ClusterTree::build_with_grain(
            points,
            params.partition,
            params.leaf_size,
            params.seed,
            params.grain,
        );
        timings.tree_construction = t0.elapsed();

        let t0 = Instant::now();
        let htree = HTree::build(&tree, params.structure);
        timings.interaction = t0.elapsed();

        let t0 = Instant::now();
        let sampling = sample_nodes(points, &tree, kernel, &effective_sampling(params));
        timings.sampling = t0.elapsed();

        let t0 = Instant::now();
        let near_blockset =
            build_blockset(&htree.near_pairs(), tree.num_nodes(), params.near_blocksize);
        let far_blockset =
            build_blockset(&htree.far_pairs(), tree.num_nodes(), params.far_blocksize);
        timings.blocking = t0.elapsed();

        Ok(InspectorP1 {
            tree,
            htree,
            sampling,
            near_blockset,
            far_blockset,
            params: *params,
            timings,
        })
    })
}

/// Run inspector-p2 on top of a p1 result: low-rank approximation with the
/// given kernel and accuracy, coarsening, CDS construction and code
/// generation.  Returns the ready-to-evaluate [`HMatrix`].
///
/// # Errors
/// [`MatroxError::InvalidInput`] under the same screening as
/// [`inspector_p1`], plus [`MatroxError::PlanMismatch`] when `p1` was built
/// from a different point set.
pub fn inspector_p2(
    points: &PointSet,
    p1: &InspectorP1,
    kernel: &Kernel,
    bacc: f64,
) -> Result<HMatrix, MatroxError> {
    screen_inspector_inputs(points, kernel, &p1.params)?;
    screen_bacc(bacc)?;
    if p1.tree.perm.len() != points.len() {
        return Err(MatroxError::PlanMismatch(format!(
            "p1 was built over {} points but {} were supplied",
            p1.tree.perm.len(),
            points.len()
        )));
    }
    contain(|| {
        let mut timings = p1.timings;
        let params = &p1.params;

        let t0 = Instant::now();
        let compression = compress(
            points,
            &p1.tree,
            &p1.htree,
            kernel,
            &p1.sampling,
            &CompressionParams {
                bacc,
                max_rank: params.max_rank,
                grain: params.grain,
            },
        );
        timings.low_rank = t0.elapsed();

        let t0 = Instant::now();
        let coarsenset = build_coarsenset(&p1.tree, &compression.sranks, &params.coarsen);
        timings.coarsening = t0.elapsed();

        let t0 = Instant::now();
        let cds = build_cds_with_grain(
            &p1.tree,
            &compression,
            &p1.near_blockset,
            &p1.far_blockset,
            &coarsenset,
            params.grain,
        );
        timings.cds = t0.elapsed();

        let t0 = Instant::now();
        let plan = generate_plan(
            p1.near_blockset.clone(),
            p1.far_blockset.clone(),
            coarsenset,
            cds,
            p1.tree.height,
            p1.tree.leaves().len(),
            &params.codegen,
        );
        timings.codegen = t0.elapsed();

        Ok(HMatrix {
            tree: p1.tree.clone(),
            plan,
            structure: params.structure,
            kernel: *kernel,
            bacc,
            timings,
            panel_width: params.panel_width,
            gemm_kernel: params.kernel,
        })
    })
}

/// Run the full inspector (Figure 2): compression, structure analysis and
/// code generation in one call.
///
/// # Errors
/// [`MatroxError::InvalidInput`] for empty or NaN/Inf-poisoned point sets,
/// non-finite kernel parameters, or a non-positive accuracy.
pub fn inspector(
    points: &PointSet,
    kernel: &Kernel,
    params: &MatRoxParams,
) -> Result<HMatrix, MatroxError> {
    screen_bacc(params.bacc)?;
    let p1 = inspector_p1(points, kernel, params)?;
    inspector_p2(points, &p1, kernel, params.bacc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrox_linalg::Matrix;
    use matrox_points::{generate, DatasetId};
    use rand::SeedableRng;

    fn small_points() -> PointSet {
        generate(DatasetId::Grid, 512, 5)
    }

    #[test]
    fn full_inspector_produces_accurate_hmatrix() {
        let pts = small_points();
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let params = MatRoxParams::smash_setting()
            .with_bacc(1e-6)
            .with_leaf_size(32);
        let h = inspector(&pts, &kernel, &params).expect("inspect");
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let w = Matrix::random_uniform(pts.len(), 4, &mut rng);
        let acc = h.overall_accuracy(&pts, &w).expect("accuracy");
        assert!(acc < 1e-2, "overall accuracy {acc}");
        // At this very small N the compressed form is not yet smaller than
        // the dense matrix (constant overheads dominate); just check the
        // ratio is sane.  The integration tests check >1 at larger N.
        assert!(h.compression_ratio() > 0.2);
        assert!(h.timings.total().as_nanos() > 0);
    }

    #[test]
    fn p1_plus_p2_equals_full_inspector() {
        let pts = small_points();
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let params = MatRoxParams::hss().with_bacc(1e-5).with_leaf_size(32);
        let full = inspector(&pts, &kernel, &params).expect("inspect");
        let p1 = inspector_p1(&pts, &kernel, &params).expect("p1");
        let reused = inspector_p2(&pts, &p1, &kernel, params.bacc).expect("p2");
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let w = Matrix::random_uniform(pts.len(), 3, &mut rng);
        let a = full.matmul(&w).expect("matmul");
        let b = reused.matmul(&w).expect("matmul");
        assert!(matrox_linalg::relative_error(&a, &b) < 1e-12);
    }

    #[test]
    fn p2_reuse_supports_changing_accuracy_and_kernel() {
        let pts = small_points();
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let params = MatRoxParams::smash_setting().with_leaf_size(32);
        let p1 = inspector_p1(&pts, &kernel, &params).expect("p1");
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let w = Matrix::random_uniform(pts.len(), 2, &mut rng);

        let mut prev_err = f64::INFINITY;
        for bacc in [1e-2, 1e-4, 1e-6] {
            let h = inspector_p2(&pts, &p1, &kernel, bacc).expect("p2");
            let err = h.overall_accuracy(&pts, &w).expect("accuracy");
            assert!(
                err <= prev_err * 10.0,
                "accuracy did not improve: {err} after {prev_err}"
            );
            prev_err = err;
        }

        // Changing the kernel also only needs p2.
        let laplace = Kernel::Laplace { bandwidth: 1.0 };
        let h = inspector_p2(&pts, &p1, &laplace, 1e-5).expect("p2");
        let err = h.overall_accuracy(&pts, &w).expect("accuracy");
        assert!(err < 0.3, "kernel change produced error {err}");
    }

    #[test]
    fn generated_code_is_rendered() {
        let pts = small_points();
        let kernel = Kernel::paper_gaussian();
        let h = inspector(&pts, &kernel, &MatRoxParams::h2b().with_leaf_size(32)).expect("inspect");
        let code = h.generated_code();
        assert!(code.contains("pub fn matmul"));
    }

    #[test]
    fn poisoned_or_empty_inputs_are_rejected() {
        use crate::error::MatroxError;
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let params = MatRoxParams::hss().with_leaf_size(32);
        let empty = PointSet::new(3, vec![]);
        assert!(matches!(
            inspector(&empty, &kernel, &params),
            Err(MatroxError::InvalidInput(_))
        ));
        let pts = small_points();
        let mut coords: Vec<f64> = pts.coords().to_vec();
        coords[7] = f64::NAN;
        let poisoned = PointSet::new(pts.dim(), coords);
        assert!(matches!(
            inspector(&poisoned, &kernel, &params),
            Err(MatroxError::InvalidInput(_))
        ));
        let bad_kernel = Kernel::Gaussian {
            bandwidth: f64::INFINITY,
        };
        assert!(matches!(
            inspector(&small_points(), &bad_kernel, &params),
            Err(MatroxError::InvalidInput(_))
        ));
        assert!(matches!(
            inspector(&small_points(), &kernel, &params.with_bacc(-1.0)),
            Err(MatroxError::InvalidInput(_))
        ));
        // A stale p1 handle paired with the wrong point set is a plan
        // mismatch, not a crash.
        let p1 = inspector_p1(&small_points(), &kernel, &params).expect("p1");
        let other = generate(DatasetId::Grid, 128, 9);
        assert!(matches!(
            inspector_p2(&other, &p1, &kernel, 1e-5),
            Err(MatroxError::PlanMismatch(_))
        ));
    }

    #[test]
    fn timings_partition_into_p1_and_p2() {
        let pts = small_points();
        let kernel = Kernel::paper_gaussian();
        let h = inspector(&pts, &kernel, &MatRoxParams::h2b().with_leaf_size(32)).expect("inspect");
        let t = &h.timings;
        assert_eq!(t.inspector_p1() + t.inspector_p2(), t.total());
        assert!(t.low_rank.as_nanos() > 0);
    }
}
