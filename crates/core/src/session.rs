//! Plan-once / evaluate-many: the batched evaluation session.
//!
//! The inspector is MatRox's expensive step; its output (the tree, the
//! compression, the CDS buffers and the blocking plan) is a *plan* that
//! every evaluation `Y = K~ W` reuses.  An [`EvalSession`] makes that
//! economics explicit: it runs the inspector once, derives the executor's
//! per-plan state ([`matrox_exec::PreparedExec`]: resolved panel width,
//! leaf ordering, blockset group targets) once, and then serves any number
//! of [`evaluate`](EvalSession::evaluate) calls without re-walking the
//! plan.
//!
//! Every evaluation is processed in RHS *panels* of
//! [`panel_width`](EvalSession::panel_width) columns so a block's submatrix
//! plus its input/output panels stay L2-resident; the result is bitwise
//! identical to evaluating column by column.  The session keeps running
//! [`SessionStats`] so harnesses can report the amortized per-query cost
//! (Figure 4's measure) without instrumenting their own loops.

use crate::config::MatRoxParams;
use crate::error::{panic_message, MatroxError};
use crate::failpoint;
use crate::hmatrix::{FactoredHMatrix, HMatrix};
use crate::inspector::inspector;
use crate::timings::SessionStats;
use matrox_exec::{execute_prepared, ExecOptions, PreparedExec};
use matrox_linalg::{all_finite, Matrix};
use matrox_points::{Kernel, PointSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
// CONCURRENCY: SessionStats counters are monotonic AtomicU64s (Relaxed:
// they order nothing, they only count) so concurrent `evaluate` calls on a
// shared session never contend on a lock in the hot path.
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A compressed kernel matrix prepared for repeated batched evaluation.
///
/// Build one with [`EvalSession::build`] (runs the inspector) or wrap an
/// existing [`HMatrix`] with [`EvalSession::from_hmatrix`]; then call
/// [`evaluate`](EvalSession::evaluate) as often as needed.  `evaluate`
/// takes `&self`, so a session can be shared across threads (statistics are
/// kept in atomics).
#[derive(Debug)]
pub struct EvalSession {
    hmatrix: HMatrix,
    prep: PreparedExec,
    inspect_seconds: f64,
    evaluations: AtomicU64,
    queries: AtomicU64,
    eval_nanos: AtomicU64,
    invalid_inputs: AtomicU64,
    contained_panics: AtomicU64,
    ridge_attempts: AtomicU64,
}

// The serving layer (`matrox-serve`) hands one session per model to a
// reactor thread while callers hold `Arc` clones for stats snapshots, so the
// `&self` evaluate contract above must come with thread-shareability.  Hold
// that guarantee at compile time: if a future field loses `Send + Sync`
// (e.g. an `Rc` or a raw pointer without the wrapper types' auto traits),
// this fails to build rather than failing the serving crate downstream.
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<EvalSession>();
};

impl Clone for EvalSession {
    fn clone(&self) -> Self {
        let stats = self.stats();
        EvalSession {
            hmatrix: self.hmatrix.clone(),
            prep: self.prep.clone(),
            inspect_seconds: self.inspect_seconds,
            evaluations: AtomicU64::new(stats.evaluations),
            queries: AtomicU64::new(stats.queries),
            eval_nanos: AtomicU64::new(self.eval_nanos.load(Ordering::Relaxed)),
            invalid_inputs: AtomicU64::new(stats.invalid_inputs),
            contained_panics: AtomicU64::new(stats.contained_panics),
            ridge_attempts: AtomicU64::new(u64::from(stats.ridge_attempts)),
        }
    }
}

impl EvalSession {
    /// Run the inspector once and prepare the executor for many evaluations.
    ///
    /// # Errors
    ///
    /// [`MatroxError::InvalidInput`] when the points, kernel parameters or
    /// accuracy request fail the inspector's input screen (empty point set,
    /// NaN/Inf coordinates, non-positive bandwidth or accuracy, ...).
    pub fn build(
        points: &PointSet,
        kernel: &Kernel,
        params: &MatRoxParams,
    ) -> Result<Self, MatroxError> {
        let t0 = Instant::now();
        let h = inspector(points, kernel, params)?;
        let inspect_seconds = t0.elapsed().as_secs_f64();
        let opts = h.default_exec_options();
        Ok(Self::assemble(h, opts, inspect_seconds))
    }

    /// Wrap an already-inspected matrix (the inspector cost is taken from
    /// its recorded timings, the panel width and kernel selection from its
    /// inspection-time request).
    pub fn from_hmatrix(hmatrix: HMatrix) -> Self {
        let opts = hmatrix.default_exec_options();
        let inspect = hmatrix.timings.total().as_secs_f64();
        Self::assemble(hmatrix, opts, inspect)
    }

    /// [`from_hmatrix`](EvalSession::from_hmatrix) with explicit executor
    /// options (ablation harnesses, custom panel widths / grains).
    pub fn from_hmatrix_with(hmatrix: HMatrix, opts: ExecOptions) -> Self {
        let inspect = hmatrix.timings.total().as_secs_f64();
        Self::assemble(hmatrix, opts, inspect)
    }

    fn assemble(hmatrix: HMatrix, opts: ExecOptions, inspect_seconds: f64) -> Self {
        let prep = PreparedExec::new(&hmatrix.plan, &hmatrix.tree, &opts);
        EvalSession {
            hmatrix,
            prep,
            inspect_seconds,
            evaluations: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            eval_nanos: AtomicU64::new(0),
            invalid_inputs: AtomicU64::new(0),
            contained_panics: AtomicU64::new(0),
            ridge_attempts: AtomicU64::new(0),
        }
    }

    /// Re-derive the executor state with different options, keeping the
    /// plan and the accumulated statistics.
    pub fn with_options(mut self, opts: ExecOptions) -> Self {
        self.prep = PreparedExec::new(&self.hmatrix.plan, &self.hmatrix.tree, &opts);
        self
    }

    /// Evaluate `Y = K~ W` for an `N x Q` right-hand-side matrix, panel by
    /// panel, over the prepared plan.
    ///
    /// The right-hand side is screened up front (shape, NaN/Inf) and the
    /// execution itself runs inside a `catch_unwind` boundary: an internal
    /// invariant panic — including one raised on a pool worker — is
    /// contained and surfaced as [`MatroxError::PoolPanic`] instead of
    /// unwinding into the caller.  A rejected or contained call leaves the
    /// session fully usable; the next clean call is bitwise identical to
    /// what it would have been without the failure.
    ///
    /// # Errors
    ///
    /// * [`MatroxError::InvalidInput`] — `w` has the wrong row count or
    ///   contains NaN/Inf entries (counted in
    ///   [`SessionStats::invalid_inputs`]).
    /// * [`MatroxError::PoolPanic`] — a panic escaped an evaluation job and
    ///   was contained (counted in [`SessionStats::contained_panics`]).
    /// * [`MatroxError::NumericalBreakdown`] — the output failed the
    ///   finiteness screen.
    pub fn evaluate(&self, w: &Matrix) -> Result<Matrix, MatroxError> {
        let n = self.hmatrix.dim();
        if w.rows() != n {
            self.invalid_inputs.fetch_add(1, Ordering::Relaxed);
            return Err(MatroxError::InvalidInput(format!(
                "right-hand side has {} rows but the session dimension is {n}",
                w.rows()
            )));
        }
        if !all_finite(w.as_slice()) {
            self.invalid_inputs.fetch_add(1, Ordering::Relaxed);
            return Err(MatroxError::InvalidInput(
                "right-hand side contains NaN or infinite entries".to_string(),
            ));
        }
        let t0 = Instant::now();
        // The executor only reads `&self` state, so re-entering it after a
        // contained panic observes the same prepared plan every time;
        // AssertUnwindSafe is sound because no partial output escapes.
        let executed = catch_unwind(AssertUnwindSafe(|| {
            if failpoint::should_fire(failpoint::names::EVAL_PANIC) {
                panic!("injected failpoint `{}`", failpoint::names::EVAL_PANIC);
            }
            execute_prepared(&self.hmatrix.plan, &self.hmatrix.tree, &self.prep, w)
        }));
        let mut y = match executed {
            Ok(y) => y,
            Err(payload) => {
                self.contained_panics.fetch_add(1, Ordering::Relaxed);
                return Err(MatroxError::PoolPanic(panic_message(payload)));
            }
        };
        if failpoint::should_fire(failpoint::names::EVAL_POISON) {
            y.set(0, 0, f64::NAN);
        }
        if !all_finite(y.as_slice()) {
            return Err(MatroxError::NumericalBreakdown(
                "evaluation produced NaN or infinite output".to_string(),
            ));
        }
        self.eval_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        self.queries.fetch_add(w.cols() as u64, Ordering::Relaxed);
        Ok(y)
    }

    /// Evaluate a single query (`Q = 1`) given as a vector.
    ///
    /// # Errors
    ///
    /// Same contract as [`evaluate`](EvalSession::evaluate).
    pub fn evaluate_vec(&self, w: &[f64]) -> Result<Vec<f64>, MatroxError> {
        let wm = Matrix::from_vec(w.len(), 1, w.to_vec());
        Ok(self.evaluate(&wm)?.into_vec())
    }

    /// ULV-factorize the session's matrix for direct solves, recording the
    /// ridge-escalation effort in the session's [`SessionStats`].
    ///
    /// # Errors
    ///
    /// Same contract as [`HMatrix::factorize`]: `PlanMismatch` for non-HSS
    /// structures, `NumericalBreakdown` when the escalation budget runs out.
    pub fn factorize(&self) -> Result<FactoredHMatrix, MatroxError> {
        let factored = self.hmatrix.factorize()?;
        self.ridge_attempts.store(
            u64::from(factored.factor.timings.ridge_attempts),
            Ordering::Relaxed,
        );
        Ok(factored)
    }

    /// Problem size `N`.
    pub fn dim(&self) -> usize {
        self.hmatrix.dim()
    }

    /// The resolved RHS panel width the executor phases operate on.
    pub fn panel_width(&self) -> usize {
        self.prep.panel_width
    }

    /// The executor options the session was prepared with.
    pub fn options(&self) -> &ExecOptions {
        &self.prep.opts
    }

    /// The underlying compressed matrix.
    pub fn hmatrix(&self) -> &HMatrix {
        &self.hmatrix
    }

    /// Unwrap the session, returning the compressed matrix.
    pub fn into_hmatrix(self) -> HMatrix {
        self.hmatrix
    }

    /// Snapshot of the session's cost accounting (inspection, accumulated
    /// evaluation time, evaluations and queries served).
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            inspect_seconds: self.inspect_seconds,
            eval_seconds: self.eval_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            evaluations: self.evaluations.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            invalid_inputs: self.invalid_inputs.load(Ordering::Relaxed),
            contained_panics: self.contained_panics.load(Ordering::Relaxed),
            ridge_attempts: self.ridge_attempts.load(Ordering::Relaxed) as u32,
            inspect_phases: self.hmatrix.timings.phases(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrox_points::{generate, DatasetId};
    use rand::SeedableRng;

    fn session(n: usize) -> (PointSet, EvalSession) {
        let pts = generate(DatasetId::Grid, n, 11);
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let params = MatRoxParams::h2b().with_bacc(1e-5).with_leaf_size(32);
        let s = EvalSession::build(&pts, &kernel, &params).expect("session build");
        (pts, s)
    }

    #[test]
    fn session_matches_direct_matmul_bitwise() {
        let (_, s) = session(512);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let w = Matrix::random_uniform(512, 9, &mut rng);
        let direct = s.hmatrix().matmul(&w).expect("matmul");
        let via_session = s.evaluate(&w).expect("evaluate");
        assert_eq!(direct.shape(), via_session.shape());
        assert!(direct
            .as_slice()
            .iter()
            .zip(via_session.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn stats_accumulate_and_amortize() {
        let (_, s) = session(256);
        assert_eq!(s.stats().evaluations, 0);
        assert!(s.stats().inspect_seconds > 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let w = Matrix::random_uniform(256, 4, &mut rng);
        for _ in 0..3 {
            let _ = s.evaluate(&w).expect("evaluate");
        }
        let stats = s.stats();
        assert_eq!(stats.evaluations, 3);
        assert_eq!(stats.queries, 12);
        assert!(stats.eval_seconds > 0.0);
        assert!(stats.amortized_per_query() < stats.inspect_seconds + stats.eval_seconds);
    }

    #[test]
    fn rejected_inputs_are_counted_and_leave_the_session_clean() {
        let (_, s) = session(256);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let w = Matrix::random_uniform(256, 3, &mut rng);
        let baseline = s.evaluate(&w).expect("clean evaluate");

        // Wrong shape and poisoned values are rejected up front.
        let short = Matrix::filled(128, 3, 1.0);
        assert!(matches!(
            s.evaluate(&short),
            Err(MatroxError::InvalidInput(_))
        ));
        let mut poisoned = w.clone();
        poisoned.set(5, 1, f64::NAN);
        assert!(matches!(
            s.evaluate(&poisoned),
            Err(MatroxError::InvalidInput(_))
        ));
        let mut infinite = w.clone();
        infinite.set(0, 0, f64::INFINITY);
        assert!(matches!(
            s.evaluate(&infinite),
            Err(MatroxError::InvalidInput(_))
        ));
        assert!(matches!(
            s.evaluate_vec(&[f64::NAN; 256]),
            Err(MatroxError::InvalidInput(_))
        ));

        // Rejections are counted but do not count as served evaluations,
        // and the next clean call is bitwise identical to the first.
        let stats = s.stats();
        assert_eq!(stats.invalid_inputs, 4);
        assert_eq!(stats.contained_panics, 0);
        assert_eq!(stats.evaluations, 1);
        let again = s.evaluate(&w).expect("evaluate after rejections");
        assert!(baseline
            .as_slice()
            .iter()
            .zip(again.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn kernel_choice_reaches_the_prepared_executor() {
        use matrox_linalg::KernelChoice;
        let pts = generate(DatasetId::Grid, 256, 11);
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let base = MatRoxParams::h2b().with_bacc(1e-5).with_leaf_size(32);
        let s_scalar = EvalSession::build(&pts, &kernel, &base.with_kernel(KernelChoice::Scalar))
            .expect("session build");
        assert_eq!(s_scalar.options().kernel, KernelChoice::Scalar);
        assert_eq!(s_scalar.prep.dispatch().name(), "scalar");
        let s_auto = EvalSession::build(&pts, &kernel, &base).expect("session build");
        assert_eq!(s_auto.options().kernel, KernelChoice::Auto);
        // Different kernels may differ in rounding but must agree tightly.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let w = Matrix::random_uniform(256, 5, &mut rng);
        let a = s_scalar.evaluate(&w).expect("evaluate");
        let b = s_auto.evaluate(&w).expect("evaluate");
        assert!(matrox_linalg::relative_error(&a, &b) < 1e-12);
    }

    #[test]
    fn panel_width_is_resolved_and_overridable() {
        let (pts, s) = session(256);
        assert!(s.panel_width() >= 8, "auto width {}", s.panel_width());
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let params = MatRoxParams::h2b()
            .with_bacc(1e-5)
            .with_leaf_size(32)
            .with_panel_width(16);
        let s16 = EvalSession::build(&pts, &kernel, &params).expect("session build");
        assert_eq!(s16.panel_width(), 16);
        // The requested width also survives the inspector -> HMatrix ->
        // session route (it is carried on the HMatrix, not just the params).
        let via_hmatrix = crate::inspector(&pts, &kernel, &params)
            .expect("inspector")
            .into_session();
        assert_eq!(via_hmatrix.panel_width(), 16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let w = Matrix::random_uniform(256, 33, &mut rng);
        let a = s.evaluate(&w).expect("evaluate");
        let b = s16.evaluate(&w).expect("evaluate");
        assert!(a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}
