//! HMatrix serialization (the `hmat.cds` file of Figure 2).
//!
//! The MatRox user stores the compressed matrix and the generated code to
//! disk during inspection and loads them back in the executor process.  This
//! module provides a compact, self-describing binary format for the full
//! [`HMatrix`] handle: the cluster tree, the structure sets, the lowering
//! decisions and the CDS buffers.  The format is little-endian and versioned
//! by a magic header.

use crate::hmatrix::{FactoredHMatrix, HMatrix};
use crate::timings::InspectorTimings;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use matrox_analysis::{BlockSet, Cds, CdsBlockEntry, CoarsenSet, GeneratorEntry, GroupRange};
use matrox_codegen::{EvalPlan, LoweringDecisions};
use matrox_factor::{FactorTimings, HssFactor, LeafFactor, MergeFactor};
use matrox_linalg::{LuFactors, Matrix};
use matrox_points::Kernel;
use matrox_tree::{ClusterTree, Structure, TreeNode};
use std::io;
use std::path::Path;

const MAGIC: &[u8; 8] = b"MATROX01";
/// Magic header of a *factored* HMatrix file (`hmat.ulv`): the compressed
/// matrix followed by its ULV-style factorization.
const MAGIC_FACTORED: &[u8; 8] = b"MATROXF1";

/// Error type for (de)serialization failures.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The byte stream is not a valid HMatrix file.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}
impl std::error::Error for IoError {}
impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// primitive helpers
// ---------------------------------------------------------------------------

fn put_usize(buf: &mut BytesMut, v: usize) {
    buf.put_u64_le(v as u64);
}

fn get_usize(buf: &mut Bytes) -> Result<usize, IoError> {
    if buf.remaining() < 8 {
        return Err(IoError::Format("unexpected end of stream".into()));
    }
    Ok(buf.get_u64_le() as usize)
}

fn put_f64(buf: &mut BytesMut, v: f64) {
    buf.put_f64_le(v);
}

fn get_f64(buf: &mut Bytes) -> Result<f64, IoError> {
    if buf.remaining() < 8 {
        return Err(IoError::Format("unexpected end of stream".into()));
    }
    Ok(buf.get_f64_le())
}

fn put_usize_vec(buf: &mut BytesMut, v: &[usize]) {
    put_usize(buf, v.len());
    for &x in v {
        put_usize(buf, x);
    }
}

fn get_usize_vec(buf: &mut Bytes) -> Result<Vec<usize>, IoError> {
    let len = get_usize(buf)?;
    let mut v = Vec::with_capacity(len.min(1 << 24));
    for _ in 0..len {
        v.push(get_usize(buf)?);
    }
    Ok(v)
}

fn put_f64_vec(buf: &mut BytesMut, v: &[f64]) {
    put_usize(buf, v.len());
    for &x in v {
        put_f64(buf, x);
    }
}

fn get_f64_vec(buf: &mut Bytes) -> Result<Vec<f64>, IoError> {
    let len = get_usize(buf)?;
    let mut v = Vec::with_capacity(len.min(1 << 26));
    for _ in 0..len {
        v.push(get_f64(buf)?);
    }
    Ok(v)
}

fn put_bool(buf: &mut BytesMut, v: bool) {
    buf.put_u8(v as u8);
}

fn get_bool(buf: &mut Bytes) -> Result<bool, IoError> {
    if buf.remaining() < 1 {
        return Err(IoError::Format("unexpected end of stream".into()));
    }
    Ok(buf.get_u8() != 0)
}

// ---------------------------------------------------------------------------
// component encoders
// ---------------------------------------------------------------------------

fn put_structure(buf: &mut BytesMut, s: &Structure) {
    match s {
        Structure::Hss => {
            buf.put_u8(0);
            put_f64(buf, 0.0);
        }
        Structure::Geometric { tau } => {
            buf.put_u8(1);
            put_f64(buf, *tau);
        }
        Structure::Budget { budget } => {
            buf.put_u8(2);
            put_f64(buf, *budget);
        }
    }
}

fn get_structure(buf: &mut Bytes) -> Result<Structure, IoError> {
    if buf.remaining() < 1 {
        return Err(IoError::Format("unexpected end of stream".into()));
    }
    let tag = buf.get_u8();
    let val = get_f64(buf)?;
    Ok(match tag {
        0 => Structure::Hss,
        1 => Structure::Geometric { tau: val },
        2 => Structure::Budget { budget: val },
        t => return Err(IoError::Format(format!("unknown structure tag {t}"))),
    })
}

fn put_kernel(buf: &mut BytesMut, k: &Kernel) {
    match k {
        Kernel::Gaussian { bandwidth } => {
            buf.put_u8(0);
            put_f64(buf, *bandwidth);
        }
        Kernel::InverseDistance { diag } => {
            buf.put_u8(1);
            put_f64(buf, *diag);
        }
        Kernel::Laplace { bandwidth } => {
            buf.put_u8(2);
            put_f64(buf, *bandwidth);
        }
        Kernel::Cauchy { bandwidth } => {
            buf.put_u8(3);
            put_f64(buf, *bandwidth);
        }
        Kernel::GaussianRidge { bandwidth, ridge } => {
            buf.put_u8(4);
            put_f64(buf, *bandwidth);
            put_f64(buf, *ridge);
        }
    }
}

fn get_kernel(buf: &mut Bytes) -> Result<Kernel, IoError> {
    if buf.remaining() < 1 {
        return Err(IoError::Format("unexpected end of stream".into()));
    }
    let tag = buf.get_u8();
    let val = get_f64(buf)?;
    Ok(match tag {
        0 => Kernel::Gaussian { bandwidth: val },
        1 => Kernel::InverseDistance { diag: val },
        2 => Kernel::Laplace { bandwidth: val },
        3 => Kernel::Cauchy { bandwidth: val },
        4 => Kernel::GaussianRidge {
            bandwidth: val,
            ridge: get_f64(buf)?,
        },
        t => return Err(IoError::Format(format!("unknown kernel tag {t}"))),
    })
}

fn put_tree(buf: &mut BytesMut, tree: &ClusterTree) {
    put_usize(buf, tree.leaf_size);
    put_usize(buf, tree.height);
    put_usize_vec(buf, &tree.perm);
    put_usize(buf, tree.nodes.len());
    for n in &tree.nodes {
        put_usize(buf, n.id);
        put_usize(buf, n.parent.map(|p| p + 1).unwrap_or(0));
        match n.children {
            Some((l, r)) => {
                put_usize(buf, l + 1);
                put_usize(buf, r + 1);
            }
            None => {
                put_usize(buf, 0);
                put_usize(buf, 0);
            }
        }
        put_usize(buf, n.level);
        put_usize(buf, n.start);
        put_usize(buf, n.end);
        put_f64_vec(buf, &n.centroid);
        put_f64(buf, n.diameter);
    }
}

fn get_tree(buf: &mut Bytes) -> Result<ClusterTree, IoError> {
    let leaf_size = get_usize(buf)?;
    let height = get_usize(buf)?;
    let perm = get_usize_vec(buf)?;
    let n_nodes = get_usize(buf)?;
    let mut nodes = Vec::with_capacity(n_nodes.min(1 << 24));
    for _ in 0..n_nodes {
        let id = get_usize(buf)?;
        let parent_raw = get_usize(buf)?;
        let l = get_usize(buf)?;
        let r = get_usize(buf)?;
        let level = get_usize(buf)?;
        let start = get_usize(buf)?;
        let end = get_usize(buf)?;
        let centroid = get_f64_vec(buf)?;
        let diameter = get_f64(buf)?;
        nodes.push(TreeNode {
            id,
            parent: if parent_raw == 0 {
                None
            } else {
                Some(parent_raw - 1)
            },
            children: if l == 0 { None } else { Some((l - 1, r - 1)) },
            level,
            start,
            end,
            centroid,
            diameter,
        });
    }
    // `pos` is derived, not serialized; validate before inverting so a
    // corrupt stream yields an error instead of an out-of-bounds panic.
    if perm.iter().any(|&i| i >= perm.len()) {
        return Err(IoError::Format(
            "tree permutation entry out of range".into(),
        ));
    }
    let pos = matrox_tree::invert_permutation(&perm);
    Ok(ClusterTree {
        nodes,
        perm,
        pos,
        leaf_size,
        height,
    })
}

fn put_blockset(buf: &mut BytesMut, bs: &BlockSet) {
    put_usize(buf, bs.blocksize);
    put_usize(buf, bs.groups.len());
    for g in &bs.groups {
        put_usize(buf, g.len());
        for &(i, j) in g {
            put_usize(buf, i);
            put_usize(buf, j);
        }
    }
}

fn get_blockset(buf: &mut Bytes) -> Result<BlockSet, IoError> {
    let blocksize = get_usize(buf)?;
    let n_groups = get_usize(buf)?;
    let mut groups = Vec::with_capacity(n_groups.min(1 << 24));
    for _ in 0..n_groups {
        let len = get_usize(buf)?;
        let mut g = Vec::with_capacity(len.min(1 << 24));
        for _ in 0..len {
            let i = get_usize(buf)?;
            let j = get_usize(buf)?;
            g.push((i, j));
        }
        groups.push(g);
    }
    Ok(BlockSet { groups, blocksize })
}

fn put_coarsenset(buf: &mut BytesMut, cs: &CoarsenSet) {
    put_usize(buf, cs.agg);
    put_usize(buf, cs.levels.len());
    for (cl, parts) in cs.levels.iter().enumerate() {
        put_usize(buf, parts.len());
        for (p, part) in parts.iter().enumerate() {
            put_usize_vec(buf, part);
            put_usize(buf, cs.costs[cl][p] as usize);
        }
    }
}

fn get_coarsenset(buf: &mut Bytes) -> Result<CoarsenSet, IoError> {
    let agg = get_usize(buf)?;
    let n_levels = get_usize(buf)?;
    let mut levels = Vec::with_capacity(n_levels.min(1 << 16));
    let mut costs = Vec::with_capacity(n_levels.min(1 << 16));
    for _ in 0..n_levels {
        let n_parts = get_usize(buf)?;
        let mut parts = Vec::with_capacity(n_parts.min(1 << 20));
        let mut part_costs = Vec::with_capacity(n_parts.min(1 << 20));
        for _ in 0..n_parts {
            parts.push(get_usize_vec(buf)?);
            part_costs.push(get_usize(buf)? as u64);
        }
        levels.push(parts);
        costs.push(part_costs);
    }
    Ok(CoarsenSet { levels, agg, costs })
}

fn put_cds(buf: &mut BytesMut, cds: &Cds) {
    put_f64_vec(buf, &cds.gen_values);
    put_usize(buf, cds.generators.len());
    for g in &cds.generators {
        if g.is_present() {
            put_bool(buf, true);
            put_usize(buf, g.v_offset);
            put_usize(buf, g.u_offset);
            put_usize(buf, g.rows);
            put_usize(buf, g.cols);
        } else {
            put_bool(buf, false);
        }
    }
    put_usize_vec(buf, &cds.sranks);
    put_f64_vec(buf, &cds.d_values);
    put_block_entries(buf, &cds.d_entries);
    put_group_ranges(buf, &cds.d_groups);
    put_f64_vec(buf, &cds.b_values);
    put_block_entries(buf, &cds.b_entries);
    put_group_ranges(buf, &cds.b_groups);
}

fn put_block_entries(buf: &mut BytesMut, entries: &[CdsBlockEntry]) {
    put_usize(buf, entries.len());
    for e in entries {
        put_usize(buf, e.target);
        put_usize(buf, e.source);
        put_usize(buf, e.offset);
        put_usize(buf, e.rows);
        put_usize(buf, e.cols);
    }
}

fn get_block_entries(buf: &mut Bytes) -> Result<Vec<CdsBlockEntry>, IoError> {
    let n = get_usize(buf)?;
    let mut v = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        v.push(CdsBlockEntry {
            target: get_usize(buf)?,
            source: get_usize(buf)?,
            offset: get_usize(buf)?,
            rows: get_usize(buf)?,
            cols: get_usize(buf)?,
        });
    }
    Ok(v)
}

fn put_group_ranges(buf: &mut BytesMut, groups: &[GroupRange]) {
    put_usize(buf, groups.len());
    for g in groups {
        put_usize(buf, g.start);
        put_usize(buf, g.end);
    }
}

fn get_group_ranges(buf: &mut Bytes) -> Result<Vec<GroupRange>, IoError> {
    let n = get_usize(buf)?;
    let mut v = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        v.push(GroupRange {
            start: get_usize(buf)?,
            end: get_usize(buf)?,
        });
    }
    Ok(v)
}

fn get_cds(buf: &mut Bytes) -> Result<Cds, IoError> {
    let gen_values = get_f64_vec(buf)?;
    let n_gen = get_usize(buf)?;
    let mut generators = Vec::with_capacity(n_gen.min(1 << 24));
    for _ in 0..n_gen {
        if get_bool(buf)? {
            generators.push(GeneratorEntry {
                v_offset: get_usize(buf)?,
                u_offset: get_usize(buf)?,
                rows: get_usize(buf)?,
                cols: get_usize(buf)?,
            });
        } else {
            generators.push(GeneratorEntry {
                v_offset: usize::MAX,
                u_offset: usize::MAX,
                rows: 0,
                cols: 0,
            });
        }
    }
    let sranks = get_usize_vec(buf)?;
    let d_values = get_f64_vec(buf)?;
    let d_entries = get_block_entries(buf)?;
    let d_groups = get_group_ranges(buf)?;
    let b_values = get_f64_vec(buf)?;
    let b_entries = get_block_entries(buf)?;
    let b_groups = get_group_ranges(buf)?;
    Ok(Cds {
        gen_values,
        generators,
        sranks,
        d_values,
        d_entries,
        d_groups,
        b_values,
        b_entries,
        b_groups,
    })
}

// ---------------------------------------------------------------------------
// public API
// ---------------------------------------------------------------------------

fn put_hmatrix_body(buf: &mut BytesMut, h: &HMatrix) {
    put_structure(buf, &h.structure);
    put_kernel(buf, &h.kernel);
    put_f64(buf, h.bacc);
    put_tree(buf, &h.tree);
    // plan
    let d = &h.plan.decisions;
    put_bool(buf, d.block_near);
    put_bool(buf, d.block_far);
    put_bool(buf, d.coarsen_tree);
    put_bool(buf, d.peel_root);
    put_blockset(buf, &h.plan.near_blockset);
    put_blockset(buf, &h.plan.far_blockset);
    put_coarsenset(buf, &h.plan.coarsenset);
    put_cds(buf, &h.plan.cds);
    put_usize(buf, h.plan.tree_height);
    put_usize(buf, h.plan.num_leaves);
}

/// Serialize an [`HMatrix`] to bytes.
pub fn to_bytes(h: &HMatrix) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    put_hmatrix_body(&mut buf, h);
    buf.freeze()
}

/// Deserialize an [`HMatrix`] from bytes.  Timings are not stored and come
/// back zeroed.
pub fn from_bytes(mut data: Bytes) -> Result<HMatrix, IoError> {
    if data.remaining() < MAGIC.len() || &data.copy_to_bytes(MAGIC.len())[..] != MAGIC {
        return Err(IoError::Format("bad magic header".into()));
    }
    get_hmatrix_body(&mut data)
}

fn get_hmatrix_body(data: &mut Bytes) -> Result<HMatrix, IoError> {
    let structure = get_structure(data)?;
    let kernel = get_kernel(data)?;
    let bacc = get_f64(data)?;
    let tree = get_tree(data)?;
    let decisions = LoweringDecisions {
        block_near: get_bool(data)?,
        block_far: get_bool(data)?,
        coarsen_tree: get_bool(data)?,
        peel_root: get_bool(data)?,
    };
    let near_blockset = get_blockset(data)?;
    let far_blockset = get_blockset(data)?;
    let coarsenset = get_coarsenset(data)?;
    let cds = get_cds(data)?;
    let tree_height = get_usize(data)?;
    let num_leaves = get_usize(data)?;
    let plan = EvalPlan {
        decisions,
        near_blockset,
        far_blockset,
        coarsenset,
        cds,
        tree_height,
        num_leaves,
    };
    Ok(HMatrix {
        tree,
        plan,
        structure,
        kernel,
        bacc,
        timings: InspectorTimings::default(),
        // Like the timings, the requested panel width and kernel selection
        // are runtime tuning knobs (the kernel is machine-specific besides),
        // not part of the stored matrix; reloads use auto.
        panel_width: 0,
        gemm_kernel: matrox_linalg::KernelChoice::Auto,
    })
}

/// Store an HMatrix to a file (the `hmat.cds` artifact).
pub fn save(h: &HMatrix, path: &Path) -> Result<(), IoError> {
    std::fs::write(path, to_bytes(h))?;
    Ok(())
}

/// Load an HMatrix from a file previously written by [`save`].
pub fn load(path: &Path) -> Result<HMatrix, IoError> {
    let data = std::fs::read(path)?;
    from_bytes(Bytes::from(data))
}

// ---------------------------------------------------------------------------
// factored HMatrix (the `hmat.ulv` artifact)
// ---------------------------------------------------------------------------

fn put_matrix(buf: &mut BytesMut, m: &Matrix) {
    put_usize(buf, m.rows());
    put_usize(buf, m.cols());
    for &x in m.as_slice() {
        put_f64(buf, x);
    }
}

fn get_matrix(buf: &mut Bytes) -> Result<Matrix, IoError> {
    let rows = get_usize(buf)?;
    let cols = get_usize(buf)?;
    let len = rows
        .checked_mul(cols)
        .ok_or_else(|| IoError::Format("matrix shape overflow".into()))?;
    let mut data = Vec::with_capacity(len.min(1 << 26));
    for _ in 0..len {
        data.push(get_f64(buf)?);
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

fn put_factor(buf: &mut BytesMut, f: &HssFactor) {
    put_usize(buf, f.n);
    put_usize(buf, f.leaves.len());
    for leaf in &f.leaves {
        match leaf {
            Some(lf) => {
                put_bool(buf, true);
                put_usize(buf, lf.node);
                put_matrix(buf, &lf.chol);
                put_matrix(buf, &lf.e);
            }
            None => put_bool(buf, false),
        }
    }
    put_usize(buf, f.merges.len());
    for merge in &f.merges {
        match merge {
            Some(mf) => {
                put_bool(buf, true);
                put_usize(buf, mf.node);
                put_matrix(buf, &mf.lu.lu);
                put_usize_vec(buf, &mf.lu.piv);
                put_matrix(buf, &mf.t);
            }
            None => put_bool(buf, false),
        }
    }
}

fn get_factor(buf: &mut Bytes) -> Result<HssFactor, IoError> {
    let n = get_usize(buf)?;
    let n_leaves = get_usize(buf)?;
    let mut leaves = Vec::with_capacity(n_leaves.min(1 << 24));
    for _ in 0..n_leaves {
        if get_bool(buf)? {
            leaves.push(Some(LeafFactor {
                node: get_usize(buf)?,
                chol: get_matrix(buf)?,
                e: get_matrix(buf)?,
            }));
        } else {
            leaves.push(None);
        }
    }
    let n_merges = get_usize(buf)?;
    let mut merges = Vec::with_capacity(n_merges.min(1 << 24));
    for _ in 0..n_merges {
        if get_bool(buf)? {
            merges.push(Some(MergeFactor {
                node: get_usize(buf)?,
                lu: LuFactors {
                    lu: get_matrix(buf)?,
                    piv: get_usize_vec(buf)?,
                },
                t: get_matrix(buf)?,
            }));
        } else {
            merges.push(None);
        }
    }
    Ok(HssFactor {
        n,
        leaves,
        merges,
        timings: FactorTimings::default(),
    })
}

/// Serialize a [`FactoredHMatrix`] (compressed matrix + ULV factors) to
/// bytes.
pub fn to_bytes_factored(fh: &FactoredHMatrix) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC_FACTORED);
    put_hmatrix_body(&mut buf, &fh.hmatrix);
    put_factor(&mut buf, &fh.factor);
    buf.freeze()
}

/// Deserialize a [`FactoredHMatrix`] from bytes.  Timings (inspector and
/// factor) are not stored and come back zeroed.
pub fn from_bytes_factored(mut data: Bytes) -> Result<FactoredHMatrix, IoError> {
    if data.remaining() < MAGIC_FACTORED.len()
        || &data.copy_to_bytes(MAGIC_FACTORED.len())[..] != MAGIC_FACTORED
    {
        return Err(IoError::Format("bad factored magic header".into()));
    }
    let hmatrix = get_hmatrix_body(&mut data)?;
    let factor = get_factor(&mut data)?;
    if factor.n != hmatrix.dim() {
        return Err(IoError::Format(format!(
            "factor dimension {} does not match matrix dimension {}",
            factor.n,
            hmatrix.dim()
        )));
    }
    Ok(FactoredHMatrix { hmatrix, factor })
}

/// Store a factored HMatrix to a file (the `hmat.ulv` artifact: solve-ready
/// across processes, no re-factorization needed).
pub fn save_factored(fh: &FactoredHMatrix, path: &Path) -> Result<(), IoError> {
    std::fs::write(path, to_bytes_factored(fh))?;
    Ok(())
}

/// Load a factored HMatrix from a file previously written by
/// [`save_factored`].
pub fn load_factored(path: &Path) -> Result<FactoredHMatrix, IoError> {
    let data = std::fs::read(path)?;
    from_bytes_factored(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatRoxParams;
    use crate::inspector::inspector;
    use matrox_linalg::Matrix;
    use matrox_points::{generate, DatasetId};
    use rand::SeedableRng;

    fn sample_hmatrix() -> (matrox_points::PointSet, HMatrix) {
        let pts = generate(DatasetId::Grid, 256, 5);
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let params = MatRoxParams::smash_setting().with_leaf_size(32);
        let h = inspector(&pts, &kernel, &params);
        (pts, h)
    }

    #[test]
    fn roundtrip_preserves_evaluation() {
        let (pts, h) = sample_hmatrix();
        let bytes = to_bytes(&h);
        let h2 = from_bytes(bytes).expect("deserialize");
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let w = Matrix::random_uniform(pts.len(), 3, &mut rng);
        let a = h.matmul(&w);
        let b = h2.matmul(&w);
        assert!(matrox_linalg::relative_error(&a, &b) < 1e-14);
        assert_eq!(h2.bacc, h.bacc);
        assert_eq!(h2.structure, h.structure);
    }

    #[test]
    fn file_roundtrip_works() {
        let (_, h) = sample_hmatrix();
        let dir = std::env::temp_dir().join("matrox_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hmat.cds");
        save(&h, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.dim(), h.dim());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let err = from_bytes(Bytes::from_static(b"NOTMATROX_AT_ALL")).unwrap_err();
        match err {
            IoError::Format(_) => {}
            other => panic!("expected format error, got {other}"),
        }
    }

    fn factored_hmatrix() -> (matrox_points::PointSet, crate::hmatrix::FactoredHMatrix) {
        // HSS structure + bandwidth at the grid spacing: a well-conditioned
        // SPD kernel matrix the ULV factorization accepts.
        let pts = generate(DatasetId::Grid, 256, 5);
        let kernel = Kernel::Gaussian {
            bandwidth: 1.0 / 16.0,
        };
        let params = MatRoxParams::hss().with_leaf_size(32).with_bacc(1e-7);
        let h = inspector(&pts, &kernel, &params);
        let fh = h.factorize().expect("HSS SPD matrix must factor");
        (pts, fh)
    }

    #[test]
    fn factored_roundtrip_solves_bitwise_identically() {
        let (pts, fh) = factored_hmatrix();
        let bytes = to_bytes_factored(&fh);
        let fh2 = from_bytes_factored(bytes).expect("deserialize factored");
        let b: Vec<f64> = (0..pts.len()).map(|i| (i as f64 * 0.3).cos()).collect();
        let x1 = fh.solve(&b);
        let x2 = fh2.solve(&b);
        assert_eq!(x1, x2, "reloaded factors must solve bit-for-bit equally");
    }

    #[test]
    fn factored_magic_is_distinct_from_plain() {
        let (_, fh) = factored_hmatrix();
        let bytes = to_bytes_factored(&fh);
        assert!(
            from_bytes(bytes.clone()).is_err(),
            "plain loader must reject"
        );
        let plain = to_bytes(&fh.hmatrix);
        assert!(
            from_bytes_factored(plain).is_err(),
            "factored loader must reject plain files"
        );
    }

    #[test]
    fn factored_file_roundtrip_works() {
        let (pts, fh) = factored_hmatrix();
        let dir = std::env::temp_dir().join("matrox_io_factored_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hmat.ulv");
        save_factored(&fh, &path).unwrap();
        let loaded = load_factored(&path).unwrap();
        assert_eq!(loaded.dim(), fh.dim());
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let b = Matrix::random_uniform(pts.len(), 3, &mut rng);
        assert_eq!(
            loaded.solve_matrix(&b).as_slice(),
            fh.solve_matrix(&b).as_slice()
        );
        std::fs::remove_file(&path).ok();
    }
}
