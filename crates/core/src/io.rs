//! HMatrix serialization (the `hmat.cds` file of Figure 2).
//!
//! The MatRox user stores the compressed matrix and the generated code to
//! disk during inspection and loads them back in the executor process.  This
//! module provides a compact, self-describing binary format for the full
//! [`HMatrix`] handle: the cluster tree, the structure sets, the lowering
//! decisions and the CDS buffers.  The format is little-endian and versioned
//! by a magic header.

use crate::error::MatroxError;
use crate::hmatrix::{FactoredHMatrix, HMatrix};
use crate::timings::InspectorTimings;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use matrox_analysis::{BlockSet, Cds, CdsBlockEntry, CoarsenSet, GeneratorEntry, GroupRange};
use matrox_codegen::{EvalPlan, LoweringDecisions};
use matrox_factor::{FactorTimings, HssFactor, LeafFactor, MergeFactor};
use matrox_linalg::{LuFactors, Matrix};
use matrox_points::Kernel;
use matrox_tree::{ClusterTree, Structure, TreeNode};
use std::io;
use std::path::Path;

const MAGIC: &[u8; 8] = b"MATROX01";
/// Magic header of a *factored* HMatrix file (`hmat.ulv`): the compressed
/// matrix followed by its ULV-style factorization.
const MAGIC_FACTORED: &[u8; 8] = b"MATROXF1";

/// Error type for (de)serialization failures.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The byte stream is not a valid HMatrix file.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}
impl std::error::Error for IoError {}
impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// primitive helpers
// ---------------------------------------------------------------------------
//
// The readers treat the stream as UNTRUSTED: every length field is validated
// against the bytes actually remaining before anything is allocated, every
// bool and enum tag must be canonical, and decoded structures are
// cross-checked against each other (tree topology vs. rank arrays vs. block
// offsets) before the handle is returned.  The contract enforced by the
// corruption-fuzz suite is: for any byte stream, a reader either returns
// `Err(Format)` or a value whose re-encoding is bitwise identical to the
// consumed input — never a panic, never an allocation larger than the
// stream itself.

fn format_err<T>(msg: impl Into<String>) -> Result<T, IoError> {
    Err(IoError::Format(msg.into()))
}

/// Read an element count that precedes `elem_bytes`-sized elements,
/// rejecting counts that could not possibly fit in the remaining stream.
/// This caps every downstream `Vec::with_capacity` at the stream length, so
/// an adversarial 80-byte file cannot request a multi-GiB allocation.
fn get_len(buf: &mut Bytes, elem_bytes: usize, what: &str) -> Result<usize, IoError> {
    let len = get_usize(buf)?;
    match len.checked_mul(elem_bytes) {
        Some(total) if total <= buf.remaining() => Ok(len),
        _ => format_err(format!(
            "{what} length {len} exceeds the {} bytes remaining",
            buf.remaining()
        )),
    }
}

fn put_usize(buf: &mut BytesMut, v: usize) {
    buf.put_u64_le(v as u64);
}

fn get_usize(buf: &mut Bytes) -> Result<usize, IoError> {
    if buf.remaining() < 8 {
        return Err(IoError::Format("unexpected end of stream".into()));
    }
    Ok(buf.get_u64_le() as usize)
}

fn put_f64(buf: &mut BytesMut, v: f64) {
    buf.put_f64_le(v);
}

fn get_f64(buf: &mut Bytes) -> Result<f64, IoError> {
    if buf.remaining() < 8 {
        return Err(IoError::Format("unexpected end of stream".into()));
    }
    Ok(buf.get_f64_le())
}

/// [`get_f64`] for fields that must be finite in any valid model (kernel
/// parameters, accuracies, geometry): a NaN or infinity here is corruption,
/// and accepting it would poison every later evaluation.
fn get_finite_f64(buf: &mut Bytes, what: &str) -> Result<f64, IoError> {
    let v = get_f64(buf)?;
    if !v.is_finite() {
        return format_err(format!("{what} is not finite ({v})"));
    }
    Ok(v)
}

fn put_usize_vec(buf: &mut BytesMut, v: &[usize]) {
    put_usize(buf, v.len());
    for &x in v {
        put_usize(buf, x);
    }
}

fn get_usize_vec(buf: &mut Bytes) -> Result<Vec<usize>, IoError> {
    let len = get_len(buf, 8, "usize vector")?;
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        v.push(get_usize(buf)?);
    }
    Ok(v)
}

fn put_f64_vec(buf: &mut BytesMut, v: &[f64]) {
    put_usize(buf, v.len());
    for &x in v {
        put_f64(buf, x);
    }
}

fn get_f64_vec(buf: &mut Bytes) -> Result<Vec<f64>, IoError> {
    let len = get_len(buf, 8, "f64 vector")?;
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        v.push(get_f64(buf)?);
    }
    if !matrox_linalg::all_finite(&v) {
        return format_err("value buffer contains non-finite entries");
    }
    Ok(v)
}

fn put_bool(buf: &mut BytesMut, v: bool) {
    buf.put_u8(v as u8);
}

fn get_bool(buf: &mut Bytes) -> Result<bool, IoError> {
    if buf.remaining() < 1 {
        return Err(IoError::Format("unexpected end of stream".into()));
    }
    // Only the canonical encodings are accepted: a corrupted flag byte must
    // surface as an error, not silently normalize on the next save.
    match buf.get_u8() {
        0 => Ok(false),
        1 => Ok(true),
        b => format_err(format!("non-canonical bool byte {b:#04x}")),
    }
}

// ---------------------------------------------------------------------------
// component encoders
// ---------------------------------------------------------------------------

fn put_structure(buf: &mut BytesMut, s: &Structure) {
    match s {
        Structure::Hss => {
            buf.put_u8(0);
            put_f64(buf, 0.0);
        }
        Structure::Geometric { tau } => {
            buf.put_u8(1);
            put_f64(buf, *tau);
        }
        Structure::Budget { budget } => {
            buf.put_u8(2);
            put_f64(buf, *budget);
        }
    }
}

fn get_structure(buf: &mut Bytes) -> Result<Structure, IoError> {
    if buf.remaining() < 1 {
        return Err(IoError::Format("unexpected end of stream".into()));
    }
    let tag = buf.get_u8();
    let val = get_finite_f64(buf, "structure parameter")?;
    Ok(match tag {
        0 => {
            // HSS carries no parameter; the writer pads with +0.0 and any
            // other bit pattern would not survive a re-encode.
            if val.to_bits() != 0 {
                return format_err("non-canonical HSS structure padding");
            }
            Structure::Hss
        }
        1 => Structure::Geometric { tau: val },
        2 => Structure::Budget { budget: val },
        t => return Err(IoError::Format(format!("unknown structure tag {t}"))),
    })
}

fn put_kernel(buf: &mut BytesMut, k: &Kernel) {
    match k {
        Kernel::Gaussian { bandwidth } => {
            buf.put_u8(0);
            put_f64(buf, *bandwidth);
        }
        Kernel::InverseDistance { diag } => {
            buf.put_u8(1);
            put_f64(buf, *diag);
        }
        Kernel::Laplace { bandwidth } => {
            buf.put_u8(2);
            put_f64(buf, *bandwidth);
        }
        Kernel::Cauchy { bandwidth } => {
            buf.put_u8(3);
            put_f64(buf, *bandwidth);
        }
        Kernel::GaussianRidge { bandwidth, ridge } => {
            buf.put_u8(4);
            put_f64(buf, *bandwidth);
            put_f64(buf, *ridge);
        }
    }
}

fn get_kernel(buf: &mut Bytes) -> Result<Kernel, IoError> {
    if buf.remaining() < 1 {
        return Err(IoError::Format("unexpected end of stream".into()));
    }
    let tag = buf.get_u8();
    let val = get_finite_f64(buf, "kernel parameter")?;
    Ok(match tag {
        0 => Kernel::Gaussian { bandwidth: val },
        1 => Kernel::InverseDistance { diag: val },
        2 => Kernel::Laplace { bandwidth: val },
        3 => Kernel::Cauchy { bandwidth: val },
        4 => Kernel::GaussianRidge {
            bandwidth: val,
            ridge: get_finite_f64(buf, "kernel ridge")?,
        },
        t => return Err(IoError::Format(format!("unknown kernel tag {t}"))),
    })
}

fn put_tree(buf: &mut BytesMut, tree: &ClusterTree) {
    put_usize(buf, tree.leaf_size);
    put_usize(buf, tree.height);
    put_usize_vec(buf, &tree.perm);
    put_usize(buf, tree.nodes.len());
    for n in &tree.nodes {
        put_usize(buf, n.id);
        put_usize(buf, n.parent.map(|p| p + 1).unwrap_or(0));
        match n.children {
            Some((l, r)) => {
                put_usize(buf, l + 1);
                put_usize(buf, r + 1);
            }
            None => {
                put_usize(buf, 0);
                put_usize(buf, 0);
            }
        }
        put_usize(buf, n.level);
        put_usize(buf, n.start);
        put_usize(buf, n.end);
        put_f64_vec(buf, &n.centroid);
        put_f64(buf, n.diameter);
    }
}

fn get_tree(buf: &mut Bytes) -> Result<ClusterTree, IoError> {
    let leaf_size = get_usize(buf)?;
    let height = get_usize(buf)?;
    let perm = get_usize_vec(buf)?;
    // A serialized node is at least 72 bytes (7 usizes, the centroid length
    // prefix, the diameter), which bounds the node-vector allocation.
    let n_nodes = get_len(buf, 72, "tree node table")?;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let id = get_usize(buf)?;
        let parent_raw = get_usize(buf)?;
        let l = get_usize(buf)?;
        let r = get_usize(buf)?;
        let level = get_usize(buf)?;
        let start = get_usize(buf)?;
        let end = get_usize(buf)?;
        let centroid = get_f64_vec(buf)?;
        let diameter = get_finite_f64(buf, "node diameter")?;
        // Children are encoded shifted by one with 0 = absent; a lone zero
        // in either slot is corruption, not a half-present child pair.
        let children = match (l, r) {
            (0, 0) => None,
            (0, _) | (_, 0) => return format_err("half-present child pair"),
            (l, r) => Some((l - 1, r - 1)),
        };
        nodes.push(TreeNode {
            id,
            parent: if parent_raw == 0 {
                None
            } else {
                Some(parent_raw - 1)
            },
            children,
            level,
            start,
            end,
            centroid,
            diameter,
        });
    }
    validate_tree_topology(&perm, &nodes)?;
    let pos = matrox_tree::invert_permutation(&perm);
    Ok(ClusterTree {
        nodes,
        perm,
        pos,
        leaf_size,
        height,
    })
}

/// Cross-field validation of a deserialized tree: the permutation must be a
/// permutation, node ids must equal their index (every consumer indexes
/// `nodes` by id), parent/child links must stay in range, and point ranges
/// must stay within the permutation.  Everything downstream — the executor,
/// the factorization, the solver sweeps — indexes unchecked on these
/// invariants, so a corrupt stream must be stopped here.
fn validate_tree_topology(perm: &[usize], nodes: &[TreeNode]) -> Result<(), IoError> {
    let n = perm.len();
    let mut seen = vec![false; n];
    for &i in perm {
        if i >= n || seen[i] {
            return format_err("tree permutation is not a permutation");
        }
        seen[i] = true;
    }
    let n_nodes = nodes.len();
    for (i, node) in nodes.iter().enumerate() {
        if node.id != i {
            return format_err(format!("tree node {i} stores id {}", node.id));
        }
        if let Some(p) = node.parent {
            if p >= n_nodes {
                return format_err(format!("tree node {i} has out-of-range parent {p}"));
            }
        }
        if let Some((l, r)) = node.children {
            if l >= n_nodes || r >= n_nodes {
                return format_err(format!("tree node {i} has out-of-range children"));
            }
        }
        if node.start > node.end || node.end > n {
            return format_err(format!(
                "tree node {i} point range {}..{} exceeds {n} points",
                node.start, node.end
            ));
        }
    }
    Ok(())
}

fn put_blockset(buf: &mut BytesMut, bs: &BlockSet) {
    put_usize(buf, bs.blocksize);
    put_usize(buf, bs.groups.len());
    for g in &bs.groups {
        put_usize(buf, g.len());
        for &(i, j) in g {
            put_usize(buf, i);
            put_usize(buf, j);
        }
    }
}

fn get_blockset(buf: &mut Bytes) -> Result<BlockSet, IoError> {
    let blocksize = get_usize(buf)?;
    let n_groups = get_len(buf, 8, "blockset group table")?;
    let mut groups = Vec::with_capacity(n_groups);
    for _ in 0..n_groups {
        let len = get_len(buf, 16, "blockset group")?;
        let mut g = Vec::with_capacity(len);
        for _ in 0..len {
            let i = get_usize(buf)?;
            let j = get_usize(buf)?;
            g.push((i, j));
        }
        groups.push(g);
    }
    Ok(BlockSet { groups, blocksize })
}

fn put_coarsenset(buf: &mut BytesMut, cs: &CoarsenSet) {
    put_usize(buf, cs.agg);
    put_usize(buf, cs.levels.len());
    for (cl, parts) in cs.levels.iter().enumerate() {
        put_usize(buf, parts.len());
        for (p, part) in parts.iter().enumerate() {
            put_usize_vec(buf, part);
            put_usize(buf, cs.costs[cl][p] as usize);
        }
    }
}

fn get_coarsenset(buf: &mut Bytes) -> Result<CoarsenSet, IoError> {
    let agg = get_usize(buf)?;
    let n_levels = get_len(buf, 8, "coarsen level table")?;
    let mut levels = Vec::with_capacity(n_levels);
    let mut costs = Vec::with_capacity(n_levels);
    for _ in 0..n_levels {
        // A serialized partition is at least 16 bytes (empty node list +
        // cost), which bounds the per-level allocations.
        let n_parts = get_len(buf, 16, "coarsen partition table")?;
        let mut parts = Vec::with_capacity(n_parts);
        let mut part_costs = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            parts.push(get_usize_vec(buf)?);
            part_costs.push(get_usize(buf)? as u64);
        }
        levels.push(parts);
        costs.push(part_costs);
    }
    Ok(CoarsenSet { levels, agg, costs })
}

fn put_cds(buf: &mut BytesMut, cds: &Cds) {
    put_f64_vec(buf, &cds.gen_values);
    put_usize(buf, cds.generators.len());
    for g in &cds.generators {
        if g.is_present() {
            put_bool(buf, true);
            put_usize(buf, g.v_offset);
            put_usize(buf, g.u_offset);
            put_usize(buf, g.rows);
            put_usize(buf, g.cols);
        } else {
            put_bool(buf, false);
        }
    }
    put_usize_vec(buf, &cds.sranks);
    put_f64_vec(buf, &cds.d_values);
    put_block_entries(buf, &cds.d_entries);
    put_group_ranges(buf, &cds.d_groups);
    put_f64_vec(buf, &cds.b_values);
    put_block_entries(buf, &cds.b_entries);
    put_group_ranges(buf, &cds.b_groups);
}

fn put_block_entries(buf: &mut BytesMut, entries: &[CdsBlockEntry]) {
    put_usize(buf, entries.len());
    for e in entries {
        put_usize(buf, e.target);
        put_usize(buf, e.source);
        put_usize(buf, e.offset);
        put_usize(buf, e.rows);
        put_usize(buf, e.cols);
    }
}

fn get_block_entries(buf: &mut Bytes) -> Result<Vec<CdsBlockEntry>, IoError> {
    let n = get_len(buf, 40, "block entry table")?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(CdsBlockEntry {
            target: get_usize(buf)?,
            source: get_usize(buf)?,
            offset: get_usize(buf)?,
            rows: get_usize(buf)?,
            cols: get_usize(buf)?,
        });
    }
    Ok(v)
}

fn put_group_ranges(buf: &mut BytesMut, groups: &[GroupRange]) {
    put_usize(buf, groups.len());
    for g in groups {
        put_usize(buf, g.start);
        put_usize(buf, g.end);
    }
}

fn get_group_ranges(buf: &mut Bytes) -> Result<Vec<GroupRange>, IoError> {
    let n = get_len(buf, 16, "group range table")?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(GroupRange {
            start: get_usize(buf)?,
            end: get_usize(buf)?,
        });
    }
    Ok(v)
}

fn get_cds(buf: &mut Bytes) -> Result<Cds, IoError> {
    let gen_values = get_f64_vec(buf)?;
    // A serialized generator is at least its presence byte.
    let n_gen = get_len(buf, 1, "generator table")?;
    let mut generators = Vec::with_capacity(n_gen);
    for _ in 0..n_gen {
        if get_bool(buf)? {
            let g = GeneratorEntry {
                v_offset: get_usize(buf)?,
                u_offset: get_usize(buf)?,
                rows: get_usize(buf)?,
                cols: get_usize(buf)?,
            };
            // A stored-as-present entry must decode as present, or the next
            // save would silently re-encode it absent.
            if !g.is_present() {
                return format_err("generator entry marked present but degenerate");
            }
            generators.push(g);
        } else {
            generators.push(GeneratorEntry {
                v_offset: usize::MAX,
                u_offset: usize::MAX,
                rows: 0,
                cols: 0,
            });
        }
    }
    let sranks = get_usize_vec(buf)?;
    let d_values = get_f64_vec(buf)?;
    let d_entries = get_block_entries(buf)?;
    let d_groups = get_group_ranges(buf)?;
    let b_values = get_f64_vec(buf)?;
    let b_entries = get_block_entries(buf)?;
    let b_groups = get_group_ranges(buf)?;
    let cds = Cds {
        gen_values,
        generators,
        sranks,
        d_values,
        d_entries,
        d_groups,
        b_values,
        b_entries,
        b_groups,
    };
    validate_cds(&cds)?;
    Ok(cds)
}

/// Extent check for one block-entry table: every `offset + rows * cols`
/// window must lie inside its value buffer, and every group range inside the
/// entry table.  The CDS accessors slice unchecked on exactly these bounds.
fn validate_block_tables(
    entries: &[CdsBlockEntry],
    groups: &[GroupRange],
    values_len: usize,
    what: &str,
) -> Result<(), IoError> {
    for e in entries {
        let ok = e
            .rows
            .checked_mul(e.cols)
            .and_then(|n| n.checked_add(e.offset))
            .is_some_and(|end| end <= values_len);
        if !ok {
            return format_err(format!(
                "{what} block ({}, {}) exceeds its {values_len}-element value buffer",
                e.target, e.source
            ));
        }
    }
    for g in groups {
        if g.start > g.end || g.end > entries.len() {
            return format_err(format!("{what} group range exceeds its entry table"));
        }
    }
    Ok(())
}

/// Internal consistency of a deserialized CDS: generator windows inside the
/// generator value buffer, rank array aligned with the generator table,
/// block entries inside their value buffers.  (Consistency against the tree
/// is checked separately once both are decoded.)
fn validate_cds(cds: &Cds) -> Result<(), IoError> {
    if cds.sranks.len() != cds.generators.len() {
        return format_err(format!(
            "rank array has {} entries but the generator table has {}",
            cds.sranks.len(),
            cds.generators.len()
        ));
    }
    for (id, g) in cds.generators.iter().enumerate() {
        if !g.is_present() {
            continue;
        }
        let extent = g.rows.checked_mul(g.cols);
        for offset in [g.v_offset, g.u_offset] {
            let ok = extent
                .and_then(|n| n.checked_add(offset))
                .is_some_and(|end| end <= cds.gen_values.len());
            if !ok {
                return format_err(format!(
                    "generator {id} exceeds the {}-element value buffer",
                    cds.gen_values.len()
                ));
            }
        }
    }
    validate_block_tables(&cds.d_entries, &cds.d_groups, cds.d_values.len(), "near")?;
    validate_block_tables(&cds.b_entries, &cds.b_groups, cds.b_values.len(), "far")?;
    Ok(())
}

// ---------------------------------------------------------------------------
// public API
// ---------------------------------------------------------------------------

fn put_hmatrix_body(buf: &mut BytesMut, h: &HMatrix) {
    put_structure(buf, &h.structure);
    put_kernel(buf, &h.kernel);
    put_f64(buf, h.bacc);
    put_tree(buf, &h.tree);
    // plan
    let d = &h.plan.decisions;
    put_bool(buf, d.block_near);
    put_bool(buf, d.block_far);
    put_bool(buf, d.coarsen_tree);
    put_bool(buf, d.peel_root);
    put_blockset(buf, &h.plan.near_blockset);
    put_blockset(buf, &h.plan.far_blockset);
    put_coarsenset(buf, &h.plan.coarsenset);
    put_cds(buf, &h.plan.cds);
    put_usize(buf, h.plan.tree_height);
    put_usize(buf, h.plan.num_leaves);
}

/// Serialize an [`HMatrix`] to bytes.
pub fn to_bytes(h: &HMatrix) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    put_hmatrix_body(&mut buf, h);
    buf.freeze()
}

/// Deserialize an [`HMatrix`] from bytes.  Timings are not stored and come
/// back zeroed.
///
/// # Errors
/// [`MatroxError::Format`] when the stream is truncated, corrupt, or
/// internally inconsistent; the reader never panics and never allocates
/// beyond the stream length.
pub fn from_bytes(mut data: Bytes) -> Result<HMatrix, MatroxError> {
    if data.remaining() < MAGIC.len() || &data.copy_to_bytes(MAGIC.len())[..] != MAGIC {
        return Err(MatroxError::Format("bad magic header".into()));
    }
    let h = get_hmatrix_body(&mut data)?;
    if data.remaining() != 0 {
        return Err(MatroxError::Format(format!(
            "{} trailing bytes after the HMatrix payload",
            data.remaining()
        )));
    }
    Ok(h)
}

fn get_hmatrix_body(data: &mut Bytes) -> Result<HMatrix, IoError> {
    let structure = get_structure(data)?;
    let kernel = get_kernel(data)?;
    let bacc = get_finite_f64(data, "blocked accuracy")?;
    if bacc <= 0.0 {
        return format_err(format!("blocked accuracy must be positive, got {bacc:e}"));
    }
    let tree = get_tree(data)?;
    let decisions = LoweringDecisions {
        block_near: get_bool(data)?,
        block_far: get_bool(data)?,
        coarsen_tree: get_bool(data)?,
        peel_root: get_bool(data)?,
    };
    let near_blockset = get_blockset(data)?;
    let far_blockset = get_blockset(data)?;
    let coarsenset = get_coarsenset(data)?;
    let cds = get_cds(data)?;
    let tree_height = get_usize(data)?;
    let num_leaves = get_usize(data)?;
    let plan = EvalPlan {
        decisions,
        near_blockset,
        far_blockset,
        coarsenset,
        cds,
        tree_height,
        num_leaves,
    };
    validate_plan_against_tree(&plan, &tree)?;
    Ok(HMatrix {
        tree,
        plan,
        structure,
        kernel,
        bacc,
        timings: InspectorTimings::default(),
        // Like the timings, the requested panel width and kernel selection
        // are runtime tuning knobs (the kernel is machine-specific besides),
        // not part of the stored matrix; reloads use auto.
        panel_width: 0,
        gemm_kernel: matrox_linalg::KernelChoice::Auto,
    })
}

/// Cross-field validation between the two independently-decoded halves of a
/// model: the plan's node-indexed tables must line up with the tree's
/// topology (dims vs. tree vs. rank arrays).  Two fields that are
/// individually well-formed can still disagree after corruption — e.g. a
/// block entry whose target node was re-pointed at an internal node.
fn validate_plan_against_tree(plan: &EvalPlan, tree: &ClusterTree) -> Result<(), IoError> {
    let n_nodes = tree.num_nodes();
    let cds = &plan.cds;
    if cds.generators.len() != n_nodes {
        return format_err(format!(
            "generator table has {} entries for a {n_nodes}-node tree",
            cds.generators.len()
        ));
    }
    if plan.tree_height != tree.height {
        return format_err(format!(
            "plan height {} disagrees with tree height {}",
            plan.tree_height, tree.height
        ));
    }
    if plan.num_leaves != tree.leaves().len() {
        return format_err(format!(
            "plan stores {} leaves but the tree has {}",
            plan.num_leaves,
            tree.leaves().len()
        ));
    }
    // Near (dense) blocks address point ranges of their node pair; coupling
    // blocks address skeleton ranks.  Both index `tree.nodes` unchecked in
    // the executor and solver.
    for e in &cds.d_entries {
        if e.target >= n_nodes || e.source >= n_nodes {
            return format_err("near block references a node outside the tree");
        }
        let (tn, sn) = (&tree.nodes[e.target], &tree.nodes[e.source]);
        if e.rows != tn.num_points() || e.cols != sn.num_points() {
            return format_err(format!(
                "near block ({}, {}) is {}x{} but the nodes hold {}x{} points",
                e.target,
                e.source,
                e.rows,
                e.cols,
                tn.num_points(),
                sn.num_points()
            ));
        }
    }
    for e in &cds.b_entries {
        if e.target >= n_nodes || e.source >= n_nodes {
            return format_err("coupling block references a node outside the tree");
        }
        if e.rows != cds.sranks[e.target] || e.cols != cds.sranks[e.source] {
            return format_err(format!(
                "coupling block ({}, {}) is {}x{} but the skeleton ranks are {}x{}",
                e.target, e.source, e.rows, e.cols, cds.sranks[e.target], cds.sranks[e.source]
            ));
        }
    }
    for bs in [&plan.near_blockset, &plan.far_blockset] {
        for g in &bs.groups {
            if g.iter().any(|&(i, j)| i >= n_nodes || j >= n_nodes) {
                return format_err("blockset pair references a node outside the tree");
            }
        }
    }
    for parts in &plan.coarsenset.levels {
        for part in parts {
            if part.iter().any(|&id| id >= n_nodes) {
                return format_err("coarsen partition references a node outside the tree");
            }
        }
    }
    Ok(())
}

/// Store an HMatrix to a file (the `hmat.cds` artifact).
pub fn save(h: &HMatrix, path: &Path) -> Result<(), MatroxError> {
    std::fs::write(path, to_bytes(h))?;
    Ok(())
}

/// Read a model file, applying the `io-truncate` / `io-flip` failpoints so
/// the fault-injection harness can corrupt streams deterministically
/// without touching the filesystem contents.
fn read_model_file(path: &Path) -> Result<Vec<u8>, MatroxError> {
    let mut data = std::fs::read(path)?;
    if crate::failpoint::should_fire(crate::failpoint::names::IO_TRUNCATE) {
        data.truncate(data.len() / 2);
    }
    if crate::failpoint::should_fire(crate::failpoint::names::IO_FLIP) {
        let mid = data.len() / 2;
        if let Some(b) = data.get_mut(mid) {
            *b ^= 0x01;
        }
    }
    Ok(data)
}

/// Load an HMatrix from a file previously written by [`save`].
pub fn load(path: &Path) -> Result<HMatrix, MatroxError> {
    from_bytes(Bytes::from(read_model_file(path)?))
}

// ---------------------------------------------------------------------------
// factored HMatrix (the `hmat.ulv` artifact)
// ---------------------------------------------------------------------------

fn put_matrix(buf: &mut BytesMut, m: &Matrix) {
    put_usize(buf, m.rows());
    put_usize(buf, m.cols());
    for &x in m.as_slice() {
        put_f64(buf, x);
    }
}

fn get_matrix(buf: &mut Bytes) -> Result<Matrix, IoError> {
    let rows = get_usize(buf)?;
    let cols = get_usize(buf)?;
    let len = rows
        .checked_mul(cols)
        .ok_or_else(|| IoError::Format("matrix shape overflow".into()))?;
    if len
        .checked_mul(8)
        .is_none_or(|bytes| bytes > buf.remaining())
    {
        return format_err(format!(
            "matrix payload {rows}x{cols} exceeds the {} bytes remaining",
            buf.remaining()
        ));
    }
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(get_f64(buf)?);
    }
    if !matrox_linalg::all_finite(&data) {
        return format_err("matrix payload contains non-finite entries");
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

fn put_factor(buf: &mut BytesMut, f: &HssFactor) {
    put_usize(buf, f.n);
    put_usize(buf, f.leaves.len());
    for leaf in &f.leaves {
        match leaf {
            Some(lf) => {
                put_bool(buf, true);
                put_usize(buf, lf.node);
                put_matrix(buf, &lf.chol);
                put_matrix(buf, &lf.e);
            }
            None => put_bool(buf, false),
        }
    }
    put_usize(buf, f.merges.len());
    for merge in &f.merges {
        match merge {
            Some(mf) => {
                put_bool(buf, true);
                put_usize(buf, mf.node);
                put_matrix(buf, &mf.lu.lu);
                put_usize_vec(buf, &mf.lu.piv);
                put_matrix(buf, &mf.t);
            }
            None => put_bool(buf, false),
        }
    }
}

fn get_factor(buf: &mut Bytes) -> Result<HssFactor, IoError> {
    let n = get_usize(buf)?;
    // A serialized slot is at least its presence byte.
    let n_leaves = get_len(buf, 1, "leaf factor table")?;
    let mut leaves = Vec::with_capacity(n_leaves);
    for i in 0..n_leaves {
        if get_bool(buf)? {
            let lf = LeafFactor {
                node: get_usize(buf)?,
                chol: get_matrix(buf)?,
                e: get_matrix(buf)?,
            };
            if lf.node != i {
                return format_err(format!("leaf factor at slot {i} stores node {}", lf.node));
            }
            if lf.chol.rows() != lf.chol.cols() || lf.e.rows() != lf.chol.rows() {
                return format_err(format!("leaf factor {i} has inconsistent shapes"));
            }
            leaves.push(Some(lf));
        } else {
            leaves.push(None);
        }
    }
    let n_merges = get_len(buf, 1, "merge factor table")?;
    let mut merges = Vec::with_capacity(n_merges);
    for i in 0..n_merges {
        if get_bool(buf)? {
            let mf = MergeFactor {
                node: get_usize(buf)?,
                lu: LuFactors {
                    lu: get_matrix(buf)?,
                    piv: get_usize_vec(buf)?,
                },
                t: get_matrix(buf)?,
            };
            if mf.node != i {
                return format_err(format!("merge factor at slot {i} stores node {}", mf.node));
            }
            let m = mf.lu.lu.rows();
            if mf.lu.lu.cols() != m || mf.lu.piv.len() != m || mf.t.rows() != m {
                return format_err(format!("merge factor {i} has inconsistent shapes"));
            }
            // The pivot array is applied as unchecked row swaps during
            // every solve.
            if mf.lu.piv.iter().any(|&p| p >= m) {
                return format_err(format!("merge factor {i} has an out-of-range pivot"));
            }
            merges.push(Some(mf));
        } else {
            merges.push(None);
        }
    }
    Ok(HssFactor {
        n,
        leaves,
        merges,
        timings: FactorTimings::default(),
    })
}

/// Serialize a [`FactoredHMatrix`] (compressed matrix + ULV factors) to
/// bytes.
pub fn to_bytes_factored(fh: &FactoredHMatrix) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC_FACTORED);
    put_hmatrix_body(&mut buf, &fh.hmatrix);
    put_factor(&mut buf, &fh.factor);
    buf.freeze()
}

/// Deserialize a [`FactoredHMatrix`] from bytes.  Timings (inspector and
/// factor) are not stored and come back zeroed.
///
/// # Errors
/// [`MatroxError::Format`] under the same hardening contract as
/// [`from_bytes`], including cross-checks of the factor tables against the
/// reloaded tree.
pub fn from_bytes_factored(mut data: Bytes) -> Result<FactoredHMatrix, MatroxError> {
    if data.remaining() < MAGIC_FACTORED.len()
        || &data.copy_to_bytes(MAGIC_FACTORED.len())[..] != MAGIC_FACTORED
    {
        return Err(MatroxError::Format("bad factored magic header".into()));
    }
    let hmatrix = get_hmatrix_body(&mut data)?;
    let factor = get_factor(&mut data)?;
    if data.remaining() != 0 {
        return Err(MatroxError::Format(format!(
            "{} trailing bytes after the factored payload",
            data.remaining()
        )));
    }
    if factor.n != hmatrix.dim() {
        return Err(MatroxError::Format(format!(
            "factor dimension {} does not match matrix dimension {}",
            factor.n,
            hmatrix.dim()
        )));
    }
    let n_nodes = hmatrix.tree.num_nodes();
    if factor.leaves.len() != n_nodes || factor.merges.len() != n_nodes {
        return Err(MatroxError::Format(format!(
            "factor stores {} leaf / {} merge slots for a {n_nodes}-node tree",
            factor.leaves.len(),
            factor.merges.len()
        )));
    }
    Ok(FactoredHMatrix { hmatrix, factor })
}

/// Store a factored HMatrix to a file (the `hmat.ulv` artifact: solve-ready
/// across processes, no re-factorization needed).
pub fn save_factored(fh: &FactoredHMatrix, path: &Path) -> Result<(), MatroxError> {
    std::fs::write(path, to_bytes_factored(fh))?;
    Ok(())
}

/// Load a factored HMatrix from a file previously written by
/// [`save_factored`].
pub fn load_factored(path: &Path) -> Result<FactoredHMatrix, MatroxError> {
    from_bytes_factored(Bytes::from(read_model_file(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatRoxParams;
    use crate::inspector::inspector;
    use matrox_linalg::Matrix;
    use matrox_points::{generate, DatasetId};
    use rand::SeedableRng;

    fn sample_hmatrix() -> (matrox_points::PointSet, HMatrix) {
        let pts = generate(DatasetId::Grid, 256, 5);
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let params = MatRoxParams::smash_setting().with_leaf_size(32);
        let h = inspector(&pts, &kernel, &params).expect("inspector");
        (pts, h)
    }

    #[test]
    fn roundtrip_preserves_evaluation() {
        let (pts, h) = sample_hmatrix();
        let bytes = to_bytes(&h);
        let h2 = from_bytes(bytes).expect("deserialize");
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let w = Matrix::random_uniform(pts.len(), 3, &mut rng);
        let a = h.matmul(&w).expect("matmul");
        let b = h2.matmul(&w).expect("matmul");
        assert!(matrox_linalg::relative_error(&a, &b) < 1e-14);
        assert_eq!(h2.bacc, h.bacc);
        assert_eq!(h2.structure, h.structure);
    }

    #[test]
    fn file_roundtrip_works() {
        let (_, h) = sample_hmatrix();
        let dir = std::env::temp_dir().join("matrox_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hmat.cds");
        save(&h, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.dim(), h.dim());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let err = from_bytes(Bytes::from_static(b"NOTMATROX_AT_ALL")).unwrap_err();
        match err {
            MatroxError::Format(_) => {}
            other => panic!("expected format error, got {other}"),
        }
    }

    #[test]
    fn truncated_streams_are_rejected_at_every_prefix() {
        let (_, h) = sample_hmatrix();
        let bytes = to_bytes(&h);
        // Every proper prefix must fail cleanly: no panic, no oversized
        // allocation, a Format error.  Step to keep the test quick.
        for len in (0..bytes.len()).step_by(97) {
            let err = from_bytes(Bytes::copy_from_slice(&bytes[..len])).unwrap_err();
            assert!(matches!(err, MatroxError::Format(_)), "prefix {len}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (_, h) = sample_hmatrix();
        let mut data = to_bytes(&h).to_vec();
        data.push(0);
        let err = from_bytes(Bytes::from(data)).unwrap_err();
        match err {
            MatroxError::Format(m) => assert!(m.contains("trailing"), "message: {m}"),
            other => panic!("expected format error, got {other}"),
        }
    }

    #[test]
    fn hostile_length_fields_do_not_allocate() {
        // A header whose first length field claims 2^60 elements: the
        // reader must reject it against the bytes remaining instead of
        // attempting a multi-GiB allocation.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u8(0); // Structure::Hss
        put_f64(&mut buf, 0.0);
        buf.put_u8(0); // Kernel::Gaussian
        put_f64(&mut buf, 1.0);
        put_f64(&mut buf, 1e-5); // bacc
        put_usize(&mut buf, 32); // leaf_size
        put_usize(&mut buf, 1); // height
        put_usize(&mut buf, 1 << 60); // perm length: hostile
        let err = from_bytes(buf.freeze()).unwrap_err();
        match err {
            MatroxError::Format(m) => assert!(m.contains("exceeds"), "message: {m}"),
            other => panic!("expected format error, got {other}"),
        }
    }

    fn factored_hmatrix() -> (matrox_points::PointSet, crate::hmatrix::FactoredHMatrix) {
        // HSS structure + bandwidth at the grid spacing: a well-conditioned
        // SPD kernel matrix the ULV factorization accepts.
        let pts = generate(DatasetId::Grid, 256, 5);
        let kernel = Kernel::Gaussian {
            bandwidth: 1.0 / 16.0,
        };
        let params = MatRoxParams::hss().with_leaf_size(32).with_bacc(1e-7);
        let h = inspector(&pts, &kernel, &params).expect("inspector");
        let fh = h.factorize().expect("HSS SPD matrix must factor");
        (pts, fh)
    }

    #[test]
    fn factored_roundtrip_solves_bitwise_identically() {
        let (pts, fh) = factored_hmatrix();
        let bytes = to_bytes_factored(&fh);
        let fh2 = from_bytes_factored(bytes).expect("deserialize factored");
        let b: Vec<f64> = (0..pts.len()).map(|i| (i as f64 * 0.3).cos()).collect();
        let x1 = fh.solve(&b).expect("solve");
        let x2 = fh2.solve(&b).expect("solve");
        assert_eq!(x1, x2, "reloaded factors must solve bit-for-bit equally");
    }

    #[test]
    fn factored_magic_is_distinct_from_plain() {
        let (_, fh) = factored_hmatrix();
        let bytes = to_bytes_factored(&fh);
        assert!(
            from_bytes(bytes.clone()).is_err(),
            "plain loader must reject"
        );
        let plain = to_bytes(&fh.hmatrix);
        assert!(
            from_bytes_factored(plain).is_err(),
            "factored loader must reject plain files"
        );
    }

    #[test]
    fn factored_file_roundtrip_works() {
        let (pts, fh) = factored_hmatrix();
        let dir = std::env::temp_dir().join("matrox_io_factored_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hmat.ulv");
        save_factored(&fh, &path).unwrap();
        let loaded = load_factored(&path).unwrap();
        assert_eq!(loaded.dim(), fh.dim());
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let b = Matrix::random_uniform(pts.len(), 3, &mut rng);
        assert_eq!(
            loaded.solve_matrix(&b).expect("solve").as_slice(),
            fh.solve_matrix(&b).expect("solve").as_slice()
        );
        std::fs::remove_file(&path).ok();
    }
}
