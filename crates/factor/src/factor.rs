//! The ULV-style HSS factorization (leaf Cholesky + sibling merges).

use matrox_analysis::CdsBlockEntry;
use matrox_codegen::EvalPlan;
use matrox_exec::{effective_grain, ExecOptions};
use matrox_linalg::{
    cholesky, cholesky_solve_matrix, gemm_slices, gemm_tn_slices, lu_factor, lu_solve_matrix,
    LuFactors, Matrix,
};
use matrox_tree::ClusterTree;
use rayon::prelude::*;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Error raised while factoring a compressed matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorError {
    /// The plan was not built with the HSS (weak admissibility) structure:
    /// the merge step can only fold sibling coupling blocks, not arbitrary
    /// off-diagonal dense blocks.
    UnsupportedStructure(String),
    /// A leaf diagonal block is not (numerically) positive definite; the
    /// factorization requires an SPD kernel matrix.
    NotPositiveDefinite {
        /// Cluster-tree node whose diagonal block failed.
        node: usize,
        /// Failing pivot index within the block.
        pivot: usize,
        /// Failing pivot value.
        value: f64,
    },
    /// A sibling-merge system was singular (the compressed operator is not
    /// invertible at the requested accuracy).
    SingularMerge {
        /// Internal node whose merge system broke down.
        node: usize,
    },
    /// The plan/tree/right-hand side handed to a solve do not belong to this
    /// factorization (wrong dimensions, missing per-node factors).  The
    /// public entry points return this instead of panicking so a stale or
    /// mismatched handle is a request failure, not a process failure.
    PlanMismatch(String),
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::UnsupportedStructure(m) => write!(f, "unsupported structure: {m}"),
            FactorError::NotPositiveDefinite { node, pivot, value } => write!(
                f,
                "leaf block of node {node} is not positive definite (pivot {pivot} = {value:e})"
            ),
            FactorError::SingularMerge { node } => {
                write!(f, "sibling merge system at node {node} is singular")
            }
            FactorError::PlanMismatch(m) => write!(f, "plan mismatch: {m}"),
        }
    }
}
impl std::error::Error for FactorError {}

/// Wall-clock breakdown of the factorization, mirroring
/// `InspectorTimings` for the inspector phases.
#[derive(Debug, Clone, Copy, Default)]
pub struct FactorTimings {
    /// Leaf phase: dense Cholesky of every diagonal block plus the
    /// `E_i = D_i^{-1} U_i` solves.
    pub leaf_cholesky: Duration,
    /// Merge phase: assembling and LU-factoring the sibling systems and
    /// propagating the reduced matrices `G_i` up the tree.
    pub merge: Duration,
    /// Number of ridge-escalation retries the breakdown-recovery loop needed
    /// before the factorization succeeded (0 = first attempt was clean).
    /// Written by `matrox_core::HMatrix::factorize`; a direct [`factor`]
    /// call always reports 0.
    pub ridge_attempts: u32,
    /// The diagonal shift `lambda` the successful attempt was factored with
    /// (`K~ + lambda I`); 0 when no escalation was needed.
    pub applied_ridge: f64,
}

impl FactorTimings {
    /// Total factorization time.
    pub fn total(&self) -> Duration {
        self.leaf_cholesky + self.merge
    }
}

/// Per-leaf factors: the Cholesky factor of the diagonal block and the
/// pre-solved basis `E_i = D_i^{-1} U_i` reused by every solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafFactor {
    /// Leaf node id.
    pub node: usize,
    /// Lower Cholesky factor `L_i` of the leaf diagonal block.
    pub chol: Matrix,
    /// `E_i = D_i^{-1} U_i` (`n_i x srank_i`).
    pub e: Matrix,
}

/// Per-internal-node factors of the sibling merge system.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeFactor {
    /// Internal node id `p` (children `l`, `r`).
    pub node: usize,
    /// Packed LU of `M_p = [I, G_l B_{l,r}; G_r B_{r,l}, I]`
    /// (`(k_l + k_r)` square).
    pub lu: LuFactors,
    /// `T_p = M_p^{-1} [G_l R_l; G_r R_r]` (`(k_l + k_r) x k_p`): maps the
    /// outer skeleton load `s_p` to the correction of the children's
    /// skeleton coefficients during the downward sweep.
    pub t: Matrix,
}

/// The ULV-style factorization of an HSS-compressed SPD kernel matrix.
///
/// Produced by [`factor`]; consumed by
/// [`solve_matrix`](HssFactor::solve_matrix) /
/// [`solve`](HssFactor::solve) together with the plan and tree it was
/// factored from.
#[derive(Debug, Clone)]
pub struct HssFactor {
    /// Problem size `N`.
    pub n: usize,
    /// Leaf factors, indexed by node id (`None` for internal nodes).
    pub leaves: Vec<Option<LeafFactor>>,
    /// Merge factors, indexed by node id (`None` for leaves).
    pub merges: Vec<Option<MergeFactor>>,
    /// Wall-clock breakdown of the factorization (zeroed after
    /// deserialization, like the inspector timings).
    pub timings: FactorTimings,
}

impl HssFactor {
    /// Bytes of factor payload (Cholesky factors, pre-solved bases, merge
    /// systems) — the storage the solver adds on top of the CDS buffers.
    pub fn storage_bytes(&self) -> usize {
        let leaf: usize = self
            .leaves
            .iter()
            .flatten()
            .map(|l| l.chol.len() + l.e.len())
            .sum();
        let merge: usize = self
            .merges
            .iter()
            .flatten()
            .map(|m| m.lu.lu.len() + m.lu.piv.len() + m.t.len())
            .sum();
        (leaf + merge) * std::mem::size_of::<f64>()
    }
}

/// Index the leaf diagonal blocks and sibling coupling blocks of an HSS
/// plan, rejecting plans whose structure the merge recursion cannot fold.
pub(crate) struct HssBlocks<'a> {
    /// Leaf diagonal entries by node id.
    pub diag: HashMap<usize, &'a CdsBlockEntry>,
    /// Coupling entries by `(target, source)` node pair.
    pub coupling: HashMap<(usize, usize), &'a CdsBlockEntry>,
}

pub(crate) fn index_hss_blocks<'a>(
    plan: &'a EvalPlan,
    tree: &ClusterTree,
) -> Result<HssBlocks<'a>, FactorError> {
    let cds = &plan.cds;
    let mut diag = HashMap::with_capacity(cds.d_entries.len());
    for e in &cds.d_entries {
        if e.target != e.source || !tree.nodes[e.target].is_leaf() {
            return Err(FactorError::UnsupportedStructure(format!(
                "near block ({}, {}) is off-diagonal; the ULV factorization requires the \
                 HSS (weak admissibility) structure",
                e.target, e.source
            )));
        }
        diag.insert(e.target, e);
    }
    for &leaf in &tree.leaves() {
        if !diag.contains_key(&leaf) {
            return Err(FactorError::UnsupportedStructure(format!(
                "leaf node {leaf} has no stored diagonal block"
            )));
        }
    }
    let mut coupling = HashMap::with_capacity(cds.b_entries.len());
    for e in &cds.b_entries {
        let sib = |a: usize, b: usize| {
            tree.nodes[a].parent.is_some() && tree.nodes[a].parent == tree.nodes[b].parent
        };
        if !sib(e.target, e.source) {
            return Err(FactorError::UnsupportedStructure(format!(
                "coupling block ({}, {}) links non-sibling nodes; the merge recursion \
                 requires HSS sibling coupling only",
                e.target, e.source
            )));
        }
        coupling.insert((e.target, e.source), e);
    }
    Ok(HssBlocks { diag, coupling })
}

/// Borrow a coupling block `B_{i,j}` as a slice (empty when either srank is
/// zero and the pair was therefore never stored).
pub(crate) fn coupling_block<'a>(
    plan: &'a EvalPlan,
    blocks: &HssBlocks<'a>,
    i: usize,
    j: usize,
) -> &'a [f64] {
    match blocks.coupling.get(&(i, j)) {
        Some(e) => plan.cds.b_block(e),
        None => &[],
    }
}

/// Compute the ULV-style factorization of an HSS-compressed SPD matrix.
///
/// `opts.parallel_tree` selects the level-parallel sweeps (the per-node
/// arithmetic is identical either way, so results are bitwise independent of
/// the choice and of the pool width); `opts.grain` is honored exactly as in
/// the executor.
pub fn factor(
    plan: &EvalPlan,
    tree: &ClusterTree,
    opts: &ExecOptions,
) -> Result<HssFactor, FactorError> {
    factor_with_ridge(plan, tree, opts, 0.0)
}

/// [`factor`] with a diagonal shift: factors `K~ + ridge I` by adding
/// `ridge` to the diagonal of every leaf diagonal block before its Cholesky.
///
/// In the HSS form the identity only touches the leaf diagonal blocks —
/// off-diagonal content lives in the low-rank coupling factors — so shifting
/// the leaves shifts the whole operator.  This is the primitive behind the
/// breakdown-recovery loop in `matrox_core::HMatrix::factorize`, which
/// escalates `ridge` when a barely-non-SPD kernel matrix makes a leaf
/// Cholesky fail.  A negative or non-finite ridge is rejected as a
/// [`FactorError::PlanMismatch`].
pub fn factor_with_ridge(
    plan: &EvalPlan,
    tree: &ClusterTree,
    opts: &ExecOptions,
    ridge: f64,
) -> Result<HssFactor, FactorError> {
    if !ridge.is_finite() || ridge < 0.0 {
        return Err(FactorError::PlanMismatch(format!(
            "ridge shift must be finite and non-negative, got {ridge:e}"
        )));
    }
    let blocks = index_hss_blocks(plan, tree)?;
    let n_nodes = tree.num_nodes();
    let parallel = opts.parallel_tree;
    let grain = effective_grain(opts);

    let mut leaves: Vec<Option<LeafFactor>> = vec![None; n_nodes];
    let mut merges: Vec<Option<MergeFactor>> = vec![None; n_nodes];
    // Reduced matrices G_i = V_i^T K_i^{-1} U_i, alive only during the
    // factorization (the solve never needs them: they are folded into the
    // merge systems and T_p maps).
    let mut g: Vec<Matrix> = vec![Matrix::zeros(0, 0); n_nodes];

    // ---- leaf phase -------------------------------------------------------
    let t0 = Instant::now();
    let leaf_ids = tree.leaves();
    let leaf_results: Vec<Result<(usize, LeafFactor, Matrix), FactorError>> = if parallel {
        leaf_ids
            .par_iter()
            .with_min_len(grain)
            .map(|&id| factor_leaf(plan, tree, &blocks, id, ridge))
            .collect()
    } else {
        leaf_ids
            .iter()
            .map(|&id| factor_leaf(plan, tree, &blocks, id, ridge))
            .collect()
    };
    for r in leaf_results {
        let (id, lf, gi) = r?;
        leaves[id] = Some(lf);
        g[id] = gi;
    }
    let leaf_cholesky = t0.elapsed();

    // ---- merge phase: internal levels bottom-up ---------------------------
    let t0 = Instant::now();
    for level in (0..tree.height).rev() {
        let ids: Vec<usize> = tree
            .nodes_at_level(level)
            .into_iter()
            .filter(|&id| !tree.nodes[id].is_leaf())
            .collect();
        if ids.is_empty() {
            continue;
        }
        let results: Vec<Result<(usize, MergeFactor, Matrix), FactorError>> = if parallel {
            ids.par_iter()
                .with_min_len(grain)
                .map(|&id| factor_internal(plan, tree, &blocks, &g, id))
                .collect()
        } else {
            ids.iter()
                .map(|&id| factor_internal(plan, tree, &blocks, &g, id))
                .collect()
        };
        for r in results {
            let (id, mf, gp) = r?;
            merges[id] = Some(mf);
            g[id] = gp;
        }
    }
    let merge = t0.elapsed();

    Ok(HssFactor {
        n: tree.perm.len(),
        leaves,
        merges,
        timings: FactorTimings {
            leaf_cholesky,
            merge,
            ridge_attempts: 0,
            applied_ridge: ridge,
        },
    })
}

/// Leaf step: Cholesky of the diagonal block, `E_i = D_i^{-1} U_i`,
/// `G_i = V_i^T E_i`.
fn factor_leaf(
    plan: &EvalPlan,
    tree: &ClusterTree,
    blocks: &HssBlocks<'_>,
    id: usize,
    ridge: f64,
) -> Result<(usize, LeafFactor, Matrix), FactorError> {
    let cds = &plan.cds;
    let node = &tree.nodes[id];
    let ni = node.num_points();
    let entry = blocks.diag[&id];
    debug_assert_eq!((entry.rows, entry.cols), (ni, ni));
    let mut d = Matrix::from_vec(ni, ni, cds.d_block(entry).to_vec());
    if ridge > 0.0 {
        for i in 0..ni {
            let v = d.get(i, i) + ridge;
            d.set(i, i, v);
        }
    }
    let chol = cholesky(&d).map_err(|e| FactorError::NotPositiveDefinite {
        node: id,
        pivot: e.pivot,
        value: e.value,
    })?;
    let (u, urows, ucols) = cds.u(id);
    let (e, gi) = if ucols == 0 {
        (Matrix::zeros(ni, 0), Matrix::zeros(0, 0))
    } else {
        debug_assert_eq!(urows, ni, "leaf basis rows must match leaf size");
        let um = Matrix::from_vec(urows, ucols, u.to_vec());
        let e = cholesky_solve_matrix(&chol, &um);
        let (v, vrows, vcols) = cds.v(id);
        let mut gi = Matrix::zeros(vcols, ucols);
        gemm_tn_slices(v, vrows, vcols, e.as_slice(), ucols, gi.as_mut_slice());
        (e, gi)
    };
    Ok((id, LeafFactor { node: id, chol, e }, gi))
}

/// Merge step for internal node `p`: assemble and LU-factor
/// `M_p = [I, G_l B_{l,r}; G_r B_{r,l}, I]`, then push the reduced matrix
/// through the transfer matrices: `G_p = W_p^T M_p^{-1} [G_l R_l; G_r R_r]`.
fn factor_internal(
    plan: &EvalPlan,
    tree: &ClusterTree,
    blocks: &HssBlocks<'_>,
    g: &[Matrix],
    id: usize,
) -> Result<(usize, MergeFactor, Matrix), FactorError> {
    let cds = &plan.cds;
    // INVARIANT: `factor_internal` is only called on ids that
    // `tree.nodes[id].is_leaf()` filtered out, and a non-leaf node always
    // carries a child pair by `ClusterTree` construction.
    let (l, r) = tree.nodes[id].children.expect("internal node has children");
    let kl = cds.sranks[l];
    let kr = cds.sranks[r];
    let m = kl + kr;

    let mut mm = Matrix::identity(m);
    if kl > 0 && kr > 0 {
        let b_lr = coupling_block(plan, blocks, l, r);
        let b_rl = coupling_block(plan, blocks, r, l);
        debug_assert_eq!(b_lr.len(), kl * kr);
        debug_assert_eq!(b_rl.len(), kr * kl);
        // Top-right block: G_l * B_{l,r}.
        let mut tr = Matrix::zeros(kl, kr);
        gemm_slices(g[l].as_slice(), kl, kl, b_lr, kr, tr.as_mut_slice());
        for i in 0..kl {
            mm.row_mut(i)[kl..m].copy_from_slice(tr.row(i));
        }
        // Bottom-left block: G_r * B_{r,l}.
        let mut bl = Matrix::zeros(kr, kl);
        gemm_slices(g[r].as_slice(), kr, kr, b_rl, kl, bl.as_mut_slice());
        for i in 0..kr {
            mm.row_mut(kl + i)[0..kl].copy_from_slice(bl.row(i));
        }
    }
    let lu = lu_factor(&mm).map_err(|_| FactorError::SingularMerge { node: id })?;

    let kp = cds.sranks[id];
    let (t, gp) = if kp == 0 {
        (Matrix::zeros(m, 0), Matrix::zeros(0, 0))
    } else {
        let (rgen, rrows, rcols) = cds.u(id);
        debug_assert_eq!(rrows, m, "transfer rows must equal children sranks");
        debug_assert_eq!(rcols, kp);
        // RHS = [G_l R_l; G_r R_r] stacked by child.
        let mut rhs = Matrix::zeros(m, kp);
        if kl > 0 {
            gemm_slices(
                g[l].as_slice(),
                kl,
                kl,
                &rgen[0..kl * kp],
                kp,
                &mut rhs.as_mut_slice()[0..kl * kp],
            );
        }
        if kr > 0 {
            gemm_slices(
                g[r].as_slice(),
                kr,
                kr,
                &rgen[kl * kp..],
                kp,
                &mut rhs.as_mut_slice()[kl * kp..],
            );
        }
        let t = lu_solve_matrix(&lu, &rhs);
        let (w, wrows, wcols) = cds.v(id);
        debug_assert_eq!((wrows, wcols), (m, kp));
        let mut gp = Matrix::zeros(kp, kp);
        gemm_tn_slices(w, wrows, wcols, t.as_slice(), kp, gp.as_mut_slice());
        (t, gp)
    };
    Ok((id, MergeFactor { node: id, lu, t }, gp))
}
