//! Forward/backward solve sweeps over an [`HssFactor`].

use crate::factor::{coupling_block, index_hss_blocks, FactorError, HssFactor};
use matrox_codegen::EvalPlan;
use matrox_exec::{effective_grain, ExecOptions};
use matrox_linalg::{cholesky_solve_matrix, gemm_slices, gemm_tn_slices, lu_solve_matrix, Matrix};
use matrox_tree::ClusterTree;
use rayon::prelude::*;

impl HssFactor {
    /// Solve `K~ X = B` for a multi-column right-hand side.
    ///
    /// `plan` and `tree` must be the ones this factorization was computed
    /// from (the sweeps re-read the bases, transfer and coupling blocks from
    /// the CDS buffers instead of duplicating them in the factor).
    ///
    /// # Errors
    /// Returns [`FactorError::PlanMismatch`] on dimension mismatch or when
    /// `plan`/`tree` do not match the factorization (missing per-node
    /// factors), and [`FactorError::UnsupportedStructure`] when `plan` is not
    /// an HSS plan at all.
    pub fn solve_matrix(
        &self,
        plan: &EvalPlan,
        tree: &ClusterTree,
        b: &Matrix,
        opts: &ExecOptions,
    ) -> Result<Matrix, FactorError> {
        let n = tree.perm.len();
        let q = b.cols();
        if b.rows() != n {
            return Err(FactorError::PlanMismatch(format!(
                "right-hand side has {} rows but the tree orders N = {n} points",
                b.rows()
            )));
        }
        if self.n != n {
            return Err(FactorError::PlanMismatch(format!(
                "factor was computed for N = {} but the tree orders N = {n} points",
                self.n
            )));
        }
        let blocks = index_hss_blocks(plan, tree)?;
        // Validate the per-node factor inventory up front so the sweep
        // closures below can index unconditionally: after this loop, every
        // leaf has a `LeafFactor` and every internal node a `MergeFactor`.
        if self.leaves.len() != tree.num_nodes() || self.merges.len() != tree.num_nodes() {
            return Err(FactorError::PlanMismatch(format!(
                "factor stores {} leaf / {} merge slots but the tree has {} nodes",
                self.leaves.len(),
                self.merges.len(),
                tree.num_nodes()
            )));
        }
        for id in 0..tree.num_nodes() {
            if tree.nodes[id].is_leaf() {
                if self.leaves[id].is_none() {
                    return Err(FactorError::PlanMismatch(format!(
                        "leaf node {id} has no leaf factor; was this factor computed from \
                         a different tree?"
                    )));
                }
            } else if self.merges[id].is_none() {
                return Err(FactorError::PlanMismatch(format!(
                    "internal node {id} has no merge factor; was this factor computed \
                     from a different tree?"
                )));
            }
        }
        let cds = &plan.cds;
        let n_nodes = tree.num_nodes();
        let parallel = opts.parallel_tree;
        let grain = effective_grain(opts);

        // Permute B into tree order so every node's rows are contiguous.
        let mut b_perm = vec![0.0f64; n * q];
        for p in 0..n {
            b_perm[p * q..(p + 1) * q].copy_from_slice(b.row(tree.perm[p]));
        }

        // ---- upward sweep: leaves -----------------------------------------
        // y_i = D_i^{-1} b_i (kept for the final combine) and
        // bhat_i = V_i^T y_i.
        let mut y: Vec<Matrix> = vec![Matrix::zeros(0, 0); n_nodes];
        let mut bhat: Vec<Matrix> = vec![Matrix::zeros(0, q); n_nodes];
        let leaf_ids = tree.leaves();
        let leaf_up = |&id: &usize| -> (usize, Matrix, Matrix) {
            let node = &tree.nodes[id];
            let ni = node.num_points();
            // INVARIANT: the inventory check before the sweeps guarantees
            // every leaf id has a leaf factor.
            let lf = self.leaves[id]
                .as_ref()
                .expect("every leaf has a leaf factor");
            let bi = Matrix::from_vec(ni, q, b_perm[node.start * q..node.end * q].to_vec());
            let yi = cholesky_solve_matrix(&lf.chol, &bi);
            let (v, vrows, vcols) = cds.v(id);
            let mut bh = Matrix::zeros(vcols, q);
            if vcols > 0 {
                gemm_tn_slices(v, vrows, vcols, yi.as_slice(), q, bh.as_mut_slice());
            }
            (id, yi, bh)
        };
        let leaf_results: Vec<(usize, Matrix, Matrix)> = if parallel {
            leaf_ids
                .par_iter()
                .with_min_len(grain)
                .map(leaf_up)
                .collect()
        } else {
            leaf_ids.iter().map(leaf_up).collect()
        };
        for (id, yi, bh) in leaf_results {
            y[id] = yi;
            bhat[id] = bh;
        }

        // ---- upward sweep: internal levels, deepest first -----------------
        // One small M_p solve per internal node yields the skeleton
        // coefficients t_p of K_p^{-1} b_p; bhat_p follows from the transfer.
        let mut tcoef: Vec<Matrix> = vec![Matrix::zeros(0, q); n_nodes];
        for level in (0..tree.height).rev() {
            let ids: Vec<usize> = tree
                .nodes_at_level(level)
                .into_iter()
                .filter(|&id| !tree.nodes[id].is_leaf())
                .collect();
            if ids.is_empty() {
                continue;
            }
            let up = |&id: &usize| -> (usize, Matrix, Matrix) {
                // INVARIANT: ids are filtered to non-leaves, which always
                // carry children; the inventory check before the sweeps
                // guarantees every internal id has a merge factor.
                let (l, r) = tree.nodes[id].children.unwrap();
                // INVARIANT: same inventory check covers the merge factors.
                let mf = self.merges[id]
                    .as_ref()
                    .expect("every internal node has a merge factor");
                let rhs = bhat[l].vstack(&bhat[r]);
                let t = lu_solve_matrix(&mf.lu, &rhs);
                let kp = cds.sranks[id];
                let bh = if kp > 0 {
                    let (w, wrows, wcols) = cds.v(id);
                    let mut bh = Matrix::zeros(wcols, q);
                    gemm_tn_slices(w, wrows, wcols, t.as_slice(), q, bh.as_mut_slice());
                    bh
                } else {
                    Matrix::zeros(0, q)
                };
                (id, t, bh)
            };
            let results: Vec<(usize, Matrix, Matrix)> = if parallel {
                ids.par_iter().with_min_len(grain).map(up).collect()
            } else {
                ids.iter().map(up).collect()
            };
            for (id, t, bh) in results {
                tcoef[id] = t;
                bhat[id] = bh;
            }
        }

        // ---- downward sweep: propagate outer skeleton loads ---------------
        // s_i is the far-field load imposed on node i from outside its
        // subtree; the root has none.  t'_p = t_p - T_p s_p corrects the
        // upward coefficients, then each child receives
        // s_c = B_{c,sib} t'_sib + R_c s_p.
        let mut s: Vec<Matrix> = (0..n_nodes)
            .map(|id| Matrix::zeros(cds.sranks[id], q))
            .collect();
        for level in 0..tree.height {
            let ids: Vec<usize> = tree
                .nodes_at_level(level)
                .into_iter()
                .filter(|&id| !tree.nodes[id].is_leaf())
                .collect();
            if ids.is_empty() {
                continue;
            }
            let down = |&id: &usize| -> [(usize, Matrix); 2] {
                // INVARIANT: same as the upward sweep — non-leaf ids carry
                // children and a merge factor (checked before the sweeps).
                let (l, r) = tree.nodes[id].children.unwrap();
                let kl = cds.sranks[l];
                let kr = cds.sranks[r];
                let m = kl + kr;
                let kp = cds.sranks[id];
                // INVARIANT: internal ids carry merge factors (see above).
                let mf = self.merges[id].as_ref().unwrap();
                let mut t = tcoef[id].clone();
                if kp > 0 {
                    // t -= T_p * s_p.
                    let mut corr = Matrix::zeros(m, q);
                    gemm_slices(
                        mf.t.as_slice(),
                        m,
                        kp,
                        s[id].as_slice(),
                        q,
                        corr.as_mut_slice(),
                    );
                    t.sub_assign(&corr);
                }
                let t_l = &t.as_slice()[0..kl * q];
                let t_r = &t.as_slice()[kl * q..];
                let rgen = if kp > 0 { cds.u(id).0 } else { &[][..] };
                let mut s_l = Matrix::zeros(kl, q);
                if kl > 0 {
                    if kr > 0 {
                        let b_lr = coupling_block(plan, &blocks, l, r);
                        gemm_slices(b_lr, kl, kr, t_r, q, s_l.as_mut_slice());
                    }
                    if kp > 0 {
                        gemm_slices(
                            &rgen[0..kl * kp],
                            kl,
                            kp,
                            s[id].as_slice(),
                            q,
                            s_l.as_mut_slice(),
                        );
                    }
                }
                let mut s_r = Matrix::zeros(kr, q);
                if kr > 0 {
                    if kl > 0 {
                        let b_rl = coupling_block(plan, &blocks, r, l);
                        gemm_slices(b_rl, kr, kl, t_l, q, s_r.as_mut_slice());
                    }
                    if kp > 0 {
                        gemm_slices(
                            &rgen[kl * kp..],
                            kr,
                            kp,
                            s[id].as_slice(),
                            q,
                            s_r.as_mut_slice(),
                        );
                    }
                }
                [(l, s_l), (r, s_r)]
            };
            let results: Vec<[(usize, Matrix); 2]> = if parallel {
                ids.par_iter().with_min_len(grain).map(down).collect()
            } else {
                ids.iter().map(down).collect()
            };
            for pushes in results {
                for (child, sc) in pushes {
                    s[child] = sc;
                }
            }
        }

        // ---- leaf combine: x_i = y_i - E_i s_i ----------------------------
        let combine = |&id: &usize| -> (usize, Matrix) {
            // INVARIANT: leaf ids all carry a leaf factor (checked before
            // the sweeps).
            let lf = self.leaves[id].as_ref().unwrap();
            let mut xi = y[id].clone();
            let k = lf.e.cols();
            if k > 0 {
                let ni = lf.e.rows();
                let mut corr = Matrix::zeros(ni, q);
                gemm_slices(
                    lf.e.as_slice(),
                    ni,
                    k,
                    s[id].as_slice(),
                    q,
                    corr.as_mut_slice(),
                );
                xi.sub_assign(&corr);
            }
            (id, xi)
        };
        let finals: Vec<(usize, Matrix)> = if parallel {
            leaf_ids
                .par_iter()
                .with_min_len(grain)
                .map(combine)
                .collect()
        } else {
            leaf_ids.iter().map(combine).collect()
        };
        let mut x_perm = vec![0.0f64; n * q];
        for (id, xi) in finals {
            let node = &tree.nodes[id];
            x_perm[node.start * q..node.end * q].copy_from_slice(xi.as_slice());
        }

        // Un-permute the solution back to the input ordering.
        let mut x = Matrix::zeros(n, q);
        for p in 0..n {
            x.row_mut(tree.perm[p])
                .copy_from_slice(&x_perm[p * q..(p + 1) * q]);
        }
        Ok(x)
    }

    /// Solve `K~ x = b` for a single right-hand-side vector.
    ///
    /// # Errors
    /// Same contract as [`solve_matrix`](HssFactor::solve_matrix).
    pub fn solve(
        &self,
        plan: &EvalPlan,
        tree: &ClusterTree,
        b: &[f64],
        opts: &ExecOptions,
    ) -> Result<Vec<f64>, FactorError> {
        let bm = Matrix::from_vec(b.len(), 1, b.to_vec());
        Ok(self.solve_matrix(plan, tree, &bm, opts)?.into_vec())
    }
}

#[cfg(test)]
mod tests {
    use crate::factor::{factor, FactorError};
    use matrox_codegen::{generate_plan, CodegenParams, EvalPlan};
    use matrox_compress::{compress, CompressionParams};
    use matrox_exec::{execute, ExecOptions};
    use matrox_linalg::{relative_error, Matrix};
    use matrox_points::{generate, DatasetId, Kernel};
    use matrox_sampling::sample_nodes_exhaustive;
    use matrox_tree::{ClusterTree, HTree, PartitionMethod, Structure};
    use rand::SeedableRng;

    fn fixture(n: usize, structure: Structure, bandwidth: f64) -> (ClusterTree, EvalPlan) {
        use matrox_analysis::{build_blockset, build_cds, build_coarsenset, CoarsenParams};
        let pts = generate(DatasetId::Grid, n, 3);
        let kernel = Kernel::Gaussian { bandwidth };
        let tree = ClusterTree::build(&pts, PartitionMethod::Auto, 32, 0);
        let htree = HTree::build(&tree, structure);
        let sampling = sample_nodes_exhaustive(&pts, &tree);
        let c = compress(
            &pts,
            &tree,
            &htree,
            &kernel,
            &sampling,
            &CompressionParams {
                bacc: 1e-9,
                max_rank: 256,
                grain: 0,
            },
        );
        let near = build_blockset(&htree.near_pairs(), tree.num_nodes(), 2);
        let far = build_blockset(&htree.far_pairs(), tree.num_nodes(), 4);
        let cs = build_coarsenset(&tree, &c.sranks, &CoarsenParams { p: 4, agg: 2 });
        let cds = build_cds(&tree, &c, &near, &far, &cs);
        let plan = generate_plan(
            near,
            far,
            cs,
            cds,
            tree.height,
            tree.leaves().len(),
            &CodegenParams::default(),
        );
        (tree, plan)
    }

    /// Grid spacing for an `n`-point 2-d grid: bandwidths around this value
    /// give a well-conditioned SPD Gaussian kernel matrix.
    fn grid_spacing(n: usize) -> f64 {
        1.0 / (n as f64).sqrt()
    }

    #[test]
    fn solve_inverts_the_compressed_operator() {
        let n = 512;
        let (tree, plan) = fixture(n, Structure::Hss, grid_spacing(n));
        let f = factor(&plan, &tree, &ExecOptions::full()).expect("factor");
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let b = Matrix::random_uniform(n, 4, &mut rng);
        let x = f
            .solve_matrix(&plan, &tree, &b, &ExecOptions::full())
            .expect("solve");
        // Applying the compressed operator to the solution must reproduce b
        // to near machine precision: the sweeps invert K~ exactly.
        let back = execute(&plan, &tree, &x, &ExecOptions::sequential());
        let err = relative_error(&back, &b);
        assert!(err < 1e-10, "K~ x != b (err {err})");
    }

    #[test]
    fn vector_and_matrix_solves_agree() {
        let n = 256;
        let (tree, plan) = fixture(n, Structure::Hss, grid_spacing(n));
        let f = factor(&plan, &tree, &ExecOptions::sequential()).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let xv = f
            .solve(&plan, &tree, &b, &ExecOptions::sequential())
            .unwrap();
        let bm = Matrix::from_vec(n, 1, b.clone());
        let xm = f
            .solve_matrix(&plan, &tree, &bm, &ExecOptions::sequential())
            .unwrap();
        assert_eq!(xv, xm.into_vec(), "q = 1 paths must agree bitwise");
    }

    #[test]
    fn parallel_and_sequential_sweeps_are_bitwise_identical() {
        let n = 512;
        let (tree, plan) = fixture(n, Structure::Hss, grid_spacing(n));
        let f_seq = factor(&plan, &tree, &ExecOptions::sequential()).unwrap();
        let f_par = factor(&plan, &tree, &ExecOptions::full()).unwrap();
        assert_eq!(f_seq.leaves, f_par.leaves);
        assert_eq!(f_seq.merges, f_par.merges);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let b = Matrix::random_uniform(n, 3, &mut rng);
        let x_seq = f_seq
            .solve_matrix(&plan, &tree, &b, &ExecOptions::sequential())
            .unwrap();
        let x_par = f_par
            .solve_matrix(&plan, &tree, &b, &ExecOptions::full())
            .unwrap();
        assert_eq!(x_seq.as_slice(), x_par.as_slice());
    }

    #[test]
    fn non_hss_structures_are_rejected() {
        let n = 256;
        let (tree, plan) = fixture(n, Structure::Geometric { tau: 0.65 }, 0.5);
        match factor(&plan, &tree, &ExecOptions::full()) {
            Err(FactorError::UnsupportedStructure(_)) => {}
            other => panic!("expected UnsupportedStructure, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_single_leaf_plan_is_rejected_not_mis_solved() {
        // 24 points with leaf size 32: the tree is one node.  The blocking
        // stage stores no blocks at all for a single-node tree (the executor
        // is equally degenerate there), so the factorization must surface a
        // structure error instead of silently returning a wrong solution.
        use matrox_analysis::{build_blockset, build_cds, build_coarsenset, CoarsenParams};
        let pts = generate(DatasetId::Grid, 24, 3);
        let kernel = Kernel::Gaussian { bandwidth: 0.2 };
        let tree = ClusterTree::build(&pts, PartitionMethod::Auto, 32, 0);
        let htree = HTree::build(&tree, Structure::Hss);
        let sampling = sample_nodes_exhaustive(&pts, &tree);
        let c = compress(
            &pts,
            &tree,
            &htree,
            &kernel,
            &sampling,
            &CompressionParams::default(),
        );
        let near = build_blockset(&htree.near_pairs(), tree.num_nodes(), 2);
        let far = build_blockset(&htree.far_pairs(), tree.num_nodes(), 4);
        let cs = build_coarsenset(&tree, &c.sranks, &CoarsenParams { p: 2, agg: 2 });
        let cds = build_cds(&tree, &c, &near, &far, &cs);
        let plan = generate_plan(
            near,
            far,
            cs,
            cds,
            tree.height,
            1,
            &CodegenParams::default(),
        );
        match factor(&plan, &tree, &ExecOptions::sequential()) {
            Err(FactorError::UnsupportedStructure(m)) => {
                assert!(m.contains("no stored diagonal block"), "message: {m}");
            }
            other => panic!("expected UnsupportedStructure, got {other:?}"),
        }
    }

    #[test]
    fn factor_reports_timings_and_storage() {
        let n = 256;
        let (tree, plan) = fixture(n, Structure::Hss, grid_spacing(n));
        let f = factor(&plan, &tree, &ExecOptions::sequential()).unwrap();
        assert!(f.timings.total().as_nanos() > 0);
        assert!(f.storage_bytes() > 0);
        assert_eq!(f.n, n);
        assert_eq!(f.timings.ridge_attempts, 0);
        assert_eq!(f.timings.applied_ridge, 0.0);
    }

    #[test]
    fn mismatched_rhs_and_factor_sizes_are_plan_mismatches() {
        let n = 256;
        let (tree, plan) = fixture(n, Structure::Hss, grid_spacing(n));
        let f = factor(&plan, &tree, &ExecOptions::sequential()).unwrap();
        let short = Matrix::zeros(n / 2, 1);
        match f.solve_matrix(&plan, &tree, &short, &ExecOptions::sequential()) {
            Err(FactorError::PlanMismatch(m)) => assert!(m.contains("rows"), "message: {m}"),
            other => panic!("expected PlanMismatch, got {other:?}"),
        }
        // A factor whose inventory does not match the tree is rejected
        // before any sweep touches it.
        let mut broken = f.clone();
        let leaf = tree.leaves()[0];
        broken.leaves[leaf] = None;
        let b = Matrix::zeros(n, 1);
        match broken.solve_matrix(&plan, &tree, &b, &ExecOptions::sequential()) {
            Err(FactorError::PlanMismatch(m)) => {
                assert!(m.contains("leaf factor"), "message: {m}");
            }
            other => panic!("expected PlanMismatch, got {other:?}"),
        }
    }

    #[test]
    fn ridge_shift_regularizes_the_operator() {
        use crate::factor::factor_with_ridge;
        let n = 256;
        let (tree, plan) = fixture(n, Structure::Hss, grid_spacing(n));
        let ridge = 1e-3;
        let f = factor_with_ridge(&plan, &tree, &ExecOptions::sequential(), ridge).unwrap();
        assert_eq!(f.timings.applied_ridge, ridge);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.07).cos()).collect();
        let x = f
            .solve(&plan, &tree, &b, &ExecOptions::sequential())
            .unwrap();
        // x solves (K~ + ridge I) x = b, so K~ x = b - ridge * x.
        let xm = Matrix::from_vec(n, 1, x.clone());
        let back = execute(&plan, &tree, &xm, &ExecOptions::sequential());
        let expected = Matrix::from_vec(
            n,
            1,
            b.iter().zip(&x).map(|(bi, xi)| bi - ridge * xi).collect(),
        );
        let err = relative_error(&back, &expected);
        assert!(err < 1e-10, "(K~ + ridge I) x != b (err {err})");
        // Negative and non-finite shifts are rejected.
        assert!(matches!(
            factor_with_ridge(&plan, &tree, &ExecOptions::sequential(), -1.0),
            Err(FactorError::PlanMismatch(_))
        ));
        assert!(matches!(
            factor_with_ridge(&plan, &tree, &ExecOptions::sequential(), f64::NAN),
            Err(FactorError::PlanMismatch(_))
        ));
    }
}
