//! # matrox-factor
//!
//! A structured **factor + solve** subsystem over the inspector's compressed
//! representation: given an SPD kernel matrix compressed with the HSS (weak
//! admissibility) structure, [`factor()`] computes a ULV-style factorization
//! and [`HssFactor::solve_matrix`] runs forward/backward sweeps so
//! `K~ x = b` is solved directly — the workload STRUMPACK exists for, and
//! the scenario family (kernel regression, preconditioning) the executor's
//! `Y = K~ W` product alone cannot express.
//!
//! ## Algorithm
//!
//! The compressed matrix is exactly the telescoping HSS form the inspector
//! already stores in CDS: dense leaf diagonal blocks `D_i`, nested bases
//! `U_i = V_i` (leaf interpolation / internal transfer matrices) and sibling
//! coupling blocks `B_{l,r} = K(skel_l, skel_r)`.  Writing `K_i` for the
//! subtree operator of node `i` (its diagonal block including all coupling
//! *below* `i`), the factorization computes bottom-up, per node, the small
//! reduced matrix `G_i = V_i^T K_i^{-1} U_i` (`srank x srank`):
//!
//! * **leaf** — Cholesky `D_i = L_i L_i^T`, then `E_i = D_i^{-1} U_i` and
//!   `G_i = V_i^T E_i`;
//! * **merge (internal node `p`, children `l`, `r`)** — eliminating both
//!   children's interiors reduces `K_p z = c` to the `(k_l + k_r)`-square
//!   system `M_p = [I, G_l B_{l,r}; G_r B_{r,l}, I]` in the children's
//!   skeleton coefficients; `M_p` is factored with partial-pivoted LU, and
//!   `G_p = W_p^T M_p^{-1} [G_l R_l; G_r R_r]` follows from the transfer
//!   matrices alone — no large dense algebra above the leaves.
//!
//! The solve is two tree sweeps: an **upward sweep** (leaf forward/backward
//! substitutions, then one small `M_p` solve per internal node) and a
//! **downward sweep** that propagates outer skeleton loads `s_i` back down
//! with nothing but small GEMMs, finishing with `x_i = y_i - E_i s_i` at the
//! leaves.  Both sweeps are parallel over nodes within a tree level on the
//! workspace's work-stealing pool; every node's arithmetic is sequential and
//! identical at any pool width, so factor and solve are *bitwise
//! deterministic* across thread counts, mirroring the executor's
//! conflict-free-scheduling guarantee.
//!
//! Non-HSS structures (geometric or budget admissibility produce
//! off-diagonal dense blocks the merge step cannot fold) are rejected with
//! [`FactorError::UnsupportedStructure`], exactly like the STRUMPACK
//! baseline's scope.

#![forbid(unsafe_code)]

pub mod factor;
pub mod solve;

pub use factor::{
    factor, factor_with_ridge, FactorError, FactorTimings, HssFactor, LeafFactor, MergeFactor,
};
