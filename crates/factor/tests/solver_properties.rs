//! Property-based coverage for the ULV factor + solve subsystem.
//!
//! Random SPD kernel-ridge point sets (jittered grids, so the minimum point
//! separation — and with it the conditioning of the kernel matrix — is
//! bounded by construction) are compressed, factored and solved.  Two
//! properties are pinned:
//!
//! 1. **exactness on the compressed operator** — the sweeps invert `K~`
//!    itself, so `||K~ x - b|| / ||b||` must sit at machine-precision level
//!    (`< 1e-9` with a large margin for accumulated roundoff);
//! 2. **residual tracks `bacc`** — against the *exact* kernel matrix the
//!    relative residual is bounded by the compression error, which the
//!    block accuracy controls: `||K x - b|| / ||b|| <= C * bacc` with the
//!    documented constant `C = 100` (the bound is
//!    `||K - K~|| * ||x|| / ||b||`; the ridge `lambda >= 0.5` keeps
//!    `||x|| <= 2 ||b||` and exhaustive sampling keeps the block errors at
//!    `bacc`, so `C = 100` holds with more than an order of magnitude of
//!    slack on these geometries).

use matrox_analysis::{build_blockset, build_cds, build_coarsenset, CoarsenParams};
use matrox_codegen::{generate_plan, CodegenParams, EvalPlan};
use matrox_compress::{compress, CompressionParams};
use matrox_exec::{execute, ExecOptions};
use matrox_factor::factor;
use matrox_linalg::{frobenius_norm, Matrix};
use matrox_points::{dense_kernel_matmul, Kernel, PointSet};
use matrox_sampling::sample_nodes_exhaustive;
use matrox_tree::{ClusterTree, HTree, PartitionMethod, Structure};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// A jittered 2-d grid: `side^2` points with jitter bounded to 40% of the
/// spacing, so no two points come closer than `0.2 / side`.
fn jittered_grid(side: usize, seed: u64) -> PointSet {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let s = 1.0 / side as f64;
    let mut coords = Vec::with_capacity(side * side * 2);
    for i in 0..side {
        for j in 0..side {
            coords.push((i as f64 + 0.5 + rng.gen_range(-0.4..0.4)) * s);
            coords.push((j as f64 + 0.5 + rng.gen_range(-0.4..0.4)) * s);
        }
    }
    PointSet::new(2, coords)
}

fn build_plan(pts: &PointSet, kernel: &Kernel, bacc: f64) -> (ClusterTree, EvalPlan) {
    let tree = ClusterTree::build(pts, PartitionMethod::Auto, 32, 0);
    let htree = HTree::build(&tree, Structure::Hss);
    let sampling = sample_nodes_exhaustive(pts, &tree);
    let c = compress(
        pts,
        &tree,
        &htree,
        kernel,
        &sampling,
        &CompressionParams {
            bacc,
            max_rank: 256,
            grain: 0,
        },
    );
    let near = build_blockset(&htree.near_pairs(), tree.num_nodes(), 2);
    let far = build_blockset(&htree.far_pairs(), tree.num_nodes(), 4);
    let cs = build_coarsenset(&tree, &c.sranks, &CoarsenParams { p: 4, agg: 2 });
    let cds = build_cds(&tree, &c, &near, &far, &cs);
    let plan = generate_plan(
        near,
        far,
        cs,
        cds,
        tree.height,
        tree.leaves().len(),
        &CodegenParams::default(),
    );
    (tree, plan)
}

/// The documented residual-tracking constant (see the module docs).
const RESIDUAL_C: f64 = 100.0;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn residual_tracks_bacc_on_random_spd_kernel_sets(
        side in 10usize..17,
        seed in 0u64..1000,
        bw_mult in 1.0f64..3.0,
        ridge in 0.5f64..4.0,
        tight in 0u8..2,
    ) {
        let bacc = if tight == 1 { 1e-6 } else { 1e-4 };
        let pts = jittered_grid(side, seed);
        let n = pts.len();
        let kernel = Kernel::GaussianRidge {
            bandwidth: bw_mult / side as f64,
            ridge,
        };
        let (tree, plan) = build_plan(&pts, &kernel, bacc);
        let f = factor(&plan, &tree, &ExecOptions::full()).expect("SPD kernel-ridge must factor");

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xdead);
        let b = Matrix::random_uniform(n, 2, &mut rng);
        let x = f.solve_matrix(&plan, &tree, &b, &ExecOptions::full()).expect("solve");
        let bnorm = frobenius_norm(&b);

        // Property 1: the sweeps invert the compressed operator exactly.
        let mut r_tilde = execute(&plan, &tree, &x, &ExecOptions::sequential());
        r_tilde.sub_assign(&b);
        let res_tilde = frobenius_norm(&r_tilde) / bnorm;
        prop_assert!(res_tilde < 1e-9, "compressed residual {res_tilde:e}");

        // Property 2: against the exact kernel, the residual tracks bacc.
        let mut r = dense_kernel_matmul(&pts, &kernel, &x);
        r.sub_assign(&b);
        let res = frobenius_norm(&r) / bnorm;
        prop_assert!(
            res <= RESIDUAL_C * bacc,
            "residual {res:e} exceeds {RESIDUAL_C} * bacc = {:e}",
            RESIDUAL_C * bacc
        );
    }

    #[test]
    fn multi_rhs_solve_matches_column_wise_solves(
        side in 10usize..14,
        seed in 0u64..1000,
    ) {
        let pts = jittered_grid(side, seed);
        let n = pts.len();
        let kernel = Kernel::GaussianRidge {
            bandwidth: 1.5 / side as f64,
            ridge: 1.0,
        };
        let (tree, plan) = build_plan(&pts, &kernel, 1e-6);
        let f = factor(&plan, &tree, &ExecOptions::full()).expect("factor");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xbeef);
        let b = Matrix::random_uniform(n, 3, &mut rng);
        let x = f.solve_matrix(&plan, &tree, &b, &ExecOptions::full()).expect("solve");
        for c in 0..3 {
            let bc = b.col(c);
            let xc = f.solve(&plan, &tree, &bc, &ExecOptions::full()).expect("solve");
            // Column-wise and blocked solves run the identical arithmetic
            // per column, so they agree bitwise.
            prop_assert_eq!(&xc, &x.col(c), "column {} diverged", c);
        }
    }
}
