//! Cross-thread-width determinism of factor + solve, mirroring
//! `crates/exec/tests/determinism.rs`.
//!
//! The factorization and both solve sweeps parallelize over nodes within a
//! tree level, and every node's arithmetic is sequential and independent of
//! the pool width.  So — exactly like the executor's conflict-free
//! schedules — the factors and the solutions must be *bitwise identical* at
//! every pool width, and the grain knob may change scheduling only, never
//! results.

use matrox_analysis::{build_blockset, build_cds, build_coarsenset, CoarsenParams};
use matrox_codegen::{generate_plan, CodegenParams, EvalPlan};
use matrox_compress::{compress, CompressionParams};
use matrox_exec::ExecOptions;
use matrox_factor::factor;
use matrox_linalg::Matrix;
use matrox_points::{generate, DatasetId, Kernel};
use matrox_sampling::sample_nodes_exhaustive;
use matrox_tree::{ClusterTree, HTree, PartitionMethod, Structure};
use rand::SeedableRng;

fn fixture(n: usize) -> (ClusterTree, EvalPlan, Matrix) {
    let pts = generate(DatasetId::Grid, n, 77);
    let spacing = 1.0 / (n as f64).sqrt();
    let kernel = Kernel::GaussianRidge {
        bandwidth: 4.0 * spacing,
        ridge: 1.0,
    };
    let tree = ClusterTree::build(&pts, PartitionMethod::Auto, 32, 0);
    let htree = HTree::build(&tree, Structure::Hss);
    let sampling = sample_nodes_exhaustive(&pts, &tree);
    let c = compress(
        &pts,
        &tree,
        &htree,
        &kernel,
        &sampling,
        &CompressionParams {
            bacc: 1e-7,
            max_rank: 256,
            grain: 0,
        },
    );
    let near = build_blockset(&htree.near_pairs(), tree.num_nodes(), 2);
    let far = build_blockset(&htree.far_pairs(), tree.num_nodes(), 4);
    let cs = build_coarsenset(&tree, &c.sranks, &CoarsenParams { p: 4, agg: 2 });
    let cds = build_cds(&tree, &c, &near, &far, &cs);
    let plan = generate_plan(
        near,
        far,
        cs,
        cds,
        tree.height,
        tree.leaves().len(),
        &CodegenParams::default(),
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let b = Matrix::random_uniform(n, 5, &mut rng);
    (tree, plan, b)
}

#[test]
fn factor_and_solve_are_deterministic_across_thread_counts() {
    let (tree, plan, b) = fixture(512);

    // Sequential reference (no pool involvement at all).
    let f_ref = factor(&plan, &tree, &ExecOptions::sequential()).expect("factor");
    let x_ref = f_ref
        .solve_matrix(&plan, &tree, &b, &ExecOptions::sequential())
        .expect("solve");

    for &nt in &[1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(nt)
            .build()
            .unwrap();
        let (f, x) = pool.install(|| {
            let f = factor(&plan, &tree, &ExecOptions::full()).expect("factor");
            let x = f
                .solve_matrix(&plan, &tree, &b, &ExecOptions::full())
                .expect("solve");
            (f, x)
        });
        assert_eq!(
            f.leaves, f_ref.leaves,
            "leaf factors at {nt} threads differ from sequential"
        );
        assert_eq!(
            f.merges, f_ref.merges,
            "merge factors at {nt} threads differ from sequential"
        );
        assert_eq!(
            x.as_slice(),
            x_ref.as_slice(),
            "solution at {nt} threads is not bitwise identical to sequential"
        );
    }
}

/// The grain knob must change scheduling only, never results.
#[test]
fn grain_settings_do_not_change_solutions() {
    let (tree, plan, b) = fixture(512);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    let base = pool.install(|| {
        let f = factor(&plan, &tree, &ExecOptions::full()).expect("factor");
        f.solve_matrix(&plan, &tree, &b, &ExecOptions::full())
            .expect("solve")
    });
    for grain in [1usize, 2, 7, 64] {
        let opts = ExecOptions::full().with_grain(grain);
        let x = pool.install(|| {
            let f = factor(&plan, &tree, &opts).expect("factor");
            f.solve_matrix(&plan, &tree, &b, &opts).expect("solve")
        });
        assert_eq!(
            x.as_slice(),
            base.as_slice(),
            "grain {grain} changed the solution"
        );
    }
}
