//! Kernel functions.
//!
//! The paper evaluates with a Gaussian kernel (bandwidth 5) against GOFMM and
//! STRUMPACK, and with the inverse-distance kernel `1 / ||x - y||` (SMASH's
//! default) against SMASH.  Changing the kernel is one of the two triggers
//! for inspector reuse (Section 5), so the kernel is a first-class value here
//! rather than a compile-time choice.

/// A symmetric positive-(semi)definite kernel function on point pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Gaussian / RBF kernel `exp(-||x - y||^2 / (2 h^2))`.
    Gaussian {
        /// Bandwidth `h`.
        bandwidth: f64,
    },
    /// Diagonally regularized Gaussian kernel: `exp(-||x - y||^2 / (2 h^2))
    /// + lambda * [dist(x, y) == 0]` — the kernel-ridge matrix
    /// `K + lambda I` for point sets without duplicates.
    ///
    /// This is the standard SPD *solver* workload: plain Gaussian kernel
    /// matrices are numerically rank deficient once the bandwidth exceeds a
    /// few point spacings, so direct factorizations need the shift.
    ///
    /// Like [`Kernel::InverseDistance`]'s `diag`, the shift keys on *zero
    /// distance*, not on point identity (the kernel only ever sees
    /// coordinates), so two coincident **distinct** points both receive it
    /// and their 2x2 block is exactly singular.  Deduplicate inputs before
    /// factoring; coincident duplicates are rejected by the Cholesky pivot
    /// check rather than silently regularized.
    GaussianRidge {
        /// Bandwidth `h`.
        bandwidth: f64,
        /// Diagonal shift `lambda > 0`.
        ridge: f64,
    },
    /// Inverse-distance kernel `1 / ||x - y||` with a regularized diagonal
    /// (SMASH's default setting).  `K(x, x)` is defined as `diag`.
    InverseDistance {
        /// Value returned on the diagonal, where the kernel is singular.
        diag: f64,
    },
    /// Laplace / exponential kernel `exp(-||x - y|| / h)`.
    Laplace {
        /// Bandwidth `h`.
        bandwidth: f64,
    },
    /// Polynomial-decay kernel `1 / (1 + ||x - y||^2 / h^2)` (inverse
    /// multiquadric squared); useful as an extra, cheaper test kernel.
    Cauchy {
        /// Bandwidth `h`.
        bandwidth: f64,
    },
}

impl Kernel {
    /// The paper's default machine-learning kernel: Gaussian with bandwidth 5.
    pub fn paper_gaussian() -> Self {
        Kernel::Gaussian { bandwidth: 5.0 }
    }

    /// The SMASH comparison kernel: `1 / ||x - y||`.
    pub fn smash_default() -> Self {
        Kernel::InverseDistance { diag: 1.0 }
    }

    /// Evaluate the kernel on two coordinate slices.
    #[inline]
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), y.len());
        let mut d2 = 0.0;
        for k in 0..x.len() {
            let d = x[k] - y[k];
            d2 += d * d;
        }
        self.eval_dist2(d2)
    }

    /// Evaluate the kernel from a squared distance.
    #[inline]
    pub fn eval_dist2(&self, d2: f64) -> f64 {
        match *self {
            Kernel::Gaussian { bandwidth } => (-d2 / (2.0 * bandwidth * bandwidth)).exp(),
            Kernel::GaussianRidge { bandwidth, ridge } => {
                let g = (-d2 / (2.0 * bandwidth * bandwidth)).exp();
                if d2 == 0.0 {
                    g + ridge
                } else {
                    g
                }
            }
            Kernel::InverseDistance { diag } => {
                if d2 == 0.0 {
                    diag
                } else {
                    1.0 / d2.sqrt()
                }
            }
            Kernel::Laplace { bandwidth } => (-d2.sqrt() / bandwidth).exp(),
            Kernel::Cauchy { bandwidth } => 1.0 / (1.0 + d2 / (bandwidth * bandwidth)),
        }
    }

    /// A short, stable name used in reports and generated-code comments.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Gaussian { .. } => "gaussian",
            Kernel::GaussianRidge { .. } => "gaussian-ridge",
            Kernel::InverseDistance { .. } => "inverse-distance",
            Kernel::Laplace { .. } => "laplace",
            Kernel::Cauchy { .. } => "cauchy",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_is_one_at_zero_distance() {
        let k = Kernel::Gaussian { bandwidth: 5.0 };
        assert_eq!(k.eval(&[1.0, 2.0], &[1.0, 2.0]), 1.0);
    }

    #[test]
    fn gaussian_decays_with_distance() {
        let k = Kernel::Gaussian { bandwidth: 1.0 };
        let near = k.eval(&[0.0], &[0.5]);
        let far = k.eval(&[0.0], &[3.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn gaussian_ridge_shifts_the_diagonal_only() {
        let g = Kernel::Gaussian { bandwidth: 2.0 };
        let r = Kernel::GaussianRidge {
            bandwidth: 2.0,
            ridge: 3.5,
        };
        assert_eq!(r.eval(&[1.0, 2.0], &[1.0, 2.0]), 1.0 + 3.5);
        let x = [0.0, 0.0];
        let y = [0.7, -0.3];
        assert_eq!(r.eval(&x, &y), g.eval(&x, &y));
    }

    #[test]
    fn inverse_distance_uses_diag_value() {
        let k = Kernel::InverseDistance { diag: 7.5 };
        assert_eq!(k.eval(&[1.0], &[1.0]), 7.5);
        assert!((k.eval(&[0.0], &[2.0]) - 0.5).abs() < 1e-14);
    }

    #[test]
    fn kernels_are_symmetric() {
        let kernels = [
            Kernel::Gaussian { bandwidth: 2.0 },
            Kernel::GaussianRidge {
                bandwidth: 2.0,
                ridge: 0.5,
            },
            Kernel::InverseDistance { diag: 1.0 },
            Kernel::Laplace { bandwidth: 1.5 },
            Kernel::Cauchy { bandwidth: 0.7 },
        ];
        let x = [0.3, -1.2, 2.0];
        let y = [1.0, 0.5, -0.25];
        for k in kernels {
            assert_eq!(k.eval(&x, &y), k.eval(&y, &x), "{} not symmetric", k.name());
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Kernel::paper_gaussian().name(), "gaussian");
        assert_eq!(Kernel::smash_default().name(), "inverse-distance");
    }
}
