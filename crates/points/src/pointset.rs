//! The [`PointSet`] type: `N` points in `d` dimensions, stored row-major.

use rand::Rng;

/// A set of `N` points in `R^d`, stored as a flat row-major buffer
/// (`coords[i * dim + k]` is coordinate `k` of point `i`).
///
/// All MatRox structures (cluster tree, HTree, sampling lists, compression)
/// refer to points by their index into this set; the set itself is never
/// reordered.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSet {
    dim: usize,
    coords: Vec<f64>,
}

impl PointSet {
    /// Build a point set from a flat row-major coordinate buffer.
    ///
    /// # Panics
    /// Panics if `coords.len()` is not a multiple of `dim` or `dim == 0`.
    pub fn new(dim: usize, coords: Vec<f64>) -> Self {
        assert!(dim > 0, "PointSet: dimension must be positive");
        assert_eq!(
            coords.len() % dim,
            0,
            "PointSet: coordinate buffer length {} is not a multiple of dim {}",
            coords.len(),
            dim
        );
        PointSet { dim, coords }
    }

    /// Build a point set from a slice of points.
    pub fn from_points(points: &[Vec<f64>]) -> Self {
        assert!(!points.is_empty(), "PointSet::from_points: empty input");
        let dim = points[0].len();
        let mut coords = Vec::with_capacity(points.len() * dim);
        for p in points {
            assert_eq!(p.len(), dim, "PointSet::from_points: ragged points");
            coords.extend_from_slice(p);
        }
        PointSet { dim, coords }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// True if the set contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Point dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow the coordinates of point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.len());
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// Borrow the whole coordinate buffer.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Squared Euclidean distance between points `i` and `j`.
    #[inline]
    pub fn dist2(&self, i: usize, j: usize) -> f64 {
        let a = self.point(i);
        let b = self.point(j);
        let mut s = 0.0;
        for k in 0..self.dim {
            let d = a[k] - b[k];
            s += d * d;
        }
        s
    }

    /// Euclidean distance between points `i` and `j`.
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        self.dist2(i, j).sqrt()
    }

    /// Centroid of the points listed in `idx`.
    pub fn centroid(&self, idx: &[usize]) -> Vec<f64> {
        let mut c = vec![0.0; self.dim];
        if idx.is_empty() {
            return c;
        }
        for &i in idx {
            let p = self.point(i);
            for k in 0..self.dim {
                c[k] += p[k];
            }
        }
        let inv = 1.0 / idx.len() as f64;
        c.iter_mut().for_each(|x| *x *= inv);
        c
    }

    /// Squared distance from point `i` to an arbitrary coordinate vector.
    pub fn dist2_to(&self, i: usize, target: &[f64]) -> f64 {
        let p = self.point(i);
        debug_assert_eq!(target.len(), self.dim);
        let mut s = 0.0;
        for k in 0..self.dim {
            let d = p[k] - target[k];
            s += d * d;
        }
        s
    }

    /// Diameter (max pairwise distance) of the points listed in `idx`.
    ///
    /// For index sets larger than `sample_cap` a random-ish deterministic
    /// subsample is used; the diameter only feeds the admissibility
    /// condition, which is robust to a small underestimate.
    pub fn diameter(&self, idx: &[usize], sample_cap: usize) -> f64 {
        if idx.len() < 2 {
            return 0.0;
        }
        let stride = (idx.len() / sample_cap.max(1)).max(1);
        let sampled: Vec<usize> = idx.iter().step_by(stride).copied().collect();
        let mut max2: f64 = 0.0;
        for (a, &i) in sampled.iter().enumerate() {
            for &j in &sampled[a + 1..] {
                max2 = max2.max(self.dist2(i, j));
            }
        }
        max2.sqrt()
    }

    /// Axis-aligned bounding box `(min, max)` of the points listed in `idx`.
    pub fn bounding_box(&self, idx: &[usize]) -> (Vec<f64>, Vec<f64>) {
        let mut lo = vec![f64::INFINITY; self.dim];
        let mut hi = vec![f64::NEG_INFINITY; self.dim];
        for &i in idx {
            let p = self.point(i);
            for k in 0..self.dim {
                lo[k] = lo[k].min(p[k]);
                hi[k] = hi[k].max(p[k]);
            }
        }
        (lo, hi)
    }

    /// Generate `n` points with coordinates drawn uniformly from `[0, 1)^d`.
    pub fn random_uniform<R: Rng>(n: usize, dim: usize, rng: &mut R) -> Self {
        let coords = (0..n * dim).map(|_| rng.gen::<f64>()).collect();
        PointSet { dim, coords }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_and_access() {
        let ps = PointSet::from_points(&[vec![0.0, 1.0], vec![2.0, 3.0], vec![4.0, 5.0]]);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps.dim(), 2);
        assert_eq!(ps.point(1), &[2.0, 3.0]);
    }

    #[test]
    fn distances_are_euclidean() {
        let ps = PointSet::from_points(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
        assert_eq!(ps.dist2(0, 1), 25.0);
        assert_eq!(ps.dist(0, 1), 5.0);
        assert_eq!(ps.dist(0, 0), 0.0);
    }

    #[test]
    fn centroid_of_symmetric_points_is_origin() {
        let ps = PointSet::from_points(&[vec![1.0, 1.0], vec![-1.0, -1.0]]);
        let c = ps.centroid(&[0, 1]);
        assert_eq!(c, vec![0.0, 0.0]);
    }

    #[test]
    fn diameter_matches_exact_for_small_sets() {
        let ps = PointSet::from_points(&[vec![0.0], vec![1.0], vec![5.0], vec![2.0]]);
        let idx = [0, 1, 2, 3];
        assert_eq!(ps.diameter(&idx, 100), 5.0);
        assert_eq!(ps.diameter(&idx[..1], 100), 0.0);
    }

    #[test]
    fn bounding_box_encloses_points() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let ps = PointSet::random_uniform(40, 3, &mut rng);
        let idx: Vec<usize> = (0..40).collect();
        let (lo, hi) = ps.bounding_box(&idx);
        for &i in &idx {
            let p = ps.point(i);
            for k in 0..3 {
                assert!(p[k] >= lo[k] && p[k] <= hi[k]);
            }
        }
    }

    #[test]
    #[should_panic]
    fn ragged_points_panic() {
        let _ = PointSet::from_points(&[vec![0.0, 1.0], vec![2.0]]);
    }
}
