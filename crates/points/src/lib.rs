//! # matrox-points
//!
//! Point sets, kernel functions, and synthetic dataset generators.
//!
//! MatRox never assembles the full kernel matrix `K`; it only ever evaluates
//! `K(x_i, x_j)` for the point pairs required by the compression phase (near
//! blocks, coupling blocks, sampled far-field blocks).  This crate provides:
//!
//! * [`PointSet`] — an `N x d` collection of points with distance helpers.
//! * [`Kernel`] — the kernel functions used in the paper's evaluation
//!   (Gaussian with bandwidth `h`, the inverse-distance kernel used by the
//!   SMASH comparison, plus a Laplace kernel).
//! * [`datasets`] — synthetic generators standing in for the Table 1
//!   datasets (UCI machine-learning sets and low-dimensional scientific point
//!   clouds).  See DESIGN.md substitution S2.
//! * [`kernel_block`] helpers that evaluate dense kernel sub-blocks (used by
//!   compression and by the accuracy/GEMM baselines).

#![forbid(unsafe_code)]

pub mod datasets;
pub mod kernel;
pub mod pointset;

pub use datasets::{generate, DatasetId, DatasetSpec, TABLE1};
pub use kernel::Kernel;
pub use pointset::PointSet;

use matrox_linalg::Matrix;
use rayon::prelude::*;

/// Evaluate the dense kernel block `K(rows, cols)` for the given global point
/// indices.  This is the only way the rest of the workspace touches kernel
/// entries, mirroring the "implicit" kernel matrix of the paper.
pub fn kernel_block(points: &PointSet, kernel: &Kernel, rows: &[usize], cols: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(rows.len(), cols.len());
    for (ri, &i) in rows.iter().enumerate() {
        let pi = points.point(i);
        let row = out.row_mut(ri);
        for (cj, &j) in cols.iter().enumerate() {
            row[cj] = kernel.eval(pi, points.point(j));
        }
    }
    out
}

/// Parallel version of [`kernel_block`] for large blocks (used by the dense
/// GEMM baseline and the accuracy checks, where the block is `N x N`-ish).
pub fn kernel_block_par(
    points: &PointSet,
    kernel: &Kernel,
    rows: &[usize],
    cols: &[usize],
) -> Matrix {
    let ncols = cols.len();
    let mut out = Matrix::zeros(rows.len(), ncols);
    out.as_mut_slice()
        .par_chunks_mut(ncols.max(1))
        .zip(rows.par_iter())
        .for_each(|(row, &i)| {
            let pi = points.point(i);
            for (cj, &j) in cols.iter().enumerate() {
                row[cj] = kernel.eval(pi, points.point(j));
            }
        });
    out
}

/// Compute the exact product `K * W` without assembling `K`, in parallel over
/// row blocks.  Used as the reference for the overall-accuracy measure
/// `eps_f = ||K~W - KW||_F / ||KW||_F` (Figure 9) and as the un-approximated
/// GEMM baseline discussed in Sections 2.2 and 4.2.
pub fn dense_kernel_matmul(points: &PointSet, kernel: &Kernel, w: &Matrix) -> Matrix {
    let n = points.len();
    assert_eq!(w.rows(), n, "dense_kernel_matmul: W must have N rows");
    let q = w.cols();
    let mut y = Matrix::zeros(n, q);
    y.as_mut_slice()
        .par_chunks_mut(q.max(1))
        .enumerate()
        .for_each(|(i, yrow)| {
            let pi = points.point(i);
            for j in 0..n {
                let k = kernel.eval(pi, points.point(j));
                if k == 0.0 {
                    continue;
                }
                let wrow = w.row(j);
                for c in 0..q {
                    yrow[c] += k * wrow[c];
                }
            }
        });
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kernel_block_is_symmetric_for_symmetric_kernels() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let pts = PointSet::random_uniform(20, 3, &mut rng);
        let k = Kernel::Gaussian { bandwidth: 2.0 };
        let idx: Vec<usize> = (0..20).collect();
        let block = kernel_block(&pts, &k, &idx, &idx);
        for i in 0..20 {
            for j in 0..20 {
                assert!((block.get(i, j) - block.get(j, i)).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn kernel_block_par_matches_seq() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let pts = PointSet::random_uniform(50, 4, &mut rng);
        let k = Kernel::Gaussian { bandwidth: 1.0 };
        let rows: Vec<usize> = (0..50).step_by(2).collect();
        let cols: Vec<usize> = (1..50).step_by(3).collect();
        let a = kernel_block(&pts, &k, &rows, &cols);
        let b = kernel_block_par(&pts, &k, &rows, &cols);
        assert_eq!(a, b);
    }

    #[test]
    fn dense_matmul_matches_explicit_assembly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let pts = PointSet::random_uniform(30, 2, &mut rng);
        let k = Kernel::Gaussian { bandwidth: 0.5 };
        let idx: Vec<usize> = (0..30).collect();
        let kmat = kernel_block(&pts, &k, &idx, &idx);
        let w = Matrix::random_uniform(30, 4, &mut rng);
        let expected = matrox_linalg::matmul(&kmat, &w);
        let got = dense_kernel_matmul(&pts, &k, &w);
        assert!(matrox_linalg::relative_error(&got, &expected) < 1e-12);
    }
}
