//! The coarsening algorithm (Algorithm 2 of the paper).
//!
//! Coarsening is MatRox's adaptation of Load-Balanced level Coarsening (LBC,
//! Cheshmi et al.) to binary cluster trees with a cost model based on the
//! submatrix ranks.  It reorganizes the level-by-level loops over the CTree
//! (the `V`/`U` upward and downward passes) into
//!
//! * **coarsen levels**: `agg` consecutive tree levels fused together, run
//!   sequentially from the leaves towards the root, and
//! * **sub-trees** inside every coarsen level: disjoint trees whose nodes are
//!   executed by one thread in dependency (post-)order, merged by a
//!   first-fit/greedy bin-packing step into `p` load-balanced partitions.
//!
//! Fusing levels improves locality (a parent consumes its children's `T`
//! matrices right after they are produced, while they are still in cache) and
//! removes the per-level barrier; bin-packing keeps the partitions balanced
//! even when sranks differ wildly across the tree.

use matrox_tree::ClusterTree;

/// The coarsenset: for every coarsen level, a list of load-balanced
/// partitions, each containing node ids in execution (post-)order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoarsenSet {
    /// `levels[cl][part]` = node ids of partition `part` of coarsen level
    /// `cl`, children before parents.  Coarsen level 0 is closest to the
    /// leaves; levels must be executed in order for the upward pass and in
    /// reverse for the downward pass.
    pub levels: Vec<Vec<Vec<usize>>>,
    /// The aggregation factor (`agg`) used to build the set.
    pub agg: usize,
    /// Estimated cost of every partition, `costs[cl][part]`, in the same
    /// units as the per-node cost model (flops per output column).
    pub costs: Vec<Vec<u64>>,
}

impl CoarsenSet {
    /// Total number of coarsen levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// All node ids in execution order (flattened).
    pub fn all_nodes(&self) -> Vec<usize> {
        self.levels
            .iter()
            .flat_map(|cl| cl.iter().flat_map(|st| st.iter().copied()))
            .collect()
    }

    /// Load imbalance of a coarsen level: `max(cost) / mean(cost)`; 1.0 is
    /// perfectly balanced.  Returns 1.0 for empty levels.
    pub fn imbalance(&self, cl: usize) -> f64 {
        let costs = &self.costs[cl];
        if costs.is_empty() {
            return 1.0;
        }
        let max = *costs.iter().max().unwrap() as f64;
        let mean = costs.iter().sum::<u64>() as f64 / costs.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Parameters for [`build_coarsenset`].
#[derive(Debug, Clone, Copy)]
pub struct CoarsenParams {
    /// Number of partitions per coarsen level (`p`, the paper sets it to the
    /// number of physical cores).
    pub p: usize,
    /// Aggregation factor (`agg`, the paper's default is 2).
    pub agg: usize,
}

impl Default for CoarsenParams {
    fn default() -> Self {
        // `p` feeds the coarsened level sets that are serialized into the
        // plan, so the default must be a fixed constant: deriving it from
        // the pool width would make the same inputs produce different plan
        // bytes at different widths, breaking the inspector's determinism
        // contract.  Fixed at the paper's reference socket width; callers
        // tune it per machine explicitly.
        CoarsenParams { p: 8, agg: 2 }
    }
}

/// Per-node cost model (lines 8–14 of Algorithm 2): the work of node `x` in
/// the tree loops is proportional to `srank(x)` times the number of rows of
/// its generator — the leaf size for a leaf, the children's combined srank
/// for an internal node.
fn node_cost(tree: &ClusterTree, sranks: &[usize], x: usize) -> u64 {
    let node = &tree.nodes[x];
    let rows = if node.is_leaf() {
        node.num_points()
    } else {
        let (l, r) = node.children.unwrap();
        sranks[l] + sranks[r]
    };
    (sranks[x] * rows) as u64
}

/// Height of every node above its deepest descendant leaf (leaves have
/// height 0).  Coarsen levels are defined on heights so that the bottom-most
/// coarsen level always contains the leaves, as in Figure 1b.
fn node_heights(tree: &ClusterTree) -> Vec<usize> {
    let mut height = vec![0usize; tree.num_nodes()];
    // Children always have larger ids than parents (BFS numbering), so one
    // reverse sweep computes heights bottom-up.
    for id in (0..tree.num_nodes()).rev() {
        if let Some((l, r)) = tree.nodes[id].children {
            height[id] = 1 + height[l].max(height[r]);
        }
    }
    height
}

/// Algorithm 2: build the coarsenset from the CTree and the sranks.
///
/// The root (node 0) is excluded — it is "not involved in any computation"
/// (Figure 1b) because it has no basis of its own.
pub fn build_coarsenset(
    tree: &ClusterTree,
    sranks: &[usize],
    params: &CoarsenParams,
) -> CoarsenSet {
    assert_eq!(sranks.len(), tree.num_nodes());
    let agg = params.agg.max(1);
    let heights = node_heights(tree);
    if tree.num_nodes() <= 1 {
        return CoarsenSet {
            levels: Vec::new(),
            agg,
            costs: Vec::new(),
        };
    }
    // l = ceil(height / agg) coarsen levels (line 1); heights of non-root
    // nodes range over 0..tree-height-1, but use the root height to stay
    // faithful to the formula.
    let num_levels = ((heights[0] as f64) / agg as f64).ceil().max(1.0) as usize;
    let coarsen_level_of = |x: usize| (heights[x] / agg).min(num_levels - 1);

    // Disjoint sub-trees per coarsen level (lines 2-7): a node roots a
    // sub-tree when its parent lives in a higher coarsen level (or is the
    // excluded root).  Each sub-tree is emitted in post-order (children
    // before parents) so intra-partition dependencies are honoured.
    let mut levels: Vec<Vec<Vec<usize>>> = vec![Vec::new(); num_levels];
    let mut subtree_costs: Vec<Vec<u64>> = vec![Vec::new(); num_levels];
    for id in 1..tree.num_nodes() {
        let cl = coarsen_level_of(id);
        let parent = tree.nodes[id].parent.unwrap();
        let parent_is_outside = parent == 0 || coarsen_level_of(parent) != cl;
        if !parent_is_outside {
            continue; // not a sub-tree root
        }
        // Collect the sub-tree rooted at `id` restricted to coarsen level cl.
        let mut order = Vec::new();
        let mut cost = 0u64;
        collect_postorder(
            tree,
            sranks,
            coarsen_level_of,
            cl,
            id,
            &mut order,
            &mut cost,
        );
        levels[cl].push(order);
        subtree_costs[cl].push(cost);
    }

    // Merge sub-trees into p load-balanced partitions per coarsen level
    // (lines 15-19).  nPart follows the paper's rule: use p partitions when
    // there are more sub-trees than p, otherwise halve the sub-tree count so
    // each partition still gets a meaningful amount of work.
    let mut packed_levels = Vec::with_capacity(num_levels);
    let mut packed_costs = Vec::with_capacity(num_levels);
    for (cl, subtrees) in levels.into_iter().enumerate() {
        let costs = &subtree_costs[cl];
        if subtrees.is_empty() {
            packed_levels.push(Vec::new());
            packed_costs.push(Vec::new());
            continue;
        }
        let n_part = if subtrees.len() > params.p {
            params.p
        } else {
            (subtrees.len() / 2).max(1)
        };
        let (bins, bin_costs) = bin_pack(subtrees, costs, n_part);
        packed_levels.push(bins);
        packed_costs.push(bin_costs);
    }

    CoarsenSet {
        levels: packed_levels,
        agg,
        costs: packed_costs,
    }
}

/// Depth-first post-order collection of the sub-tree rooted at `id`,
/// restricted to nodes whose coarsen level equals `cl`.
fn collect_postorder(
    tree: &ClusterTree,
    sranks: &[usize],
    coarsen_level_of: impl Fn(usize) -> usize + Copy,
    cl: usize,
    id: usize,
    order: &mut Vec<usize>,
    cost: &mut u64,
) {
    if let Some((l, r)) = tree.nodes[id].children {
        if coarsen_level_of(l) == cl {
            collect_postorder(tree, sranks, coarsen_level_of, cl, l, order, cost);
        }
        if coarsen_level_of(r) == cl {
            collect_postorder(tree, sranks, coarsen_level_of, cl, r, order, cost);
        }
    }
    order.push(id);
    *cost += node_cost(tree, sranks, id);
}

/// Greedy first-fit-decreasing bin packing into `n_part` bins: sub-trees are
/// sorted by decreasing cost and each is appended to the currently lightest
/// bin.  Sub-tree node order is preserved inside a bin so dependencies stay
/// intact.
fn bin_pack(
    subtrees: Vec<Vec<usize>>,
    costs: &[u64],
    n_part: usize,
) -> (Vec<Vec<usize>>, Vec<u64>) {
    let n_part = n_part.max(1).min(subtrees.len());
    let mut order: Vec<usize> = (0..subtrees.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(costs[i]));
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); n_part];
    let mut bin_cost = vec![0u64; n_part];
    for i in order {
        let lightest = (0..n_part).min_by_key(|&b| bin_cost[b]).unwrap();
        bins[lightest].extend_from_slice(&subtrees[i]);
        bin_cost[lightest] += costs[i];
    }
    // Drop empty bins (possible when a level has fewer sub-trees than p).
    let mut out_bins = Vec::new();
    let mut out_costs = Vec::new();
    for (b, bin) in bins.into_iter().enumerate() {
        if !bin.is_empty() {
            out_bins.push(bin);
            out_costs.push(bin_cost[b]);
        }
    }
    (out_bins, out_costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrox_points::{generate, DatasetId};
    use matrox_tree::{ClusterTree, PartitionMethod};
    use std::collections::HashSet;

    fn tree_and_sranks(n: usize, leaf: usize) -> (ClusterTree, Vec<usize>) {
        let pts = generate(DatasetId::Grid, n, 9);
        let tree = ClusterTree::build(&pts, PartitionMethod::KdTree, leaf, 0);
        // Synthetic sranks: leaves get their point count, internal nodes a bit less.
        let sranks: Vec<usize> = tree
            .nodes
            .iter()
            .map(|nd| {
                if nd.is_leaf() {
                    nd.num_points().min(16)
                } else {
                    12
                }
            })
            .collect();
        (tree, sranks)
    }

    #[test]
    fn coarsenset_covers_every_non_root_node_once() {
        let (tree, sranks) = tree_and_sranks(512, 16);
        let cs = build_coarsenset(&tree, &sranks, &CoarsenParams { p: 4, agg: 2 });
        let all = cs.all_nodes();
        let set: HashSet<_> = all.iter().copied().collect();
        assert_eq!(all.len(), set.len(), "duplicate nodes in coarsenset");
        assert_eq!(set.len(), tree.num_nodes() - 1);
        assert!(!set.contains(&0), "the root must be excluded");
    }

    #[test]
    fn children_precede_parents_within_a_partition() {
        let (tree, sranks) = tree_and_sranks(1024, 16);
        let cs = build_coarsenset(&tree, &sranks, &CoarsenParams { p: 8, agg: 2 });
        for cl in &cs.levels {
            for part in cl {
                let pos: std::collections::HashMap<usize, usize> =
                    part.iter().enumerate().map(|(p, &n)| (n, p)).collect();
                for &n in part {
                    if let Some((l, r)) = tree.nodes[n].children {
                        for child in [l, r] {
                            if let Some(&cp) = pos.get(&child) {
                                assert!(cp < pos[&n], "child {child} after parent {n}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cross_level_dependencies_point_downward() {
        // A node's children must never be in a *higher* coarsen level.
        let (tree, sranks) = tree_and_sranks(1024, 8);
        let cs = build_coarsenset(&tree, &sranks, &CoarsenParams { p: 4, agg: 3 });
        let mut level_of = vec![usize::MAX; tree.num_nodes()];
        for (cl, parts) in cs.levels.iter().enumerate() {
            for part in parts {
                for &n in part {
                    level_of[n] = cl;
                }
            }
        }
        for id in 1..tree.num_nodes() {
            if let Some((l, r)) = tree.nodes[id].children {
                assert!(level_of[l] <= level_of[id]);
                assert!(level_of[r] <= level_of[id]);
            }
        }
    }

    #[test]
    fn number_of_partitions_is_bounded_by_p() {
        let (tree, sranks) = tree_and_sranks(2048, 16);
        let p = 6;
        let cs = build_coarsenset(&tree, &sranks, &CoarsenParams { p, agg: 2 });
        for cl in &cs.levels {
            assert!(cl.len() <= p.max(1), "level has {} partitions", cl.len());
        }
    }

    #[test]
    fn partitions_are_reasonably_balanced_at_the_leaf_level() {
        let (tree, sranks) = tree_and_sranks(4096, 32);
        let cs = build_coarsenset(&tree, &sranks, &CoarsenParams { p: 8, agg: 2 });
        // The bottom coarsen level has plenty of sub-trees, so greedy packing
        // should keep the imbalance low.
        assert!(cs.imbalance(0) < 1.5, "imbalance {}", cs.imbalance(0));
    }

    #[test]
    fn figure1_shape_two_coarsen_levels() {
        // A perfect tree of height >= 3 with agg=2 must produce at least two
        // coarsen levels, with the leaves in level 0.
        let (tree, sranks) = tree_and_sranks(256, 16);
        assert!(tree.height >= 3);
        let cs = build_coarsenset(&tree, &sranks, &CoarsenParams { p: 2, agg: 2 });
        assert!(cs.num_levels() >= 2);
        let leaves: HashSet<_> = tree.leaves().into_iter().collect();
        let level0: HashSet<_> = cs.levels[0].iter().flatten().copied().collect();
        for l in leaves {
            assert!(level0.contains(&l), "leaf {l} not in coarsen level 0");
        }
    }

    #[test]
    fn single_node_tree_has_empty_coarsenset() {
        let pts = generate(DatasetId::Random, 8, 1);
        let tree = ClusterTree::build(&pts, PartitionMethod::KdTree, 16, 0);
        let cs = build_coarsenset(&tree, &[0], &CoarsenParams::default());
        assert_eq!(cs.num_levels(), 0);
    }

    #[test]
    fn costs_reflect_sranks() {
        let (tree, _) = tree_and_sranks(512, 16);
        let zero = vec![0usize; tree.num_nodes()];
        let cs = build_coarsenset(&tree, &zero, &CoarsenParams { p: 4, agg: 2 });
        for cl in &cs.costs {
            for &c in cl {
                assert_eq!(c, 0);
            }
        }
    }
}
