//! The blocking algorithm (Algorithm 1 of the paper).
//!
//! Near (and far) interactions `(i, j)` are mapped onto a coarse grid of
//! `blocksize x blocksize` node blocks.  All interactions whose *target* node
//! falls into the same block row are placed into the same `blockset` entry,
//! which has two effects:
//!
//! 1. interactions that touch the same node end up next to each other, so the
//!    submatrices they read are stored (and accessed) together — better
//!    locality;
//! 2. two different `blockset` entries never write to the same output rows,
//!    so the blocked loop of Figure 1e is fully parallel with **no atomic
//!    reduction**, unlike the library loop of Figure 1d.

/// A set of interaction groups produced by Algorithm 1.
///
/// `groups[g]` is the list of directed interactions `(i, j)` assigned to
/// group `g`; groups are disjoint, cover every input interaction exactly
/// once, and no two groups contain interactions with the same target node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSet {
    /// Interaction groups, in block-row order (the CDS storage order).
    pub groups: Vec<Vec<(usize, usize)>>,
    /// The blocksize used to build the groups.
    pub blocksize: usize,
}

impl BlockSet {
    /// Total number of interactions across all groups.
    pub fn num_interactions(&self) -> usize {
        self.groups.iter().map(|g| g.len()).sum()
    }

    /// Number of non-empty groups (the "number of blocks" compared against
    /// the block-threshold during code generation).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Iterate over all interactions in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.groups.iter().flat_map(|g| g.iter().copied())
    }
}

/// Algorithm 1: build a blockset from a list of directed interactions.
///
/// `interactions` are the `(i, j)` pairs from the HTree near (or far) lists;
/// `num_nodes` is the total number of tree nodes (the root, node 0, never
/// appears in an interaction); `blocksize` is the grouping granularity
/// (the paper uses 2 for near and 4 for far interactions).
pub fn build_blockset(
    interactions: &[(usize, usize)],
    num_nodes: usize,
    blocksize: usize,
) -> BlockSet {
    assert!(blocksize >= 1, "blocksize must be at least 1");
    if num_nodes <= 1 || interactions.is_empty() {
        return BlockSet {
            groups: Vec::new(),
            blocksize,
        };
    }
    // blockDim = (numNodes - 1 + blocksize) / blocksize  (line 1)
    let block_dim = (num_nodes - 1 + blocksize) / blocksize;
    // blocks(iid, jid) accumulate interactions (lines 3-9).  The paper maps
    // node x to (x-1)/blocksize because node 0 (the root) has no interactions.
    let mut blocks: Vec<Vec<(usize, usize)>> = vec![Vec::new(); block_dim * block_dim];
    for &(i, j) in interactions {
        debug_assert!(i != 0 && j != 0, "the root must not appear in interactions");
        let iid = (i - 1) / blocksize;
        let jid = (j - 1) / blocksize;
        blocks[iid * block_dim + jid].push((i, j));
    }
    // Add blocks into the blockset (lines 10-16): every block in block-row
    // `iid` goes into the same group so writes to the same target rows are
    // never split across parallel groups.
    let mut groups: Vec<Vec<(usize, usize)>> = Vec::new();
    for iid in 0..block_dim {
        let mut group: Vec<(usize, usize)> = Vec::new();
        for jid in 0..block_dim {
            let cell = &blocks[iid * block_dim + jid];
            if !cell.is_empty() {
                group.extend_from_slice(cell);
            }
        }
        if !group.is_empty() {
            groups.push(group);
        }
    }
    BlockSet { groups, blocksize }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn figure1_near_interactions() -> Vec<(usize, usize)> {
        // Near interactions of Figure 1b/1f: D blocks on nodes 3,4,7,8,9,10.
        vec![
            (3, 3),
            (3, 4),
            (4, 3),
            (4, 4),
            (7, 7),
            (8, 8),
            (9, 9),
            (9, 10),
            (10, 9),
            (10, 10),
        ]
    }

    #[test]
    fn reproduces_figure1_blockset() {
        // With 11 nodes and blocksize 2 the paper's Figure 1f groups the
        // interactions into two sets: {(3,3),(3,4),(4,3),(4,4),(7,7),(8,8)}
        // and {(9,9),(9,10),(10,9),(10,10)}.
        let bs = build_blockset(&figure1_near_interactions(), 11, 2);
        let as_sets: Vec<HashSet<(usize, usize)>> = bs
            .groups
            .iter()
            .map(|g| g.iter().copied().collect())
            .collect();
        let b0: HashSet<_> = [(3, 3), (3, 4), (4, 3), (4, 4)].into_iter().collect();
        let b1: HashSet<_> = [(7, 7), (8, 8)].into_iter().collect();
        let b2: HashSet<_> = [(9, 9), (9, 10), (10, 9), (10, 10)].into_iter().collect();
        // Nodes 3,4 -> block row 1; 7,8 -> block row 3; 9,10 -> block row 4.
        // The figure merges rows with the same visual block; what matters for
        // correctness is that (3,4) stay together, (7,8) stay together and
        // (9,10) stay together.
        assert!(as_sets.contains(&b0));
        assert!(as_sets.contains(&b1));
        assert!(as_sets.contains(&b2));
        assert_eq!(bs.num_interactions(), 10);
    }

    #[test]
    fn groups_partition_the_interactions() {
        let interactions: Vec<(usize, usize)> = (1..40)
            .flat_map(|i| {
                (1..40)
                    .filter(move |&j| (i + j) % 7 == 0)
                    .map(move |j| (i, j))
            })
            .collect();
        let bs = build_blockset(&interactions, 40, 3);
        let flat: Vec<_> = bs.iter().collect();
        assert_eq!(flat.len(), interactions.len());
        let input: HashSet<_> = interactions.iter().copied().collect();
        let output: HashSet<_> = flat.iter().copied().collect();
        assert_eq!(input, output);
    }

    #[test]
    fn no_target_node_spans_two_groups() {
        let interactions: Vec<(usize, usize)> = (1..60)
            .flat_map(|i| {
                (1..60)
                    .filter(move |&j| (i * j) % 11 == 1)
                    .map(move |j| (i, j))
            })
            .collect();
        let bs = build_blockset(&interactions, 60, 4);
        let mut owner: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for (g, group) in bs.groups.iter().enumerate() {
            for &(i, _) in group {
                if let Some(&prev) = owner.get(&i) {
                    assert_eq!(prev, g, "target node {i} appears in groups {prev} and {g}");
                } else {
                    owner.insert(i, g);
                }
            }
        }
    }

    #[test]
    fn blocksize_one_gives_one_group_per_target() {
        let interactions = vec![(1, 2), (2, 1), (3, 3), (1, 1)];
        let bs = build_blockset(&interactions, 4, 1);
        assert_eq!(bs.num_groups(), 3);
    }

    #[test]
    fn empty_input_gives_empty_blockset() {
        let bs = build_blockset(&[], 100, 2);
        assert_eq!(bs.num_groups(), 0);
        assert_eq!(bs.num_interactions(), 0);
    }

    #[test]
    fn large_blocksize_collapses_to_one_group() {
        let interactions = vec![(1, 2), (5, 6), (9, 3)];
        let bs = build_blockset(&interactions, 10, 100);
        assert_eq!(bs.num_groups(), 1);
        assert_eq!(bs.groups[0].len(), 3);
    }
}
