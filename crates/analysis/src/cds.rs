//! The Compressed Data-Sparse (CDS) storage format.
//!
//! CDS stores every submatrix of the HMatrix in one of three flat, contiguous
//! buffers, **in exactly the order the generated evaluation code visits
//! them**:
//!
//! * the `U`/`V` generators in coarsenset order (Figure 1g/1h),
//! * the dense near blocks `D` in near-blockset order,
//! * the coupling blocks `B` in far-blockset order.
//!
//! Offsets are derived from the sranks, so a block's data is found with a
//! single offset lookup and consecutive blocks in the computation are
//! consecutive in memory — this is the data-layout half of MatRox's locality
//! optimization (the loop-structure half is in `matrox-codegen` /
//! `matrox-exec`).

//! Packing runs on the work-stealing pool with fixed combination order:
//! a sequential pass lays out every entry's offset (in blockset/coarsenset
//! order, exactly as before), the value buffer is pre-allocated, and the
//! copies land in disjoint `&mut` slices carved per entry — so the packed
//! bytes are bitwise identical at every pool width and grain.

use crate::blocking::BlockSet;
use crate::coarsen::CoarsenSet;
use matrox_compress::Compression;
use matrox_linalg::knobs::resolve_grain;
use matrox_tree::ClusterTree;
use rayon::prelude::*;
use std::collections::HashMap;

/// Placement of one stored submatrix inside a CDS value buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CdsBlockEntry {
    /// Target node `i` (rows of the block scatter into this node's output).
    pub target: usize,
    /// Source node `j` (columns of the block gather from this node's input).
    pub source: usize,
    /// Offset of the block's first element in the value buffer.
    pub offset: usize,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

/// Range of block entries belonging to one blockset group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupRange {
    /// First entry index (inclusive).
    pub start: usize,
    /// Last entry index (exclusive).
    pub end: usize,
}

/// Placement of one node's generators inside the generator buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorEntry {
    /// Offset of `V_i` in [`Cds::gen_values`].
    pub v_offset: usize,
    /// Offset of `U_i` in [`Cds::gen_values`].
    pub u_offset: usize,
    /// Number of rows of the generator (leaf size or children's combined
    /// srank).
    pub rows: usize,
    /// Number of columns (the node's srank).
    pub cols: usize,
}

impl GeneratorEntry {
    fn absent() -> Self {
        GeneratorEntry {
            v_offset: usize::MAX,
            u_offset: usize::MAX,
            rows: 0,
            cols: 0,
        }
    }

    /// True when the node has a (non-empty) stored basis.
    pub fn is_present(&self) -> bool {
        self.v_offset != usize::MAX && self.rows > 0 && self.cols > 0
    }
}

/// Size summary of a set of stored submatrices: the largest row count,
/// column count and single-block element count seen.
///
/// The panel-blocked executor sizes its right-hand-side panels from the
/// worst-case extent ([`Cds::worst_block_extent`]: a block plus its
/// input/output panels must fit in L2); the per-class and per-group
/// queries below expose the same information at finer grain for harness
/// diagnostics and future per-group panel policies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockExtent {
    /// Largest number of rows of any block in the set.
    pub max_rows: usize,
    /// Largest number of columns of any block in the set.
    pub max_cols: usize,
    /// Largest single-block element count (`rows * cols`) in the set.
    pub max_elems: usize,
}

impl BlockExtent {
    /// Fold one `rows x cols` block into the extent.
    pub fn include(&mut self, rows: usize, cols: usize) {
        self.max_rows = self.max_rows.max(rows);
        self.max_cols = self.max_cols.max(cols);
        self.max_elems = self.max_elems.max(rows * cols);
    }

    /// Union of two extents.
    pub fn merge(&self, other: &BlockExtent) -> BlockExtent {
        BlockExtent {
            max_rows: self.max_rows.max(other.max_rows),
            max_cols: self.max_cols.max(other.max_cols),
            max_elems: self.max_elems.max(other.max_elems),
        }
    }

    /// True when no block has been folded in.
    pub fn is_empty(&self) -> bool {
        self.max_elems == 0
    }
}

/// The HMatrix stored in the Compressed Data-Sparse format.
#[derive(Debug, Clone)]
pub struct Cds {
    /// Flat buffer holding all `V` and `U` generators in coarsenset order.
    pub gen_values: Vec<f64>,
    /// Per-node generator placement, indexed by node id.
    pub generators: Vec<GeneratorEntry>,
    /// Per-node sranks (duplicated here so the executor does not need the
    /// compression object).
    pub sranks: Vec<usize>,
    /// Flat buffer of dense near blocks in near-blockset order.
    pub d_values: Vec<f64>,
    /// Near-block placements in storage order.
    pub d_entries: Vec<CdsBlockEntry>,
    /// One range of `d_entries` per near-blockset group.
    pub d_groups: Vec<GroupRange>,
    /// Flat buffer of coupling blocks in far-blockset order.
    pub b_values: Vec<f64>,
    /// Coupling-block placements in storage order.
    pub b_entries: Vec<CdsBlockEntry>,
    /// One range of `b_entries` per far-blockset group.
    pub b_groups: Vec<GroupRange>,
}

impl Cds {
    /// Total stored bytes (generators + near + far values).
    pub fn storage_bytes(&self) -> usize {
        (self.gen_values.len() + self.d_values.len() + self.b_values.len())
            * std::mem::size_of::<f64>()
    }

    /// Borrow the `V` generator of node `id` as `(data, rows, cols)`.
    pub fn v(&self, id: usize) -> (&[f64], usize, usize) {
        let g = &self.generators[id];
        if !g.is_present() {
            return (&[], 0, 0);
        }
        (
            &self.gen_values[g.v_offset..g.v_offset + g.rows * g.cols],
            g.rows,
            g.cols,
        )
    }

    /// Borrow the `U` generator of node `id` as `(data, rows, cols)`.
    pub fn u(&self, id: usize) -> (&[f64], usize, usize) {
        let g = &self.generators[id];
        if !g.is_present() {
            return (&[], 0, 0);
        }
        (
            &self.gen_values[g.u_offset..g.u_offset + g.rows * g.cols],
            g.rows,
            g.cols,
        )
    }

    /// Borrow the values of near-block entry `e`.
    pub fn d_block(&self, e: &CdsBlockEntry) -> &[f64] {
        &self.d_values[e.offset..e.offset + e.rows * e.cols]
    }

    /// Borrow the values of coupling-block entry `e`.
    pub fn b_block(&self, e: &CdsBlockEntry) -> &[f64] {
        &self.b_values[e.offset..e.offset + e.rows * e.cols]
    }

    fn extent_of(entries: &[CdsBlockEntry]) -> BlockExtent {
        let mut ext = BlockExtent::default();
        for e in entries {
            ext.include(e.rows, e.cols);
        }
        ext
    }

    /// Extent of all dense near blocks.
    pub fn near_extent(&self) -> BlockExtent {
        Self::extent_of(&self.d_entries)
    }

    /// Extent of all coupling blocks.
    pub fn far_extent(&self) -> BlockExtent {
        Self::extent_of(&self.b_entries)
    }

    /// Per-group extents of the near blocks, in `d_groups` order.
    pub fn near_group_extents(&self) -> Vec<BlockExtent> {
        self.d_groups
            .iter()
            .map(|g| Self::extent_of(&self.d_entries[g.start..g.end]))
            .collect()
    }

    /// Per-group extents of the coupling blocks, in `b_groups` order.
    pub fn far_group_extents(&self) -> Vec<BlockExtent> {
        self.b_groups
            .iter()
            .map(|g| Self::extent_of(&self.b_entries[g.start..g.end]))
            .collect()
    }

    /// Extent of all stored (present) generators.  `max_rows` is the largest
    /// generator height (leaf size or combined child srank) and `max_cols`
    /// the largest srank.
    pub fn generator_extent(&self) -> BlockExtent {
        let mut ext = BlockExtent::default();
        for g in &self.generators {
            if g.is_present() {
                ext.include(g.rows, g.cols);
            }
        }
        ext
    }

    /// The extent of the single largest working set any executor phase
    /// touches per block: the union of the near, far and generator extents.
    pub fn worst_block_extent(&self) -> BlockExtent {
        self.near_extent()
            .merge(&self.far_extent())
            .merge(&self.generator_extent())
    }
}

/// Build the CDS representation from the compression output and the
/// structure sets (the "data layout construction" step of structure
/// analysis).
pub fn build_cds(
    tree: &ClusterTree,
    compression: &Compression,
    near_blockset: &BlockSet,
    far_blockset: &BlockSet,
    coarsenset: &CoarsenSet,
) -> Cds {
    build_cds_with_grain(
        tree,
        compression,
        near_blockset,
        far_blockset,
        coarsenset,
        0,
    )
}

/// [`build_cds`] with an explicit grain (minimum copy tasks per parallel
/// work item; `0` = auto / the `MATROX_GRAIN` env knob).  Grain only changes
/// copy chunking, never the packed bytes.
pub fn build_cds_with_grain(
    tree: &ClusterTree,
    compression: &Compression,
    near_blockset: &BlockSet,
    far_blockset: &BlockSet,
    coarsenset: &CoarsenSet,
    grain: usize,
) -> Cds {
    let n_nodes = tree.num_nodes();
    let grain = resolve_grain(grain);

    // ---- generators in coarsenset order --------------------------------
    // Sequential layout pass: assign every stored node its dense offsets in
    // coarsenset order (V then U contiguously), then copy the payloads in
    // parallel into disjoint per-node slices of the pre-sized buffer.
    let mut generators = vec![GeneratorEntry::absent(); n_nodes];
    let mut stored: Vec<usize> = Vec::new();
    let mut gen_total = 0usize;
    for cl in &coarsenset.levels {
        for part in cl {
            for &id in part {
                let basis = &compression.bases[id];
                if basis.srank == 0 || basis.v.is_empty() {
                    continue;
                }
                let (rows, cols) = basis.v.shape();
                generators[id] = GeneratorEntry {
                    v_offset: gen_total,
                    u_offset: gen_total + rows * cols,
                    rows,
                    cols,
                };
                stored.push(id);
                gen_total += 2 * rows * cols;
            }
        }
    }
    let mut gen_values = vec![0.0f64; gen_total];
    {
        let mut slots: Vec<(usize, &mut [f64])> = Vec::with_capacity(stored.len());
        let mut rest: &mut [f64] = &mut gen_values;
        for &id in &stored {
            let g = &generators[id];
            let (chunk, tail) = rest.split_at_mut(2 * g.rows * g.cols);
            slots.push((id, chunk));
            rest = tail;
        }
        slots
            .into_par_iter()
            .with_min_len(grain)
            .for_each(|(id, chunk)| {
                let basis = &compression.bases[id];
                let half = basis.v.len();
                chunk[..half].copy_from_slice(basis.v.as_slice());
                chunk[half..].copy_from_slice(basis.u.as_slice());
            });
    }

    // ---- near blocks in blockset order ----------------------------------
    let near_map: HashMap<(usize, usize), &matrox_linalg::Matrix> = compression
        .near_blocks
        .iter()
        .map(|((i, j), m)| ((*i, *j), m))
        .collect();
    let (d_values, d_entries, d_groups) = pack_blocks(near_blockset, &near_map, grain);

    // ---- far blocks in blockset order ------------------------------------
    let far_map: HashMap<(usize, usize), &matrox_linalg::Matrix> = compression
        .far_blocks
        .iter()
        .map(|((i, j), m)| ((*i, *j), m))
        .collect();
    let (b_values, b_entries, b_groups) = pack_blocks(far_blockset, &far_map, grain);

    Cds {
        gen_values,
        generators,
        sranks: compression.sranks.clone(),
        d_values,
        d_entries,
        d_groups,
        b_values,
        b_entries,
        b_groups,
    }
}

/// Pack the blocks referenced by a blockset into a flat buffer, preserving
/// the blockset iteration order.  Offsets are laid out sequentially; the
/// copies run in parallel into disjoint per-entry slices.
fn pack_blocks(
    blockset: &BlockSet,
    blocks: &HashMap<(usize, usize), &matrox_linalg::Matrix>,
    grain: usize,
) -> (Vec<f64>, Vec<CdsBlockEntry>, Vec<GroupRange>) {
    let mut entries = Vec::new();
    let mut groups = Vec::with_capacity(blockset.groups.len());
    let mut offset = 0usize;
    for group in &blockset.groups {
        let start = entries.len();
        for &(i, j) in group {
            let m = blocks
                .get(&(i, j))
                .unwrap_or_else(|| panic!("blockset references missing block ({i},{j})"));
            entries.push(CdsBlockEntry {
                target: i,
                source: j,
                offset,
                rows: m.rows(),
                cols: m.cols(),
            });
            offset += m.len();
        }
        groups.push(GroupRange {
            start,
            end: entries.len(),
        });
    }
    let mut values = vec![0.0f64; offset];
    {
        let mut slots: Vec<&mut [f64]> = Vec::with_capacity(entries.len());
        let mut rest: &mut [f64] = &mut values;
        for e in &entries {
            let (chunk, tail) = rest.split_at_mut(e.rows * e.cols);
            slots.push(chunk);
            rest = tail;
        }
        let work: Vec<(&CdsBlockEntry, &mut [f64])> = entries.iter().zip(slots).collect();
        work.into_par_iter()
            .with_min_len(grain)
            .for_each(|(e, chunk)| {
                chunk.copy_from_slice(blocks[&(e.target, e.source)].as_slice());
            });
    }
    (values, entries, groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::build_blockset;
    use crate::coarsen::{build_coarsenset, CoarsenParams};
    use matrox_compress::{compress, CompressionParams};
    use matrox_points::{generate, DatasetId, Kernel};
    use matrox_sampling::sample_nodes_exhaustive;
    use matrox_tree::{ClusterTree, HTree, PartitionMethod, Structure};

    fn setup(structure: Structure) -> (ClusterTree, HTree, Compression, Cds) {
        let pts = generate(DatasetId::Grid, 512, 17);
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let tree = ClusterTree::build(&pts, PartitionMethod::KdTree, 32, 0);
        let htree = HTree::build(&tree, structure);
        let sampling = sample_nodes_exhaustive(&pts, &tree);
        let c = compress(
            &pts,
            &tree,
            &htree,
            &kernel,
            &sampling,
            &CompressionParams::default(),
        );
        let near_bs = build_blockset(&htree.near_pairs(), tree.num_nodes(), 2);
        let far_bs = build_blockset(&htree.far_pairs(), tree.num_nodes(), 4);
        let cs = build_coarsenset(&tree, &c.sranks, &CoarsenParams { p: 4, agg: 2 });
        let cds = build_cds(&tree, &c, &near_bs, &far_bs, &cs);
        (tree, htree, c, cds)
    }

    #[test]
    fn every_interaction_is_stored_exactly_once() {
        let (_, htree, _, cds) = setup(Structure::Geometric { tau: 0.65 });
        assert_eq!(cds.d_entries.len(), htree.num_near());
        assert_eq!(cds.b_entries.len(), htree.num_far());
        let near_keys: std::collections::HashSet<_> =
            cds.d_entries.iter().map(|e| (e.target, e.source)).collect();
        assert_eq!(near_keys.len(), cds.d_entries.len());
    }

    #[test]
    fn offsets_are_dense_and_non_overlapping() {
        let (_, _, _, cds) = setup(Structure::Hss);
        let mut expected = 0usize;
        for e in &cds.d_entries {
            assert_eq!(e.offset, expected);
            expected += e.rows * e.cols;
        }
        assert_eq!(expected, cds.d_values.len());
        let mut expected = 0usize;
        for e in &cds.b_entries {
            assert_eq!(e.offset, expected);
            expected += e.rows * e.cols;
        }
        assert_eq!(expected, cds.b_values.len());
    }

    #[test]
    fn stored_blocks_match_compression_blocks() {
        let (_, _, c, cds) = setup(Structure::Geometric { tau: 0.65 });
        let map: std::collections::HashMap<_, _> = c
            .near_blocks
            .iter()
            .map(|((i, j), m)| ((*i, *j), m))
            .collect();
        for e in &cds.d_entries {
            let m = map[&(e.target, e.source)];
            assert_eq!((e.rows, e.cols), m.shape());
            assert_eq!(cds.d_block(e), m.as_slice());
        }
    }

    #[test]
    fn generators_match_compression_and_have_u_after_v() {
        let (tree, _, c, cds) = setup(Structure::Hss);
        for id in 1..tree.num_nodes() {
            let basis = &c.bases[id];
            let g = &cds.generators[id];
            if basis.srank == 0 {
                assert!(!g.is_present());
                continue;
            }
            assert!(g.is_present(), "node {id} missing generator");
            assert_eq!((g.rows, g.cols), basis.v.shape());
            let (vdata, _, _) = cds.v(id);
            assert_eq!(vdata, basis.v.as_slice());
            let (udata, _, _) = cds.u(id);
            assert_eq!(udata, basis.u.as_slice());
            assert_eq!(g.u_offset, g.v_offset + g.rows * g.cols);
        }
    }

    #[test]
    fn group_ranges_tile_the_entries() {
        let (_, _, _, cds) = setup(Structure::Geometric { tau: 0.65 });
        let mut prev_end = 0usize;
        for g in &cds.d_groups {
            assert_eq!(g.start, prev_end);
            assert!(g.end >= g.start);
            prev_end = g.end;
        }
        assert_eq!(prev_end, cds.d_entries.len());
    }

    #[test]
    fn storage_matches_compression_payload() {
        let (tree, _, c, cds) = setup(Structure::Hss);
        // CDS stores every near/far block and every non-empty generator, so
        // the total element count must match the compression's payload.
        let _ = tree;
        assert_eq!(cds.storage_bytes(), c.storage_bytes());
    }

    #[test]
    fn extents_cover_every_stored_block() {
        let (_, _, c, cds) = setup(Structure::Geometric { tau: 0.65 });
        let near = cds.near_extent();
        for e in &cds.d_entries {
            assert!(e.rows <= near.max_rows && e.cols <= near.max_cols);
            assert!(e.rows * e.cols <= near.max_elems);
        }
        let far = cds.far_extent();
        for e in &cds.b_entries {
            assert!(e.rows * e.cols <= far.max_elems);
        }
        let gen = cds.generator_extent();
        for (id, g) in cds.generators.iter().enumerate() {
            if g.is_present() {
                assert!(g.rows <= gen.max_rows, "generator {id} taller than extent");
                assert!(g.cols <= gen.max_cols);
            }
        }
        let worst = cds.worst_block_extent();
        assert_eq!(
            worst.max_elems,
            near.max_elems.max(far.max_elems).max(gen.max_elems)
        );
        let _ = c;
    }

    #[test]
    fn group_extents_match_groups_and_merge_to_total() {
        let (_, _, _, cds) = setup(Structure::Geometric { tau: 0.65 });
        let per_group = cds.near_group_extents();
        assert_eq!(per_group.len(), cds.d_groups.len());
        let merged = per_group
            .iter()
            .fold(BlockExtent::default(), |acc, e| acc.merge(e));
        assert_eq!(merged, cds.near_extent());
        for (g, ext) in cds.d_groups.iter().zip(&per_group) {
            for e in &cds.d_entries[g.start..g.end] {
                assert!(e.rows <= ext.max_rows && e.cols <= ext.max_cols);
            }
        }
        assert!(BlockExtent::default().is_empty());
        assert!(!cds.near_extent().is_empty());
    }

    #[test]
    fn hss_has_no_near_offdiagonal_entries() {
        let (tree, _, _, cds) = setup(Structure::Hss);
        for e in &cds.d_entries {
            assert_eq!(e.target, e.source);
            assert!(tree.nodes[e.target].is_leaf());
        }
    }
}
