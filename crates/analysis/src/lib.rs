//! # matrox-analysis
//!
//! MatRox structure analysis (Section 3.2 of the paper): the blocking and
//! coarsening algorithms that turn the structure information produced by
//! compression into the *structure sets* driving code generation, plus the
//! Compressed Data-Sparse (CDS) data-layout construction.
//!
//! * [`blocking`] — Algorithm 1: groups near/far interactions into a
//!   `blockset` whose groups can execute in parallel without reductions.
//! * [`coarsen`] — Algorithm 2: the LBC-based coarsening of the CTree into
//!   coarsen levels and load-balanced sub-trees (`coarsenset`), using a cost
//!   model over the sranks.
//! * [`cds`] — stores every submatrix in flat buffers following the order of
//!   the blocked and coarsened loops.

#![forbid(unsafe_code)]

pub mod blocking;
pub mod cds;
pub mod coarsen;

pub use blocking::{build_blockset, BlockSet};
pub use cds::{
    build_cds, build_cds_with_grain, BlockExtent, Cds, CdsBlockEntry, GeneratorEntry, GroupRange,
};
pub use coarsen::{build_coarsenset, CoarsenParams, CoarsenSet};
