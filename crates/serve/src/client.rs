//! A small blocking client for the network front-end.
//!
//! [`NetClient`] speaks the framed [`proto`](crate::proto) protocol over
//! one TCP connection: `send` frames a [`Request`] and returns its
//! correlation id, `recv` blocks for a specific response (stashing any
//! others that arrive first, so requests can be pipelined), and `try_recv`
//! drains whatever has already arrived without blocking — the shape an
//! open-loop load generator needs.  Convenience wrappers (`query`, `solve`,
//! `stats`, ...) mirror [`ServeHandle`](crate::ServeHandle) one-for-one,
//! which is the point of the shared protocol: the same [`Request`] type
//! crosses the wire that an in-process caller submits directly.
//!
//! The client is single-threaded by design (no locks, no reader thread);
//! clone nothing, open one client per connection.

use crate::proto::{encode_frame, take_frame, Request, Response};
use crate::server::QueryReply;
use crate::stats::ServerStats;
use matrox_core::MatroxError;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking connection to a [`NetServer`](crate::NetServer).
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    next_corr: u64,
    read_buf: Vec<u8>,
    /// Responses that arrived while waiting for a different correlation id.
    stash: BTreeMap<u64, Response>,
    /// Frame payload cap, mirroring the server's default.
    max_frame_bytes: usize,
}

impl NetClient {
    /// Connect to a serving front-end.
    ///
    /// # Errors
    /// [`MatroxError::Io`] if the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, MatroxError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient {
            stream,
            next_corr: 1,
            read_buf: Vec::new(),
            stash: BTreeMap::new(),
            max_frame_bytes: 16 << 20,
        })
    }

    /// Frame and send one request without waiting; returns the correlation
    /// id to [`recv`](NetClient::recv) on.  Requests sent back-to-back are
    /// pipelined on the connection and may be answered out of order.
    ///
    /// # Errors
    /// [`MatroxError::Io`] if the socket write fails.
    pub fn send(&mut self, req: &Request) -> Result<u64, MatroxError> {
        let corr = self.next_corr;
        self.next_corr += 1;
        let frame = encode_frame(corr, &req.encode());
        self.stream.write_all(&frame)?;
        Ok(corr)
    }

    /// Block until the response for `corr` arrives.  Responses for other
    /// correlation ids are stashed for their own `recv`.
    ///
    /// # Errors
    /// [`MatroxError::Io`] if the connection drops first;
    /// [`MatroxError::Format`] if the server sends undecodable bytes.
    pub fn recv(&mut self, corr: u64) -> Result<Response, MatroxError> {
        loop {
            if let Some(resp) = self.stash.remove(&corr) {
                return Ok(resp);
            }
            if self.drain_frames()? {
                continue;
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(MatroxError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection before replying",
                    )))
                }
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(MatroxError::Io(e)),
            }
        }
    }

    /// Non-blocking poll: decode anything already on the socket and return
    /// the oldest stashed response, if any.  `Ok(None)` means nothing has
    /// arrived yet.
    ///
    /// # Errors
    /// Socket or decode failures, as in [`recv`](NetClient::recv).
    pub fn try_recv(&mut self) -> Result<Option<(u64, Response)>, MatroxError> {
        // Temporarily non-blocking: pull every byte the kernel already has,
        // then restore, so a partial frame never wedges a blocking read.
        self.stream.set_nonblocking(true)?;
        let mut chunk = [0u8; 16 * 1024];
        let pull = loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    break Err(MatroxError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => break Err(MatroxError::Io(e)),
            }
        };
        self.stream.set_nonblocking(false)?;
        pull?;
        self.drain_frames()?;
        Ok(self.stash.pop_first())
    }

    /// Decode every complete frame in the buffer into the stash; `true` if
    /// at least one frame was decoded.
    fn drain_frames(&mut self) -> Result<bool, MatroxError> {
        let mut any = false;
        while let Some((corr, payload)) = take_frame(&mut self.read_buf, self.max_frame_bytes)? {
            self.stash.insert(corr, Response::decode(&payload)?);
            any = true;
        }
        Ok(any)
    }

    /// Send one request and block for its response.
    ///
    /// # Errors
    /// See [`send`](NetClient::send) / [`recv`](NetClient::recv).
    pub fn call(&mut self, req: &Request) -> Result<Response, MatroxError> {
        let corr = self.send(req)?;
        self.recv(corr)
    }

    /// Round-trip a matvec query; mirrors
    /// [`ServeHandle::query_wait`](crate::ServeHandle::query_wait).
    ///
    /// # Errors
    /// Transport failures, plus the query's own [`MatroxError`] (including
    /// [`MatroxError::Overloaded`] when the server shed it).
    pub fn query(
        &mut self,
        model: &str,
        tenant: &str,
        rhs: Vec<f64>,
    ) -> Result<QueryReply, MatroxError> {
        self.call(&Request::Query {
            model: model.to_string(),
            tenant: tenant.to_string(),
            rhs,
        })?
        .into_query_result()
    }

    /// Round-trip a solve query.
    ///
    /// # Errors
    /// As [`query`](NetClient::query).
    pub fn solve(
        &mut self,
        model: &str,
        tenant: &str,
        rhs: Vec<f64>,
    ) -> Result<QueryReply, MatroxError> {
        self.call(&Request::Solve {
            model: model.to_string(),
            tenant: tenant.to_string(),
            rhs,
        })?
        .into_query_result()
    }

    /// Register a model file by server-side path.
    ///
    /// # Errors
    /// Transport failures plus the server's reader errors.
    pub fn load_model(&mut self, id: &str, path: &str) -> Result<(), MatroxError> {
        self.call(&Request::LoadModel {
            id: id.to_string(),
            path: path.to_string(),
        })?
        .into_ack_result()
    }

    /// Snapshot the server's statistics.
    ///
    /// # Errors
    /// Transport failures.
    pub fn stats(&mut self) -> Result<ServerStats, MatroxError> {
        self.call(&Request::Stats)?.into_stats_result()
    }

    /// Flush the server's coalescing queues.
    ///
    /// # Errors
    /// Transport failures.
    pub fn flush(&mut self) -> Result<(), MatroxError> {
        self.call(&Request::Flush)?.into_ack_result()
    }
}
