//! Serving-layer statistics: per-tenant queueing/serving accumulators plus
//! the registry and session counters they ride on.

use crate::registry::RegistryStats;
use matrox_core::SessionStats;

/// Accumulated serving counters for one tenant.  All durations are
/// reactor-side (stamped when the query is enqueued and when its batch is
/// dispatched/finished), so a slow client draining replies does not inflate
/// another tenant's numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantStats {
    /// Queries answered (successfully or not).
    pub queries: u64,
    /// Coalesced evaluations dispatched on this tenant's behalf.  Batch
    /// retries after a failure count once per retried query.
    pub batches: u64,
    /// Total time queries spent waiting in a coalescing queue.
    pub queue_wait_seconds: f64,
    /// Total time spent inside evaluate/solve calls for this tenant's
    /// batches (each query in a batch is charged the full batch service
    /// time — that is the latency it observed).
    pub service_seconds: f64,
    /// Queries answered with an error.
    pub errors: u64,
    /// Errors that were contained panics (`MatroxError::PoolPanic`): an
    /// internal invariant blew up, the session boundary caught it, and only
    /// the offending query failed.
    pub contained_panics: u64,
    /// Queries re-evaluated individually after their coalesced batch
    /// failed; the retry isolates the poisoned column so its co-batched
    /// neighbors still succeed.
    pub retried_queries: u64,
}

impl TenantStats {
    /// Mean coalesced batch width this tenant achieved (`0.0` before the
    /// first batch).  Width 1 means coalescing never found companions.
    pub fn mean_batch_width(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.queries as f64 / self.batches as f64
        }
    }

    /// Mean queue wait per query (`0.0` before the first query).
    pub fn mean_queue_wait_seconds(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.queue_wait_seconds / self.queries as f64
        }
    }

    /// Mean in-evaluator service time per query (`0.0` before the first
    /// query).
    pub fn mean_service_seconds(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.service_seconds / self.queries as f64
        }
    }
}

/// A point-in-time snapshot of everything the server counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerStats {
    /// Per-tenant serving counters, sorted by tenant id.
    pub tenants: Vec<(String, TenantStats)>,
    /// Registry occupancy and load/eviction history.
    pub registry: RegistryStats,
    /// Sum of the resident matvec sessions' stats (inspector/executor cost,
    /// invalid-input / contained-panic / ridge counters).
    pub sessions: SessionStats,
}

impl ServerStats {
    /// Look up one tenant's counters.
    pub fn tenant(&self, id: &str) -> Option<&TenantStats> {
        self.tenants.iter().find(|(t, _)| t == id).map(|(_, s)| s)
    }

    /// Totals across tenants.
    pub fn totals(&self) -> TenantStats {
        let mut t = TenantStats::default();
        for (_, s) in &self.tenants {
            t.queries += s.queries;
            t.batches += s.batches;
            t.queue_wait_seconds += s.queue_wait_seconds;
            t.service_seconds += s.service_seconds;
            t.errors += s.errors;
            t.contained_panics += s.contained_panics;
            t.retried_queries += s.retried_queries;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_means_are_total_over_count() {
        let t = TenantStats {
            queries: 20,
            batches: 4,
            queue_wait_seconds: 2.0,
            service_seconds: 5.0,
            ..Default::default()
        };
        assert!((t.mean_batch_width() - 5.0).abs() < 1e-12);
        assert!((t.mean_queue_wait_seconds() - 0.1).abs() < 1e-12);
        assert!((t.mean_service_seconds() - 0.25).abs() < 1e-12);
        let empty = TenantStats::default();
        assert_eq!(empty.mean_batch_width(), 0.0);
        assert_eq!(empty.mean_queue_wait_seconds(), 0.0);
    }

    #[test]
    fn totals_sum_tenants() {
        let a = TenantStats {
            queries: 3,
            batches: 1,
            errors: 1,
            ..Default::default()
        };
        let b = TenantStats {
            queries: 5,
            batches: 2,
            contained_panics: 1,
            ..Default::default()
        };
        let s = ServerStats {
            tenants: vec![("a".into(), a), ("b".into(), b)],
            ..Default::default()
        };
        let t = s.totals();
        assert_eq!(t.queries, 8);
        assert_eq!(t.batches, 3);
        assert_eq!(t.errors, 1);
        assert_eq!(t.contained_panics, 1);
        assert_eq!(s.tenant("b").map(|x| x.queries), Some(5));
        assert!(s.tenant("zzz").is_none());
    }
}
