//! The serving reactor: one thread, one channel, all mutable state.
//!
//! CONCURRENCY: this file is the serving layer's entire concurrency
//! surface, kept deliberately minimal.  A single reactor thread owns the
//! model registry, the coalescing queues and the statistics; clients only
//! ever touch `mpsc` endpoints.  Requests flow in over one shared sender
//! ([`ServeHandle`] is a cheap clone of it) and every reply flows back over
//! a per-request one-shot channel ([`PendingQuery`]).  There are no locks
//! anywhere, so there is nothing to poison and no ordering to get wrong:
//! the channel *is* the synchronization.  Parallelism inside an evaluation
//! still belongs to the executor's rayon pool; the reactor only decides
//! *what* to evaluate together.

use crate::proto::{Request, Response};
use crate::registry::{Model, ModelRegistry};
use crate::stats::{ServerStats, TenantStats};
use crate::ServeConfig;
use matrox_core::MatroxError;
use matrox_linalg::Matrix;
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::time::{Duration, Instant};

/// The operation a query asks of its model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `y = K~ w` through the model's shared evaluation session.
    Matvec,
    /// `K~ x = b` through the model's ULV factorization.
    Solve,
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Matvec => write!(f, "matvec"),
            Op::Solve => write!(f, "solve"),
        }
    }
}

/// A served answer plus the latency breakdown the reactor observed for it.
#[derive(Debug, Clone)]
pub struct QueryReply {
    /// The answer column (`y` for matvec, `x` for solve), `N` entries.
    pub y: Vec<f64>,
    /// Time the query sat in a coalescing queue before dispatch.
    pub queue_wait: Duration,
    /// Wall-clock of the evaluate/solve call that served it (the whole
    /// batch's call — that is the latency this query experienced).
    pub service: Duration,
    /// Width of the coalesced batch it was served in (1 = alone).
    pub batch_width: usize,
}

impl QueryReply {
    /// Reactor-side latency: queue wait plus service time.  Excludes the
    /// channel hops, which the load generator measures end to end.
    pub fn latency(&self) -> Duration {
        self.queue_wait + self.service
    }
}

struct QueryMsg {
    model: String,
    tenant: String,
    op: Op,
    rhs: Vec<f64>,
    enqueued: Instant,
    reply: Sender<Result<QueryReply, MatroxError>>,
}

enum Msg {
    Query(QueryMsg),
    LoadPath {
        id: String,
        path: PathBuf,
        reply: Sender<Result<(), MatroxError>>,
    },
    Insert {
        id: String,
        model: Model,
        reply: Sender<()>,
    },
    Stats {
        reply: Sender<ServerStats>,
    },
    Flush {
        reply: Sender<()>,
    },
    Shutdown,
}

/// The response the reactor produces for a dropped channel: the submitter
/// gets a clean protocol-level error instead of a hang.
fn reactor_gone() -> Response {
    Response::from_error(&MatroxError::PoolPanic(
        "serve reactor is shut down".to_string(),
    ))
}

#[derive(Debug)]
enum PendingInner {
    Query(Receiver<Result<QueryReply, MatroxError>>),
    Ack(Receiver<Result<(), MatroxError>>),
    Stats(Receiver<ServerStats>),
    Flush(Receiver<()>),
    /// Already answered at submit time (reactor gone); `None` after
    /// [`PendingResponse::try_take`] hands it out.
    Ready(Option<Response>),
}

/// A ticket for one submitted [`Request`]: the single pending-reply type
/// every submission path returns, in-process or wire.  Redeem it blocking
/// with [`wait`](PendingResponse::wait) or poll it with
/// [`try_take`](PendingResponse::try_take) (what the network event loop
/// does between epoll wakeups).  Dropping it abandons the answer; the
/// reactor still serves the request.
#[derive(Debug)]
pub struct PendingResponse {
    inner: PendingInner,
}

impl PendingResponse {
    fn ready(resp: Response) -> Self {
        PendingResponse {
            inner: PendingInner::Ready(Some(resp)),
        }
    }

    /// Block until the response arrives.  Never fails: a vanished reactor
    /// becomes a [`Response::Error`] of kind `PoolPanic`.
    pub fn wait(self) -> Response {
        match self.inner {
            PendingInner::Query(rx) => match rx.recv() {
                Ok(r) => Response::from_query_result(r),
                Err(_) => reactor_gone(),
            },
            PendingInner::Ack(rx) => match rx.recv() {
                Ok(Ok(())) => Response::Done,
                Ok(Err(e)) => Response::from_error(&e),
                Err(_) => reactor_gone(),
            },
            PendingInner::Stats(rx) => match rx.recv() {
                Ok(s) => Response::Stats(s),
                Err(_) => reactor_gone(),
            },
            PendingInner::Flush(rx) => match rx.recv() {
                Ok(()) => Response::Done,
                Err(_) => reactor_gone(),
            },
            PendingInner::Ready(resp) => resp.unwrap_or_else(reactor_gone),
        }
    }

    /// Non-blocking poll: `Some(response)` once the reactor has answered,
    /// `None` while the request is still in flight.  After the response has
    /// been taken once, subsequent polls return `None`.
    pub fn try_take(&mut self) -> Option<Response> {
        fn poll<T>(rx: &Receiver<T>, ok: impl FnOnce(T) -> Response) -> Option<Response> {
            match rx.try_recv() {
                Ok(v) => Some(ok(v)),
                Err(TryRecvError::Empty) => None,
                Err(TryRecvError::Disconnected) => Some(reactor_gone()),
            }
        }
        match &mut self.inner {
            PendingInner::Query(rx) => poll(rx, Response::from_query_result),
            PendingInner::Ack(rx) => poll(rx, |r| match r {
                Ok(()) => Response::Done,
                Err(e) => Response::from_error(&e),
            }),
            PendingInner::Stats(rx) => poll(rx, Response::Stats),
            PendingInner::Flush(rx) => poll(rx, |()| Response::Done),
            PendingInner::Ready(resp) => resp.take(),
        }
    }
}

/// A ticket for one submitted query; redeem it with [`PendingQuery::wait`].
/// Dropping it abandons the answer (the reactor still serves the batch).
/// This is the ergonomic layer over [`PendingResponse`] for callers that
/// know they submitted a query and want a [`QueryReply`] back.
#[derive(Debug)]
pub struct PendingQuery {
    inner: PendingResponse,
}

impl PendingQuery {
    /// Block until the reply arrives.
    ///
    /// # Errors
    /// The query's own failure ([`MatroxError::InvalidInput`],
    /// [`MatroxError::PoolPanic`], ...), or [`MatroxError::PoolPanic`] if
    /// the reactor went away before answering.
    pub fn wait(self) -> Result<QueryReply, MatroxError> {
        self.inner.wait().into_query_result()
    }
}

/// A cheap, cloneable client endpoint for a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServeHandle {
    tx: Sender<Msg>,
}

impl ServeHandle {
    /// Submit one protocol [`Request`] and get a [`PendingResponse`] ticket
    /// back immediately.  This is the single entry point every submission
    /// path funnels through — the ergonomic methods below and the network
    /// front-end are thin adapters over it, so an in-process call and a
    /// socket frame exercise exactly the same server surface.
    pub fn submit(&self, req: Request) -> PendingResponse {
        match req {
            Request::Query { model, tenant, rhs } => {
                self.submit_query(model, tenant, Op::Matvec, rhs)
            }
            Request::Solve { model, tenant, rhs } => {
                self.submit_query(model, tenant, Op::Solve, rhs)
            }
            Request::LoadModel { id, path } => {
                let (reply, rx) = channel();
                match self.tx.send(Msg::LoadPath {
                    id,
                    path: PathBuf::from(path),
                    reply,
                }) {
                    Ok(()) => PendingResponse {
                        inner: PendingInner::Ack(rx),
                    },
                    Err(_) => PendingResponse::ready(reactor_gone()),
                }
            }
            Request::Stats => {
                let (reply, rx) = channel();
                match self.tx.send(Msg::Stats { reply }) {
                    Ok(()) => PendingResponse {
                        inner: PendingInner::Stats(rx),
                    },
                    Err(_) => PendingResponse::ready(reactor_gone()),
                }
            }
            Request::Flush => {
                let (reply, rx) = channel();
                match self.tx.send(Msg::Flush { reply }) {
                    Ok(()) => PendingResponse {
                        inner: PendingInner::Flush(rx),
                    },
                    Err(_) => PendingResponse::ready(reactor_gone()),
                }
            }
        }
    }

    /// Submit a matvec query (`y = K~ w`) for `model` on behalf of
    /// `tenant`; returns immediately.  Queries submitted concurrently for
    /// the same `(model, tenant)` pair coalesce into one evaluation.
    pub fn query(&self, model: &str, tenant: &str, rhs: Vec<f64>) -> PendingQuery {
        PendingQuery {
            inner: self.submit(Request::Query {
                model: model.to_string(),
                tenant: tenant.to_string(),
                rhs,
            }),
        }
    }

    /// Submit a solve query (`K~ x = b`); same coalescing contract as
    /// [`query`](ServeHandle::query).
    pub fn solve(&self, model: &str, tenant: &str, rhs: Vec<f64>) -> PendingQuery {
        PendingQuery {
            inner: self.submit(Request::Solve {
                model: model.to_string(),
                tenant: tenant.to_string(),
                rhs,
            }),
        }
    }

    /// [`query`](ServeHandle::query) and wait for the answer.
    ///
    /// # Errors
    /// See [`PendingQuery::wait`].
    pub fn query_wait(
        &self,
        model: &str,
        tenant: &str,
        rhs: Vec<f64>,
    ) -> Result<QueryReply, MatroxError> {
        self.query(model, tenant, rhs).wait()
    }

    fn submit_query(
        &self,
        model: String,
        tenant: String,
        op: Op,
        rhs: Vec<f64>,
    ) -> PendingResponse {
        let (reply, rx) = channel();
        let msg = Msg::Query(QueryMsg {
            model,
            tenant,
            op,
            rhs,
            enqueued: Instant::now(),
            reply,
        });
        if self.tx.send(msg).is_err() {
            // Reactor already gone: answer the ticket ourselves so `wait`
            // reports a clean error instead of a hung channel.
            return PendingResponse::ready(reactor_gone());
        }
        PendingResponse {
            inner: PendingInner::Query(rx),
        }
    }

    /// Load a model file (either on-disk format) and register it under
    /// `id`, blocking until it is resident.  See
    /// [`ModelRegistry::register_path`].
    ///
    /// # Errors
    /// Reader errors verbatim; [`MatroxError::PoolPanic`] if the reactor is
    /// gone.
    pub fn load_model(&self, id: &str, path: impl Into<PathBuf>) -> Result<(), MatroxError> {
        self.submit(Request::LoadModel {
            id: id.to_string(),
            path: path.into().to_string_lossy().into_owned(),
        })
        .wait()
        .into_ack_result()
    }

    /// Register an in-memory model under `id`, blocking until resident.
    /// This is the one operation with no [`Request`] form: an in-memory
    /// [`Model`] cannot cross a process boundary, so it stays a native
    /// in-process call.
    ///
    /// # Errors
    /// [`MatroxError::PoolPanic`] if the reactor is gone.
    pub fn insert_model(&self, id: &str, model: Model) -> Result<(), MatroxError> {
        let gone = || MatroxError::PoolPanic("serve reactor is shut down".to_string());
        let (reply, rx) = channel();
        self.tx
            .send(Msg::Insert {
                id: id.to_string(),
                model,
                reply,
            })
            .map_err(|_| gone())?;
        rx.recv().map_err(|_| gone())
    }

    /// Snapshot the server's statistics.
    ///
    /// # Errors
    /// [`MatroxError::PoolPanic`] if the reactor is gone.
    pub fn stats(&self) -> Result<ServerStats, MatroxError> {
        self.submit(Request::Stats).wait().into_stats_result()
    }

    /// Barrier: dispatch every queued query immediately (ignoring the
    /// remaining coalesce window) and return once all replies preceding
    /// this call have been sent.
    ///
    /// # Errors
    /// [`MatroxError::PoolPanic`] if the reactor is gone.
    pub fn flush(&self) -> Result<(), MatroxError> {
        self.submit(Request::Flush).wait().into_ack_result()
    }
}

/// A running serving process: the reactor thread plus a [`ServeHandle`]
/// factory.  Dropping the server shuts the reactor down gracefully (every
/// already-submitted query is still served).
pub struct Server {
    handle: ServeHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Start the reactor thread with the given configuration.
    ///
    /// # Errors
    /// [`MatroxError::Io`] if the OS refuses to spawn the thread.
    pub fn spawn(cfg: ServeConfig) -> Result<Server, MatroxError> {
        let (tx, rx) = channel();
        let thread = std::thread::Builder::new()
            .name("matrox-serve".to_string())
            .spawn(move || Reactor::new(rx, cfg).run())
            .map_err(MatroxError::Io)?;
        Ok(Server {
            handle: ServeHandle { tx },
            thread: Some(thread),
        })
    }

    /// A new client endpoint.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Graceful shutdown: serve everything already submitted, snapshot the
    /// final statistics, stop the reactor, and join its thread.
    ///
    /// # Errors
    /// [`MatroxError::PoolPanic`] if the reactor died early (it propagates
    /// the panic context via the join).
    pub fn shutdown(mut self) -> Result<ServerStats, MatroxError> {
        let stats = self.handle.stats();
        let _ = self.handle.tx.send(Msg::Shutdown);
        if let Some(t) = self.thread.take() {
            if t.join().is_err() {
                return Err(MatroxError::PoolPanic(
                    "serve reactor thread panicked".to_string(),
                ));
            }
        }
        stats
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.handle.tx.send(Msg::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BatchKey {
    model: String,
    tenant: String,
    op: Op,
}

struct PendingBatch {
    items: Vec<QueryMsg>,
    /// Flush-by time: set when the first query arrived, never extended.
    deadline: Instant,
}

struct Reactor {
    rx: Receiver<Msg>,
    cfg: ServeConfig,
    registry: ModelRegistry,
    queues: HashMap<BatchKey, PendingBatch>,
    tenants: BTreeMap<String, TenantStats>,
}

impl Reactor {
    fn new(rx: Receiver<Msg>, cfg: ServeConfig) -> Self {
        Reactor {
            rx,
            cfg: ServeConfig {
                max_batch: cfg.max_batch.max(1),
                ..cfg
            },
            registry: ModelRegistry::new(cfg.memory_budget_bytes),
            queues: HashMap::new(),
            tenants: BTreeMap::new(),
        }
    }

    fn run(mut self) {
        loop {
            let msg = if let Some(deadline) = self.earliest_deadline() {
                let now = Instant::now();
                if now >= deadline {
                    self.flush_due(now);
                    continue;
                }
                match self.rx.recv_timeout(deadline - now) {
                    Ok(m) => m,
                    Err(RecvTimeoutError::Timeout) => {
                        self.flush_due(Instant::now());
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            } else {
                match self.rx.recv() {
                    Ok(m) => m,
                    Err(_) => break,
                }
            };
            if !self.handle_msg(msg) {
                // Graceful shutdown: drain what is already in the channel
                // so every submitted query is still served, then stop.
                while let Ok(m) = self.rx.try_recv() {
                    self.handle_msg(m);
                }
                break;
            }
        }
        self.flush_all();
    }

    /// Process one message; `false` means shutdown was requested.
    fn handle_msg(&mut self, msg: Msg) -> bool {
        match msg {
            Msg::Query(q) => self.enqueue(q),
            Msg::LoadPath { id, path, reply } => {
                let _ = reply.send(self.registry.register_path(&id, path));
            }
            Msg::Insert { id, model, reply } => {
                self.registry.insert(&id, model);
                let _ = reply.send(());
            }
            Msg::Stats { reply } => {
                let _ = reply.send(self.snapshot());
            }
            Msg::Flush { reply } => {
                self.flush_all();
                let _ = reply.send(());
            }
            Msg::Shutdown => return false,
        }
        true
    }

    fn enqueue(&mut self, q: QueryMsg) {
        let key = BatchKey {
            model: q.model.clone(),
            tenant: q.tenant.clone(),
            op: q.op,
        };
        if self.cfg.max_batch == 1 || self.cfg.coalesce_window.is_zero() {
            self.dispatch(&key, vec![q]);
            return;
        }
        let deadline = q.enqueued + self.cfg.coalesce_window;
        let max_batch = self.cfg.max_batch;
        let batch = self
            .queues
            .entry(key.clone())
            .or_insert_with(|| PendingBatch {
                items: Vec::with_capacity(max_batch),
                deadline,
            });
        batch.items.push(q);
        if batch.items.len() >= self.cfg.max_batch {
            if let Some(b) = self.queues.remove(&key) {
                self.dispatch(&key, b.items);
            }
        }
    }

    fn earliest_deadline(&self) -> Option<Instant> {
        self.queues.values().map(|b| b.deadline).min()
    }

    /// Dispatch every queue whose window has elapsed, oldest first.
    fn flush_due(&mut self, now: Instant) {
        let mut due: Vec<(Instant, BatchKey)> = self
            .queues
            .iter()
            .filter(|(_, b)| b.deadline <= now)
            .map(|(k, b)| (b.deadline, k.clone()))
            .collect();
        due.sort_by_key(|(d, _)| *d);
        for (_, key) in due {
            if let Some(b) = self.queues.remove(&key) {
                self.dispatch(&key, b.items);
            }
        }
    }

    /// Dispatch everything, window or not (flush barrier / shutdown).
    fn flush_all(&mut self) {
        let mut keys: Vec<(Instant, BatchKey)> = self
            .queues
            .iter()
            .map(|(k, b)| (b.deadline, k.clone()))
            .collect();
        keys.sort_by_key(|(d, _)| *d);
        for (_, key) in keys {
            if let Some(b) = self.queues.remove(&key) {
                self.dispatch(&key, b.items);
            }
        }
    }

    /// Serve one coalesced batch: assemble the RHS panel, run one
    /// evaluate/solve, split the answer back out.  A failed multi-query
    /// batch is retried query-by-query so the failure lands only on the
    /// query that caused it.
    fn dispatch(&mut self, key: &BatchKey, items: Vec<QueryMsg>) {
        let t0 = Instant::now();
        let model = match self.registry.get(&key.model) {
            Ok(m) => m,
            Err(e) => {
                for q in items {
                    self.reply_one(q, Err(clone_error(&e)), t0, Duration::ZERO, 1);
                }
                return;
            }
        };
        let n = model.dim();
        let mut good = Vec::with_capacity(items.len());
        for q in items {
            if q.rhs.len() == n {
                good.push(q);
            } else {
                let e = MatroxError::InvalidInput(format!(
                    "query for model '{}' has {} rows but the model is N = {n}",
                    key.model,
                    q.rhs.len()
                ));
                self.reply_one(q, Err(e), t0, Duration::ZERO, 1);
            }
        }
        if good.is_empty() {
            return;
        }
        let b = good.len();
        let mut data = vec![0.0; n * b];
        for (j, q) in good.iter().enumerate() {
            for (i, &v) in q.rhs.iter().enumerate() {
                data[i * b + j] = v;
            }
        }
        let w = Matrix::from_vec(n, b, data);
        let result = eval_model(&model, key.op, &w);
        let service = t0.elapsed();
        match result {
            Ok(y) => {
                self.bump_batches(&key.tenant, 1);
                for (j, q) in good.into_iter().enumerate() {
                    let col = y.col(j);
                    self.reply_one(
                        q,
                        Ok(QueryReply {
                            y: col,
                            queue_wait: Duration::ZERO, // patched in reply_one
                            service,
                            batch_width: b,
                        }),
                        t0,
                        service,
                        b,
                    );
                }
            }
            Err(e) if b == 1 => {
                self.bump_batches(&key.tenant, 1);
                if let Some(q) = good.into_iter().next() {
                    self.reply_one(q, Err(e), t0, service, 1);
                }
            }
            Err(_) => {
                // The batch as a whole failed (poison column, contained
                // panic, breakdown).  Retry each member alone: only the
                // offending queries fail, their co-batched neighbors get
                // the answer they would have gotten without coalescing.
                for q in good {
                    let t1 = Instant::now();
                    let single = Matrix::from_vec(n, 1, q.rhs.clone());
                    let r = eval_model(&model, key.op, &single).map(|y| QueryReply {
                        y: y.col(0),
                        queue_wait: Duration::ZERO,
                        service: t1.elapsed(),
                        batch_width: 1,
                    });
                    let service1 = t1.elapsed();
                    self.bump_batches(&q.tenant, 1);
                    if let Some(t) = self.tenants.get_mut(&q.tenant) {
                        t.retried_queries += 1;
                    }
                    self.reply_one(q, r, t0, service1, 1);
                }
            }
        }
    }

    fn bump_batches(&mut self, tenant: &str, by: u64) {
        self.tenants.entry(tenant.to_string()).or_default().batches += by;
    }

    /// Account one answered query to its tenant and send the reply.
    /// `dispatched` is when its batch left the queue (queue wait is
    /// `dispatched - enqueued`); `service`/`width` describe the evaluation
    /// that served it.
    fn reply_one(
        &mut self,
        q: QueryMsg,
        result: Result<QueryReply, MatroxError>,
        dispatched: Instant,
        service: Duration,
        width: usize,
    ) {
        let queue_wait = dispatched.saturating_duration_since(q.enqueued);
        let t = self.tenants.entry(q.tenant.clone()).or_default();
        t.queries += 1;
        t.queue_wait_seconds += queue_wait.as_secs_f64();
        t.service_seconds += service.as_secs_f64();
        let result = match result {
            Ok(mut r) => {
                r.queue_wait = queue_wait;
                r.batch_width = width;
                Ok(r)
            }
            Err(e) => {
                t.errors += 1;
                if matches!(e, MatroxError::PoolPanic(_)) {
                    t.contained_panics += 1;
                }
                Err(e)
            }
        };
        let _ = q.reply.send(result);
    }

    fn snapshot(&self) -> ServerStats {
        ServerStats {
            tenants: self
                .tenants
                .iter()
                .map(|(id, s)| (id.clone(), *s))
                .collect(),
            registry: self.registry.stats(),
            sessions: self.registry.aggregate_session_stats(),
        }
    }
}

/// Run one coalesced evaluation for `op` against `model`.
fn eval_model(model: &Model, op: Op, w: &Matrix) -> Result<Matrix, MatroxError> {
    match (model, op) {
        (Model::Matvec(s), Op::Matvec) => s.evaluate(w),
        (Model::Solve(f), Op::Solve) => {
            // The session boundary contains matvec panics; give solves the
            // same "a request can fail; the process cannot" contract here.
            match catch_unwind(AssertUnwindSafe(|| f.solve_matrix(w))) {
                Ok(r) => r,
                Err(payload) => Err(MatroxError::PoolPanic(panic_message(&payload))),
            }
        }
        (Model::Matvec(_), Op::Solve) => Err(MatroxError::PlanMismatch(
            "model is a compressed operator (matvec); load a factored model (MATROXF1) to solve"
                .to_string(),
        )),
        (Model::Solve(_), Op::Matvec) => Err(MatroxError::PlanMismatch(
            "model is a factored operator (solve); load a compressed model (MATROX1) for matvecs"
                .to_string(),
        )),
    }
}

/// Duplicate an error for fan-out to every member of a failed batch
/// (`MatroxError` holds `std::io::Error` and so cannot be `Clone`).
fn clone_error(e: &MatroxError) -> MatroxError {
    match e {
        MatroxError::Io(io) => MatroxError::Io(std::io::Error::new(io.kind(), io.to_string())),
        MatroxError::Format(m) => MatroxError::Format(m.clone()),
        MatroxError::NumericalBreakdown(m) => MatroxError::NumericalBreakdown(m.clone()),
        MatroxError::InvalidInput(m) => MatroxError::InvalidInput(m.clone()),
        MatroxError::PlanMismatch(m) => MatroxError::PlanMismatch(m.clone()),
        MatroxError::PoolPanic(m) => MatroxError::PoolPanic(m.clone()),
        MatroxError::Overloaded(m) => MatroxError::Overloaded(m.clone()),
    }
}

/// Best-effort extraction of a panic payload's message (same policy as the
/// session boundary: `&str` and `String` payloads verbatim, anything else a
/// placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
