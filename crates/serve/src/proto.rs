//! The versioned serving protocol: one request/response vocabulary shared
//! by in-process callers and the network front-end.
//!
//! PR 8's `ServeHandle` took ad-hoc `(&str, &str, Vec<f64>)` tuples, which
//! cannot be framed onto a socket.  This module is the API redesign that
//! fixes it: every operation the server supports is a [`Request`] variant,
//! every outcome is a [`Response`] variant, and both have one canonical
//! byte encoding.  `ServeHandle::{query, solve, load_model, stats, flush}`
//! are now thin wrappers over `submit(Request)`, so an in-process call and
//! a socket frame exercise the same type — any drift between the two
//! surfaces is a compile error, not a protocol bug.
//!
//! ## Encoding
//!
//! A message is `MATROXS1` (8-byte magic) + version byte + tag byte + body,
//! little-endian throughout, built on the hardened wire primitives
//! ([`matrox_core::wire`]).  Strings are `u64` length + UTF-8 bytes; `f64`
//! vectors are `u64` count + bit patterns (bitwise lossless, NaN payloads
//! included); durations travel as `u64` nanoseconds.  Decoding validates
//! magic, version, tags, every length against the bytes remaining, UTF-8,
//! and rejects trailing bytes — the corruption-fuzz suite
//! (`tests/proto_fuzz.rs`) pins that every single-byte flip either decodes
//! to a re-encodable message or errors cleanly without a panic or an
//! oversized allocation.
//!
//! The version byte is `1`.  A decoder that sees a higher version returns
//! [`MatroxError::Format`] — old servers reject new clients loudly instead
//! of misparsing them.

use crate::server::QueryReply;
use crate::stats::{ServerStats, TenantStats};
use matrox_core::{MatroxError, WireReader, WireWriter};
use std::time::Duration;

/// Protocol magic: `MATROXS1` ("S" for serve, 1 for the format family).
pub const MAGIC: &[u8; 8] = b"MATROXS1";
/// Current protocol version.
pub const VERSION: u8 = 1;

/// Frame header: `u32` length (of everything after the length field) plus
/// the `u64` correlation id that pairs a response with its request.
pub const FRAME_HEADER_BYTES: usize = 12;

/// Frame an encoded message for the socket:
/// `[u32 len][u64 corr_id][payload]`, little-endian, where `len` counts the
/// correlation id plus the payload.
pub fn encode_frame(corr_id: u64, payload: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(FRAME_HEADER_BYTES + payload.len());
    w.put_u32((payload.len() + 8) as u32);
    w.put_u64(corr_id);
    w.put_bytes(payload);
    w.into_bytes()
}

/// Pop one complete frame off the front of a receive buffer.
///
/// Returns `Ok(None)` while the frame is still incomplete, and
/// `Ok(Some((corr_id, payload)))` once it is.  A frame whose declared
/// length is shorter than the correlation id or longer than
/// `max_frame_bytes` is unrecoverable (the stream cannot be resynced) and
/// returns [`MatroxError::Format`]; the caller should close the connection
/// after flushing an error reply.
pub fn take_frame(
    buf: &mut Vec<u8>,
    max_frame_bytes: usize,
) -> Result<Option<(u64, Vec<u8>)>, MatroxError> {
    if buf.len() < FRAME_HEADER_BYTES {
        return Ok(None);
    }
    let mut r = WireReader::new(buf);
    let len = r.take_u32("frame length")? as usize;
    if len < 8 {
        return Err(MatroxError::Format(format!(
            "frame length {len} is shorter than its correlation id"
        )));
    }
    if len - 8 > max_frame_bytes {
        return Err(MatroxError::Format(format!(
            "frame payload of {} bytes exceeds the {max_frame_bytes}-byte limit",
            len - 8
        )));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let corr_id = r.take_u64("correlation id")?;
    let payload = buf[FRAME_HEADER_BYTES..4 + len].to_vec();
    buf.drain(..4 + len);
    Ok(Some((corr_id, payload)))
}

/// Every operation the server accepts, in-process or over the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate `K * rhs` against a resident matvec model.
    Query {
        /// Registry id of the model.
        model: String,
        /// Tenant the query is accounted (and coalesced) under.
        tenant: String,
        /// Right-hand-side column; length must match the model dimension.
        rhs: Vec<f64>,
    },
    /// Solve `K~ x = rhs` against a resident factored model.
    Solve {
        /// Registry id of the model.
        model: String,
        /// Tenant the query is accounted (and coalesced) under.
        tenant: String,
        /// Right-hand-side column; length must match the model dimension.
        rhs: Vec<f64>,
    },
    /// Register a path-backed model (`MATROX1` or `MATROXF1` file).
    LoadModel {
        /// Registry id to serve the model under.
        id: String,
        /// Server-side filesystem path of the model file.
        path: String,
    },
    /// Snapshot the server's counters.
    Stats,
    /// Flush every pending coalescing queue immediately.
    Flush,
}

impl Request {
    /// The tenant this request is accounted under, when it has one.
    /// Admission control keys per-tenant in-flight caps on this.
    pub fn tenant(&self) -> Option<&str> {
        match self {
            Request::Query { tenant, .. } | Request::Solve { tenant, .. } => Some(tenant),
            _ => None,
        }
    }

    /// Canonical byte encoding (magic + version + tag + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(64);
        w.put_bytes(MAGIC);
        w.put_u8(VERSION);
        match self {
            Request::Query { model, tenant, rhs } => {
                w.put_u8(0);
                w.put_str(model);
                w.put_str(tenant);
                w.put_f64_slice(rhs);
            }
            Request::Solve { model, tenant, rhs } => {
                w.put_u8(1);
                w.put_str(model);
                w.put_str(tenant);
                w.put_f64_slice(rhs);
            }
            Request::LoadModel { id, path } => {
                w.put_u8(2);
                w.put_str(id);
                w.put_str(path);
            }
            Request::Stats => w.put_u8(3),
            Request::Flush => w.put_u8(4),
        }
        w.into_bytes()
    }

    /// Decode a canonical request, rejecting malformed input with
    /// [`MatroxError::Format`] (never a panic, never an allocation larger
    /// than the input).
    pub fn decode(bytes: &[u8]) -> Result<Self, MatroxError> {
        let mut r = WireReader::new(bytes);
        r.expect_magic(MAGIC, "request")?;
        let version = r.take_u8("request version")?;
        if version != VERSION {
            return Err(MatroxError::Format(format!(
                "unsupported protocol version {version} (this build speaks {VERSION})"
            )));
        }
        let tag = r.take_u8("request tag")?;
        let req = match tag {
            0 | 1 => {
                let model = r.take_str("model id")?;
                let tenant = r.take_str("tenant id")?;
                let rhs = r.take_f64_vec("rhs")?;
                if tag == 0 {
                    Request::Query { model, tenant, rhs }
                } else {
                    Request::Solve { model, tenant, rhs }
                }
            }
            2 => Request::LoadModel {
                id: r.take_str("model id")?,
                path: r.take_str("model path")?,
            },
            3 => Request::Stats,
            4 => Request::Flush,
            t => {
                return Err(MatroxError::Format(format!("unknown request tag {t}")));
            }
        };
        r.finish("request")?;
        Ok(req)
    }
}

/// Wire classification of a [`MatroxError`].  `Overloaded` is deliberately
/// not a kind: load shedding has its own [`Response::Overloaded`] variant so
/// clients can branch on it without string matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Underlying I/O failure (model file unreadable, …).
    Io,
    /// Malformed model or protocol bytes.
    Format,
    /// The math failed (non-SPD, non-finite output, …).
    NumericalBreakdown,
    /// Caller-fixable input problem (unknown model, bad shape, NaN rhs, …).
    InvalidInput,
    /// Operation applied to the wrong kind of model/plan.
    PlanMismatch,
    /// A contained internal panic.
    PoolPanic,
}

impl ErrorKind {
    fn tag(self) -> u8 {
        match self {
            ErrorKind::Io => 0,
            ErrorKind::Format => 1,
            ErrorKind::NumericalBreakdown => 2,
            ErrorKind::InvalidInput => 3,
            ErrorKind::PlanMismatch => 4,
            ErrorKind::PoolPanic => 5,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, MatroxError> {
        Ok(match tag {
            0 => ErrorKind::Io,
            1 => ErrorKind::Format,
            2 => ErrorKind::NumericalBreakdown,
            3 => ErrorKind::InvalidInput,
            4 => ErrorKind::PlanMismatch,
            5 => ErrorKind::PoolPanic,
            t => return Err(MatroxError::Format(format!("unknown error kind {t}"))),
        })
    }
}

/// Split a [`MatroxError`] into its wire kind and bare message (no Display
/// prefix, so a round trip does not stack prefixes).  `Overloaded` maps to
/// `None`: it becomes [`Response::Overloaded`], not an error kind.
fn error_parts(e: &MatroxError) -> Option<(ErrorKind, String)> {
    Some(match e {
        MatroxError::Io(i) => (ErrorKind::Io, i.to_string()),
        MatroxError::Format(m) => (ErrorKind::Format, m.clone()),
        MatroxError::NumericalBreakdown(m) => (ErrorKind::NumericalBreakdown, m.clone()),
        MatroxError::InvalidInput(m) => (ErrorKind::InvalidInput, m.clone()),
        MatroxError::PlanMismatch(m) => (ErrorKind::PlanMismatch, m.clone()),
        MatroxError::PoolPanic(m) => (ErrorKind::PoolPanic, m.clone()),
        MatroxError::Overloaded(_) => return None,
    })
}

/// Reassemble a [`MatroxError`] from its wire kind and message.
fn error_from_parts(kind: ErrorKind, message: String) -> MatroxError {
    match kind {
        ErrorKind::Io => MatroxError::Io(std::io::Error::other(message)),
        ErrorKind::Format => MatroxError::Format(message),
        ErrorKind::NumericalBreakdown => MatroxError::NumericalBreakdown(message),
        ErrorKind::InvalidInput => MatroxError::InvalidInput(message),
        ErrorKind::PlanMismatch => MatroxError::PlanMismatch(message),
        ErrorKind::PoolPanic => MatroxError::PoolPanic(message),
    }
}

/// Every outcome the server produces, in-process or over the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A served query, with the serving telemetry the reactor stamped.
    Reply {
        /// The evaluated/solved column (bitwise identical to a standalone
        /// evaluation — the coalescing determinism contract).
        y: Vec<f64>,
        /// Time the query waited in its coalescing queue, nanoseconds.
        queue_wait_ns: u64,
        /// Service time of the batch that carried it, nanoseconds.
        service_ns: u64,
        /// Width of the coalesced batch that served it.
        batch_width: u64,
    },
    /// The request failed; the kind mirrors the [`MatroxError`] taxonomy.
    Error {
        /// Wire classification of the failure.
        kind: ErrorKind,
        /// Bare error message (no taxonomy prefix).
        message: String,
    },
    /// The request was shed by admission control before evaluation:
    /// in-flight caps hit, dispatch queue full, or latency budget expired.
    /// Retrying after backoff is safe — the request never ran.
    Overloaded {
        /// Which limit shed the request.
        reason: String,
    },
    /// Snapshot of the server's counters.
    Stats(ServerStats),
    /// Acknowledgement for `LoadModel` / `Flush`.
    Done,
}

impl Response {
    /// Build the response for a finished query.
    pub fn from_query_result(result: Result<QueryReply, MatroxError>) -> Self {
        match result {
            Ok(reply) => Response::Reply {
                y: reply.y,
                queue_wait_ns: reply.queue_wait.as_nanos() as u64,
                service_ns: reply.service.as_nanos() as u64,
                batch_width: reply.batch_width as u64,
            },
            Err(e) => Response::from_error(&e),
        }
    }

    /// Build the error/overloaded response for a failed request.
    pub fn from_error(e: &MatroxError) -> Self {
        match error_parts(e) {
            Some((kind, message)) => Response::Error { kind, message },
            None => Response::Overloaded {
                reason: e.to_string(),
            },
        }
    }

    /// Interpret this response as a query outcome.  `Reply` becomes the
    /// [`QueryReply`] it carried; `Error` / `Overloaded` map back onto the
    /// [`MatroxError`] taxonomy; `Stats` / `Done` are protocol misuse
    /// (a query was submitted, something else came back) and surface as
    /// `PlanMismatch`.
    pub fn into_query_result(self) -> Result<QueryReply, MatroxError> {
        match self {
            Response::Reply {
                y,
                queue_wait_ns,
                service_ns,
                batch_width,
            } => Ok(QueryReply {
                y,
                queue_wait: Duration::from_nanos(queue_wait_ns),
                service: Duration::from_nanos(service_ns),
                batch_width: usize::try_from(batch_width).unwrap_or(usize::MAX),
            }),
            Response::Error { kind, message } => Err(error_from_parts(kind, message)),
            Response::Overloaded { reason } => Err(MatroxError::Overloaded(reason)),
            other => Err(MatroxError::PlanMismatch(format!(
                "expected a query reply, got a {} response",
                other.name()
            ))),
        }
    }

    /// Interpret this response as a `LoadModel` / `Flush` acknowledgement.
    pub fn into_ack_result(self) -> Result<(), MatroxError> {
        match self {
            Response::Done => Ok(()),
            Response::Error { kind, message } => Err(error_from_parts(kind, message)),
            Response::Overloaded { reason } => Err(MatroxError::Overloaded(reason)),
            other => Err(MatroxError::PlanMismatch(format!(
                "expected an acknowledgement, got a {} response",
                other.name()
            ))),
        }
    }

    /// Interpret this response as a `Stats` snapshot.
    pub fn into_stats_result(self) -> Result<ServerStats, MatroxError> {
        match self {
            Response::Stats(s) => Ok(s),
            Response::Error { kind, message } => Err(error_from_parts(kind, message)),
            Response::Overloaded { reason } => Err(MatroxError::Overloaded(reason)),
            other => Err(MatroxError::PlanMismatch(format!(
                "expected a stats snapshot, got a {} response",
                other.name()
            ))),
        }
    }

    /// Variant name, for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Response::Reply { .. } => "reply",
            Response::Error { .. } => "error",
            Response::Overloaded { .. } => "overloaded",
            Response::Stats(_) => "stats",
            Response::Done => "done",
        }
    }

    /// Canonical byte encoding (magic + version + tag + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(64);
        w.put_bytes(MAGIC);
        w.put_u8(VERSION);
        match self {
            Response::Reply {
                y,
                queue_wait_ns,
                service_ns,
                batch_width,
            } => {
                w.put_u8(0);
                w.put_f64_slice(y);
                w.put_u64(*queue_wait_ns);
                w.put_u64(*service_ns);
                w.put_u64(*batch_width);
            }
            Response::Error { kind, message } => {
                w.put_u8(1);
                w.put_u8(kind.tag());
                w.put_str(message);
            }
            Response::Overloaded { reason } => {
                w.put_u8(2);
                w.put_str(reason);
            }
            Response::Stats(stats) => {
                w.put_u8(3);
                encode_stats(&mut w, stats);
            }
            Response::Done => w.put_u8(4),
        }
        w.into_bytes()
    }

    /// Decode a canonical response; same hardening contract as
    /// [`Request::decode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, MatroxError> {
        let mut r = WireReader::new(bytes);
        r.expect_magic(MAGIC, "response")?;
        let version = r.take_u8("response version")?;
        if version != VERSION {
            return Err(MatroxError::Format(format!(
                "unsupported protocol version {version} (this build speaks {VERSION})"
            )));
        }
        let tag = r.take_u8("response tag")?;
        let resp = match tag {
            0 => Response::Reply {
                y: r.take_f64_vec("reply column")?,
                queue_wait_ns: r.take_u64("queue wait")?,
                service_ns: r.take_u64("service time")?,
                batch_width: r.take_u64("batch width")?,
            },
            1 => Response::Error {
                kind: ErrorKind::from_tag(r.take_u8("error kind")?)?,
                message: r.take_str("error message")?,
            },
            2 => Response::Overloaded {
                reason: r.take_str("shed reason")?,
            },
            3 => Response::Stats(decode_stats(&mut r)?),
            4 => Response::Done,
            t => {
                return Err(MatroxError::Format(format!("unknown response tag {t}")));
            }
        };
        r.finish("response")?;
        Ok(resp)
    }
}

fn encode_stats(w: &mut WireWriter, s: &ServerStats) {
    w.put_u64(s.tenants.len() as u64);
    for (id, t) in &s.tenants {
        w.put_str(id);
        w.put_u64(t.queries);
        w.put_u64(t.batches);
        w.put_f64(t.queue_wait_seconds);
        w.put_f64(t.service_seconds);
        w.put_u64(t.errors);
        w.put_u64(t.contained_panics);
        w.put_u64(t.retried_queries);
    }
    w.put_u64(s.registry.resident_models as u64);
    w.put_u64(s.registry.resident_bytes as u64);
    w.put_u64(s.registry.budget_bytes as u64);
    w.put_u64(s.registry.loads);
    w.put_u64(s.registry.evictions);
    w.put_f64(s.sessions.inspect_seconds);
    w.put_f64(s.sessions.eval_seconds);
    w.put_u64(s.sessions.evaluations);
    w.put_u64(s.sessions.queries);
    w.put_u64(s.sessions.invalid_inputs);
    w.put_u64(s.sessions.contained_panics);
    w.put_u64(s.sessions.ridge_attempts as u64);
}

fn take_usize(r: &mut WireReader<'_>, what: &str) -> Result<usize, MatroxError> {
    let v = r.take_u64(what)?;
    usize::try_from(v).map_err(|_| MatroxError::Format(format!("{what} {v} does not fit in usize")))
}

fn decode_stats(r: &mut WireReader<'_>) -> Result<ServerStats, MatroxError> {
    // Each tenant entry is at least 64 bytes (8-byte id length + 7 fields),
    // so the count is capped by the bytes remaining before any allocation.
    let n_tenants = r.take_len(64, "tenant count")?;
    let mut tenants = Vec::with_capacity(n_tenants);
    for _ in 0..n_tenants {
        let id = r.take_str("tenant id")?;
        let t = TenantStats {
            queries: r.take_u64("tenant queries")?,
            batches: r.take_u64("tenant batches")?,
            queue_wait_seconds: r.take_f64("tenant queue wait")?,
            service_seconds: r.take_f64("tenant service")?,
            errors: r.take_u64("tenant errors")?,
            contained_panics: r.take_u64("tenant contained panics")?,
            retried_queries: r.take_u64("tenant retries")?,
        };
        tenants.push((id, t));
    }
    let mut stats = ServerStats {
        tenants,
        ..ServerStats::default()
    };
    stats.registry.resident_models = take_usize(r, "resident models")?;
    stats.registry.resident_bytes = take_usize(r, "resident bytes")?;
    stats.registry.budget_bytes = take_usize(r, "budget bytes")?;
    stats.registry.loads = r.take_u64("registry loads")?;
    stats.registry.evictions = r.take_u64("registry evictions")?;
    stats.sessions.inspect_seconds = r.take_f64("inspect seconds")?;
    stats.sessions.eval_seconds = r.take_f64("eval seconds")?;
    stats.sessions.evaluations = r.take_u64("session evaluations")?;
    stats.sessions.queries = r.take_u64("session queries")?;
    stats.sessions.invalid_inputs = r.take_u64("session invalid inputs")?;
    stats.sessions.contained_panics = r.take_u64("session contained panics")?;
    let ridge = r.take_u64("ridge attempts")?;
    stats.sessions.ridge_attempts = u32::try_from(ridge)
        .map_err(|_| MatroxError::Format(format!("ridge attempts {ridge} does not fit in u32")))?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryStats;
    use matrox_core::SessionStats;

    fn sample_stats() -> ServerStats {
        ServerStats {
            tenants: vec![
                (
                    "alpha".into(),
                    TenantStats {
                        queries: 12,
                        batches: 3,
                        queue_wait_seconds: 0.25,
                        service_seconds: 1.5,
                        errors: 1,
                        contained_panics: 0,
                        retried_queries: 4,
                    },
                ),
                (
                    "beta".into(),
                    TenantStats {
                        queries: 7,
                        ..Default::default()
                    },
                ),
            ],
            registry: RegistryStats {
                resident_models: 2,
                resident_bytes: 1 << 20,
                budget_bytes: 1 << 22,
                loads: 5,
                evictions: 3,
            },
            sessions: SessionStats {
                inspect_seconds: 2.0,
                eval_seconds: 0.5,
                evaluations: 3,
                queries: 19,
                invalid_inputs: 1,
                contained_panics: 0,
                ridge_attempts: 2,
                // Phase breakdown is session-local diagnostics; the wire
                // format deliberately omits it, so the fixture keeps it
                // default for the bitwise round-trip comparison.
                inspect_phases: Default::default(),
            },
        }
    }

    #[test]
    fn requests_round_trip_bitwise() {
        let reqs = vec![
            Request::Query {
                model: "m".into(),
                tenant: "t".into(),
                rhs: vec![1.0, -0.0, f64::NAN, f64::MIN_POSITIVE],
            },
            Request::Solve {
                model: "ridge".into(),
                tenant: "tenant-β".into(),
                rhs: vec![],
            },
            Request::LoadModel {
                id: "m2".into(),
                path: "/models/m2.cds".into(),
            },
            Request::Stats,
            Request::Flush,
        ];
        for req in reqs {
            let bytes = req.encode();
            let back = Request::decode(&bytes).expect("round trip");
            // PartialEq on f64 treats NaN != NaN, so compare re-encodings:
            // decode-then-encode must be byte-identical.
            assert_eq!(back.encode(), bytes, "lossless re-encode for {back:?}");
        }
    }

    #[test]
    fn responses_round_trip_bitwise() {
        let resps = vec![
            Response::Reply {
                y: vec![3.5, f64::INFINITY, -0.0],
                queue_wait_ns: 12_345,
                service_ns: 9_999_999,
                batch_width: 8,
            },
            Response::Error {
                kind: ErrorKind::InvalidInput,
                message: "rhs length 7 != model dim 256".into(),
            },
            Response::Overloaded {
                reason: "dispatch queue full".into(),
            },
            Response::Stats(sample_stats()),
            Response::Done,
        ];
        for resp in resps {
            let bytes = resp.encode();
            let back = Response::decode(&bytes).expect("round trip");
            assert_eq!(
                back.encode(),
                bytes,
                "lossless re-encode for {}",
                back.name()
            );
        }
    }

    #[test]
    fn stats_payload_survives_field_by_field() {
        let bytes = Response::Stats(sample_stats()).encode();
        let Response::Stats(s) = Response::decode(&bytes).expect("decode") else {
            panic!("wrong variant");
        };
        assert_eq!(s.tenants.len(), 2);
        assert_eq!(s.tenant("alpha").map(|t| t.retried_queries), Some(4));
        assert_eq!(s.registry.resident_bytes, 1 << 20);
        assert_eq!(s.registry.evictions, 3);
        assert_eq!(s.sessions.ridge_attempts, 2);
        assert!((s.sessions.inspect_seconds - 2.0).abs() < 1e-15);
    }

    #[test]
    fn error_taxonomy_round_trips_through_responses() {
        let errors = vec![
            MatroxError::Io(std::io::Error::other("disk gone")),
            MatroxError::Format("truncated".into()),
            MatroxError::NumericalBreakdown("pivot -1".into()),
            MatroxError::InvalidInput("unknown model".into()),
            MatroxError::PlanMismatch("solve on matvec".into()),
            MatroxError::PoolPanic("index 9 out of bounds".into()),
        ];
        for e in errors {
            let display = e.to_string();
            let resp = Response::from_error(&e);
            let bytes = resp.encode();
            let back = Response::decode(&bytes).expect("decode");
            let err = back.into_query_result().expect_err("still an error");
            assert_eq!(
                err.to_string(),
                display,
                "taxonomy + message survive the wire"
            );
        }
        // Overloaded travels as its own variant, not an error kind.
        let resp = Response::from_error(&MatroxError::Overloaded("tenant cap".into()));
        assert!(matches!(resp, Response::Overloaded { .. }));
        let err = resp.into_query_result().expect_err("overloaded");
        assert!(matches!(err, MatroxError::Overloaded(_)));
    }

    #[test]
    fn version_and_tag_corruption_is_rejected() {
        let mut bytes = Request::Stats.encode();
        bytes[8] = 2; // version byte
        assert!(matches!(
            Request::decode(&bytes),
            Err(MatroxError::Format(_))
        ));

        let mut bytes = Request::Stats.encode();
        bytes[9] = 200; // tag byte
        assert!(Request::decode(&bytes).is_err());

        let mut bytes = Response::Done.encode();
        bytes[0] ^= 0xff; // magic
        assert!(Response::decode(&bytes).is_err());

        // Trailing garbage after a valid message is rejected.
        let mut bytes = Request::Flush.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
    }

    #[test]
    fn stats_response_is_protocol_misuse_as_a_query_result() {
        let err = Response::Done.into_query_result().expect_err("not a reply");
        assert!(matches!(err, MatroxError::PlanMismatch(_)), "got {err}");
    }
}
