//! The model registry: loaded models keyed by id, under a memory budget.
//!
//! A *model* is either a compressed operator prepared for matvec serving
//! (an [`EvalSession`], usually from a `MATROX1` model file) or a factored
//! operator prepared for solve serving (a [`FactoredHMatrix`], usually from
//! a `MATROXF1` file).  The registry tracks the CDS payload bytes each
//! resident model pins and evicts least-recently-used models once the
//! configured budget is exceeded — the MatRox storage format is exactly
//! what makes eviction cheap to undo: a path-backed model that is evicted
//! is transparently reloaded from disk on its next request.
//!
//! The registry itself is plain single-threaded state; the reactor thread
//! ([`crate::Server`]) owns it, which is what keeps the request path
//! lock-free.

use matrox_core::{load, load_factored, EvalSession, FactoredHMatrix, MatroxError, SessionStats};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// A servable model: a shared evaluation session (matvec requests) or a
/// factored operator (solve requests).  Cloning is cheap (`Arc`).
#[derive(Debug, Clone)]
pub enum Model {
    /// Serves [`Op::Matvec`](crate::Op::Matvec) through a shared
    /// [`EvalSession`] (plan prepared once, panel-blocked evaluations).
    Matvec(Arc<EvalSession>),
    /// Serves [`Op::Solve`](crate::Op::Solve) through a ULV factorization.
    Solve(Arc<FactoredHMatrix>),
}

impl Model {
    /// Problem size `N` (rows a right-hand side must have).
    pub fn dim(&self) -> usize {
        match self {
            Model::Matvec(s) => s.dim(),
            Model::Solve(f) => f.dim(),
        }
    }

    /// Resident payload bytes this model pins: the CDS buffers, plus the
    /// factor payload for solve models.  Struct and index overhead is not
    /// counted — the budget targets the dominant term, the O(N log N)
    /// submatrix data.
    pub fn storage_bytes(&self) -> usize {
        match self {
            Model::Matvec(s) => s.hmatrix().plan.storage_bytes(),
            Model::Solve(f) => f.hmatrix.plan.storage_bytes() + f.factor.storage_bytes(),
        }
    }
}

struct Resident {
    model: Model,
    bytes: usize,
    /// Logical LRU clock stamp of the most recent touch.
    last_used: u64,
}

/// Counters describing the registry's current occupancy and its history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Models currently resident.
    pub resident_models: usize,
    /// Payload bytes currently resident (see [`Model::storage_bytes`]).
    pub resident_bytes: usize,
    /// Configured budget (`0` = unlimited).
    pub budget_bytes: usize,
    /// Models loaded from disk over the registry's lifetime (initial loads
    /// plus reloads after eviction).
    pub loads: u64,
    /// Models evicted over the registry's lifetime.
    pub evictions: u64,
}

/// Loaded models keyed by id, with LRU eviction under a byte budget.
pub struct ModelRegistry {
    resident: HashMap<String, Resident>,
    /// Backing file per path-backed id — survives eviction so the model can
    /// be reloaded on demand.
    catalog: HashMap<String, PathBuf>,
    clock: u64,
    budget_bytes: usize,
    resident_bytes: usize,
    loads: u64,
    evictions: u64,
}

impl ModelRegistry {
    /// An empty registry with the given byte budget (`0` = unlimited).
    pub fn new(budget_bytes: usize) -> Self {
        ModelRegistry {
            resident: HashMap::new(),
            catalog: HashMap::new(),
            clock: 0,
            budget_bytes,
            resident_bytes: 0,
            loads: 0,
            evictions: 0,
        }
    }

    /// Register a model from a MatRox model file and make it resident.
    /// Both formats are accepted: a `MATROX1` stream becomes a
    /// [`Model::Matvec`] session, a `MATROXF1` stream a [`Model::Solve`].
    /// The path is remembered, so if the model is later evicted it reloads
    /// transparently on the next request.
    ///
    /// # Errors
    /// Propagates the hardened readers' [`MatroxError::Io`] /
    /// [`MatroxError::Format`] verbatim.
    pub fn register_path(&mut self, id: &str, path: PathBuf) -> Result<(), MatroxError> {
        let model = load_model_file(&path)?;
        self.loads += 1;
        self.catalog.insert(id.to_string(), path);
        self.admit(id, model);
        Ok(())
    }

    /// Make an in-memory model resident under `id` (no backing file: if it
    /// is evicted later, requests for it fail with
    /// [`MatroxError::InvalidInput`] until it is inserted again).
    pub fn insert(&mut self, id: &str, model: Model) {
        self.catalog.remove(id);
        self.admit(id, model);
    }

    /// Fetch the model for a request, stamping its LRU clock.  An evicted
    /// path-backed model is reloaded (which may in turn evict the coldest
    /// other residents to stay under budget).
    ///
    /// # Errors
    /// [`MatroxError::InvalidInput`] for ids never registered or evicted
    /// without a backing file; reload failures propagate the reader errors.
    pub fn get(&mut self, id: &str) -> Result<Model, MatroxError> {
        self.clock += 1;
        if let Some(r) = self.resident.get_mut(id) {
            r.last_used = self.clock;
            return Ok(r.model.clone());
        }
        let Some(path) = self.catalog.get(id).cloned() else {
            return Err(MatroxError::InvalidInput(format!(
                "unknown model '{id}' (never registered, or evicted without a backing file)"
            )));
        };
        let model = load_model_file(&path)?;
        self.loads += 1;
        self.admit(id, model.clone());
        Ok(model)
    }

    /// Occupancy and lifetime counters.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            resident_models: self.resident.len(),
            resident_bytes: self.resident_bytes,
            budget_bytes: self.budget_bytes,
            loads: self.loads,
            evictions: self.evictions,
        }
    }

    /// Sum of the resident matvec sessions' [`SessionStats`]: the
    /// inspector/executor cost and the taxonomy counters the serving layer
    /// reports besides its own queueing stats.  Evicted sessions take their
    /// counters with them; this is a floor, not an exact lifetime total.
    pub fn aggregate_session_stats(&self) -> SessionStats {
        let mut agg = SessionStats::default();
        for r in self.resident.values() {
            if let Model::Matvec(s) = &r.model {
                let st = s.stats();
                agg.inspect_seconds += st.inspect_seconds;
                agg.eval_seconds += st.eval_seconds;
                agg.evaluations += st.evaluations;
                agg.queries += st.queries;
                agg.invalid_inputs += st.invalid_inputs;
                agg.contained_panics += st.contained_panics;
                agg.ridge_attempts += st.ridge_attempts;
            }
        }
        agg
    }

    /// Ids currently resident, coldest first (test/debug aid).
    pub fn resident_ids(&self) -> Vec<String> {
        let mut ids: Vec<(&String, u64)> = self
            .resident
            .iter()
            .map(|(id, r)| (id, r.last_used))
            .collect();
        ids.sort_by_key(|&(_, stamp)| stamp);
        ids.into_iter().map(|(id, _)| id.clone()).collect()
    }

    /// Insert `id`, replacing any previous incarnation, then evict LRU
    /// residents (never `id` itself) until the budget holds again.
    fn admit(&mut self, id: &str, model: Model) {
        self.clock += 1;
        let bytes = model.storage_bytes();
        if let Some(old) = self.resident.insert(
            id.to_string(),
            Resident {
                model,
                bytes,
                last_used: self.clock,
            },
        ) {
            self.resident_bytes -= old.bytes;
        }
        self.resident_bytes += bytes;
        if self.budget_bytes == 0 {
            return;
        }
        while self.resident_bytes > self.budget_bytes && self.resident.len() > 1 {
            let coldest = self
                .resident
                .iter()
                .filter(|(rid, _)| rid.as_str() != id)
                .min_by_key(|(_, r)| r.last_used)
                .map(|(rid, _)| rid.clone());
            let Some(coldest) = coldest else { break };
            if let Some(evicted) = self.resident.remove(&coldest) {
                self.resident_bytes -= evicted.bytes;
                self.evictions += 1;
            }
        }
    }
}

/// Read a model file, accepting both on-disk formats: try the compressed
/// (`MATROX1`) reader first, and on a format mismatch fall back to the
/// factored (`MATROXF1`) reader.  Real I/O errors are not retried.
fn load_model_file(path: &std::path::Path) -> Result<Model, MatroxError> {
    match load(path) {
        Ok(h) => Ok(Model::Matvec(Arc::new(EvalSession::from_hmatrix(h)))),
        Err(MatroxError::Format(first)) => match load_factored(path) {
            Ok(f) => Ok(Model::Solve(Arc::new(f))),
            Err(MatroxError::Format(second)) => Err(MatroxError::Format(format!(
                "{path:?} is neither a compressed nor a factored model: {first}; {second}"
            ))),
            Err(e) => Err(e),
        },
        Err(e) => Err(e),
    }
}
