//! # matrox-serve
//!
//! A multi-model serving layer over the MatRox inspector–executor core.
//!
//! The paper's economics are "plan once, evaluate many": the inspector is
//! expensive, the prepared executor is cheap, and *batched* evaluation is
//! 6–11x cheaper per query than one-column matvecs (BENCH_fig4).  A serving
//! process sees the opposite shape of traffic — many independent clients
//! each asking for one right-hand side at a time — so this crate closes the
//! gap with **request coalescing**: concurrently-arriving single-query
//! requests against the same model are gathered into one RHS panel and fed
//! through the model's shared [`EvalSession`](matrox_core::EvalSession) in a
//! single panel-blocked
//! evaluation.  The executor's determinism contract (output is bitwise
//! independent of panel grouping) is what makes this safe: a coalesced
//! response is bitwise identical to the response the query would have
//! received alone.
//!
//! ## Architecture
//!
//! One reactor thread owns everything mutable — a model registry, the
//! per-`(model, tenant, op)` coalescing queues, and the per-tenant
//! statistics — and consumes a channel of messages ([`Server::spawn`]).
//! Clients hold a cheap, cloneable [`ServeHandle`] and get a
//! [`PendingQuery`] future-like ticket back per request.  There are no
//! locks on the request path and the reactor never blocks on a client.
//!
//! * **Coalescing** — a query waits at most [`ServeConfig::coalesce_window`]
//!   for co-batchable queries (same model, same tenant, same operation); a
//!   queue that reaches [`ServeConfig::max_batch`] flushes immediately.
//!   Batches never mix tenants, so one tenant's poison input or contained
//!   panic can only ever delay — never fail — another tenant's queries.
//! * **Registry** — models are keyed by id and backed by the MatRox model
//!   format ([`matrox_core::load`] / [`matrox_core::load_factored`]); the
//!   registry enforces a per-process memory budget with LRU eviction and
//!   transparently reloads evicted path-backed models on the next request.
//! * **Fault containment** — the PR 7 taxonomy rides along: a batch that
//!   fails (poison input, contained panic) is retried query-by-query so the
//!   failure lands only on the query that caused it, and the counters
//!   ([`TenantStats`]) record what happened.
//!
//! ## Quick start
//!
//! ```
//! use matrox_core::{EvalSession, MatRoxParams};
//! use matrox_points::{generate, DatasetId, Kernel};
//! use matrox_serve::{Model, ServeConfig, Server};
//! use std::sync::Arc;
//!
//! let points = generate(DatasetId::Grid, 256, 0);
//! let kernel = Kernel::Gaussian { bandwidth: 5.0 };
//! let params = MatRoxParams::h2b().with_bacc(1e-4).with_leaf_size(64);
//! let session = EvalSession::build(&points, &kernel, &params)?;
//!
//! let server = Server::spawn(ServeConfig::default())?;
//! let handle = server.handle();
//! handle.insert_model("demo", Model::Matvec(Arc::new(session)))?;
//!
//! // Submit without waiting; concurrently-arriving queries coalesce.
//! let pending: Vec<_> = (0..8)
//!     .map(|i| handle.query("demo", "tenant-a", vec![i as f64; 256]))
//!     .collect();
//! for p in pending {
//!     let reply = p.wait()?;
//!     assert_eq!(reply.y.len(), 256);
//! }
//! let stats = server.shutdown()?;
//! assert_eq!(stats.tenant("tenant-a").map(|t| t.queries), Some(8));
//! # Ok::<(), matrox_core::MatroxError>(())
//! ```

// `deny` rather than `forbid`: the epoll FFI module (`net::epoll`) opts
// back in with a file-level `#![allow(unsafe_code)]` and is tracked by the
// matrox-lint unsafe allowlist; everything else in the crate stays safe.
#![deny(unsafe_code)]

pub mod client;
pub mod net;
pub mod proto;
pub mod registry;
pub mod server;
pub mod stats;

pub use client::NetClient;
pub use net::{NetConfig, NetServer, NetStats};
pub use proto::{ErrorKind, Request, Response};
pub use registry::{Model, ModelRegistry, RegistryStats};
pub use server::{Op, PendingQuery, PendingResponse, QueryReply, ServeHandle, Server};
pub use stats::{ServerStats, TenantStats};

use std::time::Duration;

/// Serving-layer configuration: the coalescing policy and the registry's
/// memory budget.  [`ServeConfig::default`] is tuned for interactive
/// workloads; [`ServeConfig::from_env`] layers the `MATROX_SERVE_*`
/// environment knobs on top (see KNOBS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Upper bound (bytes) on resident model payload before the registry
    /// evicts least-recently-used models.  `0` means unlimited.  A single
    /// model larger than the whole budget is still admitted (and evicts
    /// everything else): serving must keep working, the budget is a target.
    pub memory_budget_bytes: usize,
    /// Maximum RHS columns coalesced into one evaluation; a queue that
    /// reaches this width flushes without waiting out the window.  `1`
    /// disables coalescing (the per-query baseline `serve_load` compares
    /// against).
    pub max_batch: usize,
    /// How long a query may wait for co-batchable companions before its
    /// queue is flushed.  The window starts when the queue's *first* query
    /// arrives and is never extended, so a steady trickle cannot starve a
    /// waiting query.
    pub coalesce_window: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            memory_budget_bytes: 0,
            max_batch: 16,
            coalesce_window: Duration::from_micros(200),
        }
    }
}

impl ServeConfig {
    /// The defaults with the `MATROX_SERVE_BUDGET_MB`, `MATROX_SERVE_BATCH`
    /// and `MATROX_SERVE_WINDOW_US` environment knobs applied.  Invalid or
    /// zero values are rejected with a one-time stderr warning and fall back
    /// to the default, mirroring the `MATROX_PANEL` / `MATROX_GRAIN` policy
    /// ([`matrox_exec::parse_positive_knob`]): knobs tune behavior, a typo
    /// must be loud but must not take the process down.
    pub fn from_env() -> Self {
        static ENV_CONFIG: std::sync::OnceLock<ServeConfig> = std::sync::OnceLock::new();
        *ENV_CONFIG.get_or_init(|| {
            let knob =
                |name: &str| match matrox_exec::parse_positive_knob(name, std::env::var(name)) {
                    Ok(v) => v,
                    Err(msg) => {
                        eprintln!("{msg}");
                        None
                    }
                };
            let d = ServeConfig::default();
            ServeConfig {
                memory_budget_bytes: knob("MATROX_SERVE_BUDGET_MB")
                    .map(|mb| mb.saturating_mul(1024 * 1024))
                    .unwrap_or(d.memory_budget_bytes),
                max_batch: knob("MATROX_SERVE_BATCH").unwrap_or(d.max_batch),
                coalesce_window: knob("MATROX_SERVE_WINDOW_US")
                    .map(|us| Duration::from_micros(us as u64))
                    .unwrap_or(d.coalesce_window),
            }
        })
    }

    /// Set the memory budget (bytes; `0` = unlimited).
    pub fn with_memory_budget_bytes(mut self, bytes: usize) -> Self {
        self.memory_budget_bytes = bytes;
        self
    }

    /// Set the maximum coalesced batch width (clamped up to 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Set the coalesce window.
    pub fn with_coalesce_window(mut self, window: Duration) -> Self {
        self.coalesce_window = window;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert_eq!(c.memory_budget_bytes, 0);
        assert!(c.max_batch > 1, "coalescing on by default");
        assert!(c.coalesce_window > Duration::ZERO);
    }

    #[test]
    fn builders_clamp_and_compose() {
        let c = ServeConfig::default()
            .with_max_batch(0)
            .with_memory_budget_bytes(1 << 20)
            .with_coalesce_window(Duration::from_millis(1));
        assert_eq!(c.max_batch, 1, "max_batch 0 would deadlock the flush loop");
        assert_eq!(c.memory_budget_bytes, 1 << 20);
        assert_eq!(c.coalesce_window, Duration::from_millis(1));
    }
}
