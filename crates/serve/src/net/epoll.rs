//! Audited epoll FFI: the only unsafe code in the serving crate.
//!
//! The workspace has no crates.io access, so the event loop talks to the
//! kernel directly: `epoll_create1` / `epoll_ctl` / `epoll_wait` / `close`
//! are declared here against the libc that `std` already links.  Everything
//! unsafe is confined to this file (tracked by the matrox-lint unsafe
//! allowlist; the crate is `#![deny(unsafe_code)]` otherwise) and wrapped
//! in the safe [`Epoll`] type, whose invariant is simple: it owns one live
//! epoll file descriptor from `new()` until `Drop`, and every syscall it
//! makes passes either that fd, a caller-provided fd (the kernel validates
//! fds — a stale one is `EBADF`, not UB), or a pointer to stack memory that
//! outlives the call.
//!
//! ## ABI notes
//!
//! `struct epoll_event` is declared `__attribute__((packed))` on x86-64 (a
//! kernel ABI fossil: 12 bytes there, aligned 16 bytes elsewhere), hence
//! the conditional `repr(packed)`.  Readiness is level-triggered — the loop
//! re-polls until `WouldBlock`, so a short read cannot strand data.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Readiness: the fd has bytes to read (or a pending accept).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the fd can accept writes without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Condition: error on the fd; always reported, never requested.
pub const EPOLLERR: u32 = 0x008;
/// Condition: peer hung up; always reported, never requested.
pub const EPOLLHUP: u32 = 0x010;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

/// Mirror of the kernel's `struct epoll_event`.  `data` carries the
/// caller's opaque token back out of [`Epoll::wait`].
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// Ready/requested event mask (`EPOLLIN` | ...).
    pub events: u32,
    /// The token registered with the fd.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// Owned epoll instance.  Register fds with a `u64` token, then [`wait`]
/// for readiness; the token comes back in each ready event.
///
/// [`wait`]: Epoll::wait
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create a new epoll instance (close-on-exec).
    ///
    /// # Errors
    /// The kernel's refusal verbatim (fd limit, memory).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; it either returns a new
        // fd we now own or -1 with errno set.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    /// Start watching `fd` for `events`, tagging readiness with `token`.
    ///
    /// # Errors
    /// `EEXIST` if already registered, `EBADF` for a dead fd, etc.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Change the event mask (and token) of an already-registered `fd`.
    ///
    /// # Errors
    /// `ENOENT` if the fd was never registered, `EBADF` for a dead fd.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Stop watching `fd`.
    ///
    /// # Errors
    /// `ENOENT` if the fd was never registered.
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        // Pre-2.6.9 kernels required a non-null event pointer for DEL, and
        // passing one is harmless everywhere since: reuse the ctl path.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` is a live, initialized EpollEvent on our stack for
        // the whole call; the kernel copies it during the syscall and keeps
        // no reference.  `self.fd` is the epoll fd this struct owns; `fd`
        // is caller-supplied and merely *validated* by the kernel (a bad fd
        // is an EBADF error, not UB).
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Block until at least one registered fd is ready, `timeout` elapses
    /// (`None` = forever), or a signal arrives (retried internally).
    /// Returns the ready prefix of `events`.
    ///
    /// # Errors
    /// Kernel errors other than `EINTR` verbatim.
    pub fn wait<'a>(
        &self,
        events: &'a mut [EpollEvent],
        timeout: Option<Duration>,
    ) -> io::Result<&'a [EpollEvent]> {
        let max = i32::try_from(events.len()).unwrap_or(i32::MAX).max(1);
        let timeout_ms = match timeout {
            // Round up so a 100µs timeout polls at 1ms instead of spinning.
            Some(t) => i32::try_from(t.as_millis().max(u128::from(u32::from(!t.is_zero()))))
                .unwrap_or(i32::MAX),
            None => -1,
        };
        loop {
            // SAFETY: `events` is a live &mut slice of plain-old-data
            // EpollEvent for the whole call; `max` never exceeds its
            // length, so the kernel writes only inside the slice.
            // `self.fd` is the epoll fd this struct owns.
            let rc = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), max, timeout_ms) };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            // INVARIANT-free bound: the kernel returns at most `max` ready
            // events, but clamp defensively before slicing.
            let n = usize::try_from(rc).unwrap_or(0).min(events.len());
            return Ok(&events[..n]);
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is the epoll fd created in `new()`; it is
        // closed exactly once, here, and never used again.
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn readiness_round_trip_on_a_real_socket() {
        let ep = Epoll::new().expect("epoll_create1");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        ep.add(listener.as_raw_fd(), EPOLLIN, 42).expect("add");

        // Nothing pending: a zero-ish timeout reports no events.
        let mut events = [EpollEvent::default(); 8];
        let ready = ep
            .wait(&mut events, Some(Duration::from_millis(1)))
            .expect("wait");
        assert!(ready.is_empty(), "no connection yet");

        // A connecting client makes the listener readable, with our token.
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let ready = ep
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(ready.len(), 1);
        assert_eq!({ ready[0].data }, 42);
        assert_ne!({ ready[0].events } & EPOLLIN, 0);

        // Accept, watch the peer, and see data-readiness with its token.
        let (peer, _) = listener.accept().expect("accept");
        peer.set_nonblocking(true).expect("nonblocking");
        ep.add(peer.as_raw_fd(), EPOLLIN, 7).expect("add peer");
        client.write_all(b"ping").expect("write");
        let ready = ep
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(ready
            .iter()
            .any(|e| e.data == 7 && { e.events } & EPOLLIN != 0));

        // modify/del are accepted for a registered fd.
        ep.modify(peer.as_raw_fd(), EPOLLIN | EPOLLOUT, 7)
            .expect("modify");
        ep.del(peer.as_raw_fd()).expect("del");
        assert!(ep.del(peer.as_raw_fd()).is_err(), "double-del is ENOENT");
    }
}
