//! The network front-end: a single-threaded epoll event loop that frames
//! [`proto::Request`](crate::proto::Request)s off TCP connections into the
//! serving reactor.
//!
//! CONCURRENCY: the net thread ("matrox-net") owns every socket — the
//! listener, all connections, their buffers, the epoll instance — and is
//! the only thread that touches them.  It talks to the rest of the process
//! through exactly two already-audited surfaces: the [`ServeHandle`] it
//! submits requests into (mpsc under the hood, owned by server.rs) and one
//! `AtomicBool` stop flag that [`NetServer::shutdown`] sets.  There are no
//! locks; a [`PendingResponse`] is polled with its non-blocking `try_take`
//! between epoll wakeups, so the net thread never blocks on the reactor and
//! the reactor never knows the network exists.
//!
//! ## Shape of the loop
//!
//! Level-triggered epoll over the non-blocking listener plus every
//! connection.  Each wakeup: accept whatever is pending, read every
//! readable connection to `WouldBlock`, pop complete frames, run admission
//! control, submit admitted requests, poll in-flight tickets, write
//! finished responses back (registering `EPOLLOUT` only while a write
//! buffer is non-empty), expire requests past their latency budget, and
//! sweep idle connections.
//!
//! ## Admission control — shed, never buffer
//!
//! Three caps bound the work the loop will hold, checked before a request
//! is submitted ([`NetConfig::max_inflight_per_conn`], `_per_tenant`,
//! `_total`).  A request over any cap is answered immediately with
//! [`Response::Overloaded`] naming the cap — the dispatch queue is bounded
//! by construction, so a paced flood degrades into explicit sheds instead
//! of unbounded memory growth and collapsing tail latency.

use crate::net::epoll::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
use crate::proto::{encode_frame, take_frame, Request, Response};
use crate::server::{PendingResponse, ServeHandle};
use matrox_core::MatroxError;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod epoll;

/// Configuration of the network front-end; same builder idiom as
/// [`ServeConfig`](crate::ServeConfig), environment knobs via
/// [`NetConfig::from_env`] (see KNOBS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// TCP port to bind on loopback (`0` = OS-assigned ephemeral port;
    /// read the result from [`NetServer::addr`]).
    pub port: u16,
    /// Maximum simultaneous connections; further accepts are answered with
    /// a best-effort `Overloaded` frame and closed.
    pub max_conns: usize,
    /// In-flight request cap per connection.
    pub max_inflight_per_conn: usize,
    /// In-flight request cap per tenant, across connections.
    pub max_inflight_per_tenant: usize,
    /// Total in-flight cap — the bounded dispatch queue between the socket
    /// front-end and the reactor.
    pub max_inflight_total: usize,
    /// Close connections with no traffic and no in-flight work for this
    /// long.  `Duration::ZERO` disables the sweep.
    pub idle_timeout: Duration,
    /// Expire a request still unanswered after this long with an
    /// `Overloaded` reply (it may still complete server-side; the client
    /// has stopped waiting).  `Duration::ZERO` disables expiry.
    pub latency_budget: Duration,
    /// Largest accepted frame payload; a frame declaring more is a framing
    /// error and closes the connection.
    pub max_frame_bytes: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            port: 0,
            max_conns: 64,
            max_inflight_per_conn: 32,
            max_inflight_per_tenant: 64,
            max_inflight_total: 256,
            idle_timeout: Duration::from_secs(30),
            latency_budget: Duration::ZERO,
            max_frame_bytes: 16 << 20,
        }
    }
}

impl NetConfig {
    /// The defaults with the `MATROX_NET_PORT`, `MATROX_NET_MAX_INFLIGHT`
    /// (total in-flight cap) and `MATROX_NET_IDLE_MS` environment knobs
    /// applied, parsed by the shared
    /// [`matrox_exec::parse_positive_knob`] policy: invalid or zero values
    /// are rejected with a one-time stderr warning and fall back to the
    /// default.
    pub fn from_env() -> Self {
        static ENV_CONFIG: std::sync::OnceLock<NetConfig> = std::sync::OnceLock::new();
        *ENV_CONFIG.get_or_init(|| {
            let knob =
                |name: &str| match matrox_exec::parse_positive_knob(name, std::env::var(name)) {
                    Ok(v) => v,
                    Err(msg) => {
                        eprintln!("{msg}");
                        None
                    }
                };
            let d = NetConfig::default();
            let port = match knob("MATROX_NET_PORT") {
                Some(p) => match u16::try_from(p) {
                    Ok(p) => p,
                    Err(_) => {
                        eprintln!(
                            "MATROX_NET_PORT={p} is not a valid TCP port; using {}",
                            d.port
                        );
                        d.port
                    }
                },
                None => d.port,
            };
            NetConfig {
                port,
                max_inflight_total: knob("MATROX_NET_MAX_INFLIGHT").unwrap_or(d.max_inflight_total),
                idle_timeout: knob("MATROX_NET_IDLE_MS")
                    .map(|ms| Duration::from_millis(ms as u64))
                    .unwrap_or(d.idle_timeout),
                ..d
            }
        })
    }

    /// Set the TCP port (`0` = ephemeral).
    pub fn with_port(mut self, port: u16) -> Self {
        self.port = port;
        self
    }

    /// Set the connection limit (clamped up to 1).
    pub fn with_max_conns(mut self, n: usize) -> Self {
        self.max_conns = n.max(1);
        self
    }

    /// Set the per-connection in-flight cap (clamped up to 1).
    pub fn with_max_inflight_per_conn(mut self, n: usize) -> Self {
        self.max_inflight_per_conn = n.max(1);
        self
    }

    /// Set the per-tenant in-flight cap (clamped up to 1).
    pub fn with_max_inflight_per_tenant(mut self, n: usize) -> Self {
        self.max_inflight_per_tenant = n.max(1);
        self
    }

    /// Set the total in-flight cap (clamped up to 1).
    pub fn with_max_inflight_total(mut self, n: usize) -> Self {
        self.max_inflight_total = n.max(1);
        self
    }

    /// Set the idle-connection timeout (`ZERO` disables).
    pub fn with_idle_timeout(mut self, t: Duration) -> Self {
        self.idle_timeout = t;
        self
    }

    /// Set the per-request latency budget (`ZERO` disables).
    pub fn with_latency_budget(mut self, t: Duration) -> Self {
        self.latency_budget = t;
        self
    }

    /// Set the frame payload limit (clamped up to 1 KiB).
    pub fn with_max_frame_bytes(mut self, n: usize) -> Self {
        self.max_frame_bytes = n.max(1024);
        self
    }
}

/// Counters the event loop accumulated over its lifetime, returned by
/// [`NetServer::shutdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted (including ones immediately shed).
    pub accepted: u64,
    /// Responses written back (every admitted request produces exactly one,
    /// unless its connection died first).
    pub served: u64,
    /// Requests (or connections) answered with `Overloaded` by admission
    /// control.
    pub shed: u64,
    /// Admitted requests expired by the latency budget before the reactor
    /// answered.
    pub expired: u64,
    /// Connections closed by the idle sweep.
    pub idle_closed: u64,
    /// Frames that decoded to garbage (the connection survives) or broke
    /// framing entirely (the connection closes after an error reply).
    pub decode_errors: u64,
}

const LISTENER_TOKEN: u64 = u64::MAX;
/// epoll timeout while requests are in flight: the reactor cannot wake the
/// net thread (mpsc has no fd), so in-flight tickets are polled at this
/// cadence.
const INFLIGHT_POLL: Duration = Duration::from_millis(1);
/// epoll timeout when fully idle: bounds stop-flag and idle-sweep latency.
const IDLE_POLL: Duration = Duration::from_millis(25);
/// How long shutdown keeps draining in-flight work and unflushed writes.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(2);

/// A running network front-end: the "matrox-net" event-loop thread plus
/// the address it bound.  Dropping it stops the loop (in-flight work is
/// drained, see [`NetServer::shutdown`]).
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<NetStats>>,
}

impl NetServer {
    /// Bind `127.0.0.1:port` and start the event loop, forwarding decoded
    /// requests into `handle`'s server.
    ///
    /// # Errors
    /// [`MatroxError::Io`]: the bind, the epoll setup, or the thread spawn
    /// failed.
    pub fn spawn(handle: ServeHandle, cfg: NetConfig) -> Result<NetServer, MatroxError> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)?;
        let stop = Arc::new(AtomicBool::new(false));
        let event_loop = EventLoop {
            epoll,
            listener: Some(listener),
            handle,
            cfg: NetConfig {
                max_conns: cfg.max_conns.max(1),
                max_inflight_per_conn: cfg.max_inflight_per_conn.max(1),
                max_inflight_per_tenant: cfg.max_inflight_per_tenant.max(1),
                max_inflight_total: cfg.max_inflight_total.max(1),
                ..cfg
            },
            stop: stop.clone(),
            conns: HashMap::new(),
            next_token: 0,
            tenant_inflight: HashMap::new(),
            total_inflight: 0,
            stats: NetStats::default(),
        };
        let thread = std::thread::Builder::new()
            .name("matrox-net".to_string())
            .spawn(move || event_loop.run())
            .map_err(MatroxError::Io)?;
        Ok(NetServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight requests (bounded by an internal
    /// deadline), flush replies, close every connection, and return the
    /// loop's counters.
    ///
    /// # Errors
    /// [`MatroxError::PoolPanic`] if the event-loop thread panicked.
    pub fn shutdown(mut self) -> Result<NetStats, MatroxError> {
        self.stop.store(true, Ordering::Release);
        match self.thread.take() {
            Some(t) => t
                .join()
                .map_err(|_| MatroxError::PoolPanic("matrox-net event loop panicked".to_string())),
            None => Ok(NetStats::default()),
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One admitted request awaiting its reactor response.
struct Inflight {
    corr: u64,
    pending: PendingResponse,
    tenant: Option<String>,
    since: Instant,
}

/// Per-connection state, owned exclusively by the event loop.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    inflight: Vec<Inflight>,
    last_activity: Instant,
    /// Registered for `EPOLLOUT` (only while `write_buf` has a backlog).
    wants_write: bool,
    /// Peer EOF or unrecoverable framing error: flush `write_buf`, then
    /// close.  No new frames are read.
    closing: bool,
}

impl Conn {
    fn write_backlog(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }
}

struct EventLoop {
    epoll: Epoll,
    listener: Option<TcpListener>,
    handle: ServeHandle,
    cfg: NetConfig,
    stop: Arc<AtomicBool>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    tenant_inflight: HashMap<String, usize>,
    total_inflight: usize,
    stats: NetStats,
}

impl EventLoop {
    fn run(mut self) -> NetStats {
        let mut events = vec![EpollEvent::default(); 64];
        while !self.stop.load(Ordering::Acquire) {
            let timeout = if self.total_inflight > 0 {
                INFLIGHT_POLL
            } else {
                IDLE_POLL
            };
            let ready: Vec<(u64, u32)> = match self.epoll.wait(&mut events, Some(timeout)) {
                Ok(evs) => evs.iter().map(|e| (e.data, { e.events })).collect(),
                Err(_) => break, // epoll itself failed: nothing left to drive
            };
            for (token, mask) in ready {
                if token == LISTENER_TOKEN {
                    self.accept_ready();
                    continue;
                }
                if mask & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0 {
                    self.conn_readable(token);
                }
                if mask & EPOLLOUT != 0 {
                    self.flush_writes(token);
                }
            }
            self.poll_inflight();
            self.expire_budgets();
            self.sweep_idle();
            self.reap_closed();
        }
        self.drain()
    }

    /// Shutdown path: stop accepting, expedite the reactor's queues, keep
    /// polling in-flight tickets and flushing replies until drained or the
    /// deadline passes, then close everything.
    fn drain(mut self) -> NetStats {
        if let Some(listener) = self.listener.take() {
            let _ = self.epoll.del(listener.as_raw_fd());
        }
        let _ = self.handle.flush();
        let deadline = Instant::now() + DRAIN_TIMEOUT;
        loop {
            self.poll_inflight();
            let tokens: Vec<u64> = self.conns.keys().copied().collect();
            for token in tokens {
                self.flush_writes(token);
            }
            self.reap_closed();
            let pending_writes = self.conns.values().any(Conn::write_backlog);
            if (self.total_inflight == 0 && !pending_writes) || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(INFLIGHT_POLL);
        }
        for (_, conn) in self.conns.drain() {
            let _ = self.epoll.del(conn.stream.as_raw_fd());
        }
        self.stats
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.stats.accepted += 1;
                    if self.conns.len() >= self.cfg.max_conns {
                        // Over the connection cap: best-effort Overloaded
                        // frame, then drop (which closes).
                        self.stats.shed += 1;
                        let payload = Response::Overloaded {
                            reason: format!("connection limit ({}) reached", self.cfg.max_conns),
                        }
                        .encode();
                        let _ = stream.set_nonblocking(true);
                        let _ = (&stream).write(&encode_frame(0, &payload));
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.epoll.add(stream.as_raw_fd(), EPOLLIN, token).is_err() {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            read_buf: Vec::new(),
                            write_buf: Vec::new(),
                            write_pos: 0,
                            inflight: Vec::new(),
                            last_activity: Instant::now(),
                            wants_write: false,
                            closing: false,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Drain a readable connection into its buffer and process every
    /// complete frame.
    fn conn_readable(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.last_activity = Instant::now();
        if conn.closing {
            return;
        }
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.closing = true;
                    break;
                }
                Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.drop_conn(token);
                    return;
                }
            }
        }
        self.process_frames(token);
    }

    fn process_frames(&mut self, token: u64) {
        loop {
            let frame = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                match take_frame(&mut conn.read_buf, self.cfg.max_frame_bytes) {
                    Ok(Some(f)) => f,
                    Ok(None) => return,
                    Err(e) => {
                        // Framing itself is broken — the stream cannot be
                        // resynced.  Tell the peer why, then close.
                        self.stats.decode_errors += 1;
                        conn.closing = true;
                        self.respond(token, 0, Response::from_error(&e));
                        return;
                    }
                }
            };
            let (corr, payload) = frame;
            match Request::decode(&payload) {
                Err(e) => {
                    // The frame was well-delimited but the message inside
                    // is garbage: error reply, connection survives.
                    self.stats.decode_errors += 1;
                    self.respond(token, corr, Response::from_error(&e));
                }
                Ok(req) => self.admit(token, corr, req),
            }
        }
    }

    /// Admission control: shed with an explicit reason, or submit into the
    /// reactor and track the in-flight ticket.
    fn admit(&mut self, token: u64, corr: u64, req: Request) {
        let tenant_count = |map: &HashMap<String, usize>, t: Option<&str>| {
            t.and_then(|t| map.get(t).copied()).unwrap_or(0)
        };
        let reason = {
            let Some(conn) = self.conns.get(&token) else {
                return;
            };
            if conn.inflight.len() >= self.cfg.max_inflight_per_conn {
                Some(format!(
                    "per-connection in-flight cap ({}) reached",
                    self.cfg.max_inflight_per_conn
                ))
            } else if self.total_inflight >= self.cfg.max_inflight_total {
                Some(format!(
                    "dispatch queue full ({} requests in flight)",
                    self.cfg.max_inflight_total
                ))
            } else if tenant_count(&self.tenant_inflight, req.tenant())
                >= self.cfg.max_inflight_per_tenant
            {
                Some(format!(
                    "tenant '{}' in-flight cap ({}) reached",
                    req.tenant().unwrap_or(""),
                    self.cfg.max_inflight_per_tenant
                ))
            } else {
                None
            }
        };
        if let Some(reason) = reason {
            self.stats.shed += 1;
            self.respond(token, corr, Response::Overloaded { reason });
            return;
        }
        let tenant = req.tenant().map(str::to_string);
        if let Some(t) = &tenant {
            *self.tenant_inflight.entry(t.clone()).or_insert(0) += 1;
        }
        self.total_inflight += 1;
        let pending = self.handle.submit(req);
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.inflight.push(Inflight {
                corr,
                pending,
                tenant,
                since: Instant::now(),
            });
        }
    }

    /// Poll every in-flight ticket; completed ones become response frames.
    fn poll_inflight(&mut self) {
        let mut done: Vec<(u64, u64, Response)> = Vec::new();
        for (&token, conn) in self.conns.iter_mut() {
            let mut i = 0;
            while i < conn.inflight.len() {
                match conn.inflight[i].pending.try_take() {
                    Some(resp) => {
                        let inf = conn.inflight.swap_remove(i);
                        release_inflight(
                            &mut self.tenant_inflight,
                            &mut self.total_inflight,
                            inf.tenant.as_deref(),
                        );
                        done.push((token, inf.corr, resp));
                    }
                    None => i += 1,
                }
            }
        }
        for (token, corr, resp) in done {
            self.stats.served += 1;
            self.respond(token, corr, resp);
        }
    }

    /// Expire admitted requests that outlived the latency budget: the
    /// client gets `Overloaded` now; the reactor's eventual answer is
    /// abandoned.
    fn expire_budgets(&mut self) {
        if self.cfg.latency_budget.is_zero() {
            return;
        }
        let budget = self.cfg.latency_budget;
        let mut expired: Vec<(u64, u64)> = Vec::new();
        for (&token, conn) in self.conns.iter_mut() {
            let mut i = 0;
            while i < conn.inflight.len() {
                if conn.inflight[i].since.elapsed() > budget {
                    let inf = conn.inflight.swap_remove(i);
                    release_inflight(
                        &mut self.tenant_inflight,
                        &mut self.total_inflight,
                        inf.tenant.as_deref(),
                    );
                    expired.push((token, inf.corr));
                } else {
                    i += 1;
                }
            }
        }
        for (token, corr) in expired {
            self.stats.expired += 1;
            self.respond(
                token,
                corr,
                Response::Overloaded {
                    reason: format!("latency budget ({budget:?}) expired while queued"),
                },
            );
        }
    }

    /// Close connections that have been completely quiet past the idle
    /// timeout (no traffic, nothing in flight, nothing left to write).
    fn sweep_idle(&mut self) {
        if self.cfg.idle_timeout.is_zero() {
            return;
        }
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.inflight.is_empty()
                    && !c.write_backlog()
                    && c.last_activity.elapsed() > self.cfg.idle_timeout
            })
            .map(|(&t, _)| t)
            .collect();
        for token in idle {
            self.stats.idle_closed += 1;
            self.drop_conn(token);
        }
    }

    /// Close `closing` connections whose write buffer has drained (their
    /// remaining in-flight work is abandoned).
    fn reap_closed(&mut self) {
        let done: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.closing && !c.write_backlog())
            .map(|(&t, _)| t)
            .collect();
        for token in done {
            self.drop_conn(token);
        }
    }

    /// Frame a response onto a connection's write buffer and push bytes.
    fn respond(&mut self, token: u64, corr: u64, resp: Response) {
        let payload = resp.encode();
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.write_buf
                .extend_from_slice(&encode_frame(corr, &payload));
        }
        self.flush_writes(token);
    }

    /// Write as much of the backlog as the socket accepts; arm `EPOLLOUT`
    /// exactly while a backlog remains.
    fn flush_writes(&mut self, token: u64) {
        let epoll = &self.epoll;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while conn.write_pos < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    conn.closing = true;
                    conn.write_buf.clear();
                    conn.write_pos = 0;
                    break;
                }
                Ok(n) => conn.write_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.closing = true;
                    conn.write_buf.clear();
                    conn.write_pos = 0;
                    break;
                }
            }
        }
        if conn.write_backlog() {
            if !conn.wants_write {
                conn.wants_write = epoll
                    .modify(conn.stream.as_raw_fd(), EPOLLIN | EPOLLOUT, token)
                    .is_ok();
            }
        } else {
            conn.write_buf.clear();
            conn.write_pos = 0;
            if conn.wants_write {
                let _ = epoll.modify(conn.stream.as_raw_fd(), EPOLLIN, token);
                conn.wants_write = false;
            }
        }
    }

    /// Remove a connection entirely, releasing its in-flight accounting.
    fn drop_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            for inf in &conn.inflight {
                release_inflight(
                    &mut self.tenant_inflight,
                    &mut self.total_inflight,
                    inf.tenant.as_deref(),
                );
            }
            let _ = self.epoll.del(conn.stream.as_raw_fd());
        }
    }
}

/// Release one in-flight slot (free function so callers can split borrows
/// of the event loop's fields).
fn release_inflight(
    tenant_inflight: &mut HashMap<String, usize>,
    total_inflight: &mut usize,
    tenant: Option<&str>,
) {
    if let Some(t) = tenant {
        if let Some(n) = tenant_inflight.get_mut(t) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                tenant_inflight.remove(t);
            }
        }
    }
    *total_inflight = total_inflight.saturating_sub(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = NetConfig::default();
        assert_eq!(c.port, 0, "ephemeral by default");
        assert!(c.max_inflight_per_conn >= 1);
        assert!(c.max_inflight_total >= c.max_inflight_per_conn);
        assert!(c.idle_timeout > Duration::ZERO);
        assert!(c.latency_budget.is_zero(), "no budget unless asked");
        assert!(c.max_frame_bytes >= 1 << 20);
    }

    #[test]
    fn builders_clamp_and_compose() {
        let c = NetConfig::default()
            .with_port(9999)
            .with_max_conns(0)
            .with_max_inflight_per_conn(0)
            .with_max_inflight_per_tenant(0)
            .with_max_inflight_total(0)
            .with_idle_timeout(Duration::from_secs(1))
            .with_latency_budget(Duration::from_millis(5))
            .with_max_frame_bytes(0);
        assert_eq!(c.port, 9999);
        assert_eq!(c.max_conns, 1);
        assert_eq!(c.max_inflight_per_conn, 1);
        assert_eq!(c.max_inflight_per_tenant, 1);
        assert_eq!(c.max_inflight_total, 1);
        assert_eq!(c.idle_timeout, Duration::from_secs(1));
        assert_eq!(c.latency_budget, Duration::from_millis(5));
        assert_eq!(c.max_frame_bytes, 1024, "frame cap clamps to 1 KiB");
    }

    #[test]
    fn release_inflight_is_saturating_and_prunes() {
        let mut tenants = HashMap::new();
        let mut total = 2usize;
        tenants.insert("t".to_string(), 1usize);
        release_inflight(&mut tenants, &mut total, Some("t"));
        assert!(tenants.is_empty(), "zeroed tenant entries are pruned");
        assert_eq!(total, 1);
        release_inflight(&mut tenants, &mut total, Some("missing"));
        release_inflight(&mut tenants, &mut total, None);
        assert_eq!(total, 0);
        release_inflight(&mut tenants, &mut total, None);
        assert_eq!(total, 0, "saturating at zero");
    }
}
