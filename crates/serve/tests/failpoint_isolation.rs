//! Fault-injection leg: one tenant's contained panic must never poison
//! another tenant's in-flight batch.
//!
//! Lives in its own integration-test binary (its own process) because the
//! failpoint registry is process-global: arming `eval-panic` here must not
//! race the other serving tests' evaluations.  The CI fault-injection job
//! also runs this binary with `MATROX_FAILPOINT=eval-panic` exported, which
//! [`arm_eval_panic`] detects — both arming paths cover the same contract.

use matrox_core::{failpoint, EvalSession, MatRoxParams, MatroxError};
use matrox_points::{generate, DatasetId, Kernel};
use matrox_serve::{Model, ServeConfig, Server};
use std::sync::Arc;
use std::time::Duration;

fn rhs(n: usize, j: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 13 + j * 5 + 1) as f64).cos())
        .collect()
}

fn bitwise_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Arm `eval-panic` for exactly `shots` firings.  When the CI leg already
/// armed it through `MATROX_FAILPOINT=eval-panic` (unbounded), re-arm
/// programmatically so the test controls the shot count either way.
fn arm_eval_panic(shots: u64) {
    failpoint::set(failpoint::names::EVAL_PANIC, shots);
}

#[test]
fn contained_panic_never_poisons_another_tenants_batch() {
    let n = 128;
    let points = generate(DatasetId::Grid, n, 17);
    let kernel = Kernel::Gaussian { bandwidth: 2.0 };
    let params = MatRoxParams::h2b().with_bacc(1e-5).with_leaf_size(32);
    let session = EvalSession::build(&points, &kernel, &params).expect("clean inputs");
    let reference = session.clone();

    let server = Server::spawn(
        ServeConfig::default()
            .with_max_batch(2)
            .with_coalesce_window(Duration::from_millis(50)),
    )
    .expect("spawn");
    let handle = server.handle();
    handle
        .insert_model("m", Model::Matvec(Arc::new(session)))
        .expect("insert");

    // Two shots: tenant A's width-2 batch panics (shot 1), A's first
    // individual retry panics again (shot 2), A's second retry is clean.
    // Tenant B's batch — in flight at the same time, against the same
    // shared session — must be completely untouched.
    arm_eval_panic(2);

    // Interleave the submissions; batches never mix tenants, and tenant
    // A's queue flushes first (its first query arrived first).
    let a0 = handle.query("m", "tenant-a", rhs(n, 0));
    let b0 = handle.query("m", "tenant-b", rhs(n, 10));
    let a1 = handle.query("m", "tenant-a", rhs(n, 1));
    let b1 = handle.query("m", "tenant-b", rhs(n, 11));

    // Tenant A: exactly one query eats the contained panic, the other is
    // served by the per-query retry.
    let ra = [a0.wait(), a1.wait()];
    let panics = ra
        .iter()
        .filter(|r| matches!(r, Err(MatroxError::PoolPanic(_))))
        .count();
    let served = ra.iter().filter(|r| r.is_ok()).count();
    assert_eq!(panics, 1, "one retry eats the second shot: {ra:?}");
    assert_eq!(served, 1, "the clean retry still answers: {ra:?}");

    // Tenant B: both served, bitwise identical to direct evaluation.
    for (p, j) in [(b0, 10), (b1, 11)] {
        let reply = p.wait().expect("tenant B unaffected");
        let expected = reference.evaluate_vec(&rhs(n, j)).expect("reference");
        assert!(
            bitwise_eq(&reply.y, &expected),
            "tenant B column {j} differs"
        );
    }

    // The session is not poisoned: the next query serves cleanly.
    failpoint::clear(failpoint::names::EVAL_PANIC);
    let reply = handle
        .query_wait("m", "tenant-a", rhs(n, 2))
        .expect("session usable after contained panics");
    let expected = reference.evaluate_vec(&rhs(n, 2)).expect("reference");
    assert!(bitwise_eq(&reply.y, &expected));

    let stats = server.shutdown().expect("shutdown");
    let a = stats.tenant("tenant-a").expect("tenant A recorded");
    let b = stats.tenant("tenant-b").expect("tenant B recorded");
    assert_eq!(a.errors, 1);
    assert_eq!(a.contained_panics, 1);
    assert_eq!(a.retried_queries, 2, "A's whole failed batch was retried");
    assert_eq!(b.errors, 0, "tenant B saw no failure at all");
    assert_eq!(b.contained_panics, 0);
    assert_eq!(b.retried_queries, 0, "tenant B's batch never failed");
    assert_eq!(
        stats.sessions.contained_panics, 2,
        "batch shot + retry shot"
    );
}
