//! Protocol corruption fuzz: the wire decoders must survive *any*
//! single-byte corruption of an encoded `Request` / `Response`.
//!
//! Same contract as the PR-7 model-reader fuzz (`crates/core/tests/
//! corruption_fuzz.rs`), extended to the serving protocol: for every byte
//! position and several XOR masks, the corrupted message must either
//!
//! * be rejected with an `Err` (never a panic), or
//! * decode into a message whose re-encoding is bitwise identical to the
//!   corrupted bytes (the flip landed in a value payload and the decode is
//!   lossless);
//!
//! and decoding must never allocate more than 16 MiB in one request no
//! matter what the corrupted length fields claim, pinned with a counting
//! global allocator.  The framing layer (`take_frame`) is swept too: a
//! corrupted frame header is either "wait for more bytes", a clean error,
//! or a complete frame whose payload then faces the same message sweep.

use matrox_serve::proto::{encode_frame, take_frame, Request, Response};
use matrox_serve::{ErrorKind, ServerStats, TenantStats};
use std::alloc::{GlobalAlloc, Layout, System};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Largest single allocation a decode of adversarial bytes may request.
const ALLOC_CAP: usize = 16 * 1024 * 1024;

/// System allocator wrapped with a high-water mark of the largest single
/// request (what an uncapped `Vec::with_capacity(attacker_len)` would trip).
struct MaxRequestAlloc;

// CONCURRENCY: a single Relaxed high-water mark — the sweeps run inside one
// test function, so reset/read happen with no decode in flight; the counter
// only needs to be monotone within one decode.
static MAX_REQUEST: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System` plus a high-water-mark update —
// every GlobalAlloc obligation (layout fitting, no unwinding, pointer
// validity) is discharged by `System` itself.
unsafe impl GlobalAlloc for MaxRequestAlloc {
    // SAFETY: contract inherited verbatim from the `GlobalAlloc` trait.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        MAX_REQUEST.fetch_max(layout.size(), Ordering::Relaxed);
        // SAFETY: forwarding the caller's layout contract verbatim.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: contract inherited verbatim from the `GlobalAlloc` trait.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        MAX_REQUEST.fetch_max(layout.size(), Ordering::Relaxed);
        // SAFETY: forwarding the caller's layout contract verbatim.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: contract inherited verbatim from the `GlobalAlloc` trait.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        MAX_REQUEST.fetch_max(new_size, Ordering::Relaxed);
        // SAFETY: forwarding the caller's pointer/layout contract verbatim.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: contract inherited verbatim from the `GlobalAlloc` trait.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarding the caller's pointer/layout contract verbatim.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static WATCHER: MaxRequestAlloc = MaxRequestAlloc;

/// XOR masks swept per byte: low-bit (perturbs values in place), high-bit
/// (sign/tag flips), and full-byte inversion (structural rewrites, length
/// explosions).
const MASKS: [u8; 3] = [0x01, 0x80, 0xFF];

/// Run one decode attempt, returning the re-encoded bytes on success, and
/// enforcing the panic-freedom and allocation-cap properties.
fn decode_guarded(
    stream: &[u8],
    decode: &dyn Fn(&[u8]) -> Option<Vec<u8>>,
    what: &dyn Fn() -> String,
) -> Option<Vec<u8>> {
    MAX_REQUEST.store(0, Ordering::Relaxed);
    let result = catch_unwind(AssertUnwindSafe(|| decode(stream)));
    let peak = MAX_REQUEST.load(Ordering::Relaxed);
    let reencoded = result.unwrap_or_else(|_| panic!("decoder panicked on {}", what()));
    assert!(
        peak <= ALLOC_CAP,
        "decoding {} allocated {peak} bytes in one request (cap {ALLOC_CAP})",
        what()
    );
    reencoded
}

/// The fuzz property over one message: every single-byte corruption is
/// rejected or decoded losslessly, without panics or oversized allocations.
fn fuzz_message(label: &str, bytes: &[u8], decode: &dyn Fn(&[u8]) -> Option<Vec<u8>>) {
    let clean = decode_guarded(bytes, decode, &|| format!("pristine {label}"))
        .unwrap_or_else(|| panic!("pristine {label} must decode"));
    assert_eq!(
        clean, bytes,
        "pristine {label} re-encode must be bitwise identical"
    );

    let mut accepted = 0usize;
    let mut corrupted = bytes.to_vec();
    for pos in 0..corrupted.len() {
        for mask in MASKS {
            corrupted[pos] ^= mask;
            let what = || format!("{label} with byte {pos} ^ {mask:#04x}");
            if let Some(reencoded) = decode_guarded(&corrupted, decode, &what) {
                accepted += 1;
                assert_eq!(
                    reencoded,
                    corrupted,
                    "accepted a corrupted message without representing it losslessly: {}",
                    what()
                );
            }
            corrupted[pos] ^= mask; // restore
        }
    }
    assert_eq!(corrupted, bytes, "sweep must restore the message");
    // Structural corruption (magic, version, tags, lengths) must actually
    // be rejected somewhere, or the validators are not running.
    assert!(
        accepted < corrupted.len() * MASKS.len(),
        "{label}: every corruption was accepted; the validators are not running"
    );
}

fn sample_requests() -> Vec<(&'static str, Request)> {
    vec![
        (
            "Request::Query",
            Request::Query {
                model: "demo".into(),
                tenant: "tenant-a".into(),
                rhs: vec![1.0, -2.5, f64::MIN_POSITIVE, 0.0],
            },
        ),
        (
            "Request::LoadModel",
            Request::LoadModel {
                id: "ridge".into(),
                path: "/models/ridge.cds".into(),
            },
        ),
        ("Request::Stats", Request::Stats),
    ]
}

fn sample_responses() -> Vec<(&'static str, Response)> {
    vec![
        (
            "Response::Reply",
            Response::Reply {
                y: vec![0.25, -1.0, 3.75],
                queue_wait_ns: 150_000,
                service_ns: 2_000_000,
                batch_width: 8,
            },
        ),
        (
            "Response::Error",
            Response::Error {
                kind: ErrorKind::InvalidInput,
                message: "unknown model 'x'".into(),
            },
        ),
        (
            "Response::Overloaded",
            Response::Overloaded {
                reason: "dispatch queue full".into(),
            },
        ),
        (
            "Response::Stats",
            Response::Stats(ServerStats {
                tenants: vec![(
                    "tenant-a".into(),
                    TenantStats {
                        queries: 9,
                        batches: 2,
                        queue_wait_seconds: 0.125,
                        service_seconds: 0.5,
                        errors: 1,
                        contained_panics: 0,
                        retried_queries: 3,
                    },
                )],
                ..Default::default()
            }),
        ),
    ]
}

#[test]
fn every_single_byte_request_corruption_is_rejected_or_lossless() {
    for (label, req) in sample_requests() {
        fuzz_message(label, &req.encode(), &|data| {
            Request::decode(data).ok().map(|r| r.encode())
        });
    }
}

#[test]
fn every_single_byte_response_corruption_is_rejected_or_lossless() {
    for (label, resp) in sample_responses() {
        fuzz_message(label, &resp.encode(), &|data| {
            Response::decode(data).ok().map(|r| r.encode())
        });
    }
}

#[test]
fn every_single_byte_frame_corruption_is_contained() {
    // Sweep the whole framed message: header flips must never panic,
    // over-allocate, or mis-deliver — a complete frame either errors out
    // (unsyncable stream), still decodes, or the buffer waits for bytes
    // that will never come (the event loop's idle timeout reaps those).
    let req = Request::Query {
        model: "m".into(),
        tenant: "t".into(),
        rhs: vec![4.0, 5.0],
    };
    let framed = encode_frame(7, &req.encode());
    let max_frame = 16 << 20;

    let mut corrupted = framed.clone();
    for pos in 0..corrupted.len() {
        for mask in MASKS {
            corrupted[pos] ^= mask;
            let what = || format!("frame with byte {pos} ^ {mask:#04x}");
            MAX_REQUEST.store(0, Ordering::Relaxed);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut buf = corrupted.clone();
                match take_frame(&mut buf, max_frame) {
                    Err(_) => None,   // framing rejected: connection would close
                    Ok(None) => None, // incomplete: loop keeps waiting
                    Ok(Some((corr, payload))) => Request::decode(&payload)
                        .ok()
                        .map(|r| encode_frame(corr, &r.encode())),
                }
            }));
            let peak = MAX_REQUEST.load(Ordering::Relaxed);
            assert!(
                peak <= ALLOC_CAP,
                "framing {} allocated {peak} bytes in one request",
                what()
            );
            let reencoded = outcome.unwrap_or_else(|_| panic!("framing panicked on {}", what()));
            if let Some(reencoded) = reencoded {
                // A fully-accepted frame must be the corrupted bytes,
                // re-framed losslessly.
                assert_eq!(reencoded, corrupted, "lossless re-frame for {}", what());
            }
            corrupted[pos] ^= mask; // restore
        }
    }
    assert_eq!(corrupted, framed, "sweep must restore the frame");
}
