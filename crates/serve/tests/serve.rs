//! Serving-layer correctness: coalesced responses are bitwise identical to
//! per-query evaluation, the registry honors its memory budget with LRU
//! eviction, and a failed batch retries query-by-query so poison inputs
//! only fail their own query.

use matrox_core::{inspector, save, EvalSession, MatRoxParams, MatroxError};
use matrox_points::{generate, DatasetId, Kernel};
use matrox_serve::{Model, Op, ServeConfig, Server};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn matvec_session(n: usize, seed: u64) -> EvalSession {
    let points = generate(DatasetId::Grid, n, seed);
    let kernel = Kernel::Gaussian { bandwidth: 2.0 };
    let params = MatRoxParams::h2b().with_bacc(1e-5).with_leaf_size(32);
    EvalSession::build(&points, &kernel, &params).expect("clean inputs")
}

/// Deterministic, query-distinct right-hand side.
fn rhs(n: usize, j: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 31 + j * 7 + 1) as f64).sin())
        .collect()
}

fn bitwise_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[test]
fn coalesced_matvec_replies_are_bitwise_identical_to_per_query() {
    let n = 256;
    let session = matvec_session(n, 11);
    let reference = session.clone();

    let server = Server::spawn(
        ServeConfig::default()
            .with_max_batch(8)
            .with_coalesce_window(Duration::from_millis(100)),
    )
    .expect("spawn");
    let handle = server.handle();
    handle
        .insert_model("m", Model::Matvec(Arc::new(session)))
        .expect("insert");

    let pending: Vec<_> = (0..8).map(|j| handle.query("m", "t", rhs(n, j))).collect();
    for (j, p) in pending.into_iter().enumerate() {
        let reply = p.wait().expect("served");
        // The whole point of coalescing being safe: the batched answer is
        // the bitwise-identical answer the query would have gotten alone.
        let expected = reference.evaluate_vec(&rhs(n, j)).expect("reference");
        assert!(bitwise_eq(&reply.y, &expected), "column {j} differs");
        assert_eq!(reply.batch_width, 8, "all 8 queries coalesced into one");
    }

    let stats = server.shutdown().expect("shutdown");
    let t = stats.tenant("t").expect("tenant recorded");
    assert_eq!(t.queries, 8);
    assert_eq!(t.batches, 1);
    assert_eq!(t.errors, 0);
    assert!((t.mean_batch_width() - 8.0).abs() < 1e-12);
    assert_eq!(stats.sessions.queries, 8);
    assert_eq!(stats.sessions.evaluations, 1);
}

#[test]
fn coalesced_solve_replies_are_bitwise_identical_to_per_query() {
    let n = 256;
    let points = generate(DatasetId::Grid, n, 3);
    let kernel = Kernel::GaussianRidge {
        bandwidth: 0.125,
        ridge: 8.0,
    };
    let params = MatRoxParams::hss().with_bacc(1e-6).with_leaf_size(32);
    let factored = Arc::new(
        inspector(&points, &kernel, &params)
            .expect("clean inputs")
            .factorize()
            .expect("SPD"),
    );

    let server = Server::spawn(
        ServeConfig::default()
            .with_max_batch(4)
            .with_coalesce_window(Duration::from_millis(100)),
    )
    .expect("spawn");
    let handle = server.handle();
    handle
        .insert_model("ridge", Model::Solve(factored.clone()))
        .expect("insert");

    let pending: Vec<_> = (0..4)
        .map(|j| handle.solve("ridge", "t", rhs(n, j)))
        .collect();
    for (j, p) in pending.into_iter().enumerate() {
        let reply = p.wait().expect("served");
        let expected = factored.solve(&rhs(n, j)).expect("reference");
        assert!(bitwise_eq(&reply.y, &expected), "solve column {j} differs");
        assert_eq!(reply.batch_width, 4);
    }
}

#[test]
fn op_model_mismatch_is_a_plan_mismatch_error() {
    let n = 128;
    let session = matvec_session(n, 5);
    let server = Server::spawn(ServeConfig::default().with_max_batch(1)).expect("spawn");
    let handle = server.handle();
    handle
        .insert_model("m", Model::Matvec(Arc::new(session)))
        .expect("insert");
    let err = handle
        .solve("m", "t", rhs(n, 0))
        .wait()
        .expect_err("solve on matvec model");
    assert!(matches!(err, MatroxError::PlanMismatch(_)), "got {err}");
}

#[test]
fn unknown_model_and_bad_shape_fail_only_their_own_query() {
    let n = 128;
    let session = matvec_session(n, 7);
    let reference = session.clone();
    let server = Server::spawn(
        ServeConfig::default()
            .with_max_batch(4)
            .with_coalesce_window(Duration::from_millis(50)),
    )
    .expect("spawn");
    let handle = server.handle();
    handle
        .insert_model("m", Model::Matvec(Arc::new(session)))
        .expect("insert");

    // Unknown model: clean error, server keeps serving.
    let err = handle
        .query_wait("nope", "t", rhs(n, 0))
        .expect_err("unknown model");
    assert!(matches!(err, MatroxError::InvalidInput(_)), "got {err}");

    // One short RHS coalesced with three good ones: the short one is
    // rejected before the batch is assembled, the good ones are served.
    let bad = handle.query("m", "t", vec![1.0; n - 3]);
    let good: Vec<_> = (0..3).map(|j| handle.query("m", "t", rhs(n, j))).collect();
    let err = bad.wait().expect_err("short rhs");
    assert!(matches!(err, MatroxError::InvalidInput(_)), "got {err}");
    for (j, p) in good.into_iter().enumerate() {
        let reply = p.wait().expect("served despite the bad neighbor");
        let expected = reference.evaluate_vec(&rhs(n, j)).expect("reference");
        assert!(bitwise_eq(&reply.y, &expected));
    }
}

#[test]
fn poison_rhs_fails_alone_after_batch_retry() {
    let n = 128;
    let session = matvec_session(n, 9);
    let reference = session.clone();
    let server = Server::spawn(
        ServeConfig::default()
            .with_max_batch(4)
            .with_coalesce_window(Duration::from_millis(50)),
    )
    .expect("spawn");
    let handle = server.handle();
    handle
        .insert_model("m", Model::Matvec(Arc::new(session)))
        .expect("insert");

    // A NaN column poisons the whole assembled panel (the session screens
    // the full batch), so the reactor must fall back to per-query retries:
    // only the poisoned query fails.
    let mut poison = rhs(n, 0);
    poison[n / 2] = f64::NAN;
    let bad = handle.query("m", "t", poison);
    let good: Vec<_> = (1..4).map(|j| handle.query("m", "t", rhs(n, j))).collect();

    let err = bad.wait().expect_err("poison rhs");
    assert!(matches!(err, MatroxError::InvalidInput(_)), "got {err}");
    for (j, p) in good.into_iter().enumerate() {
        let reply = p.wait().expect("served despite the poisoned neighbor");
        let expected = reference.evaluate_vec(&rhs(n, j + 1)).expect("reference");
        assert!(bitwise_eq(&reply.y, &expected), "column {j} differs");
        assert_eq!(reply.batch_width, 1, "served via individual retry");
    }

    let stats = server.shutdown().expect("shutdown");
    let t = stats.tenant("t").expect("tenant recorded");
    assert_eq!(t.errors, 1);
    assert_eq!(t.retried_queries, 4, "whole failed batch retried");
    assert!(stats.sessions.invalid_inputs >= 1);
}

#[test]
fn lru_eviction_honors_the_memory_budget_and_reloads_from_disk() {
    let n = 256;
    let dir = std::env::temp_dir().join(format!("matrox-serve-lru-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let mut paths: Vec<PathBuf> = Vec::new();
    let mut sizes: Vec<usize> = Vec::new();
    let mut references: Vec<EvalSession> = Vec::new();
    for (i, seed) in [21u64, 22, 23].iter().enumerate() {
        let points = generate(DatasetId::Grid, n, *seed);
        let kernel = Kernel::Gaussian {
            bandwidth: 1.5 + i as f64 * 0.5,
        };
        let params = MatRoxParams::h2b().with_bacc(1e-5).with_leaf_size(32);
        let h = inspector(&points, &kernel, &params).expect("clean inputs");
        sizes.push(h.plan.storage_bytes());
        let path = dir.join(format!("model-{i}.cds"));
        save(&h, &path).expect("save");
        references.push(EvalSession::from_hmatrix(h));
        paths.push(path);
    }

    // A budget of (total - smallest/2) can hold any two of the three models
    // but never all three, so registering all three must evict exactly the
    // LRU one regardless of how the per-model sizes came out.
    let total: usize = sizes.iter().sum();
    let smallest = sizes.iter().copied().min().unwrap_or(0);
    let budget = total - smallest / 2;
    let server = Server::spawn(
        ServeConfig::default()
            .with_max_batch(1)
            .with_memory_budget_bytes(budget),
    )
    .expect("spawn");
    let handle = server.handle();
    for (i, p) in paths.iter().enumerate() {
        handle
            .load_model(&format!("model-{i}"), p.clone())
            .expect("load");
    }

    let stats = handle.stats().expect("stats");
    assert!(
        stats.registry.resident_bytes <= budget,
        "resident {} > budget {budget}",
        stats.registry.resident_bytes
    );
    assert!(stats.registry.evictions >= 1, "three models cannot all fit");
    assert_eq!(stats.registry.loads, 3);

    // The evicted model (model-0 is the coldest) still serves: the registry
    // reloads it from its backing file on demand — and the answer is the
    // same bitwise.
    for i in 0..3 {
        let reply = handle
            .query_wait(&format!("model-{i}"), "t", rhs(n, i))
            .expect("served after eviction");
        let expected = references[i].evaluate_vec(&rhs(n, i)).expect("reference");
        assert!(bitwise_eq(&reply.y, &expected), "model {i} differs");
    }
    let stats = handle.stats().expect("stats");
    assert!(
        stats.registry.loads > 3,
        "eviction forced at least one reload"
    );
    assert!(stats.registry.resident_bytes <= budget);

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn max_batch_flushes_without_waiting_out_the_window() {
    let n = 128;
    let session = matvec_session(n, 13);
    let server = Server::spawn(
        ServeConfig::default()
            .with_max_batch(4)
            // A window far longer than the test: replies arriving at all
            // proves the width-4 flush path, not the timer.
            .with_coalesce_window(Duration::from_secs(30)),
    )
    .expect("spawn");
    let handle = server.handle();
    handle
        .insert_model("m", Model::Matvec(Arc::new(session)))
        .expect("insert");

    let pending: Vec<_> = (0..8).map(|j| handle.query("m", "t", rhs(n, j))).collect();
    for p in pending {
        let reply = p.wait().expect("served");
        assert_eq!(reply.batch_width, 4);
    }
    let stats = server.shutdown().expect("shutdown");
    let t = stats.tenant("t").expect("tenant recorded");
    assert_eq!(t.queries, 8);
    assert_eq!(t.batches, 2);
}

#[test]
fn op_enum_displays_for_error_messages() {
    assert_eq!(Op::Matvec.to_string(), "matvec");
    assert_eq!(Op::Solve.to_string(), "solve");
}
