//! Network front-end lifecycle and backpressure: wire replies are bitwise
//! identical to in-process replies, admission caps shed with explicit
//! `Overloaded` responses, latency budgets expire queued work, idle
//! connections are reaped, decode errors leave the connection usable, and
//! shutdown drains in-flight requests.

use matrox_core::{save, EvalSession, MatRoxParams, MatroxError};
use matrox_points::{generate, DatasetId, Kernel};
use matrox_serve::proto::{encode_frame, Request, Response};
use matrox_serve::{Model, NetClient, NetConfig, NetServer, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn matvec_session(n: usize, seed: u64) -> EvalSession {
    let points = generate(DatasetId::Grid, n, seed);
    let kernel = Kernel::Gaussian { bandwidth: 2.0 };
    let params = MatRoxParams::h2b().with_bacc(1e-5).with_leaf_size(32);
    EvalSession::build(&points, &kernel, &params).expect("clean inputs")
}

/// Deterministic, query-distinct right-hand side.
fn rhs(n: usize, j: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 31 + j * 7 + 1) as f64).sin())
        .collect()
}

fn bitwise_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Spawn a server with one resident matvec model plus its net front-end.
fn serve_net(n: usize, serve: ServeConfig, net: NetConfig) -> (Server, NetServer, EvalSession) {
    let session = matvec_session(n, 11);
    let reference = session.clone();
    let server = Server::spawn(serve).expect("spawn server");
    server
        .handle()
        .insert_model("m", Model::Matvec(Arc::new(session)))
        .expect("insert");
    let net = NetServer::spawn(server.handle(), net).expect("spawn net");
    (server, net, reference)
}

#[test]
fn wire_replies_are_bitwise_identical_to_in_process_replies() {
    let n = 256;
    let (server, net, reference) = serve_net(
        n,
        ServeConfig::default()
            .with_max_batch(8)
            .with_coalesce_window(Duration::from_millis(5)),
        NetConfig::default(),
    );
    let handle = server.handle();

    // Two connections pipelining queries concurrently with in-process
    // queries: every reply must be bitwise identical to the reference
    // evaluation (and therefore to each other).
    let mut c1 = NetClient::connect(net.addr()).expect("connect");
    let mut c2 = NetClient::connect(net.addr()).expect("connect");
    let corr1: Vec<u64> = (0..4)
        .map(|j| {
            c1.send(&Request::Query {
                model: "m".into(),
                tenant: "wire-a".into(),
                rhs: rhs(n, j),
            })
            .expect("send")
        })
        .collect();
    let corr2: Vec<u64> = (0..4)
        .map(|j| {
            c2.send(&Request::Query {
                model: "m".into(),
                tenant: "wire-b".into(),
                rhs: rhs(n, j),
            })
            .expect("send")
        })
        .collect();
    let inproc: Vec<_> = (0..4)
        .map(|j| handle.query("m", "proc", rhs(n, j)))
        .collect();

    for (j, corr) in corr1.into_iter().enumerate() {
        let reply = c1
            .recv(corr)
            .expect("recv")
            .into_query_result()
            .expect("served");
        let expected = reference.evaluate_vec(&rhs(n, j)).expect("reference");
        assert!(
            bitwise_eq(&reply.y, &expected),
            "wire c1 column {j} differs"
        );
        assert!(reply.batch_width >= 1);
    }
    for (j, corr) in corr2.into_iter().enumerate() {
        let reply = c2
            .recv(corr)
            .expect("recv")
            .into_query_result()
            .expect("served");
        let expected = reference.evaluate_vec(&rhs(n, j)).expect("reference");
        assert!(
            bitwise_eq(&reply.y, &expected),
            "wire c2 column {j} differs"
        );
    }
    for (j, p) in inproc.into_iter().enumerate() {
        let reply = p.wait().expect("served");
        let expected = reference.evaluate_vec(&rhs(n, j)).expect("reference");
        assert!(
            bitwise_eq(&reply.y, &expected),
            "in-process column {j} differs"
        );
    }

    // The ergonomic wrapper goes through the same path.
    let reply = c1.query("m", "wire-a", rhs(n, 9)).expect("query");
    let expected = reference.evaluate_vec(&rhs(n, 9)).expect("reference");
    assert!(bitwise_eq(&reply.y, &expected));

    // Stats over the wire see the wire tenants.
    let stats = c2.stats().expect("stats");
    assert_eq!(stats.tenant("wire-a").map(|t| t.queries), Some(5));
    assert_eq!(stats.tenant("wire-b").map(|t| t.queries), Some(4));
    assert_eq!(stats.tenant("proc").map(|t| t.queries), Some(4));

    let net_stats = net.shutdown().expect("net shutdown");
    assert_eq!(net_stats.accepted, 2);
    assert_eq!(net_stats.served, 10, "9 queries + 1 stats over the wire");
    assert_eq!(net_stats.shed, 0);
    assert_eq!(net_stats.decode_errors, 0);
    server.shutdown().expect("server shutdown");
}

#[test]
fn load_model_and_flush_round_trip_over_the_wire() {
    let n = 128;
    let dir = std::env::temp_dir().join(format!("matrox-net-load-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.cds");
    let points = generate(DatasetId::Grid, n, 3);
    let kernel = Kernel::Gaussian { bandwidth: 1.5 };
    let params = MatRoxParams::h2b().with_bacc(1e-5).with_leaf_size(32);
    let h = matrox_core::inspector(&points, &kernel, &params).expect("inspector");
    save(&h, &path).expect("save");
    let reference = EvalSession::from_hmatrix(h);

    let server = Server::spawn(ServeConfig::default().with_max_batch(1)).expect("spawn");
    let net = NetServer::spawn(server.handle(), NetConfig::default()).expect("net");
    let mut client = NetClient::connect(net.addr()).expect("connect");

    client
        .load_model("disk", path.to_string_lossy().as_ref())
        .expect("load over the wire");
    client.flush().expect("flush over the wire");
    let reply = client.query("disk", "t", rhs(n, 0)).expect("query");
    let expected = reference.evaluate_vec(&rhs(n, 0)).expect("reference");
    assert!(bitwise_eq(&reply.y, &expected));

    // A bad path comes back as the reader's error, not a dead connection.
    let err = client
        .load_model("nope", "/does/not/exist.cds")
        .expect_err("missing file");
    assert!(matches!(err, MatroxError::Io(_)), "got {err}");

    net.shutdown().expect("net shutdown");
    server.shutdown().expect("server shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn per_connection_inflight_cap_sheds_with_explicit_overloaded() {
    let n = 128;
    // A long window plus a wide batch keeps admitted queries in flight,
    // so the pipelined burst overruns the per-connection cap.
    let (server, net, _) = serve_net(
        n,
        ServeConfig::default()
            .with_max_batch(64)
            .with_coalesce_window(Duration::from_millis(300)),
        NetConfig::default().with_max_inflight_per_conn(2),
    );
    let mut client = NetClient::connect(net.addr()).expect("connect");
    let corrs: Vec<u64> = (0..5)
        .map(|j| {
            client
                .send(&Request::Query {
                    model: "m".into(),
                    tenant: "t".into(),
                    rhs: rhs(n, j),
                })
                .expect("send")
        })
        .collect();

    let mut served = 0;
    let mut shed = 0;
    for corr in corrs {
        match client.recv(corr).expect("recv").into_query_result() {
            Ok(_) => served += 1,
            Err(MatroxError::Overloaded(reason)) => {
                shed += 1;
                assert!(
                    reason.contains("per-connection"),
                    "shed reason names the cap: {reason}"
                );
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(served, 2, "exactly the cap is admitted");
    assert_eq!(shed, 3, "the overflow is shed, not buffered");

    let net_stats = net.shutdown().expect("net shutdown");
    assert_eq!(net_stats.shed, 3);
    assert_eq!(net_stats.served, 2);
    server.shutdown().expect("server shutdown");
}

#[test]
fn paced_flood_against_total_cap_sheds_and_answers_everything() {
    let n = 128;
    let (server, net, _) = serve_net(
        n,
        ServeConfig::default()
            .with_max_batch(64)
            .with_coalesce_window(Duration::from_millis(300)),
        NetConfig::default()
            .with_max_inflight_per_conn(16)
            .with_max_inflight_total(2),
    );
    // Two connections flooding: the *total* cap (the bounded dispatch
    // queue) is what sheds.  Every request still gets an answer.
    let mut c1 = NetClient::connect(net.addr()).expect("connect");
    let mut c2 = NetClient::connect(net.addr()).expect("connect");
    let mut corrs: Vec<(usize, u64)> = Vec::new();
    for j in 0..3 {
        let req = |t: &str| Request::Query {
            model: "m".into(),
            tenant: t.into(),
            rhs: rhs(n, j),
        };
        corrs.push((1, c1.send(&req("t1")).expect("send")));
        corrs.push((2, c2.send(&req("t2")).expect("send")));
    }
    let mut served = 0;
    let mut shed = 0;
    for (who, corr) in corrs {
        let client = if who == 1 { &mut c1 } else { &mut c2 };
        match client.recv(corr).expect("recv").into_query_result() {
            Ok(_) => served += 1,
            Err(MatroxError::Overloaded(_)) => shed += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(served + shed, 6, "every request is answered");
    assert_eq!(served, 2, "the bounded queue admits exactly its capacity");
    assert_eq!(shed, 4);

    net.shutdown().expect("net shutdown");
    server.shutdown().expect("server shutdown");
}

#[test]
fn latency_budget_expires_queued_work() {
    let n = 128;
    // The coalesce window is far longer than the budget and the batch never
    // fills, so the query sits queued until the budget expires it.
    let (server, net, _) = serve_net(
        n,
        ServeConfig::default()
            .with_max_batch(64)
            .with_coalesce_window(Duration::from_secs(30)),
        NetConfig::default().with_latency_budget(Duration::from_millis(50)),
    );
    let mut client = NetClient::connect(net.addr()).expect("connect");
    let t0 = Instant::now();
    let err = client
        .query("m", "t", rhs(n, 0))
        .expect_err("budget must expire the queued query");
    let waited = t0.elapsed();
    match err {
        MatroxError::Overloaded(reason) => {
            assert!(reason.contains("latency budget"), "reason: {reason}");
        }
        e => panic!("expected Overloaded, got {e}"),
    }
    assert!(
        waited < Duration::from_secs(10),
        "expired in {waited:?}, long before the 30s window"
    );

    let net_stats = net.shutdown().expect("net shutdown");
    assert_eq!(net_stats.expired, 1);
    server.shutdown().expect("server shutdown");
}

#[test]
fn idle_connections_are_reaped() {
    let n = 128;
    let (server, net, _) = serve_net(
        n,
        ServeConfig::default().with_max_batch(1),
        NetConfig::default().with_idle_timeout(Duration::from_millis(100)),
    );
    let mut client = NetClient::connect(net.addr()).expect("connect");
    client
        .query("m", "t", rhs(n, 0))
        .expect("first query works");

    // Go quiet past the idle timeout; the server closes the connection.
    std::thread::sleep(Duration::from_millis(400));
    let gone = match client.query("m", "t", rhs(n, 1)) {
        Err(MatroxError::Io(_)) => true, // send hit EPIPE or recv hit EOF
        other => panic!("expected a dead connection, got {other:?}"),
    };
    assert!(gone);

    let net_stats = net.shutdown().expect("net shutdown");
    assert_eq!(net_stats.idle_closed, 1);
    server.shutdown().expect("server shutdown");
}

#[test]
fn decode_error_replies_cleanly_and_the_connection_survives() {
    let n = 128;
    let (server, net, reference) = serve_net(
        n,
        ServeConfig::default().with_max_batch(1),
        NetConfig::default(),
    );
    let addr = net.addr();
    let mut raw = TcpStream::connect(addr).expect("connect");

    // A well-framed frame whose payload is garbage: the server answers
    // with a Format error and keeps the connection.
    raw.write_all(&encode_frame(99, b"this is not MATROXS1"))
        .expect("write");
    let resp = read_one_frame(&mut raw);
    let (corr, resp) = resp.expect("an error reply, not a closed connection");
    assert_eq!(corr, 99, "the reply is correlated to the bad request");
    match Response::decode(&resp).expect("decodable") {
        Response::Error { message, .. } => {
            assert!(message.contains("magic"), "message: {message}")
        }
        other => panic!("expected Error, got {}", other.name()),
    }

    // The same connection still serves a valid query afterwards.
    let req = Request::Query {
        model: "m".into(),
        tenant: "t".into(),
        rhs: rhs(n, 0),
    };
    raw.write_all(&encode_frame(100, &req.encode()))
        .expect("write");
    let (corr, payload) = read_one_frame(&mut raw).expect("served");
    assert_eq!(corr, 100);
    let reply = Response::decode(&payload)
        .expect("decodable")
        .into_query_result()
        .expect("served");
    let expected = reference.evaluate_vec(&rhs(n, 0)).expect("reference");
    assert!(bitwise_eq(&reply.y, &expected));

    // Broken framing (length shorter than its correlation id) is
    // unrecoverable: error reply, then the server closes.
    raw.write_all(&[3, 0, 0, 0, 9, 9, 9, 9, 9, 9, 9, 9])
        .expect("write");
    let (_, payload) = read_one_frame(&mut raw).expect("final error reply");
    assert!(matches!(
        Response::decode(&payload).expect("decodable"),
        Response::Error { .. }
    ));
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).expect("EOF");
    assert!(rest.is_empty(), "connection closed after the framing error");

    let net_stats = net.shutdown().expect("net shutdown");
    assert_eq!(net_stats.decode_errors, 2);
    server.shutdown().expect("server shutdown");
}

/// Read exactly one `[len][corr][payload]` frame off a blocking socket.
fn read_one_frame(stream: &mut TcpStream) -> Option<(u64, Vec<u8>)> {
    let mut header = [0u8; 12];
    stream.read_exact(&mut header).ok()?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let corr = u64::from_le_bytes([
        header[4], header[5], header[6], header[7], header[8], header[9], header[10], header[11],
    ]);
    let mut payload = vec![0u8; len - 8];
    stream.read_exact(&mut payload).ok()?;
    Some((corr, payload))
}

#[test]
fn shutdown_drains_inflight_requests() {
    let n = 128;
    let (server, net, reference) = serve_net(
        n,
        ServeConfig::default()
            .with_max_batch(8)
            .with_coalesce_window(Duration::from_millis(100)),
        NetConfig::default(),
    );
    let mut client = NetClient::connect(net.addr()).expect("connect");
    let corrs: Vec<u64> = (0..4)
        .map(|j| {
            client
                .send(&Request::Query {
                    model: "m".into(),
                    tenant: "t".into(),
                    rhs: rhs(n, j),
                })
                .expect("send")
        })
        .collect();

    // Give the event loop a moment to admit the queries, then shut down
    // while they are still queued behind the coalesce window.  Drain must
    // flush their replies before closing.
    std::thread::sleep(Duration::from_millis(20));
    let net_stats = net.shutdown().expect("net shutdown");
    assert_eq!(net_stats.served, 4, "drain answered the in-flight queries");

    for (j, corr) in corrs.into_iter().enumerate() {
        let reply = client
            .recv(corr)
            .expect("reply was flushed before close")
            .into_query_result()
            .expect("served");
        let expected = reference.evaluate_vec(&rhs(n, j)).expect("reference");
        assert!(
            bitwise_eq(&reply.y, &expected),
            "drained column {j} differs"
        );
    }
    server.shutdown().expect("server shutdown");
}
