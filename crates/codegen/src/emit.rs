//! Specialized source emission.
//!
//! The original MatRox writes the generated evaluation code to a header file
//! (`matmul.h` in Figure 2) that the executor includes.  This module renders
//! the same information from an [`EvalPlan`]: the exact loop nest the plan
//! encodes, with the concrete structure-set sizes baked in as constants, so
//! users can inspect what the "generated code" for their input looks like.
//! The emitted text is Rust-flavoured pseudo-code; it is written to disk by
//! `matrox-core`'s inspector when an output path is supplied and is also
//! useful in tests to assert which lowerings were applied.

use crate::plan::EvalPlan;
use std::fmt::Write as _;

/// Render the specialized evaluation code for `plan` as source text.
pub fn emit_source(plan: &EvalPlan, name: &str) -> String {
    let d = &plan.decisions;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "// ---------------------------------------------------------------"
    );
    let _ = writeln!(s, "// MatRox generated evaluation code: {name}");
    let _ = writeln!(
        s,
        "// near interactions : {:6}  (blocked: {})",
        plan.near_blockset.num_interactions(),
        d.block_near
    );
    let _ = writeln!(
        s,
        "// far  interactions : {:6}  (blocked: {})",
        plan.far_blockset.num_interactions(),
        d.block_far
    );
    let _ = writeln!(
        s,
        "// tree height       : {:6}  (coarsened: {}, agg = {})",
        plan.tree_height, d.coarsen_tree, plan.coarsenset.agg
    );
    let _ = writeln!(
        s,
        "// coarsen levels    : {:6}  (root peeling: {})",
        plan.coarsenset.num_levels(),
        d.peel_root
    );
    let _ = writeln!(s, "// leaves            : {:6}", plan.num_leaves);
    let _ = writeln!(s, "// CDS payload       : {:6} bytes", plan.storage_bytes());
    let _ = writeln!(
        s,
        "// ---------------------------------------------------------------"
    );
    let _ = writeln!(s, "pub fn {name}(h: &HMatrix, w: &Dense) -> Dense {{");
    let _ = writeln!(s, "    let mut y = Dense::zeros(h.dim, w.cols);");

    // Near loop.
    if d.block_near {
        let _ = writeln!(
            s,
            "    // Blocked near loop: {} groups, no reductions",
            plan.near_blockset.num_groups()
        );
        let _ = writeln!(
            s,
            "    par_for b in 0..{} {{",
            plan.near_blockset.num_groups()
        );
        let _ = writeln!(
            s,
            "        for (i, j) in nblockset[b] {{ y[i] += D[i,j] * w[j]; }}"
        );
        let _ = writeln!(s, "    }}");
    } else {
        let _ = writeln!(
            s,
            "    // Near loop (not block-lowered: {} interactions <= block-threshold)",
            plan.near_blockset.num_interactions()
        );
        let _ = writeln!(s, "    for (i, j) in near {{ y[i] += D[i,j] * w[j]; }}");
    }

    // Upward tree loop.
    if d.coarsen_tree {
        let _ = writeln!(
            s,
            "    // Coarsened upward loop over {} coarsen levels",
            plan.coarsenset.num_levels()
        );
        let _ = writeln!(s, "    for cl in 0..{} {{", plan.coarsenset.num_levels());
        let _ = writeln!(s, "        par_for st in coarsenset[cl] {{");
        let _ = writeln!(s, "            for i in st {{ t[i] = V[i]^T * (leaf(i) ? w[i] : [t[lc(i)]; t[rc(i)]]); }}");
        let _ = writeln!(s, "        }}");
        let _ = writeln!(s, "    }}");
    } else {
        let _ = writeln!(
            s,
            "    // Level-by-level upward loop ({} levels, coarsening not applied)",
            plan.tree_height
        );
        let _ = writeln!(s, "    for l in ({}..=1).rev() {{ par_for i in level(l) {{ t[i] = V[i]^T * ...; }} barrier; }}", plan.tree_height);
    }

    // Coupling loop.
    if d.block_far {
        let _ = writeln!(
            s,
            "    // Blocked coupling loop: {} groups",
            plan.far_blockset.num_groups()
        );
        let _ = writeln!(
            s,
            "    par_for b in 0..{} {{",
            plan.far_blockset.num_groups()
        );
        let _ = writeln!(
            s,
            "        for (i, j) in fblockset[b] {{ s[i] += B[i,j] * t[j]; }}"
        );
        let _ = writeln!(s, "    }}");
    } else {
        let _ = writeln!(
            s,
            "    // Coupling loop ({} far interactions)",
            plan.far_blockset.num_interactions()
        );
        let _ = writeln!(s, "    for (i, j) in far {{ s[i] += B[i,j] * t[j]; }}");
    }

    // Downward tree loop.
    if d.coarsen_tree {
        let peel = if d.peel_root { 1 } else { 0 };
        let _ = writeln!(s, "    // Coarsened downward loop (reverse coarsen levels)");
        if d.peel_root {
            let _ = writeln!(
                s,
                "    // peeled root level: executed with block-level (parallel GEMM) parallelism"
            );
            let _ = writeln!(
                s,
                "    for i in coarsenset[{}] {{ par_gemm!(u_push(i)); }}",
                plan.coarsenset.num_levels() - 1
            );
        }
        let _ = writeln!(
            s,
            "    for cl in ({}..=0).rev() {{",
            plan.coarsenset.num_levels().saturating_sub(1 + peel)
        );
        let _ = writeln!(s, "        par_for st in coarsenset[cl] {{");
        let _ = writeln!(s, "            for i in st.rev() {{ leaf(i) ? y[i] += U[i] * s[i] : push(U[i] * s[i], children(i)); }}");
        let _ = writeln!(s, "        }}");
        let _ = writeln!(s, "    }}");
    } else {
        let _ = writeln!(s, "    // Level-by-level downward loop");
        let _ = writeln!(
            s,
            "    for l in 1..={} {{ par_for i in level(l) {{ ... }} barrier; }}",
            plan.tree_height
        );
    }

    let _ = writeln!(s, "    y");
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{generate_plan, CodegenParams};
    use matrox_analysis::{build_blockset, build_cds, build_coarsenset, CoarsenParams};
    use matrox_compress::{compress, CompressionParams};
    use matrox_points::{generate, DatasetId, Kernel};
    use matrox_sampling::sample_nodes_exhaustive;
    use matrox_tree::{ClusterTree, HTree, PartitionMethod, Structure};

    fn plan_for(structure: Structure) -> EvalPlan {
        let pts = generate(DatasetId::Grid, 512, 3);
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let tree = ClusterTree::build(&pts, PartitionMethod::KdTree, 16, 0);
        let htree = HTree::build(&tree, structure);
        let sampling = sample_nodes_exhaustive(&pts, &tree);
        let c = compress(
            &pts,
            &tree,
            &htree,
            &kernel,
            &sampling,
            &CompressionParams::default(),
        );
        let near = build_blockset(&htree.near_pairs(), tree.num_nodes(), 2);
        let far = build_blockset(&htree.far_pairs(), tree.num_nodes(), 4);
        let cs = build_coarsenset(&tree, &c.sranks, &CoarsenParams { p: 4, agg: 2 });
        let cds = build_cds(&tree, &c, &near, &far, &cs);
        generate_plan(
            near,
            far,
            cs,
            cds,
            tree.height,
            tree.leaves().len(),
            &CodegenParams::default(),
        )
    }

    #[test]
    fn emitted_source_mentions_lowerings() {
        let plan = plan_for(Structure::Geometric { tau: 0.65 });
        let src = emit_source(&plan, "matmul");
        assert!(src.contains("Blocked near loop"));
        assert!(src.contains("Coarsened upward loop"));
        assert!(src.contains("pub fn matmul"));
    }

    #[test]
    fn hss_source_has_no_blocked_near_loop() {
        let plan = plan_for(Structure::Hss);
        let src = emit_source(&plan, "matmul_hss");
        assert!(src.contains("not block-lowered"));
        assert!(!src.contains("Blocked near loop"));
    }

    #[test]
    fn emitted_source_is_deterministic() {
        let plan = plan_for(Structure::Hss);
        assert_eq!(emit_source(&plan, "m"), emit_source(&plan, "m"));
    }
}
