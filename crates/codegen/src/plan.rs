//! Evaluation-plan generation ("code lowering").
//!
//! MatRox's code-generation stage lowers an internal AST of the
//! HMatrix-matrix multiplication into specialized code, applying *block
//! lowering* and/or *coarsen lowering* depending on whether the amount of
//! parallel work passes architecture-related thresholds, plus low-level
//! specializations such as peeling the last (root-most) iteration of the tree
//! loop (Section 3.3).
//!
//! In this Rust reproduction the "generated code" is an [`EvalPlan`]: a
//! complete, explicit description of the loop structure the generated code
//! would have (which loops exist, in which order, how they are parallelized,
//! over which structure sets they iterate, and where every submatrix lives in
//! CDS).  The executor in `matrox-exec` interprets the plan with
//! monomorphized kernels; [`crate::emit::emit_source`] additionally renders
//! the plan as specialized source text, mirroring the `matmul.h` file the
//! original framework writes to disk (Figure 2).  See DESIGN.md
//! substitution S3.

use matrox_analysis::{BlockSet, Cds, CoarsenSet};

/// Thresholds and switches controlling lowering decisions.
#[derive(Debug, Clone, Copy)]
pub struct CodegenParams {
    /// Block lowering is applied when the number of near (or far)
    /// interactions exceeds this threshold.  The paper's default is the
    /// number of leaf nodes, expressed here as `None`; `Some(t)` overrides it.
    pub block_threshold: Option<usize>,
    /// Coarsen lowering is applied when the number of tree levels exceeds
    /// this threshold (paper default: 4).
    pub coarsen_threshold: usize,
    /// Apply the low-level specialization that peels the last (root-most)
    /// coarsen level and runs it with block-level (parallel GEMM) parallelism.
    pub enable_peeling: bool,
}

impl Default for CodegenParams {
    fn default() -> Self {
        CodegenParams {
            block_threshold: None,
            coarsen_threshold: 4,
            enable_peeling: true,
        }
    }
}

/// Which loop structures the generated code uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoweringDecisions {
    /// Blocked (reduction-free, parallel) near loop vs. plain sequential loop.
    pub block_near: bool,
    /// Blocked far/coupling loop.
    pub block_far: bool,
    /// Coarsened tree loops (coarsen levels + load-balanced sub-trees) vs.
    /// level-by-level traversal.
    pub coarsen_tree: bool,
    /// Peel the last coarsen level and use block-level parallelism inside it.
    pub peel_root: bool,
}

/// The specialized evaluation plan: the MatRox "generated code" plus the CDS
/// payload it runs over.
#[derive(Debug, Clone)]
pub struct EvalPlan {
    /// Lowering decisions taken by code generation.
    pub decisions: LoweringDecisions,
    /// Structure set driving the blocked near loop.
    pub near_blockset: BlockSet,
    /// Structure set driving the blocked far/coupling loop.
    pub far_blockset: BlockSet,
    /// Structure set driving the coarsened tree loops.
    pub coarsenset: CoarsenSet,
    /// Submatrices stored in the Compressed Data-Sparse format.
    pub cds: Cds,
    /// Number of tree levels (cached for reporting and threshold decisions).
    pub tree_height: usize,
    /// Number of leaf nodes (the default block threshold).
    pub num_leaves: usize,
}

impl EvalPlan {
    /// Floating-point operations of one evaluation with `q` right-hand-side
    /// columns (multiply-add counted as two flops).  Used by the Figure 5
    /// harness to report GFLOP/s.
    pub fn flops(&self, q: usize) -> u64 {
        let mut per_col: u64 = 0;
        for e in &self.cds.d_entries {
            per_col += (e.rows * e.cols) as u64;
        }
        for e in &self.cds.b_entries {
            per_col += (e.rows * e.cols) as u64;
        }
        for g in &self.cds.generators {
            if g.is_present() {
                // V^T in the upward pass and U in the downward pass.
                per_col += 2 * (g.rows * g.cols) as u64;
            }
        }
        2 * per_col * q as u64
    }

    /// Bytes of submatrix data touched by one evaluation (CDS payload).
    pub fn storage_bytes(&self) -> usize {
        self.cds.storage_bytes()
    }
}

/// Take the lowering decisions for the given structure sets (the
/// block/coarsen-lowering boxes of Figure 3).
pub fn lower(
    near_blockset: &BlockSet,
    far_blockset: &BlockSet,
    coarsenset: &CoarsenSet,
    tree_height: usize,
    num_leaves: usize,
    params: &CodegenParams,
) -> LoweringDecisions {
    let block_threshold = params.block_threshold.unwrap_or(num_leaves);
    // Block lowering: only worth it when there are strictly more interactions
    // than the threshold (for HSS the near interactions equal the number of
    // leaves, so block lowering is never activated — Section 4.3).
    let block_near = near_blockset.num_interactions() > block_threshold;
    let block_far = far_blockset.num_interactions() > block_threshold;
    // Coarsen lowering: needs enough levels to amortize thread launch.
    let coarsen_tree = tree_height > params.coarsen_threshold && coarsenset.num_levels() > 0;
    let peel_root = params.enable_peeling && coarsenset.num_levels() > 1;
    LoweringDecisions {
        block_near,
        block_far,
        coarsen_tree,
        peel_root,
    }
}

/// Assemble the full evaluation plan from the structure sets and the CDS
/// payload.
pub fn generate_plan(
    near_blockset: BlockSet,
    far_blockset: BlockSet,
    coarsenset: CoarsenSet,
    cds: Cds,
    tree_height: usize,
    num_leaves: usize,
    params: &CodegenParams,
) -> EvalPlan {
    let decisions = lower(
        &near_blockset,
        &far_blockset,
        &coarsenset,
        tree_height,
        num_leaves,
        params,
    );
    EvalPlan {
        decisions,
        near_blockset,
        far_blockset,
        coarsenset,
        cds,
        tree_height,
        num_leaves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrox_analysis::{build_blockset, build_cds, build_coarsenset, CoarsenParams};
    use matrox_compress::{compress, CompressionParams};
    use matrox_points::{generate, DatasetId, Kernel};
    use matrox_sampling::sample_nodes_exhaustive;
    use matrox_tree::{ClusterTree, HTree, PartitionMethod, Structure};

    fn make_plan(structure: Structure, params: &CodegenParams) -> EvalPlan {
        let pts = generate(DatasetId::Grid, 512, 3);
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let tree = ClusterTree::build(&pts, PartitionMethod::KdTree, 16, 0);
        let htree = HTree::build(&tree, structure);
        let sampling = sample_nodes_exhaustive(&pts, &tree);
        let c = compress(
            &pts,
            &tree,
            &htree,
            &kernel,
            &sampling,
            &CompressionParams::default(),
        );
        let near = build_blockset(&htree.near_pairs(), tree.num_nodes(), 2);
        let far = build_blockset(&htree.far_pairs(), tree.num_nodes(), 4);
        let cs = build_coarsenset(&tree, &c.sranks, &CoarsenParams { p: 4, agg: 2 });
        let cds = build_cds(&tree, &c, &near, &far, &cs);
        generate_plan(near, far, cs, cds, tree.height, tree.leaves().len(), params)
    }

    #[test]
    fn hss_never_activates_near_block_lowering() {
        let plan = make_plan(Structure::Hss, &CodegenParams::default());
        assert!(
            !plan.decisions.block_near,
            "HSS must not block-lower the near loop"
        );
        assert!(plan.decisions.coarsen_tree);
    }

    #[test]
    fn geometric_structure_activates_block_lowering() {
        let plan = make_plan(
            Structure::Geometric { tau: 0.65 },
            &CodegenParams::default(),
        );
        assert!(
            plan.decisions.block_near,
            "geometric admissibility has off-diagonal near blocks and must block-lower"
        );
    }

    #[test]
    fn coarsen_threshold_disables_coarsening_for_shallow_trees() {
        let params = CodegenParams {
            coarsen_threshold: 1000,
            ..Default::default()
        };
        let plan = make_plan(Structure::Hss, &params);
        assert!(!plan.decisions.coarsen_tree);
    }

    #[test]
    fn peeling_requires_multiple_coarsen_levels() {
        let plan = make_plan(Structure::Hss, &CodegenParams::default());
        assert_eq!(plan.decisions.peel_root, plan.coarsenset.num_levels() > 1);
        let no_peel = CodegenParams {
            enable_peeling: false,
            ..Default::default()
        };
        let plan2 = make_plan(Structure::Hss, &no_peel);
        assert!(!plan2.decisions.peel_root);
    }

    #[test]
    fn flop_count_is_positive_and_scales_with_q() {
        let plan = make_plan(
            Structure::Geometric { tau: 0.65 },
            &CodegenParams::default(),
        );
        let f1 = plan.flops(1);
        let f4 = plan.flops(4);
        assert!(f1 > 0);
        assert_eq!(f4, 4 * f1);
    }

    #[test]
    fn explicit_block_threshold_overrides_default() {
        let params = CodegenParams {
            block_threshold: Some(0),
            ..Default::default()
        };
        let plan = make_plan(Structure::Hss, &params);
        assert!(
            plan.decisions.block_near,
            "threshold 0 must force block lowering"
        );
    }
}
