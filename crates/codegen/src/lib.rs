//! # matrox-codegen
//!
//! MatRox code generation (Section 3.3 of the paper): lowering decisions,
//! the specialized evaluation plan, and source emission.
//!
//! Code generation consumes the structure sets produced by structure analysis
//! and decides — via the block-threshold and coarsen-threshold — whether the
//! blocked near/far loops and the coarsened tree loops are worth generating,
//! plus low-level specializations such as root peeling.  The result is an
//! [`EvalPlan`] interpreted by `matrox-exec` and, optionally, a rendered
//! source listing mirroring the `matmul.h` artifact of the original system
//! (see DESIGN.md substitution S3).

#![forbid(unsafe_code)]

pub mod emit;
pub mod plan;

pub use emit::emit_source;
pub use plan::{generate_plan, lower, CodegenParams, EvalPlan, LoweringDecisions};
