//! # matrox-exec
//!
//! The MatRox executor: it runs the specialized HMatrix-matrix multiplication
//! described by an evaluation plan (`matrox-codegen`) over the Compressed
//! Data-Sparse storage (`matrox-analysis`), using rayon for the parallel
//! blocked and coarsened loops.
//!
//! The [`ExecOptions`] switches expose each lowering independently so the
//! Figure 5 ablation (CDS(seq), CDS + coarsen, CDS + block, CDS + block +
//! coarsen + low-level) can be reproduced, and so thread-count sweeps
//! (Figure 7) can pin execution to custom rayon pools.

pub mod executor;

pub use executor::{
    choose_panel_width, effective_grain, effective_panel_width, execute, execute_prepared,
    parse_positive_knob, ExecOptions, PreparedExec, DEFAULT_L2_BYTES,
};
pub use matrox_linalg::{KernelChoice, KernelDispatch};
