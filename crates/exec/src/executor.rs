//! The MatRox executor: parallel HMatrix-matrix multiplication over CDS.
//!
//! The executor interprets an [`EvalPlan`] (the "generated code") in four
//! phases, mirroring the specialized loops of Figure 1e:
//!
//! 1. **near phase** — the blocked loop over the dense `D` blocks,
//!    parallel over blockset groups (which by construction never write the
//!    same output rows, so no reductions/atomics are needed);
//! 2. **upward phase** — the coarsened loop over the `V` generators,
//!    sequential over coarsen levels, parallel over load-balanced sub-trees;
//! 3. **coupling phase** — the blocked loop over the `B` blocks;
//! 4. **downward phase** — the coarsened loop over the `U` generators in
//!    reverse coarsen-level order, scattering into the output.
//!
//! Each phase has a sequential fallback used (a) when code generation decided
//! the corresponding lowering is not profitable and (b) by the ablation
//! harness of Figure 5 (`CDS(seq)`, `CDS + coarsen`, `CDS + block`, ...).
//! The `peel_root` option applies the paper's low-level specialization: the
//! root-most coarsen level is executed with block-level (parallel GEMM)
//! parallelism because task-level parallelism has run out near the root.
//!
//! All intermediate state is kept in the permuted (tree) ordering so that a
//! node's rows of `W` and `Y` are contiguous; the input is permuted on entry
//! and the output is un-permuted on exit.

use matrox_codegen::EvalPlan;
use matrox_linalg::{gemm_slices, gemm_tn_slices, par_gemm_slices, Matrix};
use matrox_tree::ClusterTree;
use rayon::prelude::*;
use std::collections::HashMap;

/// Which phases run in parallel; derived from the plan's lowering decisions
/// or overridden for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Run the near loop blocked & parallel (block lowering).
    pub parallel_near: bool,
    /// Run the coupling loop blocked & parallel (block lowering, far).
    pub parallel_far: bool,
    /// Run the tree loops coarsened & parallel (coarsen lowering).
    pub parallel_tree: bool,
    /// Peel the root-most coarsen level and use parallel GEMM inside it
    /// (low-level specialization).
    pub peel_root: bool,
    /// Minimum number of work items (blockset groups, coarsen partitions) a
    /// parallel task may own; `0` means auto (the pool's own split heuristic,
    /// overridable process-wide via the `MATROX_GRAIN` env var).  Larger
    /// grains trade load balance for lower scheduling overhead — useful when
    /// groups are many and tiny.
    pub grain: usize,
}

/// Resolve the effective grain for the executor's parallel loops: an explicit
/// per-call setting wins, then the `MATROX_GRAIN` environment variable, then
/// auto (1, letting the pool's width-scaled heuristic decide).  Public so the
/// factor/solve sweeps (`matrox-factor`) honor the same knob.
pub fn effective_grain(opts: &ExecOptions) -> usize {
    if opts.grain > 0 {
        return opts.grain;
    }
    static ENV_GRAIN: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let env = *ENV_GRAIN.get_or_init(|| {
        std::env::var("MATROX_GRAIN")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0)
    });
    env.max(1)
}

impl ExecOptions {
    /// Follow the lowering decisions recorded in the plan.
    pub fn from_plan(plan: &EvalPlan) -> Self {
        ExecOptions {
            parallel_near: plan.decisions.block_near,
            parallel_far: plan.decisions.block_far,
            parallel_tree: plan.decisions.coarsen_tree,
            peel_root: plan.decisions.peel_root,
            grain: 0,
        }
    }

    /// Fully sequential execution over CDS (the `CDS(seq)` ablation bar).
    pub fn sequential() -> Self {
        ExecOptions {
            parallel_near: false,
            parallel_far: false,
            parallel_tree: false,
            peel_root: false,
            grain: 0,
        }
    }

    /// All optimizations on, regardless of the plan's thresholds.
    pub fn full() -> Self {
        ExecOptions {
            parallel_near: true,
            parallel_far: true,
            parallel_tree: true,
            peel_root: true,
            grain: 0,
        }
    }

    /// Set the minimum work items per parallel task (see [`ExecOptions::grain`]).
    pub fn with_grain(mut self, grain: usize) -> Self {
        self.grain = grain;
        self
    }
}

/// Evaluate `Y = K~ * W` using the generated plan.
///
/// `w` must have one row per point (`N x Q`); the result has the same shape.
pub fn execute(plan: &EvalPlan, tree: &ClusterTree, w: &Matrix, opts: &ExecOptions) -> Matrix {
    let n = tree.perm.len();
    let q = w.cols();
    assert_eq!(w.rows(), n, "execute: W must have N = {n} rows");

    // Permute W into tree order so every node's rows are contiguous.  The
    // gather writes disjoint contiguous destination rows, so it parallelizes
    // over row blocks; below ~PERM_PAR_ELEMS elements the copy is too
    // memory-bound and short for a fork to pay off.
    let any_parallel = opts.parallel_near || opts.parallel_far || opts.parallel_tree;
    let perm_rows_per_task = PERM_PAR_ELEMS.div_ceil(q.max(1)).max(1);
    let mut w_perm = vec![0.0f64; n * q];
    if any_parallel && n * q >= PERM_PAR_ELEMS {
        w_perm
            .par_chunks_mut(q.max(1))
            .with_min_len(perm_rows_per_task)
            .enumerate()
            .for_each(|(p, row)| row.copy_from_slice(w.row(tree.perm[p])));
    } else {
        for p in 0..n {
            w_perm[p * q..(p + 1) * q].copy_from_slice(w.row(tree.perm[p]));
        }
    }
    let mut y_perm = vec![0.0f64; n * q];

    // Phase 1: near (dense) contributions.
    near_phase(plan, tree, &w_perm, &mut y_perm, q, opts);

    // Phase 2: upward pass producing the skeleton coefficients T.
    let t = upward_phase(plan, tree, &w_perm, q, opts);

    // Phase 3: coupling through the B blocks.
    let mut s = coupling_phase(plan, &t, q, opts);
    drop(t);

    // Phase 4: downward pass scattering U * S into the output.
    downward_phase(plan, tree, &mut s, &mut y_perm, q, opts);

    // Un-permute the output.  Iterate over the *destination* rows (each task
    // owns a contiguous block of `y`) and gather from the permuted buffer via
    // the inverse permutation, so the parallel copy needs no synchronization.
    let mut y = Matrix::zeros(n, q);
    if any_parallel && n * q >= PERM_PAR_ELEMS {
        y.as_mut_slice()
            .par_chunks_mut(q.max(1))
            .with_min_len(perm_rows_per_task)
            .enumerate()
            .for_each(|(i, row)| {
                let p = tree.pos[i];
                row.copy_from_slice(&y_perm[p * q..(p + 1) * q]);
            });
    } else {
        for p in 0..n {
            y.row_mut(tree.perm[p])
                .copy_from_slice(&y_perm[p * q..(p + 1) * q]);
        }
    }
    y
}

/// Element count below which the entry/exit permutation copies stay
/// sequential: the copies are pure memory traffic, so small problems gain
/// nothing from forking.
const PERM_PAR_ELEMS: usize = 64 * 1024;

/// Minimum multiply-add count for which the peeled (block-level parallel)
/// GEMM path is worthwhile; below this the sequential kernel is used even
/// when peeling is enabled, because thread fan-out costs more than it saves.
/// Retuned for the real work-stealing pool: the peeled GEMM runs while the
/// rest of the pool is idle (task parallelism has run out at the root), so a
/// fork is profitable already at ~256k multiply-adds, a quarter of the value
/// assumed under the sequential stub.
const PEEL_PAR_THRESHOLD: usize = 1 << 18;

/// Split `y_perm` into one mutable slice per leaf node (leaves tile the
/// permuted row range contiguously).
fn split_leaf_slices<'a>(
    tree: &ClusterTree,
    y_perm: &'a mut [f64],
    q: usize,
) -> HashMap<usize, &'a mut [f64]> {
    let mut leaves = tree.leaves();
    leaves.sort_by_key(|&l| tree.nodes[l].start);
    let mut map = HashMap::with_capacity(leaves.len());
    let mut rest = y_perm;
    for &l in &leaves {
        let len = tree.nodes[l].num_points() * q;
        let (head, tail) = rest.split_at_mut(len);
        map.insert(l, head);
        rest = tail;
    }
    map
}

// --------------------------------------------------------------------------
// Phase 1: near contributions
// --------------------------------------------------------------------------

fn near_phase(
    plan: &EvalPlan,
    tree: &ClusterTree,
    w_perm: &[f64],
    y_perm: &mut [f64],
    q: usize,
    opts: &ExecOptions,
) {
    let cds = &plan.cds;
    if cds.d_entries.is_empty() {
        return;
    }
    if !opts.parallel_near {
        for e in &cds.d_entries {
            let tn = &tree.nodes[e.target];
            let dst = &mut y_perm[tn.start * q..tn.end * q];
            let sn = &tree.nodes[e.source];
            let src = &w_perm[sn.start * q..sn.end * q];
            gemm_slices(cds.d_block(e), e.rows, e.cols, src, q, dst);
        }
        return;
    }

    // Blocked parallel loop: hand every group exclusive ownership of the
    // output slices of its target nodes.  Algorithm 1 guarantees disjoint
    // targets across groups, so this is a partition of the output.
    let mut leaf_slices = split_leaf_slices(tree, y_perm, q);
    struct GroupWork<'a> {
        start: usize,
        end: usize,
        targets: HashMap<usize, &'a mut [f64]>,
    }
    let mut works: Vec<GroupWork> = Vec::with_capacity(cds.d_groups.len());
    for g in &cds.d_groups {
        let mut targets = HashMap::new();
        for e in &cds.d_entries[g.start..g.end] {
            if let std::collections::hash_map::Entry::Vacant(entry) = targets.entry(e.target) {
                let slice = leaf_slices
                    .remove(&e.target)
                    .expect("blockset groups must own disjoint target nodes");
                entry.insert(slice);
            }
        }
        works.push(GroupWork {
            start: g.start,
            end: g.end,
            targets,
        });
    }
    works
        .par_iter_mut()
        .with_min_len(effective_grain(opts))
        .for_each(|work| {
            for e in &cds.d_entries[work.start..work.end] {
                let dst = work
                    .targets
                    .get_mut(&e.target)
                    .expect("entry target owned by its group");
                let sn = &tree.nodes[e.source];
                let src = &w_perm[sn.start * q..sn.end * q];
                gemm_slices(cds.d_block(e), e.rows, e.cols, src, q, dst);
            }
        });
}

// --------------------------------------------------------------------------
// Phase 2: upward pass (T = V^T * ...)
// --------------------------------------------------------------------------

fn compute_t(
    plan: &EvalPlan,
    tree: &ClusterTree,
    id: usize,
    w_perm: &[f64],
    q: usize,
    global_t: &[Matrix],
    local_t: Option<&HashMap<usize, Matrix>>,
    par_gemm: bool,
) -> Matrix {
    let cds = &plan.cds;
    let (v, rows, cols) = cds.v(id);
    if cols == 0 {
        return Matrix::zeros(0, q);
    }
    let node = &tree.nodes[id];
    let mut out = Matrix::zeros(cols, q);
    let par_gemm = par_gemm && rows * cols * q >= PEEL_PAR_THRESHOLD;
    if node.is_leaf() {
        debug_assert_eq!(rows, node.num_points());
        let src = &w_perm[node.start * q..node.end * q];
        if par_gemm {
            let vt = transpose_slice(v, rows, cols);
            par_gemm_slices(&vt, cols, rows, src, q, out.as_mut_slice());
        } else {
            gemm_tn_slices(v, rows, cols, src, q, out.as_mut_slice());
        }
    } else {
        let (l, r) = node.children.unwrap();
        let lookup = |child: usize| -> &Matrix {
            local_t
                .and_then(|m| m.get(&child))
                .unwrap_or(&global_t[child])
        };
        let tl = lookup(l);
        let tr = lookup(r);
        let rl = tl.rows();
        let rr = tr.rows();
        debug_assert_eq!(rows, rl + rr, "transfer matrix rows mismatch at node {id}");
        if rl > 0 {
            gemm_tn_slices(
                &v[0..rl * cols],
                rl,
                cols,
                tl.as_slice(),
                q,
                out.as_mut_slice(),
            );
        }
        if rr > 0 {
            gemm_tn_slices(
                &v[rl * cols..],
                rr,
                cols,
                tr.as_slice(),
                q,
                out.as_mut_slice(),
            );
        }
    }
    out
}

/// Transpose a row-major `rows x cols` slice into a new `cols x rows` buffer.
fn transpose_slice(a: &[f64], rows: usize, cols: usize) -> Vec<f64> {
    let mut t = vec![0.0; rows * cols];
    for i in 0..rows {
        for j in 0..cols {
            t[j * rows + i] = a[i * cols + j];
        }
    }
    t
}

fn upward_phase(
    plan: &EvalPlan,
    tree: &ClusterTree,
    w_perm: &[f64],
    q: usize,
    opts: &ExecOptions,
) -> Vec<Matrix> {
    let cds = &plan.cds;
    let mut t: Vec<Matrix> = cds.sranks.iter().map(|_| Matrix::zeros(0, 0)).collect();

    let use_coarsen = opts.parallel_tree && plan.coarsenset.num_levels() > 0;
    if use_coarsen {
        let levels = &plan.coarsenset.levels;
        let nlev = levels.len();
        for (cl, parts) in levels.iter().enumerate() {
            let peel_this = opts.peel_root && cl + 1 == nlev;
            if peel_this {
                // Root-most coarsen level: little task parallelism left, use
                // block-level parallelism inside each node instead.
                for part in parts {
                    for &id in part {
                        t[id] = compute_t(plan, tree, id, w_perm, q, &t, None, true);
                    }
                }
            } else {
                let results: Vec<Vec<(usize, Matrix)>> = parts
                    .par_iter()
                    .with_min_len(effective_grain(opts))
                    .map(|part| {
                        let mut local: HashMap<usize, Matrix> = HashMap::with_capacity(part.len());
                        for &id in part {
                            let ti = compute_t(plan, tree, id, w_perm, q, &t, Some(&local), false);
                            local.insert(id, ti);
                        }
                        local.into_iter().collect()
                    })
                    .collect();
                for part_result in results {
                    for (id, m) in part_result {
                        t[id] = m;
                    }
                }
            }
        }
    } else {
        // Level-by-level traversal, deepest level first.
        for level in (1..=tree.height).rev() {
            for id in tree.nodes_at_level(level) {
                if cds.sranks[id] == 0 {
                    t[id] = Matrix::zeros(0, q);
                    continue;
                }
                t[id] = compute_t(plan, tree, id, w_perm, q, &t, None, false);
            }
        }
    }
    // Normalize: nodes never touched keep a 0 x 0 matrix; give them 0 x q so
    // later phases can rely on the column count.
    for (id, m) in t.iter_mut().enumerate() {
        if m.rows() == 0 && m.cols() != q {
            *m = Matrix::zeros(0, q);
        }
        let _ = id;
    }
    t
}

// --------------------------------------------------------------------------
// Phase 3: coupling (S_i += B_{i,j} * T_j)
// --------------------------------------------------------------------------

fn coupling_phase(plan: &EvalPlan, t: &[Matrix], q: usize, opts: &ExecOptions) -> Vec<Matrix> {
    let cds = &plan.cds;
    let mut s: Vec<Matrix> = cds.sranks.iter().map(|&r| Matrix::zeros(r, q)).collect();
    if cds.b_entries.is_empty() {
        return s;
    }
    if !opts.parallel_far {
        for e in &cds.b_entries {
            if e.rows == 0 || e.cols == 0 {
                continue;
            }
            let b = cds.b_block(e);
            let src = t[e.source].as_slice();
            gemm_slices(b, e.rows, e.cols, src, q, s[e.target].as_mut_slice());
        }
        return s;
    }

    // Blocked parallel loop over far groups; each group takes exclusive
    // ownership of its target nodes' S accumulators.
    struct FarWork {
        start: usize,
        end: usize,
        targets: HashMap<usize, Matrix>,
    }
    let mut works: Vec<FarWork> = Vec::with_capacity(cds.b_groups.len());
    for g in &cds.b_groups {
        let mut targets = HashMap::new();
        for e in &cds.b_entries[g.start..g.end] {
            targets
                .entry(e.target)
                .or_insert_with(|| std::mem::replace(&mut s[e.target], Matrix::zeros(0, 0)));
        }
        works.push(FarWork {
            start: g.start,
            end: g.end,
            targets,
        });
    }
    works
        .par_iter_mut()
        .with_min_len(effective_grain(opts))
        .for_each(|work| {
            for e in &cds.b_entries[work.start..work.end] {
                if e.rows == 0 || e.cols == 0 {
                    continue;
                }
                let b = cds.b_block(e);
                let src = t[e.source].as_slice();
                let dst = work.targets.get_mut(&e.target).unwrap();
                gemm_slices(b, e.rows, e.cols, src, q, dst.as_mut_slice());
            }
        });
    for work in works {
        for (id, m) in work.targets {
            s[id] = m;
        }
    }
    s
}

// --------------------------------------------------------------------------
// Phase 4: downward pass (Y += U * S, pushed through the transfer matrices)
// --------------------------------------------------------------------------

/// Process one node of the downward pass.
///
/// For a leaf node, `U_i * S_i` is added into `y_dst` (the leaf's contiguous
/// output rows) and an empty vector is returned.  For an internal node the
/// expanded contribution `U_i * S_i` is split between the two children and
/// returned as `(child_id, contribution)` pairs; the caller decides whether
/// each push is local to its partition or must be merged globally.
fn compute_down_contribution(
    plan: &EvalPlan,
    tree: &ClusterTree,
    id: usize,
    s_i: &Matrix,
    q: usize,
    par_gemm: bool,
    y_dst: Option<&mut [f64]>,
) -> Vec<(usize, Matrix)> {
    let cds = &plan.cds;
    let (u, rows, cols) = cds.u(id);
    if cols == 0 || s_i.rows() == 0 {
        return Vec::new();
    }
    debug_assert_eq!(s_i.rows(), cols);
    let par_gemm = par_gemm && rows * cols * q >= PEEL_PAR_THRESHOLD;
    let node = &tree.nodes[id];
    if node.is_leaf() {
        debug_assert_eq!(rows, node.num_points());
        let dst = y_dst.expect("leaf output slice must be available");
        if par_gemm {
            par_gemm_slices(u, rows, cols, s_i.as_slice(), q, dst);
        } else {
            gemm_slices(u, rows, cols, s_i.as_slice(), q, dst);
        }
        Vec::new()
    } else {
        let (l, r) = node.children.unwrap();
        let rl = cds.sranks[l];
        let rr = cds.sranks[r];
        debug_assert_eq!(rows, rl + rr);
        let mut expanded = Matrix::zeros(rows, q);
        if par_gemm {
            par_gemm_slices(u, rows, cols, s_i.as_slice(), q, expanded.as_mut_slice());
        } else {
            gemm_slices(u, rows, cols, s_i.as_slice(), q, expanded.as_mut_slice());
        }
        let mut pushes = Vec::with_capacity(2);
        if rl > 0 {
            pushes.push((l, expanded.submatrix(0, rl, 0, q)));
        }
        if rr > 0 {
            pushes.push((r, expanded.submatrix(rl, rows, 0, q)));
        }
        pushes
    }
}

/// Accumulate a downward push into an S accumulator (replacing it when the
/// accumulator is still the empty placeholder).
fn merge_push(slot: &mut Matrix, m: Matrix) {
    if slot.rows() == m.rows() && slot.cols() == m.cols() {
        slot.add_assign(&m);
    } else {
        *slot = m;
    }
}

fn downward_phase(
    plan: &EvalPlan,
    tree: &ClusterTree,
    s: &mut [Matrix],
    y_perm: &mut [f64],
    q: usize,
    opts: &ExecOptions,
) {
    let use_coarsen = opts.parallel_tree && plan.coarsenset.num_levels() > 0;
    if !use_coarsen {
        // Sequential top-down, level by level.
        for level in 1..=tree.height {
            for id in tree.nodes_at_level(level) {
                let s_i = std::mem::replace(&mut s[id], Matrix::zeros(0, 0));
                let node = &tree.nodes[id];
                let dst = if node.is_leaf() {
                    Some(&mut y_perm[node.start * q..node.end * q])
                } else {
                    None
                };
                let pushes = compute_down_contribution(plan, tree, id, &s_i, q, false, dst);
                for (child, m) in pushes {
                    merge_push(&mut s[child], m);
                }
            }
        }
        return;
    }

    let levels = &plan.coarsenset.levels;
    let nlev = levels.len();
    for cl in (0..nlev).rev() {
        let parts = &levels[cl];
        let peel_this = opts.peel_root && cl + 1 == nlev;
        if peel_this {
            // Sequential over the few root-most nodes, parallel inside GEMMs.
            for part in parts {
                for &id in part.iter().rev() {
                    let s_i = std::mem::replace(&mut s[id], Matrix::zeros(0, 0));
                    let node = &tree.nodes[id];
                    let dst = if node.is_leaf() {
                        Some(&mut y_perm[node.start * q..node.end * q])
                    } else {
                        None
                    };
                    let pushes = compute_down_contribution(plan, tree, id, &s_i, q, true, dst);
                    for (child, m) in pushes {
                        merge_push(&mut s[child], m);
                    }
                }
            }
            continue;
        }

        // Parallel over partitions: each partition owns its nodes' S values
        // and its leaves' output slices; pushes to nodes outside the
        // partition are returned and merged sequentially.
        let mut leaf_slices = split_leaf_slices(tree, y_perm, q);
        struct DownWork<'a> {
            nodes: Vec<usize>,
            s_local: HashMap<usize, Matrix>,
            y_local: HashMap<usize, &'a mut [f64]>,
        }
        let mut works: Vec<DownWork> = Vec::with_capacity(parts.len());
        for part in parts {
            let mut s_local = HashMap::with_capacity(part.len());
            let mut y_local = HashMap::new();
            for &id in part {
                s_local.insert(id, std::mem::replace(&mut s[id], Matrix::zeros(0, 0)));
                if tree.nodes[id].is_leaf() {
                    if let Some(slice) = leaf_slices.remove(&id) {
                        y_local.insert(id, slice);
                    }
                }
            }
            works.push(DownWork {
                nodes: part.clone(),
                s_local,
                y_local,
            });
        }
        let all_cross: Vec<Vec<(usize, Matrix)>> = works
            .par_iter_mut()
            .with_min_len(effective_grain(opts))
            .map(|work| {
                let mut cross: Vec<(usize, Matrix)> = Vec::new();
                // Reverse post-order: parents before children.
                for idx in (0..work.nodes.len()).rev() {
                    let id = work.nodes[idx];
                    let s_i = work
                        .s_local
                        .remove(&id)
                        .unwrap_or_else(|| Matrix::zeros(0, 0));
                    let is_leaf = tree.nodes[id].is_leaf();
                    let pushes = {
                        let dst: Option<&mut [f64]> = if is_leaf {
                            work.y_local.get_mut(&id).map(|sl| &mut **sl)
                        } else {
                            None
                        };
                        compute_down_contribution(plan, tree, id, &s_i, q, false, dst)
                    };
                    for (child, m) in pushes {
                        if let Some(existing) = work.s_local.get_mut(&child) {
                            merge_push(existing, m);
                        } else {
                            cross.push((child, m));
                        }
                    }
                }
                cross
            })
            .collect();
        drop(works);
        drop(leaf_slices);
        for cross in all_cross {
            for (child, m) in cross {
                merge_push(&mut s[child], m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrox_analysis::{build_blockset, build_cds, build_coarsenset, CoarsenParams};
    use matrox_codegen::{generate_plan, CodegenParams};
    use matrox_compress::{compress, reference_evaluate, CompressionParams};
    use matrox_linalg::relative_error;
    use matrox_points::{dense_kernel_matmul, generate, DatasetId, Kernel};
    use matrox_sampling::sample_nodes_exhaustive;
    use matrox_tree::{HTree, PartitionMethod, Structure};
    use rand::SeedableRng;

    struct Fixture {
        tree: ClusterTree,
        plan: EvalPlan,
        y_ref: Matrix,
        y_exact: Matrix,
        w: Matrix,
    }

    fn fixture(dataset: DatasetId, n: usize, structure: Structure, q: usize) -> Fixture {
        let pts = generate(dataset, n, 77);
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let tree = ClusterTree::build(&pts, PartitionMethod::Auto, 32, 0);
        let htree = HTree::build(&tree, structure);
        let sampling = sample_nodes_exhaustive(&pts, &tree);
        let c = compress(
            &pts,
            &tree,
            &htree,
            &kernel,
            &sampling,
            &CompressionParams {
                bacc: 1e-7,
                max_rank: 256,
            },
        );
        let near = build_blockset(&htree.near_pairs(), tree.num_nodes(), 2);
        let far = build_blockset(&htree.far_pairs(), tree.num_nodes(), 4);
        let cs = build_coarsenset(&tree, &c.sranks, &CoarsenParams { p: 4, agg: 2 });
        let cds = build_cds(&tree, &c, &near, &far, &cs);
        let plan = generate_plan(
            near,
            far,
            cs,
            cds,
            tree.height,
            tree.leaves().len(),
            &CodegenParams::default(),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let w = Matrix::random_uniform(n, q, &mut rng);
        let y_ref = reference_evaluate(&c, &tree, &htree, &w);
        let y_exact = dense_kernel_matmul(&pts, &kernel, &w);
        Fixture {
            tree,
            plan,
            y_ref,
            y_exact,
            w,
        }
    }

    #[test]
    fn executor_matches_reference_hss() {
        let f = fixture(DatasetId::Grid, 512, Structure::Hss, 6);
        let y = execute(&f.plan, &f.tree, &f.w, &ExecOptions::from_plan(&f.plan));
        assert!(relative_error(&y, &f.y_ref) < 1e-12);
        assert!(relative_error(&y, &f.y_exact) < 1e-4);
    }

    #[test]
    fn executor_matches_reference_geometric() {
        let f = fixture(
            DatasetId::Random,
            512,
            Structure::Geometric { tau: 0.65 },
            5,
        );
        let y = execute(&f.plan, &f.tree, &f.w, &ExecOptions::from_plan(&f.plan));
        assert!(relative_error(&y, &f.y_ref) < 1e-12);
        assert!(relative_error(&y, &f.y_exact) < 1e-4);
    }

    #[test]
    fn executor_matches_reference_budget_high_dim() {
        let f = fixture(DatasetId::Susy, 512, Structure::h2b(), 4);
        let y = execute(&f.plan, &f.tree, &f.w, &ExecOptions::from_plan(&f.plan));
        assert!(relative_error(&y, &f.y_ref) < 1e-12);
        assert!(relative_error(&y, &f.y_exact) < 1e-3);
    }

    #[test]
    fn all_ablation_variants_agree() {
        let f = fixture(DatasetId::Grid, 512, Structure::Geometric { tau: 0.65 }, 3);
        let variants = [
            ExecOptions::sequential(),
            ExecOptions {
                parallel_near: true,
                ..ExecOptions::sequential()
            },
            ExecOptions {
                parallel_tree: true,
                ..ExecOptions::sequential()
            },
            ExecOptions {
                parallel_tree: true,
                peel_root: true,
                ..ExecOptions::sequential()
            },
            ExecOptions {
                parallel_near: true,
                parallel_far: true,
                ..ExecOptions::sequential()
            },
            ExecOptions::full(),
        ];
        let baseline = execute(&f.plan, &f.tree, &f.w, &variants[0]);
        for v in &variants[1..] {
            let y = execute(&f.plan, &f.tree, &f.w, v);
            assert!(
                relative_error(&y, &baseline) < 1e-12,
                "variant {v:?} diverged"
            );
        }
    }

    #[test]
    fn hss_ablations_agree_too() {
        let f = fixture(DatasetId::Unit, 512, Structure::Hss, 2);
        let seq = execute(&f.plan, &f.tree, &f.w, &ExecOptions::sequential());
        let full = execute(&f.plan, &f.tree, &f.w, &ExecOptions::full());
        assert!(relative_error(&full, &seq) < 1e-12);
    }

    #[test]
    fn matvec_case_q1_works() {
        let f = fixture(
            DatasetId::Sunflower,
            384,
            Structure::Geometric { tau: 0.65 },
            1,
        );
        let y = execute(&f.plan, &f.tree, &f.w, &ExecOptions::full());
        assert!(relative_error(&y, &f.y_ref) < 1e-12);
    }
}
