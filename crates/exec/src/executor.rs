//! The MatRox executor: parallel HMatrix-matrix multiplication over CDS.
//!
//! The executor interprets an [`EvalPlan`] (the "generated code") in four
//! phases, mirroring the specialized loops of Figure 1e:
//!
//! 1. **near phase** — the blocked loop over the dense `D` blocks,
//!    parallel over blockset groups (which by construction never write the
//!    same output rows, so no reductions/atomics are needed);
//! 2. **upward phase** — the coarsened loop over the `V` generators,
//!    sequential over coarsen levels, parallel over load-balanced sub-trees;
//! 3. **coupling phase** — the blocked loop over the `B` blocks;
//! 4. **downward phase** — the coarsened loop over the `U` generators in
//!    reverse coarsen-level order, scattering into the output.
//!
//! Each phase has a sequential fallback used (a) when code generation decided
//! the corresponding lowering is not profitable and (b) by the ablation
//! harness of Figure 5 (`CDS(seq)`, `CDS + coarsen`, `CDS + block`, ...).
//! The `peel_root` option applies the paper's low-level specialization: the
//! root-most coarsen level is executed with block-level (parallel GEMM)
//! parallelism because task-level parallelism has run out near the root.
//!
//! All intermediate state is kept in the permuted (tree) ordering so that a
//! node's rows of `W` and `Y` are contiguous; the input is permuted on entry
//! and the output is un-permuted on exit.
//!
//! # Memory discipline
//!
//! Everything a panel iteration needs is derived once: the plan-dependent
//! state (panel width, kernel dispatch, per-node scratch offsets, leaf
//! level lists, the ownership checks below) lives in [`PreparedExec`], and
//! the per-evaluation scratch (permuted input/output panels plus the flat
//! `T`/`S` coefficient buffers) is allocated once per [`execute_prepared`]
//! call.  The panel loop itself allocates **nothing** — every GEMM writes
//! into a precomputed offset range, and the parallel phases hand tasks raw
//! disjoint sub-slices (the private `RawSlots` helper) instead of
//! rebuilding hash maps.
//!
//! The disjointness that makes those raw slices sound is not assumed: it is
//! the paper's conflict-free-scheduling invariant (blockset groups own
//! their target nodes, coarsen partitions own their sub-trees, every child
//! has one parent), and [`PreparedExec::new`] *verifies* it when the plan
//! is prepared, panicking on a malformed plan rather than racing on one.

use matrox_codegen::EvalPlan;
use matrox_linalg::{KernelChoice, KernelDispatch, Matrix};
use matrox_tree::ClusterTree;
use rayon::prelude::*;

/// Which phases run in parallel; derived from the plan's lowering decisions
/// or overridden for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Run the near loop blocked & parallel (block lowering).
    pub parallel_near: bool,
    /// Run the coupling loop blocked & parallel (block lowering, far).
    pub parallel_far: bool,
    /// Run the tree loops coarsened & parallel (coarsen lowering).
    pub parallel_tree: bool,
    /// Peel the root-most coarsen level and use parallel GEMM inside it
    /// (low-level specialization).
    pub peel_root: bool,
    /// Minimum number of work items (blockset groups, coarsen partitions) a
    /// parallel task may own; `0` means auto (the pool's own split heuristic,
    /// overridable process-wide via the `MATROX_GRAIN` env var).  Larger
    /// grains trade load balance for lower scheduling overhead — useful when
    /// groups are many and tiny.  Within a panel-blocked evaluation the
    /// grain applies to every panel's parallel loops individually.
    pub grain: usize,
    /// Width (in RHS columns) of the panels the four phases operate on; a
    /// multi-column evaluation `Y = K~ W` is processed `panel_width` columns
    /// at a time so a block's submatrix plus its input/output panels fit in
    /// L2.  `0` means auto: the `MATROX_PANEL` env var if set, otherwise
    /// [`choose_panel_width`] sized from the CDS block extents.  Results are
    /// bitwise independent of the panel width (every output column
    /// accumulates in the same order regardless of panel grouping).
    pub panel_width: usize,
    /// GEMM kernel selection for every product the executor issues.
    /// [`KernelChoice::Auto`] (the default) defers to the process-wide
    /// selection (`MATROX_KERNEL` env var, then CPU feature detection); the
    /// explicit choices pin a kernel for ablations and tests.  For a fixed
    /// selection, results are bitwise identical across thread counts,
    /// grains and panel widths; changing the selection is the one knob that
    /// moves results (within kernel-accuracy tolerance).
    pub kernel: KernelChoice,
}

/// Shared positive-integer knob parsing, re-exported from
/// [`matrox_linalg::knobs`] where it moved so the parallel inspector phases
/// (tree partitioning, sampling, compression, CDS assembly) can honor the
/// same env-knob policy without depending on this crate.
pub use matrox_linalg::knobs::parse_positive_knob;

use matrox_linalg::knobs::{env_knob, resolve_grain};

/// Resolve the effective grain for the executor's parallel loops: an explicit
/// per-call setting wins, then the `MATROX_GRAIN` environment variable, then
/// auto (1, letting the pool's width-scaled heuristic decide).  Public so the
/// factor/solve sweeps (`matrox-factor`) honor the same knob.  Invalid or
/// zero `MATROX_GRAIN` values are rejected with a one-time stderr warning
/// (see [`parse_positive_knob`]).  Thin wrapper over
/// [`matrox_linalg::knobs::resolve_grain`], which the inspector phases call
/// with their own explicit grain.
pub fn effective_grain(opts: &ExecOptions) -> usize {
    resolve_grain(opts.grain)
}

impl ExecOptions {
    /// Follow the lowering decisions recorded in the plan.
    pub fn from_plan(plan: &EvalPlan) -> Self {
        ExecOptions {
            parallel_near: plan.decisions.block_near,
            parallel_far: plan.decisions.block_far,
            parallel_tree: plan.decisions.coarsen_tree,
            peel_root: plan.decisions.peel_root,
            grain: 0,
            panel_width: 0,
            kernel: KernelChoice::Auto,
        }
    }

    /// Fully sequential execution over CDS (the `CDS(seq)` ablation bar).
    pub fn sequential() -> Self {
        ExecOptions {
            parallel_near: false,
            parallel_far: false,
            parallel_tree: false,
            peel_root: false,
            grain: 0,
            panel_width: 0,
            kernel: KernelChoice::Auto,
        }
    }

    /// All optimizations on, regardless of the plan's thresholds.
    pub fn full() -> Self {
        ExecOptions {
            parallel_near: true,
            parallel_far: true,
            parallel_tree: true,
            peel_root: true,
            grain: 0,
            panel_width: 0,
            kernel: KernelChoice::Auto,
        }
    }

    /// Set the minimum work items per parallel task (see [`ExecOptions::grain`]).
    pub fn with_grain(mut self, grain: usize) -> Self {
        self.grain = grain;
        self
    }

    /// Set the RHS panel width (see [`ExecOptions::panel_width`]).
    pub fn with_panel_width(mut self, panel_width: usize) -> Self {
        self.panel_width = panel_width;
        self
    }

    /// Pin the GEMM kernel (see [`ExecOptions::kernel`]).
    pub fn with_kernel(mut self, kernel: KernelChoice) -> Self {
        self.kernel = kernel;
        self
    }
}

/// Default L2 working-set budget (bytes) assumed by the automatic panel-width
/// selection: half of a typical 512 KiB per-core L2, leaving the other half
/// for the streamed CDS values and the stack.
pub const DEFAULT_L2_BYTES: usize = 256 * 1024;

/// Bounds on the automatically chosen panel width.  The lower bound keeps
/// tiny panels from multiplying the per-panel permutation/scheduling
/// overhead; the upper bound caps the panel footprint once blocks are small
/// enough that cache residency is no longer the constraint.
const PANEL_MIN: usize = 8;
const PANEL_MAX: usize = 256;

/// Choose the RHS panel width for a plan: the widest panel `q` such that the
/// largest single block any phase touches (dense near block, coupling block,
/// or generator — the CDS [`worst_block_extent`](matrox_analysis::Cds::worst_block_extent))
/// still fits in the `l2_bytes` budget together with its `q`-column input and
/// output panels.  Clamped to `[8, 256]` and rounded down to a multiple of 8.
///
/// The choice only affects performance, never results: the executor's output
/// is bitwise identical for every panel width.
pub fn choose_panel_width(plan: &EvalPlan, l2_bytes: usize) -> usize {
    let ext = plan.cds.worst_block_extent();
    if ext.is_empty() {
        return PANEL_MAX;
    }
    let f64_bytes = std::mem::size_of::<f64>();
    let block_bytes = ext.max_elems * f64_bytes;
    // Per RHS column a block multiply reads `max_cols` input rows and writes
    // `max_rows` output rows (or vice versa for the transposed upward pass).
    let per_col_bytes = (ext.max_rows + ext.max_cols) * f64_bytes;
    let budget = l2_bytes.saturating_sub(block_bytes);
    let qp = budget
        .checked_div(per_col_bytes)
        .unwrap_or(PANEL_MAX)
        .clamp(PANEL_MIN, PANEL_MAX);
    qp - qp % PANEL_MIN
}

/// Resolve the effective panel width: an explicit per-call setting wins, then
/// the `MATROX_PANEL` environment variable, then [`choose_panel_width`] with
/// the default L2 budget.  Invalid or zero `MATROX_PANEL` values are rejected
/// with a one-time stderr warning (see [`parse_positive_knob`]).
pub fn effective_panel_width(opts: &ExecOptions, plan: &EvalPlan) -> usize {
    if opts.panel_width > 0 {
        return opts.panel_width;
    }
    static ENV_PANEL: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let env = *ENV_PANEL.get_or_init(|| env_knob("MATROX_PANEL").unwrap_or(0));
    if env > 0 {
        return env;
    }
    choose_panel_width(plan, DEFAULT_L2_BYTES)
}

/// Per-plan executor state derived once and reused across evaluations: the
/// resolved options, panel width and kernel dispatch, the per-node offsets
/// into the flat `T`/`S` scratch buffers, the per-level node lists, and the
/// verified ownership invariants the parallel phases rely on.
///
/// [`execute`] derives this on every call; an evaluation session
/// (`matrox_core::EvalSession`) builds it once next to the inspector output
/// and serves every subsequent `evaluate(W)` without re-walking the plan.
/// `plan` and `tree` passed to [`execute_prepared`] must be the ones this
/// was prepared from.
#[derive(Debug, Clone)]
pub struct PreparedExec {
    /// The options (lowerings + grain + kernel) the plan was prepared with.
    pub opts: ExecOptions,
    /// Resolved RHS panel width (see [`ExecOptions::panel_width`]).
    pub panel_width: usize,
    /// Resolved GEMM kernel (see [`ExecOptions::kernel`]).
    dispatch: KernelDispatch,
    /// Prefix sums of `cds.sranks`: node `id`'s skeleton coefficients live
    /// at rank offsets `[rank_off[id], rank_off[id + 1])` (scaled by the
    /// panel width at evaluation time).
    rank_off: Vec<usize>,
    /// Tree nodes grouped by level (`level_nodes[l]` = nodes at depth `l`),
    /// precomputed so the sequential tree sweeps never allocate per panel.
    level_nodes: Vec<Vec<usize>>,
    /// Number of tree nodes, for cheap misuse detection.
    num_nodes: usize,
}

impl PreparedExec {
    /// Derive the executor state for a plan (the "inspector side" of the
    /// executor: everything per-evaluation calls would otherwise recompute),
    /// and verify the conflict-free-scheduling invariants the parallel
    /// phases rely on.
    ///
    /// # Panics
    /// Panics when the plan violates the ownership invariants (a blockset
    /// target claimed by two groups, a coarsen partition referencing a
    /// child computed neither in-partition nor on an earlier level, ...).
    /// A plan produced by `matrox-codegen` always satisfies them.
    pub fn new(plan: &EvalPlan, tree: &ClusterTree, opts: &ExecOptions) -> Self {
        let cds = &plan.cds;
        let num_nodes = tree.num_nodes();
        let mut rank_off = Vec::with_capacity(num_nodes + 1);
        let mut acc = 0usize;
        rank_off.push(0);
        for &r in &cds.sranks {
            acc += r;
            rank_off.push(acc);
        }
        assert_eq!(
            rank_off.len(),
            num_nodes + 1,
            "CDS sranks must cover every tree node"
        );

        let mut level_nodes: Vec<Vec<usize>> = vec![Vec::new(); tree.height + 1];
        for node in &tree.nodes {
            level_nodes[node.level].push(node.id);
        }

        verify_plan(plan, tree);

        PreparedExec {
            opts: *opts,
            panel_width: effective_panel_width(opts, plan),
            dispatch: KernelDispatch::for_choice(opts.kernel),
            rank_off,
            level_nodes,
            num_nodes,
        }
    }

    /// The resolved GEMM kernel every product of this plan runs on.
    pub fn dispatch(&self) -> KernelDispatch {
        self.dispatch
    }

    /// Skeleton rank of a node (width of its `T`/`S` coefficient slot).
    fn srank(&self, id: usize) -> usize {
        self.rank_off[id + 1] - self.rank_off[id]
    }

    /// Total skeleton rank (length of the `T`/`S` buffers in rank units).
    fn total_rank(&self) -> usize {
        // INVARIANT: rank_off is a prefix-sum built with n+1 entries at
        // prepare time, so it is never empty.
        *self.rank_off.last().unwrap()
    }
}

/// Verify every invariant the raw-sliced parallel phases rely on: blockset
/// ownership + shapes, generator shapes, coarsen ownership.  Run both at
/// prepare time and at the top of every [`execute_prepared`] call — the
/// latter so a *mismatched* plan (one the [`PreparedExec`] was not built
/// from) is itself held to the full contract before any raw slicing
/// happens, restoring the pre-refactor "panic, don't scribble" behaviour
/// for that misuse.  Cost is `O(plan structure)`, far below one panel's
/// products.
fn verify_plan(plan: &EvalPlan, tree: &ClusterTree) {
    let cds = &plan.cds;
    verify_disjoint_targets(
        &cds.d_entries,
        &cds.d_groups,
        tree,
        &cds.sranks,
        true,
        "near",
    );
    verify_disjoint_targets(
        &cds.b_entries,
        &cds.b_groups,
        tree,
        &cds.sranks,
        false,
        "far",
    );
    verify_generator_shapes(plan, tree);
    verify_coarsen_ownership(plan, tree);
}

/// Check that no two blockset groups claim the same target node (the
/// invariant that lets the blocked parallel loops write their targets'
/// output ranges without synchronization) and that every entry's block
/// dimensions match the slot its product is sliced from — for the near
/// set that means leaf point counts (entries scatter straight into
/// `y_perm`), for the far set the recorded sranks (entries accumulate
/// into the `S` slots).  The size checks are part of the soundness
/// argument, not hygiene: the phase loops carve raw slices of exactly
/// these extents, so an oversized entry in a release build would write
/// into a neighbouring node's slot (or past the buffer) instead of
/// panicking.
fn verify_disjoint_targets(
    entries: &[matrox_analysis::CdsBlockEntry],
    groups: &[matrox_analysis::GroupRange],
    tree: &ClusterTree,
    sranks: &[usize],
    targets_are_leaves: bool,
    what: &str,
) {
    let mut owner: Vec<Option<usize>> = vec![None; tree.num_nodes()];
    for (gi, g) in groups.iter().enumerate() {
        for e in &entries[g.start..g.end] {
            if targets_are_leaves {
                // Near entries: dense leaf x leaf blocks.
                assert!(
                    tree.nodes[e.target].is_leaf() && tree.nodes[e.source].is_leaf(),
                    "{what} blockset entry {}<-{} does not connect leaves",
                    e.target,
                    e.source
                );
                assert!(
                    e.rows == tree.nodes[e.target].num_points()
                        && e.cols == tree.nodes[e.source].num_points(),
                    "{what} blockset entry {}<-{} has block shape {}x{}, \
                     expected {}x{}",
                    e.target,
                    e.source,
                    e.rows,
                    e.cols,
                    tree.nodes[e.target].num_points(),
                    tree.nodes[e.source].num_points()
                );
            } else {
                // Far entries: srank x srank coupling blocks (degenerate
                // zero-dimension entries are skipped by the phases).
                assert!(
                    (e.rows == sranks[e.target] || e.rows == 0)
                        && (e.cols == sranks[e.source] || e.cols == 0),
                    "{what} blockset entry {}<-{} has block shape {}x{}, \
                     expected {}x{}",
                    e.target,
                    e.source,
                    e.rows,
                    e.cols,
                    sranks[e.target],
                    sranks[e.source]
                );
            }
            match owner[e.target] {
                None => owner[e.target] = Some(gi),
                Some(prev) => assert_eq!(
                    prev, gi,
                    "{what} blockset groups must own disjoint target nodes"
                ),
            }
        }
    }
}

/// Check that every generator's dimensions agree with the recorded sranks
/// and leaf point counts.  Like the blockset size checks, this backs the
/// unsafe slicing: the upward/downward phases size a leaf's `y_perm` range
/// and a node's `T`/`S` slot from these values, so a generator wider or
/// taller than recorded must fail at prepare time, not scribble at run
/// time.
fn verify_generator_shapes(plan: &EvalPlan, tree: &ClusterTree) {
    let cds = &plan.cds;
    for node in &tree.nodes {
        let id = node.id;
        let expect_rows = |rows: usize, what: &str| {
            let want = if node.is_leaf() {
                node.num_points()
            } else {
                // INVARIANT: non-leaf ClusterTree nodes always carry a
                // child pair by construction.
                let (l, r) = node.children.unwrap();
                cds.sranks[l] + cds.sranks[r]
            };
            assert_eq!(rows, want, "{what} generator of node {id} has wrong height");
        };
        let (_, vrows, vcols) = cds.v(id);
        if vcols > 0 {
            assert_eq!(
                vcols, cds.sranks[id],
                "V generator of node {id} is wider than its srank"
            );
            expect_rows(vrows, "V");
        }
        let (_, urows, ucols) = cds.u(id);
        if ucols > 0 {
            assert_eq!(
                ucols, cds.sranks[id],
                "U generator of node {id} is wider than its srank"
            );
            expect_rows(urows, "U");
        }
    }
}

/// Check the coarsen-set ownership invariants: every node appears in at
/// most one partition, and an internal node's children are computed either
/// by the same partition (sequential program order within the task) or on
/// an earlier coarsen level (separated by the level barrier).  These are
/// exactly the happens-before edges the parallel tree phases rely on.
fn verify_coarsen_ownership(plan: &EvalPlan, tree: &ClusterTree) {
    let levels = &plan.coarsenset.levels;
    if levels.is_empty() {
        return;
    }
    // (coarsen level, partition, position within partition) per node.
    let mut slot: Vec<Option<(usize, usize, usize)>> = vec![None; tree.num_nodes()];
    for (cl, parts) in levels.iter().enumerate() {
        for (pi, part) in parts.iter().enumerate() {
            for (pos, &id) in part.iter().enumerate() {
                assert!(
                    slot[id].is_none(),
                    "coarsen partitions must own disjoint node sets (node {id})"
                );
                slot[id] = Some((cl, pi, pos));
            }
        }
    }
    for (cl, parts) in levels.iter().enumerate() {
        for (pi, part) in parts.iter().enumerate() {
            for (pos, &id) in part.iter().enumerate() {
                let Some((l, r)) = tree.nodes[id].children else {
                    continue;
                };
                for child in [l, r] {
                    let Some((ccl, cpi, cpos)) = slot[child] else {
                        continue;
                    };
                    let ok = ccl < cl || (ccl == cl && cpi == pi && cpos < pos);
                    assert!(
                        ok,
                        "coarsen set: child {child} of node {id} is computed neither \
                         in-partition before its parent nor on an earlier level"
                    );
                }
            }
        }
    }
}

/// Evaluate `Y = K~ * W` using the generated plan.
///
/// `w` must have one row per point (`N x Q`); the result has the same shape.
/// This derives the per-plan [`PreparedExec`] state on every call; repeated
/// evaluations should prepare once and use [`execute_prepared`] (or the
/// session API in `matrox-core`).
pub fn execute(plan: &EvalPlan, tree: &ClusterTree, w: &Matrix, opts: &ExecOptions) -> Matrix {
    execute_prepared(plan, tree, &PreparedExec::new(plan, tree, opts), w)
}

/// Evaluate `Y = K~ * W` with previously prepared executor state, processing
/// the RHS in panels of [`PreparedExec::panel_width`] columns.
///
/// Beyond the output matrix, the only allocations are the four scratch
/// buffers sized for one panel (permuted input/output plus the flat `T`/`S`
/// coefficient stores) and the plan re-verification's scratch, made once up
/// front — the panel loop itself is allocation-free (asserted by
/// `crates/exec/tests/alloc_free.rs`).
///
/// # Panics
/// Panics when `w` has the wrong number of rows, when `prep` was prepared
/// for a different tree or a plan with different skeleton ranks, or when
/// `plan` violates the executor's ownership/shape invariants.  The passed
/// plan is re-verified on every call (cheap relative to one panel's
/// products) precisely because the parallel phases slice raw disjoint
/// sub-ranges from it: a mismatched or malformed plan must fail loudly
/// here, never scribble.
pub fn execute_prepared(
    plan: &EvalPlan,
    tree: &ClusterTree,
    prep: &PreparedExec,
    w: &Matrix,
) -> Matrix {
    let n = tree.perm.len();
    let q = w.cols();
    assert_eq!(w.rows(), n, "execute: W must have N = {n} rows");
    assert_eq!(
        prep.num_nodes,
        tree.num_nodes(),
        "execute: PreparedExec belongs to a different tree"
    );
    assert!(
        plan.cds.sranks.len() == prep.num_nodes
            && plan
                .cds
                .sranks
                .iter()
                .enumerate()
                .all(|(id, &r)| r == prep.srank(id)),
        "execute: PreparedExec belongs to a plan with different skeleton ranks"
    );
    verify_plan(plan, tree);
    let mut y = Matrix::zeros(n, q);
    if q == 0 {
        return y;
    }
    let qp = prep.panel_width.max(1).min(q);
    let total_rank = prep.total_rank();
    // Scratch shared by every panel: the gather fully overwrites the active
    // slice of `w_perm`, and `execute_panel` re-zeroes the other three, so
    // four allocations serve the whole evaluation.
    let mut w_perm = vec![0.0f64; n * qp];
    let mut y_perm = vec![0.0f64; n * qp];
    let mut t_buf = vec![0.0f64; total_rank * qp];
    let mut s_buf = vec![0.0f64; total_rank * qp];
    let mut j0 = 0;
    while j0 < q {
        let j1 = (j0 + qp).min(q);
        let cur = j1 - j0;
        execute_panel(
            plan,
            tree,
            prep,
            w,
            j0,
            j1,
            &mut w_perm[..n * cur],
            &mut y_perm[..n * cur],
            &mut t_buf[..total_rank * cur],
            &mut s_buf[..total_rank * cur],
            &mut y,
        );
        j0 = j1;
    }
    y
}

/// Run the four executor phases for the RHS columns `[j0, j1)`, writing the
/// result into the same columns of `y`.  All scratch slices are caller-owned
/// and reused across panels.
fn execute_panel(
    plan: &EvalPlan,
    tree: &ClusterTree,
    prep: &PreparedExec,
    w: &Matrix,
    j0: usize,
    j1: usize,
    w_perm: &mut [f64],
    y_perm: &mut [f64],
    t_buf: &mut [f64],
    s_buf: &mut [f64],
    y: &mut Matrix,
) {
    let opts = &prep.opts;
    let n = tree.perm.len();
    let q = w.cols();
    let qp = j1 - j0;
    debug_assert_eq!(w_perm.len(), n * qp);
    debug_assert_eq!(y_perm.len(), n * qp);

    // Permute the panel of W into tree order so every node's rows are
    // contiguous.  The gather writes disjoint contiguous destination rows, so
    // it parallelizes over row blocks; below ~PERM_PAR_ELEMS elements the
    // copy is too memory-bound and short for a fork to pay off.
    let any_parallel = opts.parallel_near || opts.parallel_far || opts.parallel_tree;
    let perm_rows_per_task = PERM_PAR_ELEMS.div_ceil(qp).max(1);
    if any_parallel && n * qp >= PERM_PAR_ELEMS {
        w_perm
            .par_chunks_mut(qp)
            .with_min_len(perm_rows_per_task)
            .enumerate()
            .for_each(|(p, row)| row.copy_from_slice(&w.row(tree.perm[p])[j0..j1]));
    } else {
        for p in 0..n {
            w_perm[p * qp..(p + 1) * qp].copy_from_slice(&w.row(tree.perm[p])[j0..j1]);
        }
    }
    y_perm.fill(0.0);
    t_buf.fill(0.0);
    s_buf.fill(0.0);

    // Phase 1: near (dense) contributions.
    near_phase(plan, tree, prep, w_perm, y_perm, qp);

    // Phase 2: upward pass producing the skeleton coefficients T.
    upward_phase(plan, tree, prep, w_perm, t_buf, qp);

    // Phase 3: coupling through the B blocks.
    coupling_phase(plan, prep, t_buf, s_buf, qp);

    // Phase 4: downward pass scattering U * S into the output.
    downward_phase(plan, tree, prep, s_buf, y_perm, qp);

    // Un-permute the panel into the output columns.  Iterate over the
    // *destination* rows (each task owns a contiguous block of `y`) and
    // gather from the permuted buffer via the inverse permutation, so the
    // parallel copy needs no synchronization.
    if any_parallel && n * qp >= PERM_PAR_ELEMS {
        y.as_mut_slice()
            .par_chunks_mut(q)
            .with_min_len(perm_rows_per_task)
            .enumerate()
            .for_each(|(i, row)| {
                let p = tree.pos[i];
                row[j0..j1].copy_from_slice(&y_perm[p * qp..(p + 1) * qp]);
            });
    } else {
        for p in 0..n {
            y.row_mut(tree.perm[p])[j0..j1].copy_from_slice(&y_perm[p * qp..(p + 1) * qp]);
        }
    }
}

/// Element count below which the entry/exit permutation copies stay
/// sequential: the copies are pure memory traffic, so small problems gain
/// nothing from forking.
const PERM_PAR_ELEMS: usize = 64 * 1024;

/// Minimum multiply-add count for which the peeled (block-level parallel)
/// GEMM path is worthwhile; below this the sequential kernel is used even
/// when peeling is enabled, because thread fan-out costs more than it saves.
/// Retuned for the real work-stealing pool: the peeled GEMM runs while the
/// rest of the pool is idle (task parallelism has run out at the root), so a
/// fork is profitable already at ~256k multiply-adds, a quarter of the value
/// assumed under the sequential stub.  Switching between the peeled and
/// sequential kernel never changes results: for a fixed dispatch the two are
/// bitwise identical.
const PEEL_PAR_THRESHOLD: usize = 1 << 18;

/// Raw shared view of one scratch buffer, handed to the parallel phase
/// loops so tasks can slice their own disjoint sub-ranges without per-panel
/// splitting machinery (the old implementation rebuilt per-group `HashMap`s
/// of `&mut` slices on every RHS panel).
///
/// # Safety contract
///
/// Every `slice_mut` range handed out concurrently must be disjoint from
/// every other concurrently live range (mutable or shared) of the same
/// buffer.  The executor guarantees this through the plan invariants
/// **verified at prepare time** ([`PreparedExec::new`]):
///
/// * near/coupling: a target node belongs to exactly one blockset group,
///   and distinct target nodes map to disjoint offset ranges;
/// * upward: a node's `T` slot is written by exactly one coarsen partition,
///   and the child slots it reads were written either earlier by the same
///   task or on an earlier coarsen level (the `par_iter` per level is a
///   barrier);
/// * downward: a node's children each have exactly one parent, so no two
///   tasks push into the same `S` slot within a level, and leaves (the
///   `y_perm` writes) belong to exactly one partition.
#[derive(Clone, Copy)]
struct RawSlots {
    ptr: *mut f64,
    len: usize,
}

// SAFETY: RawSlots is a capability to *manually verified* disjoint slicing;
// the pointer itself may cross threads freely (the data is plain f64).
unsafe impl Send for RawSlots {}
// SAFETY: sharing `&RawSlots` across threads only shares the (ptr, len)
// pair; actual accesses go through `slice`/`slice_mut`, whose disjointness
// contract (verified at prepare time) is what prevents data races.
unsafe impl Sync for RawSlots {}

impl RawSlots {
    fn new(buf: &mut [f64]) -> Self {
        RawSlots {
            ptr: buf.as_mut_ptr(),
            len: buf.len(),
        }
    }

    /// # Safety
    /// `[off, off + len)` must not be concurrently aliased (see the
    /// type-level contract).  Bounds are checked unconditionally — the
    /// check is trivial next to the product the slice feeds, and it turns
    /// an invariant-violation bug into a panic instead of an
    /// out-of-bounds write.
    #[allow(clippy::mut_from_ref)] // the disjointness contract IS the point
    unsafe fn slice_mut<'a>(&self, off: usize, len: usize) -> &'a mut [f64] {
        assert!(off + len <= self.len, "RawSlots: slice out of bounds");
        // SAFETY: in bounds by the assert (`ptr..ptr+len` is one live
        // allocation — the scratch Vec borrowed by `RawSlots::new`);
        // non-aliasing is the caller's contract.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(off), len) }
    }

    /// # Safety
    /// `[off, off + len)` must not be concurrently written (see the
    /// type-level contract); bounds are checked unconditionally.
    unsafe fn slice<'a>(&self, off: usize, len: usize) -> &'a [f64] {
        assert!(off + len <= self.len, "RawSlots: slice out of bounds");
        // SAFETY: in bounds by the assert; no concurrent writer is the
        // caller's contract.
        unsafe { std::slice::from_raw_parts(self.ptr.add(off), len) }
    }
}

// --------------------------------------------------------------------------
// Phase 1: near contributions
// --------------------------------------------------------------------------

fn near_phase(
    plan: &EvalPlan,
    tree: &ClusterTree,
    prep: &PreparedExec,
    w_perm: &[f64],
    y_perm: &mut [f64],
    q: usize,
) {
    let cds = &plan.cds;
    if cds.d_entries.is_empty() {
        return;
    }
    let opts = &prep.opts;
    if !opts.parallel_near {
        for e in &cds.d_entries {
            let tn = &tree.nodes[e.target];
            let dst = &mut y_perm[tn.start * q..tn.end * q];
            let sn = &tree.nodes[e.source];
            let src = &w_perm[sn.start * q..sn.end * q];
            prep.dispatch
                .gemm(cds.d_block(e), e.rows, e.cols, src, q, dst);
        }
        return;
    }

    // Blocked parallel loop: every group owns the output slices of its
    // target nodes exclusively (Algorithm 1 guarantees disjoint targets
    // across groups; verified at prepare time), so each task writes its
    // targets' `y_perm` rows directly.
    let y = RawSlots::new(y_perm);
    cds.d_groups
        .par_iter()
        .with_min_len(effective_grain(opts))
        .for_each(|g| {
            for e in &cds.d_entries[g.start..g.end] {
                let tn = &tree.nodes[e.target];
                // SAFETY: this group is the verified sole owner of node
                // `e.target`, target leaves tile disjoint row ranges, and
                // entries within a group run sequentially on this task.
                let dst = unsafe { y.slice_mut(tn.start * q, (tn.end - tn.start) * q) };
                let sn = &tree.nodes[e.source];
                let src = &w_perm[sn.start * q..sn.end * q];
                prep.dispatch
                    .gemm(cds.d_block(e), e.rows, e.cols, src, q, dst);
            }
        });
}

// --------------------------------------------------------------------------
// Phase 2: upward pass (T = V^T * ...)
// --------------------------------------------------------------------------

/// Compute node `id`'s skeleton coefficients `T_i` into its `t` slot.
///
/// # Safety
/// The caller must guarantee exclusive access to `id`'s slot and that the
/// children's slots are fully written (same task earlier, or an earlier
/// coarsen/tree level) — see [`RawSlots`].
unsafe fn compute_t_into(
    plan: &EvalPlan,
    tree: &ClusterTree,
    prep: &PreparedExec,
    id: usize,
    w_perm: &[f64],
    q: usize,
    t: RawSlots,
    peel: bool,
) {
    let cds = &plan.cds;
    let (v, rows, cols) = cds.v(id);
    if cols == 0 {
        return;
    }
    debug_assert_eq!(cols, prep.srank(id), "generator width != srank at {id}");
    // SAFETY: `[rank_off[id], rank_off[id] + srank(id)) * q` is node `id`'s
    // own T slot (slots of distinct nodes are disjoint by the prefix-sum
    // construction, cross-checked in `PreparedExec`); exclusive access to
    // it is the fn contract.
    let out = unsafe { t.slice_mut(prep.rank_off[id] * q, cols * q) };
    let node = &tree.nodes[id];
    let par = peel && rows * cols * q >= PEEL_PAR_THRESHOLD;
    if node.is_leaf() {
        debug_assert_eq!(rows, node.num_points());
        let src = &w_perm[node.start * q..node.end * q];
        if par {
            prep.dispatch.par_gemm_tn(v, rows, cols, src, q, out);
        } else {
            prep.dispatch.gemm_tn(v, rows, cols, src, q, out);
        }
    } else {
        // INVARIANT: non-leaf ClusterTree nodes always carry a child pair
        // by construction.
        let (l, r) = node.children.unwrap();
        let rl = prep.srank(l);
        let rr = prep.srank(r);
        debug_assert_eq!(rows, rl + rr, "transfer matrix rows mismatch at node {id}");
        if rl > 0 {
            // SAFETY: the children's T slots are disjoint from `out` (per
            // the prefix-sum layout) and fully written before this call —
            // by this task earlier or on an earlier level (fn contract).
            let tl = unsafe { t.slice(prep.rank_off[l] * q, rl * q) };
            prep.dispatch
                .gemm_tn(&v[0..rl * cols], rl, cols, tl, q, out);
        }
        if rr > 0 {
            // SAFETY: as for the left child.
            let tr = unsafe { t.slice(prep.rank_off[r] * q, rr * q) };
            prep.dispatch.gemm_tn(&v[rl * cols..], rr, cols, tr, q, out);
        }
    }
}

fn upward_phase(
    plan: &EvalPlan,
    tree: &ClusterTree,
    prep: &PreparedExec,
    w_perm: &[f64],
    t_buf: &mut [f64],
    q: usize,
) {
    let opts = &prep.opts;
    let t = RawSlots::new(t_buf);
    let use_coarsen = opts.parallel_tree && plan.coarsenset.num_levels() > 0;
    if use_coarsen {
        let levels = &plan.coarsenset.levels;
        let nlev = levels.len();
        for (cl, parts) in levels.iter().enumerate() {
            let peel_this = opts.peel_root && cl + 1 == nlev;
            if peel_this {
                // Root-most coarsen level: little task parallelism left, use
                // block-level parallelism inside each node instead.
                for part in parts {
                    for &id in part {
                        // SAFETY: single task; children were computed on
                        // earlier levels or earlier in this loop.
                        unsafe { compute_t_into(plan, tree, prep, id, w_perm, q, t, true) };
                    }
                }
            } else {
                parts
                    .par_iter()
                    .with_min_len(effective_grain(opts))
                    .for_each(|part| {
                        for &id in part {
                            // SAFETY: partitions own disjoint node sets and a
                            // node's children are in this partition (already
                            // computed by this task, verified ordering) or on
                            // an earlier level (completed before this
                            // par_iter started) — checked at prepare time.
                            unsafe { compute_t_into(plan, tree, prep, id, w_perm, q, t, false) };
                        }
                    });
            }
        }
    } else {
        // Level-by-level traversal, deepest level first.
        for level in (1..=tree.height).rev() {
            for &id in &prep.level_nodes[level] {
                // SAFETY: single-threaded sweep; children (one level deeper)
                // are complete.
                unsafe { compute_t_into(plan, tree, prep, id, w_perm, q, t, false) };
            }
        }
    }
}

// --------------------------------------------------------------------------
// Phase 3: coupling (S_i += B_{i,j} * T_j)
// --------------------------------------------------------------------------

fn coupling_phase(
    plan: &EvalPlan,
    prep: &PreparedExec,
    t_buf: &[f64],
    s_buf: &mut [f64],
    q: usize,
) {
    let cds = &plan.cds;
    if cds.b_entries.is_empty() {
        return;
    }
    let opts = &prep.opts;
    if !opts.parallel_far {
        for e in &cds.b_entries {
            if e.rows == 0 || e.cols == 0 {
                continue;
            }
            let src = &t_buf[prep.rank_off[e.source] * q..][..e.cols * q];
            let dst = &mut s_buf[prep.rank_off[e.target] * q..][..e.rows * q];
            prep.dispatch
                .gemm(cds.b_block(e), e.rows, e.cols, src, q, dst);
        }
        return;
    }

    // Blocked parallel loop over far groups; each group owns its target
    // nodes' S slots exclusively (verified at prepare time).
    let s = RawSlots::new(s_buf);
    cds.b_groups
        .par_iter()
        .with_min_len(effective_grain(opts))
        .for_each(|g| {
            for e in &cds.b_entries[g.start..g.end] {
                if e.rows == 0 || e.cols == 0 {
                    continue;
                }
                debug_assert_eq!(e.cols, prep.srank(e.source));
                debug_assert_eq!(e.rows, prep.srank(e.target));
                let src = &t_buf[prep.rank_off[e.source] * q..][..e.cols * q];
                // SAFETY: this group is the verified sole owner of node
                // `e.target`'s S slot; slots of distinct nodes are disjoint.
                let dst = unsafe { s.slice_mut(prep.rank_off[e.target] * q, e.rows * q) };
                prep.dispatch
                    .gemm(cds.b_block(e), e.rows, e.cols, src, q, dst);
            }
        });
}

// --------------------------------------------------------------------------
// Phase 4: downward pass (Y += U * S, pushed through the transfer matrices)
// --------------------------------------------------------------------------

/// Process one node of the downward pass: a leaf adds `U_i * S_i` into its
/// contiguous `y_perm` rows; an internal node accumulates the expanded
/// contribution directly into its children's `S` slots (the two halves of
/// `U_i` hit the two children).
///
/// # Safety
/// Caller must guarantee (via the verified coarsen invariants) that no
/// other task concurrently touches `id`'s `S` slot, its children's `S`
/// slots, or its `y_perm` rows — see [`RawSlots`].
unsafe fn down_node(
    plan: &EvalPlan,
    tree: &ClusterTree,
    prep: &PreparedExec,
    id: usize,
    s: RawSlots,
    y: RawSlots,
    q: usize,
    peel: bool,
) {
    let cds = &plan.cds;
    let (u, rows, cols) = cds.u(id);
    if cols == 0 {
        return;
    }
    debug_assert_eq!(cols, prep.srank(id));
    // SAFETY: node `id`'s S slot is fully written before this node is
    // processed (its parent ran earlier — same task or an earlier level)
    // and nothing concurrently writes it (fn contract).
    let s_i = unsafe { s.slice(prep.rank_off[id] * q, cols * q) };
    let node = &tree.nodes[id];
    let par = peel && rows * cols * q >= PEEL_PAR_THRESHOLD;
    if node.is_leaf() {
        debug_assert_eq!(rows, node.num_points());
        // SAFETY: leaves tile `y_perm` disjointly (`[start, start + rows)`
        // rows belong to this leaf alone) and each leaf belongs to exactly
        // one partition (fn contract).
        let dst = unsafe { y.slice_mut(node.start * q, rows * q) };
        if par {
            prep.dispatch.par_gemm(u, rows, cols, s_i, q, dst);
        } else {
            prep.dispatch.gemm(u, rows, cols, s_i, q, dst);
        }
    } else {
        // INVARIANT: non-leaf ClusterTree nodes always carry a child pair
        // by construction.
        let (l, r) = node.children.unwrap();
        let rl = prep.srank(l);
        let rr = prep.srank(r);
        debug_assert_eq!(rows, rl + rr);
        if rl > 0 {
            // SAFETY: every child has exactly one parent, so this task is
            // the only writer of the child's S slot at this level; the
            // child itself reads it only after this node completes
            // (in-partition ordering or the next level's barrier).
            let dst = unsafe { s.slice_mut(prep.rank_off[l] * q, rl * q) };
            if par {
                prep.dispatch
                    .par_gemm(&u[0..rl * cols], rl, cols, s_i, q, dst);
            } else {
                prep.dispatch.gemm(&u[0..rl * cols], rl, cols, s_i, q, dst);
            }
        }
        if rr > 0 {
            // SAFETY: as for the left child.
            let dst = unsafe { s.slice_mut(prep.rank_off[r] * q, rr * q) };
            if par {
                prep.dispatch
                    .par_gemm(&u[rl * cols..rows * cols], rr, cols, s_i, q, dst);
            } else {
                prep.dispatch
                    .gemm(&u[rl * cols..rows * cols], rr, cols, s_i, q, dst);
            }
        }
    }
}

fn downward_phase(
    plan: &EvalPlan,
    tree: &ClusterTree,
    prep: &PreparedExec,
    s_buf: &mut [f64],
    y_perm: &mut [f64],
    q: usize,
) {
    let opts = &prep.opts;
    let use_coarsen = opts.parallel_tree && plan.coarsenset.num_levels() > 0;
    let s = RawSlots::new(s_buf);
    let y = RawSlots::new(y_perm);
    if !use_coarsen {
        // Sequential top-down, level by level.
        for level in 1..=tree.height {
            for &id in &prep.level_nodes[level] {
                // SAFETY: single-threaded sweep; parents (one level up) are
                // complete, children's slots are only written here.
                unsafe { down_node(plan, tree, prep, id, s, y, q, false) };
            }
        }
        return;
    }

    let levels = &plan.coarsenset.levels;
    let nlev = levels.len();
    for cl in (0..nlev).rev() {
        let parts = &levels[cl];
        let peel_this = opts.peel_root && cl + 1 == nlev;
        if peel_this {
            // Sequential over the few root-most nodes, parallel inside GEMMs.
            for part in parts {
                for &id in part.iter().rev() {
                    // SAFETY: single task at this level.
                    unsafe { down_node(plan, tree, prep, id, s, y, q, true) };
                }
            }
            continue;
        }

        // Parallel over partitions.  A task pushes into the S slots of its
        // nodes' children: a child inside the partition is processed later
        // by the same task (reverse order, verified at prepare time); a
        // child on a deeper coarsen level is untouched until the next `cl`
        // iteration (the par_iter below is a barrier); and every child has
        // exactly one parent, so no two tasks push into the same slot.
        // Leaves (the y_perm writes) belong to exactly one partition.
        parts
            .par_iter()
            .with_min_len(effective_grain(opts))
            .for_each(|part| {
                for &id in part.iter().rev() {
                    // SAFETY: see the loop comment above.
                    unsafe { down_node(plan, tree, prep, id, s, y, q, false) };
                }
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrox_analysis::{build_blockset, build_cds, build_coarsenset, CoarsenParams};
    use matrox_codegen::{generate_plan, CodegenParams};
    use matrox_compress::{compress, reference_evaluate, CompressionParams};
    use matrox_linalg::relative_error;
    use matrox_points::{dense_kernel_matmul, generate, DatasetId, Kernel};
    use matrox_sampling::sample_nodes_exhaustive;
    use matrox_tree::{HTree, PartitionMethod, Structure};
    use rand::SeedableRng;

    struct Fixture {
        tree: ClusterTree,
        plan: EvalPlan,
        y_ref: Matrix,
        y_exact: Matrix,
        w: Matrix,
    }

    fn fixture(dataset: DatasetId, n: usize, structure: Structure, q: usize) -> Fixture {
        let pts = generate(dataset, n, 77);
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let tree = ClusterTree::build(&pts, PartitionMethod::Auto, 32, 0);
        let htree = HTree::build(&tree, structure);
        let sampling = sample_nodes_exhaustive(&pts, &tree);
        let c = compress(
            &pts,
            &tree,
            &htree,
            &kernel,
            &sampling,
            &CompressionParams {
                bacc: 1e-7,
                max_rank: 256,
                grain: 0,
            },
        );
        let near = build_blockset(&htree.near_pairs(), tree.num_nodes(), 2);
        let far = build_blockset(&htree.far_pairs(), tree.num_nodes(), 4);
        let cs = build_coarsenset(&tree, &c.sranks, &CoarsenParams { p: 4, agg: 2 });
        let cds = build_cds(&tree, &c, &near, &far, &cs);
        let plan = generate_plan(
            near,
            far,
            cs,
            cds,
            tree.height,
            tree.leaves().len(),
            &CodegenParams::default(),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let w = Matrix::random_uniform(n, q, &mut rng);
        let y_ref = reference_evaluate(&c, &tree, &htree, &w);
        let y_exact = dense_kernel_matmul(&pts, &kernel, &w);
        Fixture {
            tree,
            plan,
            y_ref,
            y_exact,
            w,
        }
    }

    #[test]
    fn positive_knob_parsing_is_loud_about_garbage() {
        let ok = |s: &str| parse_positive_knob("MATROX_PANEL", Ok(s.to_string()));
        // Unset: auto, no complaint.
        assert_eq!(
            parse_positive_knob("MATROX_PANEL", Err(std::env::VarError::NotPresent)),
            Ok(None)
        );
        // Valid positive values (whitespace tolerated) are explicit overrides.
        assert_eq!(ok("64"), Ok(Some(64)));
        assert_eq!(ok(" 8\n"), Ok(Some(8)));
        // Zero, garbage, negatives, and empty strings are rejected with a
        // message naming the knob — never silently treated as "auto".
        for bad in ["0", "abc", "-4", "", "12q", "1.5"] {
            let err = ok(bad).expect_err(bad);
            assert!(err.contains("MATROX_PANEL"), "message names knob: {err}");
            assert!(err.contains("using auto"), "message states fallback: {err}");
        }
        // Non-UTF-8 values are rejected too.
        let err = parse_positive_knob(
            "MATROX_GRAIN",
            Err(std::env::VarError::NotUnicode("\u{fffd}".into())),
        )
        .expect_err("non-unicode");
        assert!(err.contains("MATROX_GRAIN"), "message names knob: {err}");
    }

    #[test]
    fn executor_matches_reference_hss() {
        let f = fixture(DatasetId::Grid, 512, Structure::Hss, 6);
        let y = execute(&f.plan, &f.tree, &f.w, &ExecOptions::from_plan(&f.plan));
        assert!(relative_error(&y, &f.y_ref) < 1e-12);
        assert!(relative_error(&y, &f.y_exact) < 1e-4);
    }

    #[test]
    fn executor_matches_reference_geometric() {
        let f = fixture(
            DatasetId::Random,
            512,
            Structure::Geometric { tau: 0.65 },
            5,
        );
        let y = execute(&f.plan, &f.tree, &f.w, &ExecOptions::from_plan(&f.plan));
        assert!(relative_error(&y, &f.y_ref) < 1e-12);
        assert!(relative_error(&y, &f.y_exact) < 1e-4);
    }

    #[test]
    fn executor_matches_reference_budget_high_dim() {
        let f = fixture(DatasetId::Susy, 512, Structure::h2b(), 4);
        let y = execute(&f.plan, &f.tree, &f.w, &ExecOptions::from_plan(&f.plan));
        assert!(relative_error(&y, &f.y_ref) < 1e-12);
        assert!(relative_error(&y, &f.y_exact) < 1e-3);
    }

    #[test]
    fn all_ablation_variants_agree() {
        let f = fixture(DatasetId::Grid, 512, Structure::Geometric { tau: 0.65 }, 3);
        let variants = [
            ExecOptions::sequential(),
            ExecOptions {
                parallel_near: true,
                ..ExecOptions::sequential()
            },
            ExecOptions {
                parallel_tree: true,
                ..ExecOptions::sequential()
            },
            ExecOptions {
                parallel_tree: true,
                peel_root: true,
                ..ExecOptions::sequential()
            },
            ExecOptions {
                parallel_near: true,
                parallel_far: true,
                ..ExecOptions::sequential()
            },
            ExecOptions::full(),
        ];
        let baseline = execute(&f.plan, &f.tree, &f.w, &variants[0]);
        for v in &variants[1..] {
            let y = execute(&f.plan, &f.tree, &f.w, v);
            assert!(
                relative_error(&y, &baseline) < 1e-12,
                "variant {v:?} diverged"
            );
        }
    }

    #[test]
    fn hss_ablations_agree_too() {
        let f = fixture(DatasetId::Unit, 512, Structure::Hss, 2);
        let seq = execute(&f.plan, &f.tree, &f.w, &ExecOptions::sequential());
        let full = execute(&f.plan, &f.tree, &f.w, &ExecOptions::full());
        assert!(relative_error(&full, &seq) < 1e-12);
    }

    /// Bitwise equality between two matrices.
    fn bitwise_eq(a: &Matrix, b: &Matrix) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn panel_width_never_changes_results() {
        let f = fixture(DatasetId::Grid, 512, Structure::Geometric { tau: 0.65 }, 33);
        let full = execute(
            &f.plan,
            &f.tree,
            &f.w,
            &ExecOptions::full().with_panel_width(usize::MAX),
        );
        for panel in [1usize, 2, 5, 8, 16, 32, 33, 100] {
            let opts = ExecOptions::full().with_panel_width(panel);
            let y = execute(&f.plan, &f.tree, &f.w, &opts);
            assert!(bitwise_eq(&y, &full), "panel width {panel} changed results");
            let seq = ExecOptions::sequential().with_panel_width(panel);
            let y_seq = execute(&f.plan, &f.tree, &f.w, &seq);
            assert!(
                bitwise_eq(&y_seq, &full),
                "sequential panel width {panel} changed results"
            );
        }
    }

    #[test]
    fn panel_width_never_changes_results_per_kernel() {
        // The same panel-independence, pinned per explicit kernel choice
        // (the scalar fallback must hold it even on AVX2 hosts).
        let f = fixture(DatasetId::Grid, 384, Structure::Hss, 19);
        for kernel in [KernelChoice::Scalar, KernelChoice::Avx2] {
            let full = execute(
                &f.plan,
                &f.tree,
                &f.w,
                &ExecOptions::full()
                    .with_panel_width(usize::MAX)
                    .with_kernel(kernel),
            );
            for panel in [1usize, 7, 16] {
                let y = execute(
                    &f.plan,
                    &f.tree,
                    &f.w,
                    &ExecOptions::full()
                        .with_panel_width(panel)
                        .with_kernel(kernel),
                );
                assert!(
                    bitwise_eq(&y, &full),
                    "kernel {kernel:?}: panel width {panel} changed results"
                );
            }
        }
    }

    #[test]
    fn kernel_choices_agree_within_tolerance() {
        let f = fixture(DatasetId::Unit, 512, Structure::h2b(), 9);
        let scalar = execute(
            &f.plan,
            &f.tree,
            &f.w,
            &ExecOptions::full().with_kernel(KernelChoice::Scalar),
        );
        let simd = execute(
            &f.plan,
            &f.tree,
            &f.w,
            &ExecOptions::full().with_kernel(KernelChoice::Avx2),
        );
        assert!(relative_error(&simd, &scalar) < 1e-12);
        assert!(relative_error(&scalar, &f.y_ref) < 1e-12);
    }

    #[test]
    fn mismatched_plan_panics_instead_of_scribbling() {
        // `execute_prepared` re-verifies the passed plan and cross-checks
        // its sranks against the prepared offsets: state prepared from one
        // plan must never silently slice another plan's extents.
        let pts = generate(DatasetId::Grid, 256, 77);
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let tree = ClusterTree::build(&pts, PartitionMethod::Auto, 32, 0);
        let htree = HTree::build(&tree, Structure::Hss);
        let sampling = sample_nodes_exhaustive(&pts, &tree);
        let plan_for = |bacc: f64| {
            let c = compress(
                &pts,
                &tree,
                &htree,
                &kernel,
                &sampling,
                &CompressionParams {
                    bacc,
                    max_rank: 256,
                    grain: 0,
                },
            );
            let near = build_blockset(&htree.near_pairs(), tree.num_nodes(), 2);
            let far = build_blockset(&htree.far_pairs(), tree.num_nodes(), 4);
            let cs = build_coarsenset(&tree, &c.sranks, &CoarsenParams { p: 4, agg: 2 });
            let cds = build_cds(&tree, &c, &near, &far, &cs);
            generate_plan(
                near,
                far,
                cs,
                cds,
                tree.height,
                tree.leaves().len(),
                &CodegenParams::default(),
            )
        };
        let plan_a = plan_for(1e-7);
        let plan_b = plan_for(1e-2); // much looser accuracy -> smaller sranks
        assert_ne!(plan_a.cds.sranks, plan_b.cds.sranks, "fixture too weak");
        let prep_a = PreparedExec::new(&plan_a, &tree, &ExecOptions::full());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let w = Matrix::random_uniform(256, 4, &mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_prepared(&plan_b, &tree, &prep_a, &w)
        }));
        assert!(result.is_err(), "mismatched plan must panic");
    }

    #[test]
    fn prepared_executor_matches_unprepared_and_is_reusable() {
        let f = fixture(DatasetId::Unit, 512, Structure::Hss, 7);
        let opts = ExecOptions::from_plan(&f.plan);
        let prep = PreparedExec::new(&f.plan, &f.tree, &opts);
        let direct = execute(&f.plan, &f.tree, &f.w, &opts);
        for _ in 0..3 {
            let y = execute_prepared(&f.plan, &f.tree, &prep, &f.w);
            assert!(bitwise_eq(&y, &direct));
        }
    }

    #[test]
    fn chosen_panel_width_is_bounded_and_aligned() {
        let f = fixture(DatasetId::Grid, 512, Structure::Hss, 1);
        for l2 in [16 * 1024usize, 256 * 1024, 4 * 1024 * 1024] {
            let qp = choose_panel_width(&f.plan, l2);
            assert!((8..=256).contains(&qp), "panel width {qp} out of bounds");
            assert_eq!(qp % 8, 0, "panel width {qp} not 8-aligned");
        }
        // A larger budget can never shrink the panel.
        assert!(
            choose_panel_width(&f.plan, 4 * 1024 * 1024) >= choose_panel_width(&f.plan, 64 * 1024)
        );
    }

    #[test]
    fn matvec_case_q1_works() {
        let f = fixture(
            DatasetId::Sunflower,
            384,
            Structure::Geometric { tau: 0.65 },
            1,
        );
        let y = execute(&f.plan, &f.tree, &f.w, &ExecOptions::full());
        assert!(relative_error(&y, &f.y_ref) < 1e-12);
    }
}
